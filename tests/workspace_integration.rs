//! Cross-crate integration tests through the `genfv` facade: the full
//! pipeline RTL text → parse → elaborate → property compile → bit-blast →
//! SAT → k-induction → CEX → prompt → synthetic LLM → candidate validation
//! → lemma → proof, exercised exactly as a downstream user would.

use genfv::genai::{LanguageModel, Prompt};
use genfv::prelude::*;

#[test]
fn paper_pipeline_through_facade() {
    let bundle = genfv::designs::by_name("sync_counters").unwrap();
    let design = bundle.prepare().unwrap();

    // Baseline fails exactly like the paper says.
    let baseline = run_baseline(&design, &FlowConfig::default());
    assert!(!baseline.all_proven());

    // Flow 2 closes it.
    let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 2024);
    let report = run_flow2(bundle.prepare().unwrap(), &mut llm, &FlowConfig::default());
    assert!(report.all_proven());
    assert!(report.lemmas.iter().any(|l| l.text.contains("count1") && l.text.contains("count2")));
}

#[test]
fn whole_corpus_prepares_and_simulates() {
    for bundle in genfv::designs::all_designs() {
        let design = bundle.prepare().unwrap_or_else(|e| panic!("{}: {e}", bundle.name));
        // Ten cycles of reset-released simulation must satisfy every
        // target monitor (reachable behaviour is correct by construction
        // for all corpus designs except the seeded bug, whose violation
        // needs count1 to diverge — visible within ten cycles).
        let mut sim = Simulator::new(&design.ctx, &design.ts);
        sim.reset();
        for input in design.ts.inputs() {
            let w = design.ctx.width_of(*input);
            sim.set(*input, BitVecValue::zero(w));
        }
        let mut violated = false;
        for _ in 0..10 {
            for t in &design.targets {
                if !sim.peek(t.prop.ok).to_bool() {
                    violated = true;
                }
            }
            sim.step();
        }
        let has_bug = bundle.name == "desync_counters";
        assert_eq!(violated, has_bug, "{}: simulation-vs-expectation mismatch", bundle.name);
    }
}

#[test]
fn manual_pipeline_without_flows() {
    // A user wiring the pieces manually: parse RTL, compile an assertion,
    // prove it, ask the model for help, validate by hand.
    let rtl = r#"
module two_regs (input clk, rst, input [7:0] d, output logic [7:0] a, b);
  always_ff @(posedge clk) begin
    if (rst) begin a <= '0; b <= '0; end
    else begin a <= d; b <= d; end
  end
endmodule
"#;
    let module = genfv::hdl::parse_source(rtl).unwrap().remove(0);
    let mut ctx = Context::new();
    let mut ts = genfv::hdl::elaborate(&mut ctx, &module).unwrap();
    let assertion = parse_assertion("a == b").unwrap();
    let prop = PropertyCompiler::new(&mut ctx, &mut ts).compile(&assertion).unwrap();
    let prover = KInduction::new(&ctx, &ts, CheckConfig::default());
    let res = prover.prove(&Property::new("same", prop.ok), &[]);
    assert!(res.is_proven());

    // Prompt the model directly.
    let mut llm = SyntheticLlm::new(ModelProfile::GptFourO, 5);
    let completion = llm.complete(&Prompt::flow1("two identical registers", rtl, &[]));
    assert!(!parse_assertions(&completion.text).is_empty());
}

#[test]
fn sat_layer_reachable_through_facade() {
    use genfv::sat::{Lit, Solver};
    let mut s = Solver::new();
    let a = Lit::pos(s.new_var());
    let b = Lit::pos(s.new_var());
    s.add_clause([a, b]);
    s.add_clause([!a]);
    assert!(s.solve().is_sat());
    assert_eq!(s.value(b), Some(true));
}

#[test]
fn waveform_and_vcd_from_real_cex() {
    let bundle = genfv::designs::by_name("modn_counter").unwrap();
    let design = bundle.prepare().unwrap();
    // At k <= 3 the target still fails its step (it self-proves at k=6;
    // the lemma brings it to k=1 — see experiment E7).
    let config = CheckConfig { max_k: 3, ..Default::default() };
    let prover = KInduction::new(&design.ctx, &design.ts, config);
    let res = prover.prove(&design.targets[0].prop, &[]);
    let ProveResult::StepFailure { trace, .. } = res else {
        panic!("modn needs lemmas at small k: {res:?}");
    };
    let wave = render_waveform(&trace);
    assert!(wave.contains("cnt"));
    let vcd = genfv::mc::to_vcd(&trace);
    assert!(vcd.contains("$enddefinitions"));
}

#[test]
fn combined_flow_closes_everything_flow2_can() {
    // The paper used both flows together ("We utilized both flows"); the
    // combined runner must close every lemma-hungry corpus design.
    for bundle in genfv::designs::lemma_hungry_designs() {
        let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 77);
        let report =
            genfv::core::run_combined(bundle.prepare().unwrap(), &mut llm, &FlowConfig::default());
        assert!(
            report.all_proven(),
            "{}: combined flow must close\n{}",
            bundle.name,
            genfv::core::render_events(&report)
        );
    }
}
