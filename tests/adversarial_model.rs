//! Soundness torture test: a hostile "LLM" that only ever emits false,
//! phantom, subtly-corrupted, or syntactically broken assertions. No
//! matter what it says, the flows must never install a false lemma and
//! must never flip a verdict.
//!
//! This is the mechanised version of the paper's Section-VI warning about
//! hallucinations: the validation layer, not human review, is the safety
//! boundary here.

use genfv::genai::{Completion, LanguageModel, Prompt};
use genfv::prelude::*;
use std::time::Duration;

/// A model that returns handcrafted poison regardless of the prompt.
struct AdversarialModel {
    round: usize,
}

impl LanguageModel for AdversarialModel {
    fn name(&self) -> &str {
        "adversary"
    }

    fn complete(&mut self, _prompt: &Prompt) -> Completion {
        self.round += 1;
        // A rotating arsenal of bad ideas:
        let text = match self.round % 4 {
            0 => {
                // False invariants (violated from reset or shortly after).
                "property p1; count1 != count2; endproperty\n\
                 property p2; count1 < 8'd3; endproperty\n"
            }
            1 => {
                // Phantom signals and width abuse.
                "property p3; count1 == shadow_reg; endproperty\n\
                 property p4; not_a_signal[99] == 1'b1; endproperty\n"
            }
            2 => {
                // Syntactic garbage.
                "property p5; count1 === === count2; endproperty\n\
                 property p6; ((count1 endproperty\n"
            }
            _ => {
                // Subtle: true-looking but wrong by one, plus a vacuous
                // tautology (harmless but useless: it may prove!).
                "property p7; count1 + 8'd1 == count2; endproperty\n\
                 property p8; count1 == count1; endproperty\n"
            }
        };
        Completion {
            text: text.to_string(),
            prompt_tokens: 100,
            completion_tokens: 50,
            latency: Duration::from_millis(10),
        }
    }
}

const SYNC8: &str = r#"
module sync8 (input clk, rst, output logic [7:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 8'b0;
      count2 <= 8'b0;
    end else begin
      count1++;
      count2++;
    end
  end
endmodule
"#;

fn design() -> PreparedDesign {
    PreparedDesign::new(
        "sync8",
        SYNC8,
        "two lockstep counters",
        &[("equal".to_string(), "&count1 |-> &count2".to_string())],
    )
    .unwrap()
}

#[test]
fn adversary_cannot_install_false_lemmas() {
    let mut adversary = AdversarialModel { round: 0 };
    let config = FlowConfig { max_iterations: 8, ..Default::default() };
    let report = genfv::core::run_flow2(design(), &mut adversary, &config);

    // The target cannot close (the adversary never helps), but soundness
    // demands that every installed lemma is a true invariant. p8
    // (`count1 == count1`) is a tautology and may legitimately land.
    for lemma in &report.lemmas {
        let d = design();
        let assertion = parse_assertion(&lemma.text).expect("lemma text parses");
        let cand = genfv::core::Candidate {
            name: lemma.name.clone(),
            text: lemma.text.clone(),
            assertion,
        };
        let out = genfv::core::validate_candidate(&d, &[], &cand, &Default::default());
        assert!(
            matches!(out, genfv::core::ValidationOutcome::ProvenInductive { .. }),
            "adversarial lemma `{}` validated as {out:?}",
            lemma.text
        );
    }

    // The verdict must be "still unproven", not proven and not falsified
    // (the property is true!).
    match &report.targets[0].outcome {
        TargetOutcome::StillUnproven { .. } => {}
        TargetOutcome::Proven { lemmas_used, .. } => {
            // Only possible if a *true* lemma (the tautology cannot do it)
            // somehow closed the proof — that would be a soundness-
            // preserving surprise, but with this adversary it cannot
            // happen.
            panic!("adversary cannot produce the needed lemma (lemmas={lemmas_used})");
        }
        other => panic!("unexpected outcome {other:?}"),
    }

    // The junk was counted, not silently dropped.
    let m = &report.metrics;
    assert!(m.rejected_compile > 0, "phantom signals must be rejected: {m:?}");
    assert!(m.rejected_false > 0, "false invariants must be disproven: {m:?}");
    assert!(m.candidates_unparseable > 0, "syntax errors must be counted: {m:?}");
}

#[test]
fn adversary_cannot_mask_a_real_bug() {
    // On a genuinely buggy design the flow must report the bug even though
    // the adversary spams it with distractions.
    let buggy = r#"
module buggy (input clk, rst, output logic [7:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 8'b0;
      count2 <= 8'b0;
    end else begin
      count1 <= count1 + 8'd1;
      count2 <= count2 + 8'd3;
    end
  end
endmodule
"#;
    let design = PreparedDesign::new(
        "buggy",
        buggy,
        "counters that should match",
        &[("equal".to_string(), "count1 == count2".to_string())],
    )
    .unwrap();
    let mut adversary = AdversarialModel { round: 0 };
    let report = genfv::core::run_flow2(design, &mut adversary, &FlowConfig::default());
    assert!(
        matches!(report.targets[0].outcome, TargetOutcome::Falsified { .. }),
        "bug must surface: {:?}",
        report.targets[0].outcome
    );
    assert_eq!(report.metrics.llm_calls, 0, "bugs are found before any LLM call");
}

#[test]
fn silent_model_terminates_cleanly() {
    // A model that returns empty text: the flow must exhaust its
    // iterations and stop, not spin.
    struct Mute;
    impl LanguageModel for Mute {
        fn name(&self) -> &str {
            "mute"
        }
        fn complete(&mut self, _prompt: &Prompt) -> Completion {
            Completion {
                text: String::new(),
                prompt_tokens: 10,
                completion_tokens: 0,
                latency: Duration::ZERO,
            }
        }
    }
    let config = FlowConfig { max_iterations: 3, ..Default::default() };
    let report = genfv::core::run_flow2(design(), &mut Mute, &config);
    assert!(matches!(report.targets[0].outcome, TargetOutcome::StillUnproven { .. }));
    assert_eq!(report.metrics.llm_calls, 3, "one call per iteration, then stop");
    assert_eq!(report.metrics.lemmas_accepted, 0);
}
