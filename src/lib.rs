//! # genfv — Generative-AI-augmented induction-based formal verification
//!
//! A from-scratch Rust reproduction of *"Generative AI Augmented
//! Induction-based Formal Verification"* (Kumar & Gadde, IEEE SOCC 2024,
//! arXiv:2407.18965): k-induction hardware model checking in which an LLM
//! proposes helper assertions (lemmas) — upfront from the specification
//! and RTL (paper Fig. 1), and reactively from induction-step
//! counterexamples (paper Fig. 2).
//!
//! This facade crate re-exports the whole stack:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sat`] | `genfv-sat` | CDCL SAT solver (watched literals, VSIDS, 1UIP, Luby, LBD, assumptions) |
//! | [`ir`] | `genfv-ir` | bitvector values, hash-consed word-level IR, transition systems, simulator, bit-blaster |
//! | [`hdl`] | `genfv-hdl` | Verilog-subset frontend (lexer → parser → elaborator) |
//! | [`sva`] | `genfv-sva` | SVA-subset assertions: parser, monitor compiler, renderer |
//! | [`mc`] | `genfv-mc` | BMC + k-induction with lemma support, CEX traces, waveforms, VCD |
//! | [`genai`] | `genfv-genai` | prompts, `LanguageModel` trait, synthetic model profiles, invariant miner |
//! | [`core`] | `genfv-core` | the paper's flows: validation gauntlet, Houdini, Flow 1/Flow 2 |
//! | [`designs`] | `genfv-designs` | the evaluation corpus (counters + ECC + FIFO designs) |
//! | [`service`] | `genfv-service` | verification as a service: typed requests, streaming results, warm-session cache |
//! | [`obs`] | `genfv-obs` | tracing spans, metrics, Chrome-trace export, Prometheus exposition |
//!
//! ## The paper in five lines
//!
//! ```
//! use genfv::prelude::*;
//!
//! let design = genfv::designs::by_name("sync_counters_16").unwrap().prepare()?;
//! let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 42);
//! let report = run_flow2(design, &mut llm, &FlowConfig::default());
//! assert!(report.all_proven());
//! # Ok::<(), genfv::prelude::Error>(())
//! ```
//!
//! ## As a service
//!
//! ```
//! use genfv::prelude::*;
//!
//! let service = VerificationService::new(ServiceConfig::default().with_workers(1));
//! let bundle = genfv::designs::by_name("ring_counter").unwrap();
//! let handle = service.submit(
//!     JobRequest::new(DesignInput::Prepared(Box::new(bundle.prepare()?)))
//!         .with_mode(CorpusMode::Baseline),
//! )?;
//! let report = handle.wait()?;
//! assert!(report.flow.all_proven());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use genfv_core as core;
pub use genfv_designs as designs;
pub use genfv_genai as genai;
pub use genfv_hdl as hdl;
pub use genfv_ir as ir;
pub use genfv_mc as mc;
pub use genfv_obs as obs;
pub use genfv_sat as sat;
pub use genfv_service as service;
pub use genfv_sva as sva;

/// The items most applications need.
///
/// The quickstart in the repository README compiles against this module
/// alone — the `prelude_is_sufficient` doc-test below pins that, so any
/// new public type an example leans on must be added here.
///
/// ```
/// // prelude_is_sufficient: the full quickstart, prelude-only imports.
/// use genfv::prelude::*;
///
/// let design = PreparedDesign::new(
///     "toggle",
///     "module toggle (input clk, rst, output logic q);\n  always_ff @(posedge clk) begin\n    if (rst) q <= 1'b0;\n    else q <= ~q;\n  end\nendmodule\n",
///     "a toggle flip-flop",
///     &[("tauto".into(), "q == q".into())],
/// )?;
///
/// // Direct flow call...
/// let report = run_baseline(&design, &FlowConfig::default().with_unroll_mode(UnrollMode::Template));
/// assert!(report.all_proven());
///
/// // ...the corpus runner...
/// let config = CorpusConfig::default().with_workers(1).with_mode(CorpusMode::Baseline);
/// let reports = run_corpus(
///     &[design.clone()],
///     |i| SyntheticLlm::new(ModelProfile::GptFourTurbo, i as u64),
///     &config,
/// );
/// assert!(reports[0].all_proven());
///
/// // ...and the service front end, with typed errors throughout.
/// let service = VerificationService::new(
///     ServiceConfig::default().with_workers(1).with_engine(EngineMode::Incremental),
/// );
/// let handle = service
///     .submit(JobRequest::new(DesignInput::Prepared(Box::new(design))).with_mode(CorpusMode::Baseline))
///     .map_err(|r| r.error)?;
/// let report: JobReport = handle.wait()?;
/// assert!(report.flow.all_proven());
/// let stats: ServiceStats = service.stats();
/// assert_eq!(stats.completed, 1);
/// # Ok::<(), Error>(())
/// ```
pub mod prelude {
    pub use genfv_core::{
        run_baseline, run_flow1, run_flow2, CorpusConfig, CorpusMode, Error, FlowConfig,
        FlowReport, PreparedDesign, ServiceError, TargetOutcome,
    };
    pub use genfv_genai::{LanguageModel, ModelProfile, Prompt, SyntheticLlm};
    pub use genfv_ir::{BitVecValue, Context, Simulator, TransitionSystem};
    pub use genfv_mc::{
        bmc, render_final_bits, render_waveform, CheckConfig, EngineMode, KInduction, Property,
        ProveResult, Trace, UnrollMode,
    };
    pub use genfv_obs::{Obs, ObsConfig, ObsReport};
    pub use genfv_service::{
        run_corpus, DesignInput, JobEvent, JobHandle, JobId, JobReport, JobRequest, ServiceConfig,
        ServiceStats, SubmitRejected, VerificationService,
    };
    pub use genfv_sva::{parse_assertion, parse_assertions, PropertyCompiler};
}
