//! # genfv — Generative-AI-augmented induction-based formal verification
//!
//! A from-scratch Rust reproduction of *"Generative AI Augmented
//! Induction-based Formal Verification"* (Kumar & Gadde, IEEE SOCC 2024,
//! arXiv:2407.18965): k-induction hardware model checking in which an LLM
//! proposes helper assertions (lemmas) — upfront from the specification
//! and RTL (paper Fig. 1), and reactively from induction-step
//! counterexamples (paper Fig. 2).
//!
//! This facade crate re-exports the whole stack:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sat`] | `genfv-sat` | CDCL SAT solver (watched literals, VSIDS, 1UIP, Luby, LBD, assumptions) |
//! | [`ir`] | `genfv-ir` | bitvector values, hash-consed word-level IR, transition systems, simulator, bit-blaster |
//! | [`hdl`] | `genfv-hdl` | Verilog-subset frontend (lexer → parser → elaborator) |
//! | [`sva`] | `genfv-sva` | SVA-subset assertions: parser, monitor compiler, renderer |
//! | [`mc`] | `genfv-mc` | BMC + k-induction with lemma support, CEX traces, waveforms, VCD |
//! | [`genai`] | `genfv-genai` | prompts, `LanguageModel` trait, synthetic model profiles, invariant miner |
//! | [`core`] | `genfv-core` | the paper's flows: validation gauntlet, Houdini, Flow 1/Flow 2 |
//! | [`designs`] | `genfv-designs` | the evaluation corpus (counters + ECC + FIFO designs) |
//!
//! ## The paper in five lines
//!
//! ```
//! use genfv::prelude::*;
//!
//! let design = genfv::designs::by_name("sync_counters_16").unwrap().prepare()?;
//! let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 42);
//! let report = run_flow2(design, &mut llm, &FlowConfig::default());
//! assert!(report.all_proven());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use genfv_core as core;
pub use genfv_designs as designs;
pub use genfv_genai as genai;
pub use genfv_hdl as hdl;
pub use genfv_ir as ir;
pub use genfv_mc as mc;
pub use genfv_sat as sat;
pub use genfv_sva as sva;

/// The items most applications need.
pub mod prelude {
    pub use genfv_core::{
        run_baseline, run_flow1, run_flow2, FlowConfig, FlowReport, PreparedDesign, TargetOutcome,
    };
    pub use genfv_genai::{LanguageModel, ModelProfile, Prompt, SyntheticLlm};
    pub use genfv_ir::{BitVecValue, Context, Simulator, TransitionSystem};
    pub use genfv_mc::{
        bmc, render_final_bits, render_waveform, CheckConfig, KInduction, Property, ProveResult,
        Trace,
    };
    pub use genfv_sva::{parse_assertion, parse_assertions, PropertyCompiler};
}
