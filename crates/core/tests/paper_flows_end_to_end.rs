//! End-to-end tests of the paper's flows with the synthetic LLM in the
//! loop: prompt rendering, completion parsing, candidate validation, lemma
//! installation, and target proofs.

use genfv_core::{run_baseline, run_flow1, run_flow2, FlowConfig, PreparedDesign, TargetOutcome};
use genfv_genai::{ModelProfile, SyntheticLlm};

const SYNC_COUNTERS: &str = r#"
module sync_counters (input clk, rst, output logic [15:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 16'b0;
      count2 <= 16'b0;
    end else begin
      count1++;
      count2++;
    end
  end
endmodule
"#;

const SPEC: &str = "Two synchronized counters increment in lockstep from reset; \
their values are always equal, so whenever count1 is all ones count2 must be too.";

fn paper_design() -> PreparedDesign {
    PreparedDesign::new(
        "sync_counters",
        SYNC_COUNTERS,
        SPEC,
        &[("equal_count".to_string(), "&count1 |-> &count2".to_string())],
    )
    .unwrap()
}

#[test]
fn baseline_cannot_prove_the_paper_property() {
    let report = run_baseline(&paper_design(), &FlowConfig::default());
    assert!(!report.all_proven());
    match &report.targets[0].outcome {
        TargetOutcome::StillUnproven { k, trace } => {
            assert!(*k >= 1);
            let last = trace.last_step().unwrap();
            assert!(last.get("count1").unwrap().red_and());
            assert!(!last.get("count2").unwrap().red_and());
        }
        other => panic!("expected StillUnproven, got {other:?}"),
    }
}

#[test]
fn flow2_repairs_the_paper_property_with_gpt_profile() {
    let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 42);
    let report = run_flow2(paper_design(), &mut llm, &FlowConfig::default());
    assert!(report.all_proven(), "events:\n{}", genfv_core::render_events(&report));
    // The lockstep lemma must be among the accepted ones.
    assert!(
        report.lemmas.iter().any(|l| l.name.contains("eq")),
        "lemmas: {:?}",
        report.lemmas.iter().map(|l| &l.name).collect::<Vec<_>>()
    );
    assert!(report.metrics.llm_calls >= 1);
    assert!(report.metrics.lemmas_accepted >= 1);
    match &report.targets[0].outcome {
        TargetOutcome::Proven { k, lemmas_used } => {
            assert_eq!(*k, 1, "with the helper the proof closes at k=1");
            assert!(*lemmas_used >= 1);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn flow1_generates_upfront_lemmas() {
    let mut llm = SyntheticLlm::new(ModelProfile::GptFourO, 7);
    let report = run_flow1(paper_design(), &mut llm, &FlowConfig::default());
    assert!(report.all_proven(), "events:\n{}", genfv_core::render_events(&report));
    assert_eq!(report.metrics.llm_calls, 1, "flow 1 prompts once");
    assert!(report.metrics.lemmas_accepted >= 1);
}

#[test]
fn flow2_survives_weak_model_with_retries() {
    // The Llama profile hallucinates often; the flow must reject junk and
    // (typically) still converge within the iteration budget thanks to
    // re-prompting. With a fixed seed this is deterministic.
    let mut llm = SyntheticLlm::new(ModelProfile::LlamaThree, 3);
    let config = FlowConfig { max_iterations: 6, ..Default::default() };
    let report = run_flow2(paper_design(), &mut llm, &config);
    // Junk must have been filtered — soundness is unconditional.
    let m = &report.metrics;
    assert!(
        m.rejected_compile + m.rejected_false + m.rejected_not_inductive > 0
            || m.candidates_unparseable > 0
            || report.all_proven(),
        "weak model should produce some rejects: {m:?}"
    );
    // Whether or not it converged, no false lemma may be installed:
    // re-validate every accepted lemma independently.
    for lemma in &report.lemmas {
        let d = paper_design();
        let cand = genfv_core::Candidate {
            name: lemma.name.clone(),
            text: lemma.text.clone(),
            assertion: genfv_sva::parse_assertion(&lemma.text).unwrap_or_else(|_| {
                panic!("installed lemma must have parseable text: {}", lemma.text)
            }),
        };
        let out = genfv_core::validate_candidate(&d, &[], &cand, &Default::default());
        assert!(
            matches!(
                out,
                genfv_core::ValidationOutcome::ProvenInductive { .. }
                    | genfv_core::ValidationOutcome::NotInductiveAlone
            ),
            "lemma `{}` must not be false: {out:?}",
            lemma.text
        );
    }
}

#[test]
fn flow2_detects_real_bugs_instead_of_looping() {
    let buggy = r#"
module desync (input clk, rst, output logic [7:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 8'b0;
      count2 <= 8'b0;
    end else begin
      count1 <= count1 + 8'd1;
      count2 <= count2 + 8'd2;
    end
  end
endmodule
"#;
    let design = PreparedDesign::new(
        "desync",
        buggy,
        "two counters that should match (but do not)",
        &[("lockstep".to_string(), "count1 == count2".to_string())],
    )
    .unwrap();
    let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 1);
    let report = run_flow2(design, &mut llm, &FlowConfig::default());
    match &report.targets[0].outcome {
        TargetOutcome::Falsified { at } => assert!(*at >= 1),
        other => panic!("expected Falsified, got {other:?}"),
    }
    assert_eq!(report.metrics.llm_calls, 0, "real bugs never reach the LLM");
}

#[test]
fn flow_reports_render() {
    let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 42);
    let report = run_flow2(paper_design(), &mut llm, &FlowConfig::default());
    let rendered = genfv_core::render_report(&report);
    assert!(rendered.contains("sync_counters"));
    assert!(rendered.contains("gpt-4-turbo"));
    assert!(rendered.contains("PROVEN"));
    let events = genfv_core::render_events(&report);
    assert!(events.contains("[flow2]"));
}

#[test]
fn deterministic_given_seed() {
    let run = || {
        let mut llm = SyntheticLlm::new(ModelProfile::GeminiPro, 11);
        let r = run_flow2(paper_design(), &mut llm, &FlowConfig::default());
        (r.all_proven(), r.metrics.llm_calls, r.metrics.lemmas_accepted, r.events.len())
    };
    assert_eq!(run(), run());
}
