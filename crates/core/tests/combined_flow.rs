//! Tests for the combined flow (paper Section V: "We utilized both flows
//! to generate general helper assertions as well as for induction step
//! failure").

use genfv_core::{run_combined, FlowConfig, PreparedDesign, TargetOutcome};
use genfv_genai::{ModelProfile, SyntheticLlm};

const SYNC: &str = r#"
module sync_counters (input clk, rst, output logic [15:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 16'b0;
      count2 <= 16'b0;
    end else begin
      count1++;
      count2++;
    end
  end
endmodule
"#;

fn design() -> PreparedDesign {
    PreparedDesign::new(
        "sync_counters",
        SYNC,
        "Two synchronized counters in lockstep, always equal.",
        &[("equal_count".to_string(), "&count1 |-> &count2".to_string())],
    )
    .unwrap()
}

#[test]
fn combined_closes_with_single_upfront_prompt() {
    // With a strong model, Flow-1 lemmas already suffice: the Flow-2 phase
    // finds nothing left to repair, so exactly one LLM call happens.
    let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 42);
    let report = run_combined(design(), &mut llm, &FlowConfig::default());
    assert!(report.all_proven(), "{}", genfv_core::render_events(&report));
    assert_eq!(report.metrics.llm_calls, 1, "flow-1 lemmas sufficed");
    assert_eq!(report.metrics.iterations, 0, "no repair needed");
    assert!(report.metrics.lemmas_accepted >= 1);
}

#[test]
fn combined_falls_back_to_repair_loop() {
    // A mute flow-1 phase (empty completions early on) forces the repair
    // loop to do the work; emulate with a weak profile whose first
    // completion may be junk — use several seeds and require that the
    // *structure* holds: llm_calls >= 1 and either proven or the junk was
    // all rejected.
    for seed in [1u64, 2, 3] {
        let mut llm = SyntheticLlm::new(ModelProfile::GeminiPro, seed);
        let report = run_combined(design(), &mut llm, &FlowConfig::default());
        assert!(report.metrics.llm_calls >= 1);
        if !report.all_proven() {
            // Soundness: whatever was accepted must be consistent — the
            // target staying open is allowed for a weak model.
            assert!(matches!(report.targets[0].outcome, TargetOutcome::StillUnproven { .. }));
        }
    }
}
