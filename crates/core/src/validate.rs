//! Candidate-lemma validation.
//!
//! Nothing an LLM produces is trusted (paper Section VI: "one must be aware
//! of the limitations of using GenAI especially for artificial
//! hallucinations"). Every candidate assertion passes through this
//! gauntlet before it may strengthen a proof:
//!
//! 1. **parse** — already done by `genfv_sva::parse_assertions` upstream;
//! 2. **compile** — binds signals; phantom references die here;
//! 3. **BMC sanity** — a bounded search for a *reachable* violation;
//!    candidates that are simply false die here;
//! 4. **induction** — the candidate must prove (given already-accepted
//!    lemmas); candidates that are plausibly true but not inductive are
//!    parked for the Houdini pool rather than rejected.
//!
//! Validation works on clones of the design so rejected candidates leave
//! no residue (monitor registers) in the real transition system.

use crate::design::PreparedDesign;
use genfv_ir::{Context, ExprRef, TransitionSystem};
use genfv_mc::{
    bmc_rebuild, prove_rebuild, BmcResult, CheckConfig, EngineMode, ProofSession, Property,
    ProveResult,
};
use genfv_sva::{Assertion, PropertyCompiler};

/// Why (or how) a candidate survived or died.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationOutcome {
    /// The assertion references unknown signals or has type errors.
    CompileRejected(String),
    /// A reachable counterexample exists within the sanity bound: the
    /// candidate is false.
    FalseByBmc {
        /// Cycle of the violation.
        at: usize,
    },
    /// Proven invariant (inductive at depth `k` given prior lemmas).
    ProvenInductive {
        /// Depth at which the step case closed.
        k: usize,
    },
    /// Looks true (no bounded CEX) but does not prove by itself; eligible
    /// for joint (Houdini) induction.
    NotInductiveAlone,
    /// Resource budget expired; treated as rejection.
    Unknown(String),
}

impl ValidationOutcome {
    /// Whether the candidate was proven on its own.
    pub fn is_proven(&self) -> bool {
        matches!(self, ValidationOutcome::ProvenInductive { .. })
    }
}

/// A candidate assertion (text + parsed form).
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Generated property name (for reports).
    pub name: String,
    /// Raw boolean/temporal source text.
    pub text: String,
    /// Parsed assertion.
    pub assertion: Assertion,
}

/// A validated, accepted lemma.
#[derive(Clone, Debug)]
pub struct Lemma {
    /// Name for reports.
    pub name: String,
    /// Source text (as emitted by the model).
    pub text: String,
    /// Compiled 1-bit invariant over the *main* design context.
    pub expr: ExprRef,
}

/// Validation configuration.
#[derive(Clone, Debug)]
pub struct ValidateConfig {
    /// BMC sanity depth for false-candidate detection.
    pub bmc_depth: usize,
    /// Induction settings for candidate proofs.
    pub check: CheckConfig,
    /// Which engine architecture answers the queries. The default
    /// ([`EngineMode::Incremental`]) runs every check on persistent
    /// [`ProofSession`]s; [`EngineMode::RebuildPerQuery`] is the reference
    /// architecture kept for differential testing and benchmarking.
    pub engine: EngineMode,
}

impl Default for ValidateConfig {
    fn default() -> Self {
        ValidateConfig {
            bmc_depth: 10,
            check: CheckConfig { max_k: 4, ..Default::default() },
            engine: EngineMode::Incremental,
        }
    }
}

impl ValidateConfig {
    /// This configuration with BMC sanity depth `depth`.
    pub fn with_bmc_depth(mut self, depth: usize) -> Self {
        self.bmc_depth = depth;
        self
    }

    /// This configuration with induction settings `check`.
    pub fn with_check(mut self, check: CheckConfig) -> Self {
        self.check = check;
        self
    }

    /// This configuration answering queries with `engine`.
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }
}

/// Validates one candidate against a clone of the design.
///
/// `proven_lemmas` (expressions over the design context) are assumed
/// during both the BMC sanity check and the induction attempt — sound,
/// since they are already proven invariants.
///
/// The BMC sanity check and the induction attempt share one incremental
/// [`ProofSession`]: the design is bit-blasted once per candidate (it used to
/// be three times — BMC, base unroller, step unroller).
pub fn validate_candidate(
    design: &PreparedDesign,
    proven_lemmas: &[ExprRef],
    candidate: &Candidate,
    config: &ValidateConfig,
) -> ValidationOutcome {
    // Work on clones so rejected candidates leave no monitor residue.
    let mut ctx = design.ctx.clone();
    let mut ts = design.ts.clone();
    let compiled = {
        let mut pc = PropertyCompiler::new(&mut ctx, &mut ts);
        match pc.compile(&candidate.assertion) {
            Ok(c) => c,
            Err(e) => return ValidationOutcome::CompileRejected(e.to_string()),
        }
    };
    let prop = Property::new(candidate.name.clone(), compiled.ok);
    if config.engine == EngineMode::RebuildPerQuery {
        return check_with_rebuild(&ctx, &ts, &prop, proven_lemmas, config);
    }
    let mut session = ProofSession::new(&ctx, &ts, config.check.clone());
    session.add_lemmas(proven_lemmas);
    check_on_session(&mut session, &prop, config)
}

/// The validation gauntlet steps 3 and 4 (BMC sanity, then induction) on
/// an existing session whose design already contains the compiled
/// property. Shared by [`validate_candidate`] and the sharded parallel
/// validator.
pub(crate) fn check_on_session(
    session: &mut ProofSession<'_>,
    prop: &Property,
    config: &ValidateConfig,
) -> ValidationOutcome {
    // BMC sanity: reachable violation ⇒ the candidate is false. The
    // trace-free reachability form suffices (validation only reports the
    // cycle), and its UNSAT answers are cached by the session so the
    // induction attempt's base cases are already discharged.
    if let Some(at) = session.first_violation(prop.ok, config.bmc_depth) {
        return ValidationOutcome::FalseByBmc { at };
    }
    induction_on_session(session, prop, config)
}

/// Gauntlet step 4 alone — the induction attempt with prior lemmas
/// assumed, for callers that already ran the (batched) BMC sanity sweep.
pub(crate) fn induction_on_session(
    session: &mut ProofSession<'_>,
    prop: &Property,
    _config: &ValidateConfig,
) -> ValidationOutcome {
    match session.prove(prop) {
        ProveResult::Proven { k, .. } => ValidationOutcome::ProvenInductive { k },
        ProveResult::Falsified { at, .. } => ValidationOutcome::FalseByBmc { at },
        ProveResult::StepFailure { .. } => ValidationOutcome::NotInductiveAlone,
        ProveResult::Unknown { reason, .. } => ValidationOutcome::Unknown(reason),
    }
}

/// The same gauntlet on the rebuild-per-query reference engine (fresh
/// unrollers and solvers per check). Differential-testing twin of
/// [`check_on_session`].
pub(crate) fn check_with_rebuild(
    ctx: &Context,
    ts: &TransitionSystem,
    prop: &Property,
    proven_lemmas: &[ExprRef],
    config: &ValidateConfig,
) -> ValidationOutcome {
    match bmc_rebuild(ctx, ts, prop, proven_lemmas, config.bmc_depth, &config.check) {
        BmcResult::Falsified { at, .. } => return ValidationOutcome::FalseByBmc { at },
        BmcResult::Clean { .. } => {}
    }
    match prove_rebuild(ctx, ts, prop, proven_lemmas, &config.check) {
        ProveResult::Proven { k, .. } => ValidationOutcome::ProvenInductive { k },
        ProveResult::Falsified { at, .. } => ValidationOutcome::FalseByBmc { at },
        ProveResult::StepFailure { .. } => ValidationOutcome::NotInductiveAlone,
        ProveResult::Unknown { reason, .. } => ValidationOutcome::Unknown(reason),
    }
}

/// Compiles an accepted candidate onto the *main* design (mutating it) and
/// returns the lemma record.
///
/// # Errors
/// Returns the compiler error message if compilation unexpectedly fails
/// (it succeeded on the clone, so this indicates a bug).
pub fn install_lemma(design: &mut PreparedDesign, candidate: &Candidate) -> Result<Lemma, String> {
    let mut pc = PropertyCompiler::new(&mut design.ctx, &mut design.ts);
    let compiled = pc.compile(&candidate.assertion).map_err(|e| e.to_string())?;
    Ok(Lemma { name: candidate.name.clone(), text: candidate.text.clone(), expr: compiled.ok })
}

#[cfg(test)]
mod tests {
    use super::*;
    use genfv_sva::parse_assertion;

    const SYNC: &str = r#"
module sync_counters (input clk, rst, output logic [7:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 8'b0;
      count2 <= 8'b0;
    end else begin
      count1++;
      count2++;
    end
  end
endmodule
"#;

    fn design() -> PreparedDesign {
        PreparedDesign::new("sync_counters", SYNC, "lockstep counters", &[]).unwrap()
    }

    fn candidate(text: &str) -> Candidate {
        Candidate {
            name: "cand".to_string(),
            text: text.to_string(),
            assertion: parse_assertion(text).unwrap(),
        }
    }

    #[test]
    fn good_lemma_proves() {
        let d = design();
        let out = validate_candidate(&d, &[], &candidate("count1 == count2"), &Default::default());
        assert_eq!(out, ValidationOutcome::ProvenInductive { k: 1 });
    }

    #[test]
    fn phantom_signal_compile_rejected() {
        let d = design();
        let out =
            validate_candidate(&d, &[], &candidate("count1 == count2_reg"), &Default::default());
        assert!(matches!(out, ValidationOutcome::CompileRejected(_)), "{out:?}");
    }

    #[test]
    fn false_candidate_caught_by_bmc() {
        let d = design();
        // count1 != count2 is false from reset (both zero).
        let out = validate_candidate(&d, &[], &candidate("count1 != count2"), &Default::default());
        assert_eq!(out, ValidationOutcome::FalseByBmc { at: 0 });
    }

    #[test]
    fn false_later_candidate_caught_by_deeper_bmc() {
        let d = design();
        // count1 < 5 fails at cycle 5.
        let out = validate_candidate(&d, &[], &candidate("count1 < 8'd5"), &Default::default());
        assert_eq!(out, ValidationOutcome::FalseByBmc { at: 5 });
    }

    #[test]
    fn true_but_not_inductive_is_parked() {
        let d = design();
        // The paper's target: true, passes BMC, fails induction alone.
        let out =
            validate_candidate(&d, &[], &candidate("&count1 |-> &count2"), &Default::default());
        assert_eq!(out, ValidationOutcome::NotInductiveAlone);
    }

    #[test]
    fn lemma_assumption_upgrades_candidate() {
        let mut d = design();
        // Prove equality first, install it, then the implication proves.
        let eq = candidate("count1 == count2");
        assert!(validate_candidate(&d, &[], &eq, &Default::default()).is_proven());
        let lemma = install_lemma(&mut d, &eq).unwrap();
        let out = validate_candidate(
            &d,
            &[lemma.expr],
            &candidate("&count1 |-> &count2"),
            &Default::default(),
        );
        assert!(out.is_proven(), "{out:?}");
    }

    #[test]
    fn validation_leaves_no_residue() {
        let d = design();
        let states_before = d.ts.states().len();
        let _ = validate_candidate(
            &d,
            &[],
            &candidate("$past(count1) <= count1 || count1 == 8'd0"),
            &Default::default(),
        );
        assert_eq!(d.ts.states().len(), states_before, "clone-based validation");
    }
}
