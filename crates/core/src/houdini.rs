//! Houdini-style joint inductive filtering.
//!
//! Individually non-inductive candidates can still be *mutually* inductive
//! (each one's step case needs the others as hypotheses). The classic
//! Houdini algorithm finds the unique maximal inductive subset of a
//! candidate conjunction: repeatedly drop every candidate falsified in
//! some step-case model until the remainder is inductive. Combined with a
//! base-case (BMC) check per candidate, every survivor is a proven
//! invariant and may be used as a lemma.

use crate::design::PreparedDesign;
use crate::validate::{Candidate, ValidateConfig, ValidationOutcome};
use genfv_ir::ExprRef;
use genfv_mc::{bmc, BmcResult, CheckConfig, Property, Unroller};
use genfv_sat::SolveResult;
use genfv_sva::PropertyCompiler;

/// Result of a Houdini run.
#[derive(Clone, Debug, Default)]
pub struct HoudiniResult {
    /// Indices (into the input slice) of candidates in the maximal
    /// mutually-inductive subset.
    pub accepted: Vec<usize>,
    /// Number of strengthening iterations performed.
    pub iterations: usize,
    /// Solver queries issued.
    pub solver_calls: usize,
}

/// Runs Houdini over `candidates` on a clone of the design.
///
/// `proven_lemmas` are assumed throughout. Candidates that fail to compile
/// or fail the base case are dropped before the fixpoint loop. The
/// returned indices refer to the input slice.
pub fn houdini(
    design: &PreparedDesign,
    proven_lemmas: &[ExprRef],
    candidates: &[Candidate],
    config: &ValidateConfig,
) -> HoudiniResult {
    let mut result = HoudiniResult::default();
    if candidates.is_empty() {
        return result;
    }

    // Compile all candidates on one clone (they may share monitor state).
    let mut ctx = design.ctx.clone();
    let mut ts = design.ts.clone();
    let mut exprs: Vec<Option<ExprRef>> = Vec::with_capacity(candidates.len());
    {
        let mut pc = PropertyCompiler::new(&mut ctx, &mut ts);
        for cand in candidates {
            exprs.push(pc.compile(&cand.assertion).ok().map(|c| c.ok));
        }
    }

    // Base case: each candidate must have no reachable violation within
    // the sanity bound.
    let mut alive: Vec<usize> = Vec::new();
    for (i, expr) in exprs.iter().enumerate() {
        let Some(e) = expr else { continue };
        let prop = Property::new(candidates[i].name.clone(), *e);
        match bmc(&ctx, &ts, &prop, proven_lemmas, config.bmc_depth, &config.check) {
            BmcResult::Clean { .. } => alive.push(i),
            BmcResult::Falsified { .. } => {}
        }
        result.solver_calls += 1;
    }

    // Step fixpoint at k = 1: assume all alive at frame 0 (plus lemmas at
    // both frames), require each alive at frame 1.
    let step_cfg = CheckConfig { ..config.check.clone() };
    loop {
        result.iterations += 1;
        if alive.is_empty() {
            break;
        }
        let mut unroller = Unroller::new(&ctx, &ts, false);
        unroller.ensure_frame(1);
        for &l in proven_lemmas {
            let l0 = unroller.lit_at(0, l);
            unroller.blaster_mut().assert_lit(l0);
            let l1 = unroller.lit_at(1, l);
            unroller.blaster_mut().assert_lit(l1);
        }
        let lits0: Vec<_> = alive
            .iter()
            .map(|&i| unroller.lit_at(0, exprs[i].expect("alive implies compiled")))
            .collect();
        let lits1: Vec<_> = alive
            .iter()
            .map(|&i| unroller.lit_at(1, exprs[i].expect("alive implies compiled")))
            .collect();

        let mut dropped_any = false;
        let mut still_alive = alive.clone();
        for (pos, &_cand_idx) in alive.iter().enumerate() {
            // Skip candidates already dropped in this sweep.
            if !still_alive.contains(&alive[pos]) {
                continue;
            }
            let mut assumptions = Vec::with_capacity(lits0.len() + 1);
            for (p, &l0) in lits0.iter().enumerate() {
                if still_alive.contains(&alive[p]) {
                    assumptions.push(l0);
                }
            }
            assumptions.push(!lits1[pos]);
            if let Some(b) = step_cfg.conflict_budget {
                unroller.blaster_mut().solver_mut().set_conflict_budget(b);
            }
            result.solver_calls += 1;
            match unroller.blaster_mut().solve_with_assumptions(&assumptions) {
                SolveResult::Sat => {
                    // Drop every candidate falsified at frame 1 in this
                    // model (standard Houdini acceleration).
                    let model_false: Vec<usize> = alive
                        .iter()
                        .enumerate()
                        .filter(|&(p, _)| {
                            still_alive.contains(&alive[p])
                                && unroller.blaster().solver().value(lits1[p]) == Some(false)
                        })
                        .map(|(_, &i)| i)
                        .collect();
                    debug_assert!(!model_false.is_empty());
                    still_alive.retain(|i| !model_false.contains(i));
                    dropped_any = true;
                }
                SolveResult::Unsat => {}
                SolveResult::Unknown => {
                    // Budget pressure: drop conservatively.
                    still_alive.retain(|&i| i != alive[pos]);
                    dropped_any = true;
                }
            }
        }
        alive = still_alive;
        if !dropped_any {
            break;
        }
    }

    result.accepted = alive;
    result
}

/// Convenience: validates a batch with individual induction first, then
/// Houdini over the stragglers. Returns `(accepted_indices, outcomes)`.
pub fn validate_batch(
    design: &PreparedDesign,
    proven_lemmas: &[ExprRef],
    candidates: &[Candidate],
    config: &ValidateConfig,
    use_houdini: bool,
) -> (Vec<usize>, Vec<ValidationOutcome>) {
    let mut outcomes = Vec::with_capacity(candidates.len());
    let mut accepted = Vec::new();
    let mut parked: Vec<usize> = Vec::new();
    for (i, cand) in candidates.iter().enumerate() {
        let out = crate::validate::validate_candidate(design, proven_lemmas, cand, config);
        if out.is_proven() {
            accepted.push(i);
        } else if out == ValidationOutcome::NotInductiveAlone {
            parked.push(i);
        }
        outcomes.push(out);
    }
    if use_houdini && !parked.is_empty() {
        // Pool the stragglers together with the individually-proven
        // candidates: mutual induction may need them as hypotheses.
        // Individually-inductive members always survive Houdini, so this
        // cannot lose accepted candidates.
        let pool_indices: Vec<usize> =
            accepted.iter().chain(parked.iter()).copied().collect();
        let pool: Vec<Candidate> =
            pool_indices.iter().map(|&i| candidates[i].clone()).collect();
        let hres = houdini(design, proven_lemmas, &pool, config);
        for &pool_idx in &hres.accepted {
            let orig = pool_indices[pool_idx];
            if !accepted.contains(&orig) {
                accepted.push(orig);
                outcomes[orig] = ValidationOutcome::ProvenInductive { k: 1 };
            }
        }
    }
    accepted.sort_unstable();
    (accepted, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genfv_sva::parse_assertion;

    fn cand(text: &str) -> Candidate {
        Candidate {
            name: format!("c_{}", text.len()),
            text: text.to_string(),
            assertion: parse_assertion(text).unwrap(),
        }
    }

    /// Two counters where neither bound is inductive alone but the pair is:
    /// a and b increment in lockstep mod 4 using each other's values.
    fn mutually_inductive_design() -> PreparedDesign {
        let rtl = r#"
module pair (input clk, rst, output logic [3:0] a, b);
  always_ff @(posedge clk) begin
    if (rst) begin a <= 4'd0; b <= 4'd0; end
    else begin a <= b + 4'd1; b <= a + 4'd1; end
  end
endmodule
"#;
        PreparedDesign::new("pair", rtl, "mutual counters", &[]).unwrap()
    }

    #[test]
    fn houdini_keeps_mutually_inductive_pair() {
        let d = mutually_inductive_design();
        // a == b is inductive alone here; craft a genuinely mutual pair:
        // p1: a == b, p2: &a |-> &b. p2 needs p1.
        let cands = vec![cand("a == b"), cand("&a |-> &b")];
        let res = houdini(&d, &[], &cands, &Default::default());
        assert_eq!(res.accepted, vec![0, 1], "both survive jointly");
    }

    #[test]
    fn houdini_drops_false_members() {
        let d = mutually_inductive_design();
        let cands = vec![
            cand("a == b"),
            cand("a != b"),  // false from reset: base case kills it
            cand("a < 4'd3"), // false eventually
        ];
        let res = houdini(&d, &[], &cands, &Default::default());
        assert_eq!(res.accepted, vec![0]);
    }

    #[test]
    fn houdini_drops_non_inductive_junk_but_keeps_core() {
        let d = mutually_inductive_design();
        let cands = vec![
            cand("&a |-> &b"), // needs a==b, which is absent: dropped
        ];
        let res = houdini(&d, &[], &cands, &Default::default());
        assert!(res.accepted.is_empty(), "alone it is not inductive: {res:?}");
    }

    #[test]
    fn validate_batch_combines_individual_and_houdini() {
        let d = mutually_inductive_design();
        let cands = vec![
            cand("a == b"),          // proves alone
            cand("&a |-> &b"),       // proves only via Houdini with #0
            cand("a == b_typo_sig"), // compile reject
            cand("a != b"),          // false
        ];
        let (accepted, outcomes) = validate_batch(&d, &[], &cands, &Default::default(), true);
        assert_eq!(accepted, vec![0, 1]);
        assert!(matches!(outcomes[2], ValidationOutcome::CompileRejected(_)));
        assert!(matches!(outcomes[3], ValidationOutcome::FalseByBmc { .. }));
    }

    #[test]
    fn validate_batch_without_houdini_parks_stragglers() {
        let d = mutually_inductive_design();
        let cands = vec![cand("a == b"), cand("&a |-> &b")];
        let (accepted, outcomes) = validate_batch(&d, &[], &cands, &Default::default(), false);
        assert_eq!(accepted, vec![0]);
        assert_eq!(outcomes[1], ValidationOutcome::NotInductiveAlone);
    }
}
