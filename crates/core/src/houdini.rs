//! Houdini-style joint inductive filtering.
//!
//! Individually non-inductive candidates can still be *mutually* inductive
//! (each one's step case needs the others as hypotheses). The classic
//! Houdini algorithm finds the unique maximal inductive subset of a
//! candidate conjunction: repeatedly drop every candidate falsified in
//! some step-case model until the remainder is inductive. Combined with a
//! base-case (BMC) check per candidate, every survivor is a proven
//! invariant and may be used as a lemma.
//!
//! ## Incremental architecture
//!
//! The whole run — every per-candidate base case and every strengthening
//! iteration — executes on **one** [`genfv_mc::ProofSession`], i.e. one
//! bit-blast and one persistent solver:
//!
//! * each candidate's frame-0 hypothesis hangs off a *selector literal*
//!   (`sel → cand@0`); the iteration assumes the selectors of the alive
//!   set, and dropping a falsified candidate just retires its selector —
//!   no re-bit-blast, and the solver keeps everything it has learnt;
//! * each iteration checks **all** frame-1 obligations in a single query
//!   through a violation-witness literal (`w → ⋁ ¬candᵢ@1`): UNSAT means
//!   the alive set is inductive (fixpoint, and the assumption core names
//!   the hypotheses that carried the proof); SAT yields a model whose
//!   false obligations are exactly the candidates to drop;
//! * base cases ([`genfv_mc::ProofSession::any_violation`], frame-by-frame with
//!   early exit over the same session) are **deferred** until the step
//!   fixpoint stabilises and run only for its survivors; a base drop
//!   re-enters the fixpoint. The classic base-first formulation and this
//!   order converge to the same set — the greatest jointly-inductive
//!   subset of the base-clean candidates — but the deferred order keeps
//!   the solver at two frames for the bulk of the sweeps and never pays
//!   deep unrolling for candidates the fixpoint kills anyway.
//!
//! Solver-reuse counters for the run are returned in
//! [`HoudiniResult::session`].

use crate::design::PreparedDesign;
use crate::validate::{Candidate, ValidateConfig, ValidationOutcome};
use genfv_ir::ExprRef;
use genfv_mc::{
    bmc_rebuild, Accumulate, BmcResult, EngineMode, ProofSession, Property, SessionStats, Unroller,
};
use genfv_sat::SolveResult;
use genfv_sva::PropertyCompiler;

/// Result of a Houdini run.
#[derive(Clone, Debug, Default)]
pub struct HoudiniResult {
    /// Indices (into the input slice) of candidates in the maximal
    /// mutually-inductive subset.
    pub accepted: Vec<usize>,
    /// Number of strengthening iterations performed.
    pub iterations: usize,
    /// Solver queries issued (assumption-based, on the one session).
    pub solver_calls: usize,
    /// Solver-reuse statistics: `session.bitblasts` is 1 for any run with
    /// candidates, however many iterations the fixpoint takes.
    pub session: SessionStats,
    /// Indices (into the input slice) of the hypotheses whose selectors
    /// appeared in the assumption core of the final fixpoint-establishing
    /// UNSAT sweep — the candidates that actually *carried* the joint
    /// induction proof. A subset of `accepted`; empty when the pool died
    /// entirely or the run used [`EngineMode::RebuildPerQuery`] (the
    /// reference engine does not track cores).
    pub carried: Vec<usize>,
}

/// Runs Houdini over `candidates` on a clone of the design.
///
/// `proven_lemmas` are assumed throughout. Candidates that fail to compile
/// or fail the base case are dropped before the fixpoint loop. The
/// returned indices refer to the input slice.
pub fn houdini(
    design: &PreparedDesign,
    proven_lemmas: &[ExprRef],
    candidates: &[Candidate],
    config: &ValidateConfig,
) -> HoudiniResult {
    let mut result = HoudiniResult::default();
    if candidates.is_empty() {
        return result;
    }
    if config.engine == EngineMode::RebuildPerQuery {
        return houdini_rebuild(design, proven_lemmas, candidates, config);
    }

    // Compile all candidates on one clone (they may share monitor state).
    // Compilation must finish before the session exists so monitor state
    // unrolls with the frames.
    let mut ctx = design.ctx.clone();
    let mut ts = design.ts.clone();
    let mut exprs: Vec<Option<ExprRef>> = Vec::with_capacity(candidates.len());
    {
        let mut pc = PropertyCompiler::new(&mut ctx, &mut ts);
        for cand in candidates {
            exprs.push(pc.compile(&cand.assertion).ok().map(|c| c.ok));
        }
    }

    // The one bit-blast of this run.
    let mut session = ProofSession::new(&ctx, &ts, config.check.clone());
    session.add_lemmas(proven_lemmas);

    // Work order: the 2-frame step fixpoint runs *first* over every
    // compiled candidate, and the (deeper-unrolling) base cases are only
    // checked for fixpoint survivors; any base drop re-enters the
    // fixpoint. This converges to the classic base-first answer — the
    // final set is the greatest jointly-inductive subset of the base-clean
    // candidates, every intermediate fixpoint contains it, and base
    // verdicts are per-candidate — while keeping the solver small during
    // the bulk of the sweeps and skipping bounded-reachability work for
    // candidates that die in the fixpoint anyway.
    let mut alive: Vec<usize> = (0..candidates.len()).filter(|&i| exprs[i].is_some()).collect();

    // Selector-guarded hypotheses at frame 0, batched obligations at
    // frame 1.
    let mut selectors: Vec<Option<genfv_sat::Lit>> = vec![None; candidates.len()];
    let mut obligations: Vec<Option<genfv_sat::Lit>> = vec![None; candidates.len()];
    for &i in &alive {
        let e = exprs[i].expect("alive implies compiled");
        let sel = session.new_selector();
        session.guard_fact(sel, 0, e);
        selectors[i] = Some(sel);
        obligations[i] = Some(session.literal(1, e));
    }
    let mut base_checked: Vec<bool> = vec![false; candidates.len()];

    'outer: loop {
        result.iterations += 1;
        if alive.is_empty() {
            break;
        }
        let batch: Vec<(usize, ExprRef)> =
            alive.iter().map(|&i| (1, exprs[i].expect("alive"))).collect();
        let witness = session.new_violation_witness(&batch);
        let mut assumptions: Vec<genfv_sat::Lit> =
            alive.iter().map(|&i| selectors[i].expect("alive has selector")).collect();
        assumptions.push(witness);
        let res = session.solve_under(false, 1, &assumptions);
        // Each witness is for one iteration only; retire it so later
        // models are not forced to satisfy a stale disjunction.
        session.retire_selector(witness);
        match res {
            SolveResult::Unsat => {
                // Fixpoint w.r.t. the step case: every obligation holds
                // under the alive hypotheses. The assumption core names
                // the hypotheses that actually carried the proof — record
                // them (the final fixpoint's core is what gets reported).
                let core = session.last_core().to_vec();
                result.carried = alive
                    .iter()
                    .copied()
                    .filter(|&i| selectors[i].is_some_and(|s| core.contains(&s)))
                    .collect();
                // Now pay for the deferred base cases; any drop re-enters
                // the fixpoint.
                if !base_check_survivors(
                    &mut session,
                    &mut alive,
                    &mut selectors,
                    &mut base_checked,
                    &exprs,
                    config.bmc_depth,
                ) {
                    break 'outer;
                }
            }
            SolveResult::Sat => {
                // Drop every candidate falsified at frame 1 in this model
                // (standard Houdini acceleration) by flipping selectors.
                let model_false: Vec<usize> = alive
                    .iter()
                    .copied()
                    .filter(|&i| {
                        session.value(obligations[i].expect("alive has obligation")) == Some(false)
                    })
                    .collect();
                debug_assert!(!model_false.is_empty());
                for &i in &model_false {
                    session.retire_selector(selectors[i].take().expect("alive"));
                }
                alive.retain(|i| !model_false.contains(i));
            }
            SolveResult::Unknown => {
                // Budget pressure: fall back to per-candidate obligations
                // for this iteration, dropping any that stay unknown —
                // the rebuild loop's conservative behaviour.
                let mut dropped_any = false;
                let snapshot = alive.clone();
                for &i in &snapshot {
                    if !alive.contains(&i) {
                        continue;
                    }
                    let mut asm: Vec<genfv_sat::Lit> =
                        alive.iter().map(|&j| selectors[j].expect("alive has selector")).collect();
                    asm.push(!obligations[i].expect("alive has obligation"));
                    match session.solve_under(false, 1, &asm) {
                        SolveResult::Unsat => {}
                        SolveResult::Sat => {
                            let model_false: Vec<usize> = alive
                                .iter()
                                .copied()
                                .filter(|&j| {
                                    session.value(obligations[j].expect("alive")) == Some(false)
                                })
                                .collect();
                            for &j in &model_false {
                                session.retire_selector(selectors[j].take().expect("alive"));
                            }
                            alive.retain(|j| !model_false.contains(j));
                            dropped_any = true;
                        }
                        SolveResult::Unknown => {
                            session.retire_selector(selectors[i].take().expect("alive"));
                            alive.retain(|&j| j != i);
                            dropped_any = true;
                        }
                    }
                }
                if !dropped_any
                    && !base_check_survivors(
                        &mut session,
                        &mut alive,
                        &mut selectors,
                        &mut base_checked,
                        &exprs,
                        config.bmc_depth,
                    )
                {
                    // The fixpoint closed through per-candidate queries,
                    // not a recorded batched sweep: any earlier core was
                    // computed under a since-shrunk hypothesis set.
                    result.carried.clear();
                    break 'outer;
                }
            }
        }
    }

    result.accepted = alive;
    // A base-case drop after the last recorded fixpoint can invalidate
    // core members; keep `carried` a subset of the survivors.
    result.carried.retain(|i| result.accepted.contains(i));
    result.solver_calls = session.stats().solver_calls as usize;
    result.session = *session.stats();
    result
}

/// The pre-incremental Houdini loop, preserved as the rebuild-per-query
/// reference: a fresh [`Unroller`] (full re-bit-blast, brand-new solver)
/// per strengthening iteration, a standalone BMC run per candidate base
/// case, lemmas asserted rather than activated, and one solver query per
/// alive candidate per sweep. Houdini's fixpoint (the unique maximal
/// mutually-inductive subset) is canonical, so this must accept exactly
/// the sets the incremental engine accepts — the corpus differential test
/// pins that.
fn houdini_rebuild(
    design: &PreparedDesign,
    proven_lemmas: &[ExprRef],
    candidates: &[Candidate],
    config: &ValidateConfig,
) -> HoudiniResult {
    let mut result = HoudiniResult::default();

    // Compile all candidates on one clone (they may share monitor state).
    let mut ctx = design.ctx.clone();
    let mut ts = design.ts.clone();
    let mut exprs: Vec<Option<ExprRef>> = Vec::with_capacity(candidates.len());
    {
        let mut pc = PropertyCompiler::new(&mut ctx, &mut ts);
        for cand in candidates {
            exprs.push(pc.compile(&cand.assertion).ok().map(|c| c.ok));
        }
    }

    // Base case: a full BMC run (fresh unroller) per candidate.
    let mut alive: Vec<usize> = Vec::new();
    for (i, expr) in exprs.iter().enumerate() {
        let Some(e) = expr else { continue };
        let prop = Property::new(candidates[i].name.clone(), *e);
        result.solver_calls += 1;
        match bmc_rebuild(&ctx, &ts, &prop, proven_lemmas, config.bmc_depth, &config.check) {
            BmcResult::Clean { .. } => alive.push(i),
            BmcResult::Falsified { .. } => {}
        }
    }

    // Step fixpoint at k = 1 with a fresh unroller per iteration.
    loop {
        result.iterations += 1;
        if alive.is_empty() {
            break;
        }
        let mut unroller = Unroller::new(&ctx, &ts, false);
        unroller.ensure_frame(1);
        for &l in proven_lemmas {
            let l0 = unroller.lit_at(0, l);
            unroller.blaster_mut().assert_lit(l0);
            let l1 = unroller.lit_at(1, l);
            unroller.blaster_mut().assert_lit(l1);
        }
        let lits0: Vec<_> = alive
            .iter()
            .map(|&i| unroller.lit_at(0, exprs[i].expect("alive implies compiled")))
            .collect();
        let lits1: Vec<_> = alive
            .iter()
            .map(|&i| unroller.lit_at(1, exprs[i].expect("alive implies compiled")))
            .collect();

        let mut dropped_any = false;
        let mut still_alive = alive.clone();
        for (pos, _) in alive.iter().enumerate() {
            if !still_alive.contains(&alive[pos]) {
                continue;
            }
            let mut assumptions = Vec::with_capacity(lits0.len() + 1);
            for (p, &l0) in lits0.iter().enumerate() {
                if still_alive.contains(&alive[p]) {
                    assumptions.push(l0);
                }
            }
            assumptions.push(!lits1[pos]);
            if let Some(b) = config.check.conflict_budget {
                unroller.blaster_mut().solver_mut().set_conflict_budget(b);
            }
            result.solver_calls += 1;
            match unroller.blaster_mut().solve_with_assumptions(&assumptions) {
                SolveResult::Sat => {
                    let model_false: Vec<usize> = alive
                        .iter()
                        .enumerate()
                        .filter(|&(p, _)| {
                            still_alive.contains(&alive[p])
                                && unroller.blaster().solver().value(lits1[p]) == Some(false)
                        })
                        .map(|(_, &i)| i)
                        .collect();
                    still_alive.retain(|i| !model_false.contains(i));
                    dropped_any = true;
                }
                SolveResult::Unsat => {}
                SolveResult::Unknown => {
                    still_alive.retain(|&i| i != alive[pos]);
                    dropped_any = true;
                }
            }
        }
        alive = still_alive;
        if !dropped_any {
            break;
        }
    }

    result.accepted = alive;
    result
}

/// Runs the bounded-reachability base case for every alive candidate that
/// has not had one yet ([`ProofSession::any_violation`], frame-by-frame
/// with early exit, all on the session's persistent base solver),
/// retiring and removing the violated ones. Returns whether anything was
/// dropped (in which case the step fixpoint must re-run without the
/// dropped hypotheses).
fn base_check_survivors(
    session: &mut ProofSession<'_>,
    alive: &mut Vec<usize>,
    selectors: &mut [Option<genfv_sat::Lit>],
    base_checked: &mut [bool],
    exprs: &[Option<ExprRef>],
    depth: usize,
) -> bool {
    let mut dropped = false;
    let snapshot = alive.clone();
    for &i in &snapshot {
        if base_checked[i] {
            continue;
        }
        base_checked[i] = true;
        let e = exprs[i].expect("alive implies compiled");
        if session.any_violation(e, depth) {
            session.retire_selector(selectors[i].take().expect("alive has selector"));
            alive.retain(|&j| j != i);
            dropped = true;
        }
    }
    dropped
}

/// Convenience: validates a batch with individual induction first, then
/// Houdini over the stragglers. Returns `(accepted_indices, outcomes)`.
pub fn validate_batch(
    design: &PreparedDesign,
    proven_lemmas: &[ExprRef],
    candidates: &[Candidate],
    config: &ValidateConfig,
    use_houdini: bool,
) -> (Vec<usize>, Vec<ValidationOutcome>) {
    let (accepted, outcomes, _) =
        validate_batch_with_stats(design, proven_lemmas, candidates, config, use_houdini);
    (accepted, outcomes)
}

/// [`validate_batch`] plus the aggregated solver-reuse statistics of every
/// session involved (the sharded individual-validation sessions and the
/// Houdini session).
///
/// The individual phase runs on [`crate::parallel::validate_parallel_with_stats`]:
/// one design clone, one bit-blast, and one persistent solver **per worker
/// shard** instead of per candidate and per check.
pub fn validate_batch_with_stats(
    design: &PreparedDesign,
    proven_lemmas: &[ExprRef],
    candidates: &[Candidate],
    config: &ValidateConfig,
    use_houdini: bool,
) -> (Vec<usize>, Vec<ValidationOutcome>, SessionStats) {
    let (outcomes, mut stats) =
        crate::parallel::validate_parallel_with_stats(design, proven_lemmas, candidates, config);
    let mut accepted = Vec::new();
    let mut parked: Vec<usize> = Vec::new();
    for (i, out) in outcomes.iter().enumerate() {
        if out.is_proven() {
            accepted.push(i);
        } else if *out == ValidationOutcome::NotInductiveAlone {
            parked.push(i);
        }
    }
    let mut outcomes = outcomes;
    if use_houdini && !parked.is_empty() {
        // Pool the stragglers together with the individually-proven
        // candidates: mutual induction may need them as hypotheses.
        // Individually-inductive members always survive Houdini, so this
        // cannot lose accepted candidates.
        let pool_indices: Vec<usize> = accepted.iter().chain(parked.iter()).copied().collect();
        let pool: Vec<Candidate> = pool_indices.iter().map(|&i| candidates[i].clone()).collect();
        let hres = houdini(design, proven_lemmas, &pool, config);
        stats.absorb(&hres.session);
        for &pool_idx in &hres.accepted {
            let orig = pool_indices[pool_idx];
            if !accepted.contains(&orig) {
                accepted.push(orig);
                outcomes[orig] = ValidationOutcome::ProvenInductive { k: 1 };
            }
        }
    }
    accepted.sort_unstable();
    (accepted, outcomes, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genfv_sva::parse_assertion;

    fn cand(text: &str) -> Candidate {
        Candidate {
            name: format!("c_{}", text.len()),
            text: text.to_string(),
            assertion: parse_assertion(text).unwrap(),
        }
    }

    /// Two counters where neither bound is inductive alone but the pair is:
    /// a and b increment in lockstep mod 4 using each other's values.
    fn mutually_inductive_design() -> PreparedDesign {
        let rtl = r#"
module pair (input clk, rst, output logic [3:0] a, b);
  always_ff @(posedge clk) begin
    if (rst) begin a <= 4'd0; b <= 4'd0; end
    else begin a <= b + 4'd1; b <= a + 4'd1; end
  end
endmodule
"#;
        PreparedDesign::new("pair", rtl, "mutual counters", &[]).unwrap()
    }

    #[test]
    fn houdini_keeps_mutually_inductive_pair() {
        let d = mutually_inductive_design();
        // a == b is inductive alone here; craft a genuinely mutual pair:
        // p1: a == b, p2: &a |-> &b. p2 needs p1.
        let cands = vec![cand("a == b"), cand("&a |-> &b")];
        let res = houdini(&d, &[], &cands, &Default::default());
        assert_eq!(res.accepted, vec![0, 1], "both survive jointly");
    }

    #[test]
    fn houdini_drops_false_members() {
        let d = mutually_inductive_design();
        let cands = vec![
            cand("a == b"),
            cand("a != b"),   // false from reset: base case kills it
            cand("a < 4'd3"), // false eventually
        ];
        let res = houdini(&d, &[], &cands, &Default::default());
        assert_eq!(res.accepted, vec![0]);
    }

    #[test]
    fn houdini_drops_non_inductive_junk_but_keeps_core() {
        let d = mutually_inductive_design();
        let cands = vec![
            cand("&a |-> &b"), // needs a==b, which is absent: dropped
        ];
        let res = houdini(&d, &[], &cands, &Default::default());
        assert!(res.accepted.is_empty(), "alone it is not inductive: {res:?}");
    }

    #[test]
    fn validate_batch_combines_individual_and_houdini() {
        let d = mutually_inductive_design();
        let cands = vec![
            cand("a == b"),          // proves alone
            cand("&a |-> &b"),       // proves only via Houdini with #0
            cand("a == b_typo_sig"), // compile reject
            cand("a != b"),          // false
        ];
        let (accepted, outcomes) = validate_batch(&d, &[], &cands, &Default::default(), true);
        assert_eq!(accepted, vec![0, 1]);
        assert!(matches!(outcomes[2], ValidationOutcome::CompileRejected(_)));
        assert!(matches!(outcomes[3], ValidationOutcome::FalseByBmc { .. }));
    }

    #[test]
    fn incremental_houdini_bitblasts_once() {
        let d = mutually_inductive_design();
        // A mix that exercises the base case, a strengthening drop, and
        // the UNSAT fixpoint — every phase on the one session.
        let cands = vec![cand("a == b"), cand("&a |-> &b"), cand("a < 4'd3")];
        let res = houdini(&d, &[], &cands, &Default::default());
        let s = res.session;
        assert_eq!(s.bitblasts, 1, "the whole run must bit-blast exactly once");
        assert!(s.solver_calls >= 2, "base cases + at least one sweep");
        assert_eq!(
            s.rebuilds_avoided,
            s.solver_calls - 1,
            "every query after the first reuses the loaded solver"
        );
        assert_eq!(res.solver_calls as u64, s.solver_calls);
        assert!(s.selectors_created >= 2, "hypothesis selectors + witnesses");
        assert!(s.clauses_retained > 0, "clause capital carried between queries");
        assert_eq!(res.accepted, vec![0, 1]);
    }

    #[test]
    fn validate_batch_without_houdini_parks_stragglers() {
        let d = mutually_inductive_design();
        let cands = vec![cand("a == b"), cand("&a |-> &b")];
        let (accepted, outcomes) = validate_batch(&d, &[], &cands, &Default::default(), false);
        assert_eq!(accepted, vec![0]);
        assert_eq!(outcomes[1], ValidationOutcome::NotInductiveAlone);
    }
}
