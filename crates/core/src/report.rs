//! Human-readable reporting of flow results (the tables printed by the
//! experiment binaries).

use crate::flows::{FlowReport, TargetOutcome};
use std::fmt::Write as _;

/// Renders a one-line summary per target.
pub fn summarize_targets(report: &FlowReport) -> String {
    let mut out = String::new();
    for t in &report.targets {
        let line = match &t.outcome {
            TargetOutcome::Proven { k, lemmas_used } => {
                format!("PROVEN  k={k} lemmas={lemmas_used}")
            }
            TargetOutcome::Falsified { at } => format!("FALSIFIED at cycle {at}"),
            TargetOutcome::StillUnproven { k, .. } => format!("UNPROVEN (step fails at k={k})"),
            TargetOutcome::Unknown { reason } => format!("UNKNOWN ({reason})"),
        };
        let _ = writeln!(out, "  {:<24} {}", t.name, line);
    }
    out
}

/// Renders the full flow report (targets, lemmas, metrics, events).
pub fn render_report(report: &FlowReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "design  : {}", report.design);
    let _ = writeln!(out, "model   : {}", report.model);
    let _ = writeln!(out, "targets :");
    out.push_str(&summarize_targets(report));
    if !report.lemmas.is_empty() {
        let _ = writeln!(out, "lemmas  :");
        for l in &report.lemmas {
            let _ = writeln!(out, "  {} — `{}`", l.name, l.text);
        }
    }
    let m = &report.metrics;
    let _ = writeln!(
        out,
        "metrics : llm_calls={} prompt_tok={} completion_tok={} candidates={} \
         rejected(compile/false/non-ind)={}/{}/{} lemmas={} proof_time={:.1?} total={:.1?}",
        m.llm_calls,
        m.prompt_tokens,
        m.completion_tokens,
        m.candidates_parsed,
        m.rejected_compile,
        m.rejected_false,
        m.rejected_not_inductive,
        m.lemmas_accepted,
        m.proof_time,
        m.total_time,
    );
    out.push_str(&render_solver_reuse(report));
    out
}

/// Renders the incremental-session reuse line: how many sessions
/// (bit-blasts) served how many queries, and what the persistent solvers
/// retained. The interesting ratio is `solver_calls : bitblasts` — the
/// rebuild-per-query architecture this replaced sat at 1:1 by definition.
pub fn render_solver_reuse(report: &FlowReport) -> String {
    let s = &report.metrics.solver;
    let mut out = String::new();
    if s.solver_calls == 0 {
        return out;
    }
    let _ = writeln!(
        out,
        "solver  : sessions(bitblasts)={} queries={} rebuilds_avoided={} \
         clauses_retained={} selectors={}({} retired) conflicts={}",
        s.bitblasts,
        s.solver_calls,
        s.rebuilds_avoided,
        s.clauses_retained,
        s.selectors_created,
        s.selectors_retired,
        s.conflicts,
    );
    if s.cube_splits + s.pool_clauses_imported + s.pool_clauses_exported + s.pool_hits > 0 {
        let _ = writeln!(
            out,
            "pool    : cube_splits={} cubes={} imported={} exported={} hits={} evictions={}",
            s.cube_splits,
            s.cubes_raced,
            s.pool_clauses_imported,
            s.pool_clauses_exported,
            s.pool_hits,
            s.pool_evictions,
        );
    }
    out
}

/// Renders the event log.
pub fn render_events(report: &FlowReport) -> String {
    let mut out = String::new();
    for e in &report.events {
        let _ = writeln!(out, "{e}");
    }
    out
}

/// A minimal fixed-width table builder used by the experiment binaries.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(header: I) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                let _ = write!(line, "{:<w$}  ", cells[i], w = widths[i]);
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * cols));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["design", "time"]);
        t.row(["sync_counters", "1.2ms"]);
        t.row(["ecc", "250ms"]);
        let s = t.render();
        assert!(s.contains("design"));
        assert!(s.lines().count() >= 4);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].starts_with("sync_counters"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }
}
