//! The paper's two GenAI-augmented verification flows.
//!
//! * [`run_flow1`] (paper Fig. 1): specification + RTL → LLM → helper
//!   assertions → validate/prove → use as assumptions for the target
//!   properties.
//! * [`run_flow2`] (paper Fig. 2): k-induction attempt → on inductive-step
//!   failure, render the CEX waveform into a prompt → LLM → candidate
//!   invariants → validate → retry, up to an iteration budget.
//!
//! Both flows record a full [`FlowMetrics`] (LLM calls, token counts,
//! candidate fates, proof effort) and an event log for human inspection.

use crate::design::{PreparedDesign, Target};
use crate::houdini::validate_batch_with_stats;
use crate::validate::{install_lemma, Candidate, Lemma, ValidateConfig, ValidationOutcome};
use genfv_genai::{LanguageModel, Prompt};
use genfv_ir::{OptConfig, OptStats};
use genfv_mc::{
    prove_rebuild, render_waveform, CheckConfig, EngineMode, PoolScope, PortfolioConfig,
    ProofSession, ProveResult, SessionStats, Trace, UnrollMode,
};
use genfv_obs::{Accumulate, Obs};
use genfv_sva::parse_assertions;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Counters describing one flow run.
#[derive(Clone, Debug, Default)]
pub struct FlowMetrics {
    /// LLM round trips.
    pub llm_calls: usize,
    /// Prompt tokens sent (estimated).
    pub prompt_tokens: usize,
    /// Completion tokens received (estimated).
    pub completion_tokens: usize,
    /// Simulated LLM latency total.
    pub llm_latency: Duration,
    /// Assertion blocks successfully parsed out of completions.
    pub candidates_parsed: usize,
    /// Completion text regions that failed assertion parsing.
    pub candidates_unparseable: usize,
    /// Candidates rejected at compile (phantom signals etc.).
    pub rejected_compile: usize,
    /// Candidates disproven by BMC (false invariants).
    pub rejected_false: usize,
    /// Candidates that never became inductive.
    pub rejected_not_inductive: usize,
    /// Lemmas accepted (proven invariants).
    pub lemmas_accepted: usize,
    /// Flow-2 repair iterations used.
    pub iterations: usize,
    /// Wall-clock spent in SAT-based checking.
    pub proof_time: Duration,
    /// Solver-reuse counters aggregated across the flow's sessions.
    pub solver: SessionStats,
    /// Total wall clock for the flow.
    pub total_time: Duration,
}

/// Outcome for one target property.
#[derive(Clone, Debug)]
pub enum TargetOutcome {
    /// Proven (depth, with or without lemmas).
    Proven {
        /// Induction depth.
        k: usize,
        /// Number of lemmas assumed for the winning attempt.
        lemmas_used: usize,
    },
    /// Real counterexample found.
    Falsified {
        /// Violation cycle.
        at: usize,
    },
    /// Still failing its induction step after all iterations; the last
    /// step CEX is kept for inspection.
    StillUnproven {
        /// Last attempted depth.
        k: usize,
        /// Last induction-step counterexample.
        trace: Box<Trace>,
    },
    /// Budget exhausted.
    Unknown {
        /// Reason.
        reason: String,
    },
}

impl TargetOutcome {
    /// Whether the target was proven.
    pub fn is_proven(&self) -> bool {
        matches!(self, TargetOutcome::Proven { .. })
    }
}

/// Per-target report.
#[derive(Clone, Debug)]
pub struct TargetReport {
    /// Target name.
    pub name: String,
    /// Final outcome.
    pub outcome: TargetOutcome,
}

/// Complete result of a flow run.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// Design name.
    pub design: String,
    /// Model used.
    pub model: String,
    /// Per-target outcomes.
    pub targets: Vec<TargetReport>,
    /// Accepted lemmas.
    pub lemmas: Vec<Lemma>,
    /// Aggregate metrics.
    pub metrics: FlowMetrics,
    /// What the netlist optimization pipeline did to this design during
    /// prepare (level, node counts, per-pass applications).
    pub opt: OptStats,
    /// Human-readable event log.
    pub events: Vec<String>,
}

impl FlowReport {
    /// Whether every target was proven.
    pub fn all_proven(&self) -> bool {
        self.targets.iter().all(|t| t.outcome.is_proven())
    }
}

/// Flow configuration.
#[derive(Clone, Debug)]
pub struct FlowConfig {
    /// Induction settings for target proofs.
    pub check: CheckConfig,
    /// Candidate-validation settings.
    pub validate: ValidateConfig,
    /// Maximum LLM repair iterations (Flow 2).
    pub max_iterations: usize,
    /// Run Houdini over individually-non-inductive candidates.
    pub use_houdini: bool,
    /// Netlist optimization applied when this configuration prepares a
    /// design from source (the service's `DesignInput::Source` path;
    /// already-prepared designs keep whatever they were prepared with).
    pub opt: OptConfig,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            check: CheckConfig { max_k: 4, ..Default::default() },
            validate: ValidateConfig::default(),
            max_iterations: 4,
            use_houdini: true,
            opt: OptConfig::default(),
        }
    }
}

impl FlowConfig {
    /// This configuration with every check — candidate validation,
    /// Houdini, and target proofs — forced onto `engine`. The
    /// rebuild-vs-incremental bench uses this to run the identical flow on
    /// both architectures.
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.validate.engine = engine;
        self
    }

    /// The engine architecture this flow's checks run on.
    pub fn engine(&self) -> EngineMode {
        self.validate.engine
    }

    /// This configuration with every incremental-session query — candidate
    /// validation, Houdini, and target proofs — answered by portfolio
    /// racing over the given configuration (see `genfv-portfolio`).
    pub fn with_portfolio(mut self, portfolio: PortfolioConfig) -> Self {
        self.validate.check.portfolio = Some(portfolio.clone());
        self.check.portfolio = Some(portfolio);
        self
    }

    /// This configuration with every session unroller — candidate
    /// validation, Houdini, and target proofs — encoding frames in
    /// `mode`. Template stamping is the default; the template-vs-DAG-walk
    /// bench (`e10_template_unroll`) uses this to run the identical flow
    /// on both encodings.
    pub fn with_unroll_mode(mut self, mode: UnrollMode) -> Self {
        self.validate.check.unroll_mode = mode;
        self.check.unroll_mode = mode;
        self
    }

    /// This configuration with `check` as the target-proof induction
    /// settings (candidate validation keeps its own [`ValidateConfig`]).
    pub fn with_check(mut self, check: CheckConfig) -> Self {
        self.check = check;
        self
    }

    /// This configuration with `validate` as the candidate-validation
    /// settings.
    pub fn with_validate(mut self, validate: ValidateConfig) -> Self {
        self.validate = validate;
        self
    }

    /// This configuration with at most `n` LLM repair iterations (Flow 2).
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// This configuration with Houdini over individually-non-inductive
    /// candidates switched on or off.
    pub fn with_houdini(mut self, on: bool) -> Self {
        self.use_houdini = on;
        self
    }

    /// This configuration preparing source designs with the given netlist
    /// optimization settings (`OptLevel::None` is the escape hatch /
    /// differential baseline).
    pub fn with_opt(mut self, opt: OptConfig) -> Self {
        self.opt = opt;
        self
    }

    /// This configuration recording every check — candidate validation,
    /// Houdini, and target proofs — into the given observability handle:
    /// `flow.*` spans down to individual `solve.*` calls, plus per-query-
    /// kind metrics (see `genfv-obs`). The default disabled handle costs
    /// one branch per span.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.validate.check.obs = obs.clone();
        self.check.obs = obs;
        self
    }

    /// The observability handle this flow records into.
    pub fn obs(&self) -> &Obs {
        &self.check.obs
    }

    /// The frame-encoding mode of this flow's session unrollers.
    pub fn unroll_mode(&self) -> UnrollMode {
        self.check.unroll_mode
    }
}

/// Extracts candidates from a completion, numbering anonymous ones.
fn candidates_from_completion(text: &str) -> Vec<Candidate> {
    let assertions = parse_assertions(text);
    assertions
        .into_iter()
        .enumerate()
        .map(|(i, assertion)| {
            let name = assertion.name.clone().unwrap_or_else(|| format!("candidate_{i}"));
            // Canonical text reconstructed from the AST: reports can quote
            // the lemma, and re-parsing it yields the same assertion.
            let text = genfv_sva::render_prop_body(&assertion.body);
            Candidate { name, text, assertion }
        })
        .collect()
}

/// Counts the `property` blocks in a completion that did *not* yield a
/// parseable assertion (hallucinated syntax).
fn unparseable_regions(text: &str, parsed: usize) -> usize {
    let mentions = text.matches("property ").count();
    // Each parsed property consumed one `property ... endproperty` pair
    // (bare `assert property` one-liners also contain "property ").
    mentions.saturating_sub(parsed).min(mentions)
}

/// Runs the validation gauntlet over a candidate batch against the
/// (immutable) design: records rejection metrics/events and returns the
/// indices of accepted candidates for [`install_accepted`]. Split from
/// installation so repair loops can keep a live [`ProofSession`] — which
/// borrows the design — across iterations that end up installing nothing.
fn evaluate_candidates(
    design: &PreparedDesign,
    lemmas: &[Lemma],
    candidates: &[Candidate],
    config: &FlowConfig,
    metrics: &mut FlowMetrics,
    events: &mut Vec<String>,
) -> Vec<usize> {
    let lemma_exprs: Vec<_> = lemmas.iter().map(|l| l.expr).collect();
    let t0 = Instant::now();
    let (accepted, outcomes, solver_stats) = validate_batch_with_stats(
        design,
        &lemma_exprs,
        candidates,
        &config.validate,
        config.use_houdini,
    );
    metrics.proof_time += t0.elapsed();
    metrics.solver.absorb(&solver_stats);
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            ValidationOutcome::CompileRejected(msg) => {
                metrics.rejected_compile += 1;
                events.push(format!("  ✗ {}: compile rejected ({msg})", candidates[i].name));
            }
            ValidationOutcome::FalseByBmc { at } => {
                metrics.rejected_false += 1;
                events.push(format!(
                    "  ✗ {}: disproven by BMC at cycle {at} (hallucinated invariant)",
                    candidates[i].name
                ));
            }
            ValidationOutcome::NotInductiveAlone if !accepted.contains(&i) => {
                metrics.rejected_not_inductive += 1;
                events.push(format!("  ~ {}: true-looking but not inductive", candidates[i].name));
            }
            ValidationOutcome::Unknown(reason) => {
                metrics.rejected_not_inductive += 1;
                events.push(format!("  ? {}: {reason}", candidates[i].name));
            }
            _ => {}
        }
    }
    accepted
}

/// Compiles the accepted candidates onto the main design (mutating it)
/// and appends the resulting lemmas.
fn install_accepted(
    design: &mut PreparedDesign,
    lemmas: &mut Vec<Lemma>,
    candidates: &[Candidate],
    accepted: &[usize],
    metrics: &mut FlowMetrics,
    events: &mut Vec<String>,
) {
    for &i in accepted {
        match install_lemma(design, &candidates[i]) {
            Ok(lemma) => {
                events.push(format!("  ✓ {}: proven, installed as lemma", lemma.name));
                metrics.lemmas_accepted += 1;
                lemmas.push(lemma);
            }
            Err(e) => events.push(format!("  ! {}: install failed: {e}", candidates[i].name)),
        }
    }
}

fn ingest_candidates(
    design: &mut PreparedDesign,
    lemmas: &mut Vec<Lemma>,
    candidates: &[Candidate],
    config: &FlowConfig,
    metrics: &mut FlowMetrics,
    events: &mut Vec<String>,
) {
    let accepted = evaluate_candidates(design, lemmas, candidates, config, metrics, events);
    install_accepted(design, lemmas, candidates, &accepted, metrics, events);
}

/// Folds a dying session's reuse counters into the flow metrics.
fn absorb_session(metrics: &mut FlowMetrics, session: &Option<ProofSession<'_>>) {
    if let Some(s) = session {
        metrics.solver.absorb(s.stats());
    }
}

/// The CEX-driven repair loop for one target (paper Fig. 2), shared by
/// [`run_flow2`] and [`run_combined`].
///
/// In incremental mode one [`ProofSession`] serves every proof attempt
/// under a given lemma set; it is torn down only when a repair iteration
/// actually installs a lemma, which mutates the design and therefore
/// invalidates the session's borrow. Iterations that install nothing keep
/// the session *and* its last step-failure verdict: re-proving an
/// unchanged obligation set on a fresh session provably returns the
/// identical result (the solver is deterministic and the inputs are
/// unchanged), so the redundant rebuild-plus-re-prove the old
/// per-attempt architecture paid is skipped outright.
#[allow(clippy::too_many_arguments)]
fn repair_target(
    design: &mut PreparedDesign,
    lemmas: &mut Vec<Lemma>,
    target: &Target,
    llm: &mut dyn LanguageModel,
    config: &FlowConfig,
    metrics: &mut FlowMetrics,
    events: &mut Vec<String>,
    tag: &str,
) -> TargetOutcome {
    let mut iteration = 0usize;
    'attempts: loop {
        let lemma_exprs: Vec<_> = lemmas.iter().map(|l| l.expr).collect();
        let mut session = (config.engine() == EngineMode::Incremental).then(|| {
            let mut s = ProofSession::new(&design.ctx, &design.ts, config.check.clone());
            s.add_lemmas(&lemma_exprs);
            s
        });
        let t0 = Instant::now();
        let mut res = match session.as_mut() {
            Some(s) => s.prove(&target.prop),
            None => {
                prove_rebuild(&design.ctx, &design.ts, &target.prop, &lemma_exprs, &config.check)
            }
        };
        metrics.proof_time += t0.elapsed();
        loop {
            match res {
                ProveResult::Proven { k, .. } => {
                    events.push(format!(
                        "[{tag}] `{}` proven at k={k} after {iteration} repair iteration(s) \
                         ({} lemmas)",
                        target.name,
                        lemma_exprs.len()
                    ));
                    absorb_session(metrics, &session);
                    return TargetOutcome::Proven { k, lemmas_used: lemma_exprs.len() };
                }
                ProveResult::Falsified { at, .. } => {
                    events.push(format!("[{tag}] `{}` falsified at cycle {at}", target.name));
                    absorb_session(metrics, &session);
                    return TargetOutcome::Falsified { at };
                }
                ProveResult::Unknown { reason, .. } => {
                    absorb_session(metrics, &session);
                    return TargetOutcome::Unknown { reason };
                }
                ProveResult::StepFailure { k, trace, stats } => {
                    if iteration == config.max_iterations {
                        events.push(format!(
                            "[{tag}] `{}` exhausted {} iterations, still failing at k={k}",
                            target.name, config.max_iterations
                        ));
                        absorb_session(metrics, &session);
                        return TargetOutcome::StillUnproven { k, trace: Box::new(trace) };
                    }
                    iteration += 1;
                    metrics.iterations += 1;
                    events.push(format!(
                        "[{tag}] `{}` induction step failed at k={k}; consulting {}",
                        target.name,
                        llm.name()
                    ));
                    // Render the CEX into the prompt (paper Fig. 2 inputs).
                    let waveform = render_waveform(&trace);
                    let final_values: BTreeMap<String, String> = trace
                        .last_step()
                        .map(|s| {
                            s.values.iter().map(|(k, v)| (k.clone(), format!("{v}"))).collect()
                        })
                        .unwrap_or_default();
                    let prompt = Prompt::flow2(&design.rtl, &target.sva, &waveform, &final_values);
                    let completion = llm.complete(&prompt);
                    metrics.llm_calls += 1;
                    metrics.prompt_tokens += completion.prompt_tokens;
                    metrics.completion_tokens += completion.completion_tokens;
                    metrics.llm_latency += completion.latency;

                    let candidates = candidates_from_completion(&completion.text);
                    metrics.candidates_parsed += candidates.len();
                    metrics.candidates_unparseable +=
                        unparseable_regions(&completion.text, candidates.len());
                    events.push(format!(
                        "[{tag}]   {} candidates parsed from completion",
                        candidates.len()
                    ));
                    let accepted =
                        evaluate_candidates(design, lemmas, &candidates, config, metrics, events);
                    if accepted.is_empty() {
                        events.push(format!(
                            "[{tag}]   no new lemmas accepted in iteration {iteration}; keeping \
                             the session and its counterexample"
                        ));
                        // Unchanged lemma set ⇒ identical re-prove; keep the
                        // session and reuse the verdict instead of paying it.
                        res = ProveResult::StepFailure { k, trace, stats };
                        continue;
                    }
                    absorb_session(metrics, &session);
                    drop(session);
                    install_accepted(design, lemmas, &candidates, &accepted, metrics, events);
                    continue 'attempts;
                }
            }
        }
    }
}

/// Caps the clause-pool scope of every check in an LLM-driven flow at
/// [`PoolScope::BaseOnly`].
///
/// These flows make decisions from step-direction SAT *models* — the
/// induction-step counterexample rendered into the repair prompt, and the
/// Houdini violation witnesses that pick which candidates die — and pool
/// imports, while answer-preserving, can steer a warm solver to a
/// different model than a cold one would find. Base-direction answers are
/// consumed as booleans (clean/violated, earliest cycle), so base-only
/// warm starts keep the flow's lemma set bit-identical to a cold run.
/// [`run_baseline`] has no model-sensitive decisions and keeps the
/// configured scope.
fn llm_scoped(config: &FlowConfig) -> FlowConfig {
    let mut c = config.clone();
    for check in [&mut c.check, &mut c.validate.check] {
        if check.clause_pool == PoolScope::Full {
            check.clause_pool = PoolScope::BaseOnly;
        }
    }
    c
}

/// Runs the paper's Flow 1 (Fig. 1): upfront helper-assertion generation
/// from specification + RTL, then target proofs with the accepted lemmas.
pub fn run_flow1(
    mut design: PreparedDesign,
    llm: &mut dyn LanguageModel,
    config: &FlowConfig,
) -> FlowReport {
    let config = &llm_scoped(config);
    let _span = config.obs().span_with("flow.flow1", || design.name.clone());
    let start = Instant::now();
    let mut metrics = FlowMetrics::default();
    let mut events = Vec::new();
    let mut lemmas: Vec<Lemma> = Vec::new();

    let targets_sva: Vec<String> = design.targets.iter().map(|t| t.sva.clone()).collect();
    let prompt = Prompt::flow1(&design.spec, &design.rtl, &targets_sva);
    events.push(format!("[flow1] prompting {} ({} tokens)", llm.name(), prompt.token_estimate()));
    let completion = llm.complete(&prompt);
    metrics.llm_calls += 1;
    metrics.prompt_tokens += completion.prompt_tokens;
    metrics.completion_tokens += completion.completion_tokens;
    metrics.llm_latency += completion.latency;

    let candidates = candidates_from_completion(&completion.text);
    metrics.candidates_parsed += candidates.len();
    metrics.candidates_unparseable += unparseable_regions(&completion.text, candidates.len());
    events.push(format!(
        "[flow1] completion: {} candidates parsed, {} malformed regions",
        candidates.len(),
        metrics.candidates_unparseable
    ));
    ingest_candidates(&mut design, &mut lemmas, &candidates, config, &mut metrics, &mut events);

    // Prove targets with the accepted lemmas — one session for the whole
    // batch: the design is bit-blasted once and every target proof reuses
    // the frames and learnt clauses of its predecessors. (In rebuild mode
    // each target gets fresh unrollers instead.)
    let lemma_exprs: Vec<_> = lemmas.iter().map(|l| l.expr).collect();
    let mut target_reports = Vec::new();
    let mut session = (config.engine() == EngineMode::Incremental).then(|| {
        let mut s = ProofSession::new(&design.ctx, &design.ts, config.check.clone());
        s.add_lemmas(&lemma_exprs);
        s
    });
    for target in &design.targets {
        let t0 = Instant::now();
        let res = match session.as_mut() {
            Some(s) => s.prove(&target.prop),
            None => {
                prove_rebuild(&design.ctx, &design.ts, &target.prop, &lemma_exprs, &config.check)
            }
        };
        metrics.proof_time += t0.elapsed();
        let outcome = match res {
            ProveResult::Proven { k, .. } => {
                events.push(format!("[flow1] target `{}` proven at k={k}", target.name));
                TargetOutcome::Proven { k, lemmas_used: lemma_exprs.len() }
            }
            ProveResult::Falsified { at, .. } => {
                events.push(format!("[flow1] target `{}` falsified at cycle {at}", target.name));
                TargetOutcome::Falsified { at }
            }
            ProveResult::StepFailure { k, trace, .. } => {
                events.push(format!("[flow1] target `{}` still fails step at k={k}", target.name));
                TargetOutcome::StillUnproven { k, trace: Box::new(trace) }
            }
            ProveResult::Unknown { reason, .. } => TargetOutcome::Unknown { reason },
        };
        target_reports.push(TargetReport { name: target.name.clone(), outcome });
    }
    if let Some(s) = &session {
        metrics.solver.absorb(s.stats());
    }

    metrics.total_time = start.elapsed();
    FlowReport {
        design: design.name.clone(),
        model: llm.name().to_string(),
        targets: target_reports,
        lemmas,
        metrics,
        opt: design.opt_stats.clone(),
        events,
    }
}

/// Runs the paper's Flow 2 (Fig. 2): CEX-driven induction repair for every
/// target property.
pub fn run_flow2(
    mut design: PreparedDesign,
    llm: &mut dyn LanguageModel,
    config: &FlowConfig,
) -> FlowReport {
    let config = &llm_scoped(config);
    let _span = config.obs().span_with("flow.flow2", || design.name.clone());
    let start = Instant::now();
    let mut metrics = FlowMetrics::default();
    let mut events = Vec::new();
    let mut lemmas: Vec<Lemma> = Vec::new();
    let mut target_reports = Vec::new();

    let targets = design.targets.clone();
    for target in &targets {
        let outcome = repair_target(
            &mut design,
            &mut lemmas,
            target,
            llm,
            config,
            &mut metrics,
            &mut events,
            "flow2",
        );
        target_reports.push(TargetReport { name: target.name.clone(), outcome });
    }

    metrics.total_time = start.elapsed();
    FlowReport {
        design: design.name.clone(),
        model: llm.name().to_string(),
        targets: target_reports,
        lemmas,
        metrics,
        opt: design.opt_stats.clone(),
        events,
    }
}

/// Baseline: plain k-induction with no GenAI assistance (for the
/// with/without comparisons of experiment E4).
pub fn run_baseline(design: &PreparedDesign, config: &FlowConfig) -> FlowReport {
    let _span = config.obs().span_with("flow.baseline", || design.name.clone());
    let start = Instant::now();
    let mut metrics = FlowMetrics::default();
    let mut events = Vec::new();
    let mut target_reports = Vec::new();
    // One session for the whole baseline: no lemmas, shared frames.
    let mut session = (config.engine() == EngineMode::Incremental)
        .then(|| ProofSession::new(&design.ctx, &design.ts, config.check.clone()));
    for target in &design.targets {
        let t0 = Instant::now();
        let res = match session.as_mut() {
            Some(s) => s.prove(&target.prop),
            None => prove_rebuild(&design.ctx, &design.ts, &target.prop, &[], &config.check),
        };
        metrics.proof_time += t0.elapsed();
        let outcome = match res {
            ProveResult::Proven { k, .. } => {
                events.push(format!("[baseline] `{}` proven at k={k}", target.name));
                TargetOutcome::Proven { k, lemmas_used: 0 }
            }
            ProveResult::Falsified { at, .. } => TargetOutcome::Falsified { at },
            ProveResult::StepFailure { k, trace, .. } => {
                events.push(format!("[baseline] `{}` fails step at k={k}", target.name));
                TargetOutcome::StillUnproven { k, trace: Box::new(trace) }
            }
            ProveResult::Unknown { reason, .. } => TargetOutcome::Unknown { reason },
        };
        target_reports.push(TargetReport { name: target.name.clone(), outcome });
    }
    if let Some(s) = &session {
        metrics.solver.absorb(s.stats());
    }
    metrics.total_time = start.elapsed();
    FlowReport {
        design: design.name.clone(),
        model: "none (baseline)".to_string(),
        targets: target_reports,
        lemmas: Vec::new(),
        metrics,
        opt: design.opt_stats.clone(),
        events,
    }
}

/// Runs both flows the way the paper describes using them together
/// ("We utilized both flows"): Flow 1 generates upfront lemmas from the
/// specification and RTL, then Flow 2's CEX-driven repair loop handles any
/// target that still fails its induction step. The returned report carries
/// the union of accepted lemmas and the merged metrics.
pub fn run_combined(
    design: PreparedDesign,
    llm: &mut dyn LanguageModel,
    config: &FlowConfig,
) -> FlowReport {
    let config = &llm_scoped(config);
    let _span = config.obs().span_with("flow.combined", || design.name.clone());
    let start = Instant::now();
    let mut metrics = FlowMetrics::default();
    let mut events = Vec::new();
    let mut lemmas: Vec<Lemma> = Vec::new();

    // --- Flow 1 phase: one upfront prompt. ---------------------------------
    let mut design = design;
    let targets_sva: Vec<String> = design.targets.iter().map(|t| t.sva.clone()).collect();
    let prompt = Prompt::flow1(&design.spec, &design.rtl, &targets_sva);
    events.push(format!("[combined] flow-1 phase: prompting {}", llm.name()));
    let completion = llm.complete(&prompt);
    metrics.llm_calls += 1;
    metrics.prompt_tokens += completion.prompt_tokens;
    metrics.completion_tokens += completion.completion_tokens;
    metrics.llm_latency += completion.latency;
    let candidates = candidates_from_completion(&completion.text);
    metrics.candidates_parsed += candidates.len();
    metrics.candidates_unparseable += unparseable_regions(&completion.text, candidates.len());
    ingest_candidates(&mut design, &mut lemmas, &candidates, config, &mut metrics, &mut events);

    // --- Flow 2 phase: repair whatever still fails. -------------------------
    let mut target_reports = Vec::new();
    let targets = design.targets.clone();
    for target in &targets {
        let outcome = repair_target(
            &mut design,
            &mut lemmas,
            target,
            llm,
            config,
            &mut metrics,
            &mut events,
            "combined",
        );
        target_reports.push(TargetReport { name: target.name.clone(), outcome });
    }

    metrics.total_time = start.elapsed();
    FlowReport {
        design: design.name.clone(),
        model: llm.name().to_string(),
        targets: target_reports,
        lemmas,
        metrics,
        opt: design.opt_stats.clone(),
        events,
    }
}
