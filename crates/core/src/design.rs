//! Design preparation: from RTL + spec + target assertions to a checkable
//! package.
//!
//! Preparation runs the `genfv_ir::opt` netlist optimization pipeline after
//! target compilation (so property monitors are optimized alongside the
//! design), configurable per prepare via [`OptConfig`] with
//! [`OptLevel::None`](genfv_ir::OptLevel::None) as the escape hatch.

use crate::error::Error;
use genfv_ir::{optimize_with, Context, ExprRef, OptConfig, OptStats, TransitionSystem};
use genfv_mc::Property;
use genfv_obs::Obs;
use genfv_sva::PropertyCompiler;

/// A target property to prove.
#[derive(Clone, Debug)]
pub struct Target {
    /// Property name.
    pub name: String,
    /// Original SVA source text (sent to the LLM in prompts).
    pub sva: String,
    /// Compiled property.
    pub prop: Property,
}

/// A fully prepared design: elaborated RTL plus compiled target properties.
#[derive(Clone, Debug)]
pub struct PreparedDesign {
    /// Design name.
    pub name: String,
    /// RTL source (prompt input).
    pub rtl: String,
    /// Specification prose (prompt input).
    pub spec: String,
    /// Expression context.
    pub ctx: Context,
    /// Elaborated transition system (including target monitors).
    pub ts: TransitionSystem,
    /// Targets to prove.
    pub targets: Vec<Target>,
    /// Optimization configuration this design was prepared with.
    pub opt: OptConfig,
    /// What the optimization pipeline did during prepare.
    pub opt_stats: OptStats,
}

impl PreparedDesign {
    /// Parses, elaborates, compiles, and optimizes at the default
    /// [`OptConfig`] (the full pipeline).
    ///
    /// `targets` are `(name, sva_source)` pairs.
    ///
    /// # Errors
    /// Returns [`Error::Parse`] if the RTL does not parse,
    /// [`Error::Design`] if it does not elaborate (or holds no module),
    /// and [`Error::Compile`] if a target assertion does not compile.
    pub fn new(
        name: impl Into<String>,
        rtl: impl Into<String>,
        spec: impl Into<String>,
        targets: &[(String, String)],
    ) -> Result<Self, Error> {
        Self::with_opt(name, rtl, spec, targets, &OptConfig::default())
    }

    /// Like [`PreparedDesign::new`] but with an explicit optimization
    /// configuration (`OptLevel::None` prepares the system exactly as
    /// elaborated — the differential baseline).
    ///
    /// # Errors
    /// Same as [`PreparedDesign::new`].
    pub fn with_opt(
        name: impl Into<String>,
        rtl: impl Into<String>,
        spec: impl Into<String>,
        targets: &[(String, String)],
        opt: &OptConfig,
    ) -> Result<Self, Error> {
        Self::with_opt_obs(name, rtl, spec, targets, opt, &Obs::off())
    }

    /// Like [`PreparedDesign::with_opt`] but recording a `prepare` span
    /// (with nested per-pass `opt.*` spans) into the given observability
    /// handle. The disabled handle makes this identical to `with_opt`.
    ///
    /// # Errors
    /// Same as [`PreparedDesign::new`].
    pub fn with_opt_obs(
        name: impl Into<String>,
        rtl: impl Into<String>,
        spec: impl Into<String>,
        targets: &[(String, String)],
        opt: &OptConfig,
        obs: &Obs,
    ) -> Result<Self, Error> {
        let name = name.into();
        let _span = obs.span_with("prepare", || name.clone());
        let rtl = rtl.into();
        let spec = spec.into();
        let modules = genfv_hdl::parse_source(&rtl)
            .map_err(|e| Error::Parse { design: name.clone(), message: e.to_string() })?;
        let module = modules.into_iter().next().ok_or_else(|| Error::Design {
            design: name.clone(),
            message: "no module found".to_string(),
        })?;
        let mut ctx = Context::new();
        let mut ts = genfv_hdl::elaborate(&mut ctx, &module)
            .map_err(|e| Error::Design { design: name.clone(), message: e.to_string() })?;

        let mut compiled = Vec::with_capacity(targets.len());
        for (tname, sva) in targets {
            let assertion = genfv_sva::parse_assertion(sva).map_err(|e| Error::Compile {
                design: name.clone(),
                target: tname.clone(),
                message: e.to_string(),
            })?;
            let mut pc = PropertyCompiler::new(&mut ctx, &mut ts);
            let prop = pc.compile(&assertion).map_err(|e| Error::Compile {
                design: name.clone(),
                target: tname.clone(),
                message: e.to_string(),
            })?;
            compiled.push(Target {
                name: tname.clone(),
                sva: sva.clone(),
                prop: Property::new(tname.clone(), prop.ok),
            });
        }

        // Optimize with the compiled proof obligations as extra roots so
        // the pipeline keeps (and rewrites) the property cones, then
        // re-anchor each target on its rewritten root.
        let mut roots: Vec<ExprRef> = compiled.iter().map(|t| t.prop.ok).collect();
        let opt_stats = optimize_with(&mut ctx, &mut ts, &mut roots, opt, obs);
        for (target, root) in compiled.iter_mut().zip(roots) {
            target.prop.ok = root;
        }

        Ok(PreparedDesign { name, rtl, spec, ctx, ts, targets: compiled, opt: *opt, opt_stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RTL: &str = r#"
module counter (input clk, rst, output logic [7:0] c);
  always_ff @(posedge clk) begin
    if (rst) c <= '0;
    else c <= c + 8'd1;
  end
endmodule
"#;

    #[test]
    fn prepares_design_with_targets() {
        let d = PreparedDesign::new(
            "counter",
            RTL,
            "a free-running counter",
            &[("tauto".to_string(), "c == c".to_string())],
        )
        .unwrap();
        assert_eq!(d.targets.len(), 1);
        assert_eq!(d.ts.states().len(), 1);
    }

    #[test]
    fn opt_level_none_skips_pipeline() {
        use genfv_ir::OptLevel;
        let base = PreparedDesign::with_opt(
            "counter",
            RTL,
            "spec",
            &[("tauto".to_string(), "c == c".to_string())],
            &OptConfig::default().with_level(OptLevel::None),
        )
        .unwrap();
        assert_eq!(base.opt_stats.rounds, 0);
        assert_eq!(base.opt_stats.nodes_before, base.opt_stats.nodes_after);
        let opt = PreparedDesign::new(
            "counter",
            RTL,
            "spec",
            &[("tauto".to_string(), "c == c".to_string())],
        )
        .unwrap();
        assert!(opt.opt_stats.rounds >= 1);
        assert!(
            opt.ctx.num_nodes() <= base.ctx.num_nodes(),
            "sweep never grows the arena: {} vs {}",
            opt.ctx.num_nodes(),
            base.ctx.num_nodes()
        );
    }

    #[test]
    fn reports_bad_rtl() {
        let err = PreparedDesign::new("x", "module ((", "s", &[]).unwrap_err();
        assert!(matches!(&err, Error::Parse { design, .. } if design == "x"), "{err:?}");
        assert!(err.to_string().contains("x:"));
    }

    #[test]
    fn reports_bad_target() {
        let err = PreparedDesign::new(
            "counter",
            RTL,
            "spec",
            &[("bad".to_string(), "nonexistent_signal == 1".to_string())],
        )
        .unwrap_err();
        assert!(
            matches!(&err, Error::Compile { design, target, .. }
                if design == "counter" && target == "bad"),
            "{err:?}"
        );
        assert!(err.to_string().contains("unknown signal"), "{err}");
    }

    #[test]
    fn reports_empty_source_as_design_error() {
        let err = PreparedDesign::new("empty", "", "s", &[]).unwrap_err();
        assert!(
            matches!(&err, Error::Design { message, .. } | Error::Parse { message, .. }
                if !message.is_empty()),
            "{err:?}"
        );
    }
}
