//! Design preparation: from RTL + spec + target assertions to a checkable
//! package.

use genfv_ir::{Context, TransitionSystem};
use genfv_mc::Property;
use genfv_sva::PropertyCompiler;
use std::error::Error;
use std::fmt;

/// Failure while preparing a design (parse/elaborate/compile).
#[derive(Clone, Debug)]
pub struct PrepareError {
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for PrepareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "design preparation error: {}", self.message)
    }
}

impl Error for PrepareError {}

/// A target property to prove.
#[derive(Clone, Debug)]
pub struct Target {
    /// Property name.
    pub name: String,
    /// Original SVA source text (sent to the LLM in prompts).
    pub sva: String,
    /// Compiled property.
    pub prop: Property,
}

/// A fully prepared design: elaborated RTL plus compiled target properties.
#[derive(Clone, Debug)]
pub struct PreparedDesign {
    /// Design name.
    pub name: String,
    /// RTL source (prompt input).
    pub rtl: String,
    /// Specification prose (prompt input).
    pub spec: String,
    /// Expression context.
    pub ctx: Context,
    /// Elaborated transition system (including target monitors).
    pub ts: TransitionSystem,
    /// Targets to prove.
    pub targets: Vec<Target>,
}

impl PreparedDesign {
    /// Parses, elaborates, and compiles everything.
    ///
    /// `targets` are `(name, sva_source)` pairs.
    ///
    /// # Errors
    /// Returns [`PrepareError`] if the RTL does not parse/elaborate or a
    /// target assertion does not compile.
    pub fn new(
        name: impl Into<String>,
        rtl: impl Into<String>,
        spec: impl Into<String>,
        targets: &[(String, String)],
    ) -> Result<Self, PrepareError> {
        let name = name.into();
        let rtl = rtl.into();
        let spec = spec.into();
        let modules = genfv_hdl::parse_source(&rtl)
            .map_err(|e| PrepareError { message: format!("{name}: {e}") })?;
        let module = modules
            .into_iter()
            .next()
            .ok_or_else(|| PrepareError { message: format!("{name}: no module found") })?;
        let mut ctx = Context::new();
        let mut ts = genfv_hdl::elaborate(&mut ctx, &module)
            .map_err(|e| PrepareError { message: format!("{name}: {e}") })?;

        let mut compiled = Vec::with_capacity(targets.len());
        for (tname, sva) in targets {
            let assertion = genfv_sva::parse_assertion(sva)
                .map_err(|e| PrepareError { message: format!("{name}/{tname}: {e}") })?;
            let mut pc = PropertyCompiler::new(&mut ctx, &mut ts);
            let prop = pc
                .compile(&assertion)
                .map_err(|e| PrepareError { message: format!("{name}/{tname}: {e}") })?;
            compiled.push(Target {
                name: tname.clone(),
                sva: sva.clone(),
                prop: Property::new(tname.clone(), prop.ok),
            });
        }
        Ok(PreparedDesign { name, rtl, spec, ctx, ts, targets: compiled })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RTL: &str = r#"
module counter (input clk, rst, output logic [7:0] c);
  always_ff @(posedge clk) begin
    if (rst) c <= '0;
    else c <= c + 8'd1;
  end
endmodule
"#;

    #[test]
    fn prepares_design_with_targets() {
        let d = PreparedDesign::new(
            "counter",
            RTL,
            "a free-running counter",
            &[("tauto".to_string(), "c == c".to_string())],
        )
        .unwrap();
        assert_eq!(d.targets.len(), 1);
        assert_eq!(d.ts.states().len(), 1);
    }

    #[test]
    fn reports_bad_rtl() {
        let err = PreparedDesign::new("x", "module ((", "s", &[]).unwrap_err();
        assert!(err.to_string().contains("x:"));
    }

    #[test]
    fn reports_bad_target() {
        let err = PreparedDesign::new(
            "counter",
            RTL,
            "spec",
            &[("bad".to_string(), "nonexistent_signal == 1".to_string())],
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown signal"), "{err}");
    }
}
