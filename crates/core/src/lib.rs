//! # genfv-core — GenAI-augmented induction-based formal verification
//!
//! The primary contribution of the reproduced paper, as a library:
//!
//! * [`run_flow1`] — paper Fig. 1: an LLM reads the specification and the
//!   RTL and proposes helper assertions; proven ones become assumptions
//!   that accelerate/enable the target-property proofs.
//! * [`run_flow2`] — paper Fig. 2: when a k-induction step fails, the CEX
//!   waveform plus the RTL are rendered into a prompt; the LLM's candidate
//!   invariants are validated and the proof retried, in a bounded repair
//!   loop.
//! * [`run_baseline`] — plain k-induction, for with/without comparisons.
//!
//! **Soundness boundary.** Model output is untrusted text. Candidates are
//! parsed ([`genfv_sva::parse_assertions`]), compiled (phantom signals
//! rejected), BMC-sanity-checked (false invariants rejected with a
//! counterexample), and finally proven by induction — individually or
//! jointly via [`houdini()`] — before they may strengthen any proof. A
//! hallucinated assertion can waste time but can never taint a result,
//! mechanising the paper's "analyze the output from the LLM before using
//! it productively" guidance.
//!
//! **Incremental proof sessions.** Every stage of the gauntlet runs on
//! persistent [`genfv_mc::ProofSession`]s rather than engines rebuilt per
//! query: the parallel validator gives each worker shard one session for
//! its whole slice of candidates ([`validate_parallel`]), Houdini runs
//! its entire fixpoint — hypothesis activation, batched obligations,
//! retraction of falsified candidates, deferred base cases — on one
//! session and reports the hypotheses in the final proof's assumption
//! core ([`HoudiniResult::carried`]), and the flows prove targets on
//! shared sessions wherever the design is stable. The pre-session
//! architecture survives behind [`genfv_mc::EngineMode::RebuildPerQuery`]
//! (selectable through [`ValidateConfig::engine`] /
//! [`FlowConfig::with_engine`]) as the reference for the corpus
//! differential suite and the `e8_incremental_sessions` benchmark; both
//! modes produce identical verdicts, the incremental one just gets there
//! without re-bit-blasting. Solver-reuse counters surface in
//! [`FlowMetrics::solver`].
//!
//! **Portfolio solving and corpus scheduling.** Any session query can be
//! answered by racing jittered solver configurations on clones of the
//! loaded clause database ([`FlowConfig::with_portfolio`], implemented in
//! `genfv-portfolio` and benchmarked by `e9_portfolio`), and whole design
//! corpora distribute over the persistent worker pool of the
//! `genfv-service` crate's `VerificationService` (driven by
//! [`CorpusConfig`]; `genfv_service::run_corpus` is the synchronous
//! wrapper) — each job keeping the long-lived sessions the flows already
//! use, with reports stitched back in submission order independent of
//! scheduling.
//!
//! **Builder convention.** Every configuration struct in the workspace
//! ([`FlowConfig`], [`ValidateConfig`], [`CorpusConfig`],
//! `genfv_mc::CheckConfig`, `genfv_service::ServiceConfig`, …) follows
//! one shape: construct the sensible default with [`Default::default`],
//! then refine it with chainable consuming `with_*` methods —
//! `CorpusConfig::default().with_workers(4).with_mode(CorpusMode::Baseline)`.
//! The fields stay `pub` so struct-literal updates keep working, but the
//! `with_*` form is the documented style and what the examples use.
//!
//! **Typed errors.** Every fallible entry point returns
//! [`enum@Error`] — parse / design / compile / service variants carrying
//! the design and target names — instead of `Box<dyn std::error::Error>`.
//!
//! ```no_run
//! use genfv_core::{PreparedDesign, run_flow2, FlowConfig};
//! use genfv_genai::{SyntheticLlm, ModelProfile};
//!
//! let design = PreparedDesign::new(
//!     "sync_counters",
//!     RTL,
//!     "Two counters incremented in lockstep; they always hold equal values.",
//!     &[("equal_count".into(), "&count1 |-> &count2".into())],
//! )?;
//! let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 42);
//! let report = run_flow2(design, &mut llm, &FlowConfig::default());
//! assert!(report.all_proven());
//! # const RTL: &str = "";
//! # Ok::<(), genfv_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod design;
pub mod error;
pub mod flows;
pub mod houdini;
pub mod parallel;
pub mod report;
pub mod shard;
pub mod validate;

pub use design::{PreparedDesign, Target};
// Re-exported so downstream crates (service, bench) can configure and
// report the prepare-time optimization pipeline without depending on
// `genfv-ir` directly.
pub use error::{Error, ServiceError};
pub use flows::{
    run_baseline, run_combined, run_flow1, run_flow2, FlowConfig, FlowMetrics, FlowReport,
    TargetOutcome, TargetReport,
};
pub use genfv_ir::{OptConfig, OptLevel, OptStats};
pub use genfv_obs::{Accumulate, Obs, ObsConfig, ObsReport};
pub use houdini::{houdini, validate_batch, HoudiniResult};
pub use parallel::validate_parallel;
pub use report::{render_events, render_report, summarize_targets, Table};
pub use shard::{CorpusConfig, CorpusMode};
pub use validate::{
    install_lemma, validate_candidate, Candidate, Lemma, ValidateConfig, ValidationOutcome,
};
