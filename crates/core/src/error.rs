//! The typed error surface of the public API.
//!
//! Every fallible `genfv` entry point — design preparation, corpus
//! scheduling, and the `genfv-service` front end — reports failures
//! through [`Error`], replacing the `Box<dyn std::error::Error>` soup
//! the facade used to force on callers. The variants follow the
//! pipeline: **parse** (RTL syntax), **design** (elaboration /
//! module-level problems), **compile** (target-assertion binding), and
//! **service** (scheduling: backpressure, shutdown, lost workers).
//!
//! The enum is deliberately `Clone` (service workers report the same
//! failure to the job's event stream *and* its final report) and
//! carries the design / target names so multi-design batch failures
//! stay attributable without wrapper context.

use std::fmt;

/// Why a `genfv` operation failed. See the [module docs](self).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// The RTL source did not lex/parse.
    Parse {
        /// Design name the caller supplied.
        design: String,
        /// Parser diagnostic.
        message: String,
    },
    /// The RTL parsed but did not elaborate into a transition system
    /// (or contained no module at all).
    Design {
        /// Design name the caller supplied.
        design: String,
        /// Elaboration diagnostic.
        message: String,
    },
    /// A target assertion did not parse or bind against the design.
    Compile {
        /// Design name the caller supplied.
        design: String,
        /// Target property name.
        target: String,
        /// Compiler diagnostic.
        message: String,
    },
    /// A verification-service scheduling failure.
    Service(ServiceError),
}

/// Scheduling failures of the `genfv-service` front end.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// `try_submit` found the bounded submission queue full — typed
    /// backpressure; retry later or use the blocking `submit`.
    QueueFull {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The service has been shut down and accepts no new jobs.
    Closed,
    /// A job needs a language model (Flow 1/2/Combined) but the request
    /// carried none.
    NoModel {
        /// Design name of the rejected job.
        design: String,
    },
    /// A worker died (panicked) before delivering the job's report.
    WorkerLost {
        /// Whatever is known about the failure.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { design, message } => write!(f, "{design}: parse error: {message}"),
            Error::Design { design, message } => write!(f, "{design}: design error: {message}"),
            Error::Compile { design, target, message } => {
                write!(f, "{design}/{target}: compile error: {message}")
            }
            Error::Service(e) => write!(f, "service error: {e}"),
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull { capacity } => {
                write!(f, "submission queue full ({capacity} jobs)")
            }
            ServiceError::Closed => write!(f, "service is shut down"),
            ServiceError::NoModel { design } => {
                write!(f, "job `{design}` runs a GenAI flow but carries no language model")
            }
            ServiceError::WorkerLost { message } => write!(f, "worker lost: {message}"),
        }
    }
}

impl std::error::Error for Error {}
impl std::error::Error for ServiceError {}

impl From<ServiceError> for Error {
    fn from(e: ServiceError) -> Self {
        Error::Service(e)
    }
}

impl Error {
    /// Whether this is the typed backpressure signal
    /// ([`ServiceError::QueueFull`]).
    pub fn is_backpressure(&self) -> bool {
        matches!(self, Error::Service(ServiceError::QueueFull { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_names() {
        let e = Error::Compile {
            design: "fifo".into(),
            target: "occ".into(),
            message: "unknown signal".into(),
        };
        assert_eq!(e.to_string(), "fifo/occ: compile error: unknown signal");
        let e = Error::Service(ServiceError::QueueFull { capacity: 4 });
        assert!(e.is_backpressure());
        assert!(e.to_string().contains("queue full (4 jobs)"));
    }

    #[test]
    fn is_std_error() {
        fn takes(_: &dyn std::error::Error) {}
        takes(&Error::Parse { design: "x".into(), message: "y".into() });
        takes(&ServiceError::Closed);
    }
}
