//! Parallel candidate validation.
//!
//! Candidate lemmas are independent until acceptance (each is validated
//! against a clone of the design), so the validation stage parallelises
//! embarrassingly. This module fans the per-candidate work out over scoped
//! crossbeam threads — the practical difference on multi-core hosts when a
//! chatty model emits many candidates per completion.

use crate::design::PreparedDesign;
use crate::validate::{validate_candidate, Candidate, ValidateConfig, ValidationOutcome};
use genfv_ir::ExprRef;

/// Validates candidates concurrently; results are index-aligned with the
/// input. Behaviour is identical to calling
/// [`validate_candidate`] sequentially (validation is deterministic and
/// side-effect free).
pub fn validate_parallel(
    design: &PreparedDesign,
    proven_lemmas: &[ExprRef],
    candidates: &[Candidate],
    config: &ValidateConfig,
) -> Vec<ValidationOutcome> {
    if candidates.len() <= 1 {
        return candidates
            .iter()
            .map(|c| validate_candidate(design, proven_lemmas, c, config))
            .collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(candidates.len());

    let mut outcomes: Vec<Option<ValidationOutcome>> = vec![None; candidates.len()];
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<ValidationOutcome>>> =
        (0..candidates.len()).map(|_| std::sync::Mutex::new(None)).collect();

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= candidates.len() {
                    break;
                }
                let out = validate_candidate(design, proven_lemmas, &candidates[i], config);
                *slots[i].lock().expect("slot lock") = Some(out);
            });
        }
    })
    .expect("validation worker panicked");

    for (i, slot) in slots.into_iter().enumerate() {
        outcomes[i] = slot.into_inner().expect("slot lock");
    }
    outcomes.into_iter().map(|o| o.expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use genfv_sva::parse_assertion;

    const SYNC: &str = r#"
module sync_counters (input clk, rst, output logic [7:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 8'b0;
      count2 <= 8'b0;
    end else begin
      count1++;
      count2++;
    end
  end
endmodule
"#;

    fn cand(text: &str) -> Candidate {
        Candidate {
            name: text.to_string(),
            text: text.to_string(),
            assertion: parse_assertion(text).unwrap(),
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let design = PreparedDesign::new("sync", SYNC, "spec", &[]).unwrap();
        let candidates = vec![
            cand("count1 == count2"),
            cand("count1 != count2"),
            cand("count1 == phantom"),
            cand("&count1 |-> &count2"),
            cand("count2 == count1"),
            cand("count1 < 8'd5"),
        ];
        let config = ValidateConfig::default();
        let par = validate_parallel(&design, &[], &candidates, &config);
        let seq: Vec<ValidationOutcome> = candidates
            .iter()
            .map(|c| validate_candidate(&design, &[], c, &config))
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_and_single_inputs() {
        let design = PreparedDesign::new("sync", SYNC, "spec", &[]).unwrap();
        let config = ValidateConfig::default();
        assert!(validate_parallel(&design, &[], &[], &config).is_empty());
        let one = vec![cand("count1 == count2")];
        let out = validate_parallel(&design, &[], &one, &config);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_proven());
    }
}
