//! Parallel candidate validation over sharded incremental sessions.
//!
//! Candidate lemmas are independent until acceptance, so the validation
//! stage parallelises embarrassingly. Earlier revisions validated each
//! candidate on its own design clone — one bit-blast *per candidate per
//! check*. This version shards the candidates round-robin over the worker
//! threads and gives **each worker one [`ProofSession`]**: the worker compiles
//! its whole shard onto a single design clone, bit-blasts once, and
//! answers every BMC-sanity and induction query for the shard with
//! assumptions on that persistent solver.
//!
//! Sharing one transition system between a shard's candidates is sound for
//! the same reason Houdini compiles its pool onto one clone: monitor state
//! is read-only over design signals and feeds nothing back, so one
//! candidate's monitors cannot influence another's verdict. Outcomes are
//! identical to the sequential path (validation is deterministic); the
//! `parallel_matches_sequential` test pins that. The one exception is
//! `CheckConfig::simple_path`, whose distinct-state constraints quantify
//! over every register (shard-mates' monitors included) — in that mode
//! each candidate keeps its own clone.

use crate::design::PreparedDesign;
use crate::validate::{
    check_on_session, check_with_rebuild, validate_candidate, Candidate, ValidateConfig,
    ValidationOutcome,
};
use genfv_ir::ExprRef;
use genfv_mc::{Accumulate, EngineMode, ProofSession, Property, SessionStats};
use genfv_sva::PropertyCompiler;

/// Validates candidates concurrently; results are index-aligned with the
/// input. Behaviour is identical to calling
/// [`validate_candidate`] sequentially (validation is deterministic and
/// side-effect free).
pub fn validate_parallel(
    design: &PreparedDesign,
    proven_lemmas: &[ExprRef],
    candidates: &[Candidate],
    config: &ValidateConfig,
) -> Vec<ValidationOutcome> {
    validate_parallel_with_stats(design, proven_lemmas, candidates, config).0
}

/// [`validate_parallel`] plus the aggregated solver-reuse statistics of
/// the worker sessions (one bit-blast per worker shard).
pub fn validate_parallel_with_stats(
    design: &PreparedDesign,
    proven_lemmas: &[ExprRef],
    candidates: &[Candidate],
    config: &ValidateConfig,
) -> (Vec<ValidationOutcome>, SessionStats) {
    if candidates.is_empty() {
        return (Vec::new(), SessionStats::default());
    }
    if candidates.len() == 1 {
        // No thread spawn for a single candidate, but the same shard path
        // so session statistics stay consistent with the multi-candidate
        // case.
        let (results, stats) = shard_worker(design, proven_lemmas, candidates, config, 0, 1);
        return (results.into_iter().map(|(_, o)| o).collect(), stats);
    }
    let workers =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).min(candidates.len());

    let mut results: Vec<(usize, ValidationOutcome)> = Vec::with_capacity(candidates.len());
    let mut stats = SessionStats::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            handles.push(scope.spawn(move || {
                shard_worker(design, proven_lemmas, candidates, config, w, workers)
            }));
        }
        for handle in handles {
            let (shard_results, shard_stats) = handle.join().expect("validation worker panicked");
            results.extend(shard_results);
            stats.absorb(&shard_stats);
        }
    });

    results.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(results.len(), candidates.len());
    (results.into_iter().map(|(_, o)| o).collect(), stats)
}

/// Validates every `worker`-th candidate on one design clone and one
/// session.
fn shard_worker(
    design: &PreparedDesign,
    proven_lemmas: &[ExprRef],
    candidates: &[Candidate],
    config: &ValidateConfig,
    worker: usize,
    workers: usize,
) -> (Vec<(usize, ValidationOutcome)>, SessionStats) {
    let shard: Vec<(usize, &Candidate)> =
        candidates.iter().enumerate().skip(worker).step_by(workers).collect();

    if config.check.simple_path {
        // Simple-path constraints quantify over *every* state register, so
        // a shard-shared clone (carrying shard-mates' monitor state) would
        // weaken them relative to the sequential per-candidate clone and
        // verdicts could depend on shard composition. Keep one clone per
        // candidate in that mode.
        let out = shard
            .iter()
            .map(|&(i, c)| (i, validate_candidate(design, proven_lemmas, c, config)))
            .collect();
        return (out, SessionStats::default());
    }

    // Compile the whole shard first: the session's frames bind whatever
    // monitor state exists when it is created.
    let mut ctx = design.ctx.clone();
    let mut ts = design.ts.clone();
    let mut compiled: Vec<(usize, Result<Property, String>)> = Vec::with_capacity(shard.len());
    {
        let mut pc = PropertyCompiler::new(&mut ctx, &mut ts);
        for (i, cand) in &shard {
            let res = pc
                .compile(&cand.assertion)
                .map(|c| Property::new(cand.name.clone(), c.ok))
                .map_err(|e| e.to_string());
            compiled.push((*i, res));
        }
    }

    if config.engine == EngineMode::RebuildPerQuery {
        // Reference architecture: fresh engines per logical check.
        let mut out = Vec::with_capacity(compiled.len());
        for (i, res) in compiled {
            let outcome = match res {
                Err(e) => ValidationOutcome::CompileRejected(e),
                Ok(prop) => check_with_rebuild(&ctx, &ts, &prop, proven_lemmas, config),
            };
            out.push((i, outcome));
        }
        return (out, SessionStats::default());
    }

    let mut session = ProofSession::new(&ctx, &ts, config.check.clone());
    session.add_lemmas(proven_lemmas);
    let mut out = Vec::with_capacity(compiled.len());
    for (i, res) in compiled {
        let outcome = match res {
            Err(e) => ValidationOutcome::CompileRejected(e),
            Ok(prop) => check_on_session(&mut session, &prop, config),
        };
        out.push((i, outcome));
    }
    (out, *session.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use genfv_sva::parse_assertion;

    const SYNC: &str = r#"
module sync_counters (input clk, rst, output logic [7:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 8'b0;
      count2 <= 8'b0;
    end else begin
      count1++;
      count2++;
    end
  end
endmodule
"#;

    fn cand(text: &str) -> Candidate {
        Candidate {
            name: text.to_string(),
            text: text.to_string(),
            assertion: parse_assertion(text).unwrap(),
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let design = PreparedDesign::new("sync", SYNC, "spec", &[]).unwrap();
        let candidates = vec![
            cand("count1 == count2"),
            cand("count1 != count2"),
            cand("count1 == phantom"),
            cand("&count1 |-> &count2"),
            cand("count2 == count1"),
            cand("count1 < 8'd5"),
        ];
        let config = ValidateConfig::default();
        let par = validate_parallel(&design, &[], &candidates, &config);
        let seq: Vec<ValidationOutcome> =
            candidates.iter().map(|c| validate_candidate(&design, &[], c, &config)).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_and_single_inputs() {
        let design = PreparedDesign::new("sync", SYNC, "spec", &[]).unwrap();
        let config = ValidateConfig::default();
        assert!(validate_parallel(&design, &[], &[], &config).is_empty());
        let one = vec![cand("count1 == count2")];
        let out = validate_parallel(&design, &[], &one, &config);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_proven());
    }

    #[test]
    fn shards_bitblast_once_each() {
        let design = PreparedDesign::new("sync", SYNC, "spec", &[]).unwrap();
        let config = ValidateConfig::default();
        let candidates = vec![
            cand("count1 == count2"),
            cand("count2 == count1"),
            cand("count1 <= count2"),
            cand("count2 <= count1"),
        ];
        let (outcomes, stats) = validate_parallel_with_stats(&design, &[], &candidates, &config);
        assert_eq!(outcomes.len(), 4);
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(candidates.len());
        assert_eq!(stats.bitblasts as usize, workers, "one bit-blast per shard");
        assert!(stats.rebuilds_avoided > 0, "shards answered repeat queries in place");
    }
}
