//! Corpus-level shard scheduling: many designs, many workers, long-lived
//! sessions.
//!
//! The flows in [`crate::flows`] already amortise solver state *within*
//! one design (persistent [`genfv_mc::ProofSession`]s, sharded candidate
//! validation, Houdini on one session). Serving heavy multi-user traffic
//! additionally needs to scale *across* designs: a verification service
//! holds a queue of `(design, targets)` jobs and wants them spread over
//! every core with no idle tails.
//!
//! [`run_corpus`] is that scheduler. Worker threads pull jobs from a
//! shared cursor (work stealing over an atomic index, so a slow design
//! never stalls the queue behind it), run the configured flow — each job
//! getting its own long-lived sessions inside the flow — and the results
//! are stitched back in submission order. Each job's LLM is created by a
//! caller-supplied factory keyed on the job index, so reports are
//! *scheduling-independent*: whichever worker picks up job `i`, it
//! prompts the same model state and reproduces the sequential run's
//! report exactly (the `corpus_matches_sequential` test pins this).
//!
//! Portfolio note: per-query portfolio racing
//! ([`crate::FlowConfig::with_portfolio`]) composes with corpus sharding,
//! but both multiply CPU use — keep `workers × portfolio workers` within
//! the machine's core count, or rely on the portfolio's probe to keep the
//! racing occasional.

use crate::design::PreparedDesign;
use crate::flows::{run_baseline, run_combined, run_flow1, run_flow2, FlowConfig, FlowReport};
use genfv_genai::LanguageModel;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Which flow every corpus job runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorpusMode {
    /// Paper Fig. 1: upfront lemma generation, then target proofs.
    Flow1,
    /// Paper Fig. 2: CEX-driven induction repair.
    Flow2,
    /// Flow 1 then Flow 2 ("we utilized both flows").
    Combined,
    /// Plain k-induction, no GenAI (the LLM factory is not called).
    Baseline,
}

/// Corpus scheduler configuration.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Worker threads pulling jobs (0 = one per available core, capped by
    /// the job count).
    pub workers: usize,
    /// Flow selection for every job.
    pub mode: CorpusMode,
    /// Flow configuration shared by every job.
    pub flow: FlowConfig,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig { workers: 0, mode: CorpusMode::Flow2, flow: FlowConfig::default() }
    }
}

/// Runs one flow per prepared design, distributed over worker threads.
///
/// `make_llm` builds the language model for job `i`; it is called on the
/// worker that claims the job, so it must be `Sync` but the model itself
/// need not be. Results are index-aligned with `designs` regardless of
/// which worker ran what.
pub fn run_corpus<L, F>(
    designs: &[PreparedDesign],
    make_llm: F,
    config: &CorpusConfig,
) -> Vec<FlowReport>
where
    L: LanguageModel,
    F: Fn(usize) -> L + Sync,
{
    if designs.is_empty() {
        return Vec::new();
    }
    let workers = if config.workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2)
    } else {
        config.workers
    }
    .min(designs.len())
    .max(1);

    if workers == 1 {
        return designs.iter().enumerate().map(|(i, d)| run_job(d, i, &make_llm, config)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut results: Vec<(usize, FlowReport)> = Vec::with_capacity(designs.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let cursor = &cursor;
            let make_llm = &make_llm;
            handles.push(scope.spawn(move || {
                let mut mine = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(design) = designs.get(i) else { break };
                    mine.push((i, run_job(design, i, make_llm, config)));
                }
                mine
            }));
        }
        for handle in handles {
            results.extend(handle.join().expect("corpus worker panicked"));
        }
    });
    results.sort_unstable_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, r)| r).collect()
}

fn run_job<L, F>(
    design: &PreparedDesign,
    index: usize,
    make_llm: &F,
    config: &CorpusConfig,
) -> FlowReport
where
    L: LanguageModel,
    F: Fn(usize) -> L + Sync,
{
    match config.mode {
        CorpusMode::Baseline => run_baseline(design, &config.flow),
        CorpusMode::Flow1 => run_flow1(design.clone(), &mut make_llm(index), &config.flow),
        CorpusMode::Flow2 => run_flow2(design.clone(), &mut make_llm(index), &config.flow),
        CorpusMode::Combined => run_combined(design.clone(), &mut make_llm(index), &config.flow),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::TargetOutcome;
    use genfv_genai::{ModelProfile, SyntheticLlm};

    const SYNC: &str = r#"
module sync_counters (input clk, rst, output logic [7:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 8'b0;
      count2 <= 8'b0;
    end else begin
      count1++;
      count2++;
    end
  end
endmodule
"#;

    const RING: &str = r#"
module ring (input clk, rst, output logic [3:0] state);
  always_ff @(posedge clk) begin
    if (rst) state <= 4'b0001;
    else state <= {state[2:0], state[3]};
  end
endmodule
"#;

    fn corpus() -> Vec<PreparedDesign> {
        vec![
            PreparedDesign::new(
                "sync_counters",
                SYNC,
                "lockstep counters",
                &[("equal".into(), "&count1 |-> &count2".into())],
            )
            .unwrap(),
            PreparedDesign::new(
                "ring",
                RING,
                "one-hot ring",
                &[("stays".into(), "state != 4'd0".into())],
            )
            .unwrap(),
            PreparedDesign::new(
                "sync_again",
                SYNC,
                "lockstep counters",
                &[("eq2".into(), "count1 == count2".into())],
            )
            .unwrap(),
        ]
    }

    fn outcome_class(o: &TargetOutcome) -> u8 {
        match o {
            TargetOutcome::Proven { .. } => 0,
            TargetOutcome::Falsified { .. } => 1,
            TargetOutcome::StillUnproven { .. } => 2,
            TargetOutcome::Unknown { .. } => 3,
        }
    }

    #[test]
    fn corpus_matches_sequential() {
        let designs = corpus();
        let make_llm = |i: usize| SyntheticLlm::new(ModelProfile::GptFourTurbo, 42 + i as u64);
        let config = CorpusConfig { workers: 3, ..Default::default() };
        let sharded = run_corpus(&designs, make_llm, &config);
        let sequential: Vec<_> = designs
            .iter()
            .enumerate()
            .map(|(i, d)| run_flow2(d.clone(), &mut make_llm(i), &config.flow))
            .collect();
        assert_eq!(sharded.len(), sequential.len());
        for (s, q) in sharded.iter().zip(&sequential) {
            assert_eq!(s.design, q.design, "order must be submission order");
            let sc: Vec<u8> = s.targets.iter().map(|t| outcome_class(&t.outcome)).collect();
            let qc: Vec<u8> = q.targets.iter().map(|t| outcome_class(&t.outcome)).collect();
            assert_eq!(sc, qc, "scheduling must not change verdicts on {}", s.design);
            let sl: Vec<&str> = s.lemmas.iter().map(|l| l.text.as_str()).collect();
            let ql: Vec<&str> = q.lemmas.iter().map(|l| l.text.as_str()).collect();
            assert_eq!(sl, ql, "scheduling must not change lemmas on {}", s.design);
        }
    }

    #[test]
    fn baseline_mode_needs_no_llm() {
        let designs = corpus();
        let config = CorpusConfig { workers: 2, mode: CorpusMode::Baseline, ..Default::default() };
        let reports = run_corpus(
            &designs,
            |_: usize| -> SyntheticLlm { panic!("baseline must not build an LLM") },
            &config,
        );
        assert_eq!(reports.len(), designs.len());
        assert!(reports.iter().all(|r| r.model.contains("baseline")));
    }

    #[test]
    fn empty_corpus_is_fine() {
        let config = CorpusConfig::default();
        let out =
            run_corpus(&[], |i| SyntheticLlm::new(ModelProfile::GptFourTurbo, i as u64), &config);
        assert!(out.is_empty());
    }
}
