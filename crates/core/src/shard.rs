//! Corpus-level scheduling configuration: many designs, many workers,
//! long-lived sessions.
//!
//! The flows in [`crate::flows`] amortise solver state *within* one
//! design (persistent [`genfv_mc::ProofSession`]s, sharded candidate
//! validation, Houdini on one session). Scaling *across* designs — a
//! queue of `(design, targets)` jobs spread over every core — is the job
//! of the **`genfv-service`** crate's `VerificationService`: a bounded
//! submission queue, a persistent worker pool, a design-hash-keyed cache
//! of warm session capital, and request batching. Its synchronous
//! convenience wrapper `genfv_service::run_corpus` (re-exported through
//! the `genfv` facade prelude) is driven by the [`CorpusConfig`] defined
//! here, so there is exactly **one scheduler** in the stack; earlier
//! revisions kept a second, ad-hoc work-stealing pool in this module.
//!
//! This module owns only the *what-to-run* types ([`CorpusMode`],
//! [`CorpusConfig`]) so that `genfv-core` stays free of any dependency
//! on the service layer that executes them.
//!
//! Portfolio note: per-query portfolio racing
//! ([`crate::FlowConfig::with_portfolio`]) composes with corpus
//! scheduling, but both multiply CPU use — keep `workers × portfolio
//! workers` within the machine's core count, or rely on the portfolio's
//! probe to keep the racing occasional.

use crate::flows::FlowConfig;

/// Which flow every corpus job runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorpusMode {
    /// Paper Fig. 1: upfront lemma generation, then target proofs.
    Flow1,
    /// Paper Fig. 2: CEX-driven induction repair.
    Flow2,
    /// Flow 1 then Flow 2 ("we utilized both flows").
    Combined,
    /// Plain k-induction, no GenAI (no language model is consulted).
    Baseline,
}

impl CorpusMode {
    /// Whether jobs in this mode consult a language model.
    pub fn needs_model(self) -> bool {
        !matches!(self, CorpusMode::Baseline)
    }
}

/// Corpus scheduler configuration (executed by `genfv-service`).
///
/// Follows the workspace builder convention (see the [crate
/// docs](crate)): construct with [`Default`], refine with `with_*`.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Worker threads pulling jobs (0 = one per available core, capped by
    /// the job count).
    pub workers: usize,
    /// Flow selection for every job.
    pub mode: CorpusMode,
    /// Flow configuration shared by every job.
    pub flow: FlowConfig,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig { workers: 0, mode: CorpusMode::Flow2, flow: FlowConfig::default() }
    }
}

impl CorpusConfig {
    /// This configuration with `workers` threads (0 = one per core).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// This configuration with every job running `mode`.
    pub fn with_mode(mut self, mode: CorpusMode) -> Self {
        self.mode = mode;
        self
    }

    /// This configuration with `flow` as every job's flow configuration.
    pub fn with_flow(mut self, flow: FlowConfig) -> Self {
        self.flow = flow;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_chain() {
        let c = CorpusConfig::default().with_workers(3).with_mode(CorpusMode::Baseline);
        assert_eq!(c.workers, 3);
        assert_eq!(c.mode, CorpusMode::Baseline);
        assert!(!c.mode.needs_model());
        assert!(CorpusMode::Flow2.needs_model());
    }
}
