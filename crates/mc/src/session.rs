//! Incremental proof sessions: persistent base/step solvers per design.
//!
//! The paper's Flow 1/Flow 2 loops spend nearly all their time in repeated
//! SAT checks over the *same* transition relation: every candidate lemma is
//! BMC-sanity-checked and induction-checked, every Houdini strengthening
//! iteration re-queries the step case, and every target proof walks the
//! same frames again. Rebuilding an [`Unroller`] (a full re-bit-blast plus
//! a brand-new solver that must re-learn everything) for each of those
//! queries is the dominant cost.
//!
//! A [`ProofSession`] owns **two persistent guarded unrollers** for one
//! `(Context, TransitionSystem)` pair — a *base* unrolling with the reset
//! state pinned (so the bit-blaster folds reset constants through every
//! frame, exactly as a one-shot BMC run would) and a *step* unrolling with
//! a free initial state — and answers every query with
//! `solve_with_assumptions` on the matching solver:
//!
//! * **frame windows** — environment constraints (and installed lemmas)
//!   activate per frame through guard literals, so a query over frames
//!   `0..=k` of a long-lived unrolling is equivalent to a fresh `k`-frame
//!   unrolling: deeper frames never restrict shallower ones, and frames
//!   only ever grow;
//! * **retractable facts** — callers guard step-case hypotheses behind
//!   *selector literals* ([`ProofSession::new_selector`] /
//!   [`ProofSession::guard_fact`]); dropping a hypothesis is one unit
//!   clause ([`ProofSession::retire_selector`]) instead of a rebuild.
//!   Houdini uses this to deactivate falsified candidates in place;
//! * **batched obligations** — [`ProofSession::new_violation_witness`]
//!   builds a literal implying "at least one of these obligations is
//!   violated", so a whole Houdini sweep is a single solver call whose
//!   model reveals every falsified candidate at once;
//! * **proof cores** — after an UNSAT answer,
//!   [`ProofSession::last_core`] names the assumptions (hypothesis
//!   selectors included) that actually carried the proof.
//!
//! ## Soundness of retraction
//!
//! Retiring a selector adds only the unit clause `¬sel`, which satisfies
//! every clause guarded by that selector without touching any other
//! clause — in particular without touching the transition relation or the
//! solver's learnt clauses, which remain sound consequences. The solver
//! is therefore always equivalent to a fresh solver loaded with only the
//! still-active hypotheses; see [`genfv_sat::assume`] for the full
//! argument and the `session_lemma_proptest` suite for the executable
//! form (random add/retract orders versus fresh sessions).
//!
//! All solver reuse is observable through [`SessionStats`]
//! (`bitblasts`, `rebuilds_avoided`, `clauses_retained`, per-query
//! conflicts), which the `genfv-core` flow reports surface.
//!
//! Compile every property (and candidate monitor) into the
//! `Context`/`TransitionSystem` **before** creating the session: the frames
//! bind state symbols as they are built, so later-added monitor state would
//! unroll unconstrained.

use crate::engine::{BmcResult, CheckConfig, CheckStats, Property, ProveResult};
use crate::trace::{read_symbol_cycles, Trace, TraceKind};
use crate::unroll::{UnrollMode, Unroller};
use genfv_ir::{Context, ExprRef, Template, TransitionSystem};
use genfv_obs::QueryKind;
use genfv_sat::{
    ActivationGroup, BaseTag, ClausePool, Lit, PoolConfig, QueryEffort, SolveResult, StepTables,
};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Shared warm-start capital for sessions over one design: the cross-
/// session (and cross-thread) handle behind the `genfv-service` session
/// cache.
///
/// A [`ProofSession`] is tied to one borrow of a design, so it cannot
/// itself outlive a request. What *can* outlive the request is the
/// session's transferable capital:
///
/// * the **step-direction [`Template`]** — the one-time blast of the
///   transition relation that [`UnrollMode::Template`] frames stamp from.
///   Building it is the dominant fixed cost of a fresh session; every
///   identically-laid-out design can stamp from the same block;
/// * the **clean-depth facts** — "no violation of `ok` at cycle `k` from
///   reset" answers (UNSAT base cases). These are sound facts about the
///   design alone: they are discovered with only *proven* lemmas assumed,
///   so they hold in every future session over the same design and let
///   repeat traffic skip its base cases outright.
///
/// Attach a seed through [`CheckConfig::seed`]; [`ProofSession::new`]
/// adopts it only when the seed's **fingerprint** matches the design it
/// is given (node/state/constraint layout), so a seed built for one
/// design can never leak a template or clean facts into a *mutated*
/// design (e.g. after a lemma monitor is compiled in) or into the
/// monitor-augmented clones candidate validation works on — those
/// sessions silently run unseeded. Sessions publish newly learnt clean
/// depths back into the seed when they are dropped, so capital compounds
/// across requests. All methods are thread-safe; merging is monotone
/// (`max` per property), so concurrent sessions only ever strengthen the
/// pool.
///
/// Under a [`CheckConfig::conflict_budget`] a seeded session can answer
/// *more* than a cold one (a skipped base case consumes no budget); it
/// can never answer differently on queries both complete.
#[derive(Debug)]
pub struct SessionSeed {
    /// Layout fingerprint of the design this seed belongs to, XORed with
    /// `salt` at construction.
    fingerprint: u64,
    /// Caller-supplied discriminator mixed into the fingerprint (the
    /// service passes the design's `OptLevel` salt so warm capital built
    /// from an optimized system is never adopted by a differently-optimized
    /// copy of the same source, even if their layouts collide).
    salt: u64,
    /// The shared step-direction template, built by the first seeded
    /// session that needs it.
    template: Mutex<Option<Arc<Template>>>,
    /// Deepest from-reset cycle proven violation-free per observable,
    /// merged from every seeded session over this design.
    clean: Mutex<HashMap<ExprRef, usize>>,
    /// Persistent learnt-clause pool: low-LBD glue exported by every
    /// seeded session's solvers, replayed into later sessions over the
    /// same design (see [`genfv_sat::ClausePool`] for the relocation and
    /// tag-matching soundness arguments).
    pool: ClausePool,
    /// Times a session reused the already-built template.
    template_reuses: AtomicU64,
    /// Times a session had to build the template (0 or 1 in practice).
    template_builds: AtomicU64,
}

impl SessionSeed {
    /// Creates an empty seed for the given design (salt 0).
    pub fn for_design(ctx: &Context, ts: &TransitionSystem) -> Arc<SessionSeed> {
        Self::for_design_salted(ctx, ts, 0)
    }

    /// Creates an empty seed whose fingerprint additionally carries a
    /// caller-chosen `salt` (e.g. [`genfv_ir::OptLevel::salt`]). Sessions
    /// over the same `(ctx, ts)` layout still adopt the seed — the salt is
    /// accounted for in [`SessionSeed::matches`] — but two seeds with
    /// different salts never report the same fingerprint.
    pub fn for_design_salted(ctx: &Context, ts: &TransitionSystem, salt: u64) -> Arc<SessionSeed> {
        Self::for_design_pooled(ctx, ts, salt, PoolConfig::default())
    }

    /// [`SessionSeed::for_design_salted`] with an explicit clause-pool
    /// configuration (byte budget, LBD cutoff, per-call limits).
    pub fn for_design_pooled(
        ctx: &Context,
        ts: &TransitionSystem,
        salt: u64,
        pool: PoolConfig,
    ) -> Arc<SessionSeed> {
        Arc::new(SessionSeed {
            fingerprint: Self::fingerprint(ctx, ts) ^ salt,
            salt,
            template: Mutex::new(None),
            clean: Mutex::new(HashMap::new()),
            pool: ClausePool::new(pool),
            template_reuses: AtomicU64::new(0),
            template_builds: AtomicU64::new(0),
        })
    }

    /// The seed's persistent learnt-clause pool.
    pub fn pool(&self) -> &ClausePool {
        &self.pool
    }

    /// The salt this seed was created with (0 unless the creator passed
    /// one via [`SessionSeed::for_design_salted`]).
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// A layout fingerprint: every hash-consed node's content plus the
    /// expression indices of every state, input, constraint, and signal.
    /// Two designs prepared from identical sources share it; compiling
    /// anything further onto the design (lemma monitors, candidate
    /// monitors) changes it. Only compared within one process, so the
    /// std hasher's stability guarantees suffice.
    pub fn fingerprint(ctx: &Context, ts: &TransitionSystem) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut nodes = std::collections::hash_map::DefaultHasher::new();
        for i in 0..ctx.num_nodes() {
            ctx.expr(ExprRef::from_index(i)).hash(&mut nodes);
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v.wrapping_add(0x9e37_79b9_7f4a_7c15);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(ctx.num_nodes() as u64);
        mix(nodes.finish());
        for s in ts.states() {
            mix(s.symbol.index() as u64);
            mix(s.init.map(|e| e.index() as u64 + 1).unwrap_or(0));
            mix(s.next.index() as u64);
        }
        for &i in ts.inputs() {
            mix(i.index() as u64);
        }
        for &c in ts.constraints() {
            mix(c.index() as u64);
        }
        mix(ts.signals().len() as u64);
        h
    }

    /// Whether this seed was built for a design with this layout (the
    /// seed's own salt is accounted for).
    pub fn matches(&self, ctx: &Context, ts: &TransitionSystem) -> bool {
        self.fingerprint == Self::fingerprint(ctx, ts) ^ self.salt
    }

    /// The shared template, building it on first use. Callers must have
    /// checked [`SessionSeed::matches`] first.
    fn template_for(&self, ctx: &Context, ts: &TransitionSystem) -> Arc<Template> {
        let mut slot = self.template.lock().expect("seed template lock");
        match &*slot {
            Some(t) => {
                self.template_reuses.fetch_add(1, Ordering::Relaxed);
                Arc::clone(t)
            }
            None => {
                let t = Arc::new(Template::build(ctx, ts));
                self.template_builds.fetch_add(1, Ordering::Relaxed);
                *slot = Some(Arc::clone(&t));
                t
            }
        }
    }

    /// Whether the template has already been built (a session created now
    /// would stamp without paying the blast).
    pub fn template_ready(&self) -> bool {
        self.template.lock().expect("seed template lock").is_some()
    }

    /// Times sessions reused the already-built template.
    pub fn template_reuses(&self) -> u64 {
        self.template_reuses.load(Ordering::Relaxed)
    }

    /// A snapshot of the pooled clean depths.
    fn clean_snapshot(&self) -> HashMap<ExprRef, usize> {
        self.clean.lock().expect("seed clean lock").clone()
    }

    /// Number of observables with a pooled clean depth.
    pub fn clean_entries(&self) -> usize {
        self.clean.lock().expect("seed clean lock").len()
    }

    /// Merges a dying session's clean depths into the pool (monotone:
    /// depths only deepen).
    fn publish_clean(&self, facts: &HashMap<ExprRef, usize>) {
        let mut pool = self.clean.lock().expect("seed clean lock");
        for (&ok, &k) in facts {
            let entry = pool.entry(ok).or_insert(k);
            *entry = (*entry).max(k);
        }
    }

    /// Rough heap footprint (template clause arena, clean pool, clause
    /// pool), for cache byte budgets.
    pub fn approx_bytes(&self) -> usize {
        let template = self
            .template
            .lock()
            .expect("seed template lock")
            .as_ref()
            // ~16 bytes per clause of arena payload plus per-var metadata.
            .map(|t| t.num_clauses() * 16 + t.num_vars() as usize * 8)
            .unwrap_or(0);
        template + self.clean.lock().expect("seed clean lock").len() * 24 + self.pool.approx_bytes()
    }
}

/// Observability for one [`ProofSession`]: how much work the persistent
/// solvers absorbed that a rebuild-per-query architecture would have
/// repeated.
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionStats {
    /// Transition-relation loads performed (always 1 per session — the
    /// base and step directions are each bit-blasted once, however many
    /// queries follow; a rebuild architecture pays this per check).
    pub bitblasts: u64,
    /// Solver queries issued through this session.
    pub solver_calls: u64,
    /// Queries after the first: each reused a loaded clause database
    /// where the rebuild architecture would have re-bit-blasted.
    pub rebuilds_avoided: u64,
    /// Live problem clauses across the session's solvers at the most
    /// recent query — the formula capital carried from query to query.
    pub clauses_retained: u64,
    /// Highest frame index unrolled so far (either direction).
    pub max_frame: usize,
    /// Selector (activation) literals created.
    pub selectors_created: u64,
    /// Selectors permanently deactivated.
    pub selectors_retired: u64,
    /// Conflicts of the most recent query.
    pub last_query_conflicts: u64,
    /// Assumption-core size of the most recent UNSAT answer.
    pub last_core_size: u64,
    /// Total conflicts across all queries.
    pub conflicts: u64,
    /// Total decisions across all queries.
    pub decisions: u64,
    /// Total propagations across all queries.
    pub propagations: u64,
    /// Queries escalated to a portfolio race (past the solo probe).
    pub portfolio_races: u64,
    /// Glue clauses imported from losing portfolio workers.
    pub portfolio_glue_shared: u64,
    /// Base-case queries skipped outright because a [`SessionSeed`]
    /// carried the clean-depth fact in from an earlier session.
    pub clean_seed_hits: u64,
    /// Sessions that stamped from a seed's already-built template instead
    /// of blasting their own.
    pub templates_reused: u64,
    /// Queries answered by cube-and-conquer (the portfolio split the
    /// search space instead of racing configurations).
    pub cube_splits: u64,
    /// Total cubes conquered across all cube-split queries.
    pub cubes_raced: u64,
    /// Learnt clauses replayed from the seed's clause pool into this
    /// session's solvers.
    pub pool_clauses_imported: u64,
    /// Learnt clauses this session published into the seed's clause pool.
    pub pool_clauses_exported: u64,
    /// Pool imports that yielded at least one clause (warm-start hits).
    pub pool_hits: u64,
    /// Pool entries evicted (byte budget) by this session's exports.
    pub pool_evictions: u64,
}

// Folding another session's counters into this one (used when several
// sessions serve one logical run, e.g. parallel worker shards or
// lemma-installation rebuilds in the flows). `last_*` fields only follow a
// session that actually queried — don't clobber with zeros.
genfv_obs::impl_accumulate!(SessionStats {
    add: [
        bitblasts,
        solver_calls,
        rebuilds_avoided,
        selectors_created,
        selectors_retired,
        conflicts,
        decisions,
        propagations,
        portfolio_races,
        portfolio_glue_shared,
        clean_seed_hits,
        templates_reused,
        cube_splits,
        cubes_raced,
        pool_clauses_imported,
        pool_clauses_exported,
        pool_hits,
        pool_evictions,
    ],
    max: [clauses_retained, max_frame],
    last_if solver_calls: [last_query_conflicts, last_core_size],
});

/// The two persistent proof directions of a session.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Dir {
    /// From-reset unrolling (reset values pinned and constant-folded).
    Base,
    /// Arbitrary-start unrolling (induction step, Houdini fixpoint).
    Step,
}

/// A persistent incremental checker for one design.
///
/// See the [module docs](self) for the architecture. The session borrows
/// the design's `Context` and `TransitionSystem`; everything mutable
/// (solvers, frames, selectors, lemmas) lives inside.
#[derive(Debug)]
pub struct ProofSession<'c> {
    ctx: &'c Context,
    ts: &'c TransitionSystem,
    /// From-reset unrolling: init pinned, constraints frame-guarded.
    base: Unroller<'c>,
    /// Arbitrary-start unrolling: free init, constraints frame-guarded.
    step: Unroller<'c>,
    config: CheckConfig,
    /// Installed lemmas, activated at every frame of both directions
    /// through the frame guards.
    lemmas: Vec<ExprRef>,
    /// Base frames `0..lemma_frames_base` have all current lemmas active.
    lemma_frames_base: usize,
    /// Step frames `0..lemma_frames_step` have all current lemmas active.
    lemma_frames_step: usize,
    /// Deepest from-reset cycle proven violation-free per observable, by
    /// earlier UNSAT base queries on this session. Lemma installation
    /// only shrinks the model set, so cached cleanliness stays valid;
    /// `prove` uses it to skip base cases that `bmc_check` already
    /// discharged — reuse a rebuild architecture cannot express.
    clean_upto: std::collections::HashMap<ExprRef, usize>,
    /// Per-property step-case activation: `sel → ok@frame` for every
    /// frame `< covered`. Step queries assume the one selector instead of
    /// `k` separate `ok` literals, so learnt clauses are conditioned on a
    /// *stable* literal and transfer across induction depths (and across
    /// the properties of a shared session).
    step_prop_guards: std::collections::HashMap<ExprRef, (Lit, usize)>,
    /// Warm-start capital adopted from [`CheckConfig::seed`] when the
    /// seed's fingerprint matches this design; learnt clean depths are
    /// published back into it when the session drops.
    seed: Option<Arc<SessionSeed>>,
    /// The clean depths that came in from the seed, kept apart from
    /// locally-discovered ones so seed hits are attributable.
    seeded_clean: HashMap<ExprRef, usize>,
    /// Clause-pool entry ids this session has already replayed (or
    /// itself exported) — never imported twice.
    pool_consumed: HashSet<u64>,
    /// Every [`BaseTag`] of the base solver's own addition history, one
    /// per base query (real or clean-skipped): the tags this session can
    /// soundly vouch for when importing base-direction pool entries.
    base_tags_seen: HashSet<BaseTag>,
    /// Simple-path activation literal (created on first use, step side).
    sp_guard: Option<Lit>,
    /// Simple-path pairs exist for all `(i, j)` with `j <= sp_frames`.
    sp_frames: usize,
    /// Selector allocator/bookkeeper for the step solver (hypotheses,
    /// violation witnesses); lives in `genfv-sat`.
    selectors: ActivationGroup,
    /// Solver effort of the most recent query. In portfolio mode this is
    /// the winning worker's race-wide effort (probe and every epoch
    /// included), which the winner solver's own `last_*` counters
    /// undercount.
    last_effort: QueryEffort,
    stats: SessionStats,
}

impl<'c> ProofSession<'c> {
    /// Creates a session: the one (per-direction) bit-blast this design
    /// will get. In [`UnrollMode::Template`] (the default) the free-start
    /// step direction stamps its frames from a one-time
    /// [`genfv_ir::Template`] blast; the reset-pinned base direction
    /// always keeps the constant-folding DAG-walk path (pinned frames are
    /// not frame-uniform, so stamping cannot beat folding there).
    pub fn new(ctx: &'c Context, ts: &'c TransitionSystem, config: CheckConfig) -> Self {
        // Adopt the caller's seed only when it was built for exactly this
        // design layout — validation clones (extra monitor state) and
        // post-lemma-install designs silently run unseeded.
        let seed = config.seed.as_ref().filter(|s| s.matches(ctx, ts)).map(Arc::clone);
        let mut stats = SessionStats { bitblasts: 1, ..Default::default() };
        let mut base = Unroller::new_guarded(ctx, ts, true);
        let mut step = match config.unroll_mode {
            UnrollMode::Template => {
                let tpl = match &seed {
                    Some(s) => {
                        let ready = s.template_ready();
                        let t = s.template_for(ctx, ts);
                        if ready {
                            stats.templates_reused += 1;
                        }
                        t
                    }
                    None => Arc::new(Template::build(ctx, ts)),
                };
                Unroller::with_shared_template(ctx, ts, false, true, tpl)
            }
            UnrollMode::DagWalk => Unroller::new_guarded(ctx, ts, false),
        };
        // Thread the observability handle into both persistent solvers so
        // every query records a `solve.<kind>` span and per-kind metrics
        // (portfolio worker clones inherit the handle).
        base.blaster_mut().solver_mut().set_obs(config.obs.clone());
        base.blaster_mut().solver_mut().set_query_kind(QueryKind::Base);
        step.blaster_mut().solver_mut().set_obs(config.obs.clone());
        step.blaster_mut().solver_mut().set_query_kind(QueryKind::Step);
        let seeded_clean = seed.as_ref().map(|s| s.clean_snapshot()).unwrap_or_default();
        ProofSession {
            ctx,
            ts,
            base,
            step,
            config,
            lemmas: Vec::new(),
            lemma_frames_base: 0,
            lemma_frames_step: 0,
            clean_upto: seeded_clean.clone(),
            step_prop_guards: std::collections::HashMap::new(),
            seed,
            seeded_clean,
            pool_consumed: HashSet::new(),
            base_tags_seen: HashSet::new(),
            sp_guard: None,
            sp_frames: 0,
            selectors: ActivationGroup::new(),
            last_effort: QueryEffort::default(),
            stats,
        }
    }

    /// Reuse counters.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// The check configuration the session applies to its queries.
    pub fn config(&self) -> &CheckConfig {
        &self.config
    }

    fn sync_selector_stats(&mut self) {
        self.stats.selectors_created = self.selectors.created;
        self.stats.selectors_retired = self.selectors.retired;
    }

    fn un(&mut self, dir: Dir) -> &mut Unroller<'c> {
        match dir {
            Dir::Base => &mut self.base,
            Dir::Step => &mut self.step,
        }
    }

    /// Installs a proven lemma: activated at every existing and future
    /// frame of both directions (scoped to the query window through the
    /// frame guards).
    pub fn add_lemma(&mut self, lemma: ExprRef) {
        for dir in [Dir::Base, Dir::Step] {
            let upto = match dir {
                Dir::Base => self.lemma_frames_base,
                Dir::Step => self.lemma_frames_step,
            };
            for frame in 0..upto {
                let un = self.un(dir);
                let l = un.lit_at(frame, lemma);
                let g = un.frame_guard(frame).expect("session unroller is guarded");
                un.blaster_mut().solver_mut().add_clause([!g, l]);
            }
        }
        self.lemmas.push(lemma);
    }

    /// Installs several lemmas.
    pub fn add_lemmas(&mut self, lemmas: &[ExprRef]) {
        for &l in lemmas {
            self.add_lemma(l);
        }
    }

    /// Ensures frames `0..=upto` exist in `dir`, with lemmas activated.
    fn ensure_frames_dir(&mut self, dir: Dir, upto: usize) {
        let have = self.un(dir).frames().len();
        let _span = (upto >= have).then(|| {
            let name = match dir {
                Dir::Base => "session.extend.base",
                Dir::Step => "session.extend.step",
            };
            self.config.obs.span_with(name, || format!("frames={have}..={upto}"))
        });
        self.un(dir).ensure_frame(upto);
        loop {
            let done = match dir {
                Dir::Base => self.lemma_frames_base > upto,
                Dir::Step => self.lemma_frames_step > upto,
            };
            if done {
                break;
            }
            let frame = match dir {
                Dir::Base => self.lemma_frames_base,
                Dir::Step => self.lemma_frames_step,
            };
            for i in 0..self.lemmas.len() {
                let lemma = self.lemmas[i];
                let un = self.un(dir);
                let l = un.lit_at(frame, lemma);
                let g = un.frame_guard(frame).expect("session unroller is guarded");
                un.blaster_mut().solver_mut().add_clause([!g, l]);
            }
            match dir {
                Dir::Base => self.lemma_frames_base += 1,
                Dir::Step => self.lemma_frames_step += 1,
            }
        }
        self.stats.max_frame = self.stats.max_frame.max(upto);
    }

    /// Ensures step frames `0..=upto` exist, with lemmas activated in
    /// each. (The step direction is where callers place hypotheses and
    /// obligations; base frames grow on demand through the from-reset
    /// checks.)
    pub fn ensure_frames(&mut self, upto: usize) {
        self.ensure_frames_dir(Dir::Step, upto);
    }

    /// The literal of a 1-bit expression in step frame `frame` (frames
    /// are created on demand).
    pub fn literal(&mut self, frame: usize, expr: ExprRef) -> Lit {
        self.ensure_frames_dir(Dir::Step, frame);
        self.step.lit_at(frame, expr)
    }

    /// Creates a fresh selector (activation) literal on the step solver.
    pub fn new_selector(&mut self) -> Lit {
        let sel = self.selectors.fresh(self.step.blaster_mut().solver_mut());
        self.sync_selector_stats();
        sel
    }

    /// Adds `selector → expr@frame` on the step side: assuming the
    /// selector activates the fact; retiring the selector erases it
    /// without touching the solver's clause capital.
    pub fn guard_fact(&mut self, selector: Lit, frame: usize, expr: ExprRef) {
        let l = self.literal(frame, expr);
        self.selectors.imply(self.step.blaster_mut().solver_mut(), selector, l);
    }

    /// Permanently deactivates a selector (one unit clause, no rebuild).
    /// Sound by the retraction argument in [`genfv_sat::assume`].
    pub fn retire_selector(&mut self, selector: Lit) {
        self.selectors.retire(self.step.blaster_mut().solver_mut(), selector);
        self.sync_selector_stats();
    }

    /// Builds a witness literal implying "at least one of these facts is
    /// violated": `w → ⋁ ¬expr@frame` (step side). Assuming `w` asks the
    /// solver to find a model violating one of a whole batch of
    /// obligations in a single query; on SAT, probe each obligation with
    /// [`ProofSession::value`].
    pub fn new_violation_witness(&mut self, obligations: &[(usize, ExprRef)]) -> Lit {
        let facts: Vec<Lit> =
            obligations.iter().map(|&(frame, expr)| self.literal(frame, expr)).collect();
        let w = self.selectors.any_violated(self.step.blaster_mut().solver_mut(), &facts);
        self.sync_selector_stats();
        w
    }

    /// The seed's clause pool, when this session participates in it for
    /// direction `dir` (a seed was adopted and
    /// [`CheckConfig::clause_pool`] covers the direction).
    fn pool_seed(&self, dir: Dir) -> Option<Arc<SessionSeed>> {
        let covered = match self.config.clause_pool {
            crate::engine::PoolScope::Off => false,
            crate::engine::PoolScope::BaseOnly => dir == Dir::Base,
            crate::engine::PoolScope::Full => true,
        };
        if !covered {
            return None;
        }
        self.seed.clone()
    }

    /// The step solver's frame layout in [`StepTables`] form — every
    /// stamped frame's window base plus frame 0's free-state literals.
    /// `None` outside template mode (DAG-walked frames have no uniform
    /// windows to normalize against).
    fn step_tables(&self) -> Option<(Vec<usize>, usize, Vec<Lit>)> {
        let width = self.step.template()?.num_vars() as usize;
        let mut bases = Vec::new();
        while let Some(s) = self.step.frame_stamp(bases.len()) {
            bases.push(s.base());
        }
        let x_lits = self.step.frame_stamp(0)?.xmap().to_vec();
        Some((bases, width, x_lits))
    }

    /// Pre-query pool participation: replay every eligible pool entry
    /// into `dir`'s solver, and return the context the post-query export
    /// needs (the seed, the base-direction tag of this query, and the
    /// learnt-clause mark delimiting what this query learns).
    fn pool_pre(&mut self, dir: Dir) -> Option<(Arc<SessionSeed>, Option<BaseTag>, usize)> {
        let seed = self.pool_seed(dir)?;
        let (tag, clauses) = match dir {
            Dir::Base => {
                let tag = BaseTag::of(self.base.blaster().solver());
                self.base_tags_seen.insert(tag);
                let tags = &self.base_tags_seen;
                let clauses =
                    seed.pool().import_base(&mut self.pool_consumed, |t| tags.contains(t));
                (Some(tag), clauses)
            }
            Dir::Step => {
                let (bases, width, x_lits) = self.step_tables()?;
                let tables =
                    StepTables { window_bases: &bases, window_width: width, x_lits: &x_lits };
                (None, seed.pool().import_step(&mut self.pool_consumed, &tables))
            }
        };
        if !clauses.is_empty() {
            let solver = self.un(dir).blaster_mut().solver_mut();
            for c in &clauses {
                solver.import_learnt(c);
            }
            self.stats.pool_clauses_imported += clauses.len() as u64;
            self.stats.pool_hits += 1;
        }
        let mark = self.un(dir).blaster().solver().clause_db_mark();
        Some((seed, tag, mark))
    }

    /// Post-query pool participation: publish the glue this query learnt
    /// (base clauses verbatim under the query-start tag; step clauses
    /// normalized through the frame tables), marking the admitted ids as
    /// consumed so this session never re-imports its own exports.
    fn pool_post(&mut self, dir: Dir, seed: &SessionSeed, tag: Option<BaseTag>, mark: usize) {
        let cfg = seed.pool().config().clone();
        let clauses =
            self.un(dir).blaster().solver().export_glue_since(mark, cfg.max_lbd, cfg.export_limit);
        if clauses.is_empty() {
            return;
        }
        let evictions_before = seed.pool().stats().evictions;
        let ids = match (dir, tag) {
            (Dir::Base, Some(tag)) => seed.pool().export_base(tag, &clauses),
            (Dir::Step, _) => {
                let Some((bases, width, x_lits)) = self.step_tables() else {
                    return;
                };
                let tables =
                    StepTables { window_bases: &bases, window_width: width, x_lits: &x_lits };
                seed.pool().export_step(&clauses, &tables)
            }
            _ => return,
        };
        self.stats.pool_clauses_exported += ids.len() as u64;
        self.pool_consumed.extend(ids);
        self.stats.pool_evictions += seed.pool().stats().evictions.saturating_sub(evictions_before);
    }

    fn solve_on(&mut self, dir: Dir, window: usize, extra: &[Lit]) -> SolveResult {
        self.ensure_frames_dir(dir, window);
        let pool_ctx = self.pool_pre(dir);
        let mut assumptions = Vec::with_capacity(window + 1 + extra.len());
        // The caller's assumptions (obligations, hypothesis selectors) go
        // first so the search is focused on the actual query before the
        // window guards are enabled.
        assumptions.extend_from_slice(extra);
        for frame in 0..=window {
            let g = self.un(dir).frame_guard(frame).expect("session unroller is guarded");
            assumptions.push(g);
        }
        let result = match self.config.portfolio.clone() {
            Some(pcfg) => {
                // Portfolio-backed query: the direction's loaded solver is
                // cloned across jittered worker configurations and the
                // winner (with the losers' shared glue) takes its place.
                // The selector/assumption discipline makes the query
                // self-contained, so no re-bit-blast is ever needed.
                let budget = self.config.conflict_budget;
                let portfolio = genfv_portfolio::Portfolio::new(pcfg);
                let out =
                    portfolio.race(self.un(dir).blaster_mut().solver_mut(), &assumptions, budget);
                if out.raced {
                    self.stats.portfolio_races += 1;
                    self.stats.portfolio_glue_shared += out.glue_imported as u64;
                }
                if out.cubes_raced > 0 {
                    self.stats.cube_splits += 1;
                    self.stats.cubes_raced += out.cubes_raced as u64;
                }
                self.last_effort = QueryEffort {
                    conflicts: out.winner.conflicts,
                    decisions: out.winner.decisions,
                    propagations: out.winner.propagations,
                };
                out.result
            }
            None => {
                if let Some(b) = self.config.conflict_budget {
                    self.un(dir).blaster_mut().solver_mut().set_conflict_budget(b);
                }
                let result = self.un(dir).blaster_mut().solve_with_assumptions(&assumptions);
                self.last_effort = self.un(dir).blaster().solver().stats().last_effort();
                result
            }
        };
        if let Some((seed, tag, mark)) = pool_ctx {
            self.pool_post(dir, &seed, tag, mark);
        }
        let clauses =
            self.base.blaster().solver().num_clauses() + self.step.blaster().solver().num_clauses();
        let core = {
            let solver = self.un(dir).blaster().solver();
            if result.is_unsat() {
                solver.last_core().len() as u64
            } else {
                0
            }
        };
        let last = self.last_effort;
        self.stats.solver_calls += 1;
        if self.stats.solver_calls > 1 {
            self.stats.rebuilds_avoided += 1;
        }
        self.stats.clauses_retained = clauses as u64;
        self.stats.last_query_conflicts = last.conflicts;
        self.stats.conflicts += last.conflicts;
        self.stats.decisions += last.decisions;
        self.stats.propagations += last.propagations;
        if result.is_unsat() {
            self.stats.last_core_size = core;
        }
        result
    }

    /// Solves under the session discipline: frame guards `0..=window` of
    /// the chosen direction plus the caller's assumptions. `from_reset`
    /// selects the base (pinned-reset) unrolling; otherwise the step
    /// (arbitrary-start) unrolling answers — so step-side literals
    /// (selectors, obligations) belong in `extra` only when `from_reset`
    /// is `false`. Applies the configured conflict budget.
    pub fn solve_under(&mut self, from_reset: bool, window: usize, extra: &[Lit]) -> SolveResult {
        self.solve_on(if from_reset { Dir::Base } else { Dir::Step }, window, extra)
    }

    /// The value of `lit` in the most recent satisfying step-side model.
    pub fn value(&self, lit: Lit) -> Option<bool> {
        self.step.blaster().solver().value(lit)
    }

    /// The subset of the most recent step query's assumptions responsible
    /// for UNSAT (see [`genfv_sat::Solver::last_core`]).
    pub fn last_core(&self) -> &[Lit] {
        self.step.blaster().solver().last_core()
    }

    fn trace(&self, dir: Dir, name: &str, kind: TraceKind, upto: usize) -> Trace {
        let un = match dir {
            Dir::Base => &self.base,
            Dir::Step => &self.step,
        };
        let cycles = read_symbol_cycles(self.ctx, self.ts, un.blaster(), &un.frames()[..=upto]);
        Trace::from_symbol_cycles(self.ctx, self.ts, name, kind, &cycles)
    }

    fn drain_check_stats(&mut self, _dir: Dir, stats: &mut CheckStats) {
        let e = self.last_effort;
        stats.conflicts += e.conflicts;
        stats.decisions += e.decisions;
        stats.propagations += e.propagations;
        stats.solver_calls += 1;
    }

    /// Bounded model checking of `property` (plus the installed lemmas) up
    /// to `depth` cycles from reset. Frames and learnt clauses persist
    /// into later checks on this session.
    pub fn bmc_check(&mut self, property: &Property, depth: usize) -> BmcResult {
        let _span = self.config.obs.span_with("bmc", || format!("{} depth={depth}", property.name));
        let start = Instant::now();
        let mut stats = CheckStats::default();
        let skip = self.clean_upto.get(&property.ok).copied();
        for k in 0..=depth {
            if skip.is_some_and(|clean| k <= clean) {
                // Proven clean by an earlier query on this session (or by
                // a previous session that published into the seed).
                self.note_clean_skip(property.ok, k);
                continue;
            }
            self.ensure_frames_dir(Dir::Base, k);
            let bad = !self.base.lit_at(k, property.ok);
            let res = self.solve_on(Dir::Base, k, &[bad]);
            self.drain_check_stats(Dir::Base, &mut stats);
            match res {
                SolveResult::Sat => {
                    let trace = self.trace(
                        Dir::Base,
                        &property.name,
                        TraceKind::CounterexampleFromReset,
                        k,
                    );
                    stats.duration = start.elapsed();
                    return BmcResult::Falsified { at: k, trace, stats };
                }
                SolveResult::Unsat => self.record_clean(property.ok, k),
                SolveResult::Unknown => {
                    // Budget exhausted: report what we know (clean so far).
                    stats.duration = start.elapsed();
                    return BmcResult::Clean { depth: k.saturating_sub(1), stats };
                }
            }
        }
        stats.duration = start.elapsed();
        BmcResult::Clean { depth, stats }
    }

    /// Records that `ok` has no violation at cycle `k` from reset (an
    /// UNSAT base answer). Monotone: installing more lemmas only shrinks
    /// the model set, so the fact never needs invalidation.
    fn record_clean(&mut self, ok: ExprRef, k: usize) {
        let entry = self.clean_upto.entry(ok).or_insert(k);
        *entry = (*entry).max(k);
    }

    /// Accounts for a skipped base-case query: if the clean fact that
    /// carried it arrived through the seed (rather than an earlier query
    /// on this session), it is a cross-session cache hit.
    fn note_clean_skip(&mut self, ok: ExprRef, k: usize) {
        if self.seeded_clean.get(&ok).is_some_and(|&clean| k <= clean) {
            self.stats.clean_seed_hits += 1;
        }
        self.replay_skipped_base(ok, k);
    }

    /// A clean-depth skip elides a whole base-case solve — but the solve
    /// it elides once *learnt* clauses, and (in a seeded lineage) pooled
    /// them. Replay that capital: materialize exactly the frames and
    /// property cone the skipped query would have built, so the base
    /// solver's clause-addition history — and hence its [`BaseTag`] —
    /// reaches the same point a cold session's query start would, then
    /// import every pool entry exported at that tag. The skip stays a
    /// skip (no solver call, no conflict budget spent); only the skipped
    /// solve's learnt clauses come back, warm-starting the first query
    /// past the clean frontier.
    fn replay_skipped_base(&mut self, ok: ExprRef, k: usize) {
        if self.pool_seed(Dir::Base).is_none() {
            return;
        }
        self.ensure_frames_dir(Dir::Base, k);
        let _bad = self.base.lit_at(k, ok);
        // Records the tag and imports matching base entries; the mark is
        // dropped — nothing is solved, so there is nothing to export.
        let _ = self.pool_pre(Dir::Base);
    }

    /// Bounded reachability without trace extraction: the earliest cycle
    /// `<= depth` at which `ok` is violated from reset, or `None` if the
    /// bound is clean. Queries frame by frame (early exit on the first
    /// violation) so frames unroll only as deep as the answer requires —
    /// and stay unrolled for every later check on this session. `Unknown`
    /// (budget) counts as "no violation found", like
    /// [`ProofSession::bmc_check`].
    pub fn first_violation(&mut self, ok: ExprRef, depth: usize) -> Option<usize> {
        let skip = self.clean_upto.get(&ok).copied();
        for k in 0..=depth {
            if skip.is_some_and(|clean| k <= clean) {
                // Proven clean by an earlier query on this session (or by
                // a previous session that published into the seed).
                self.note_clean_skip(ok, k);
                continue;
            }
            self.ensure_frames_dir(Dir::Base, k);
            let bad = !self.base.lit_at(k, ok);
            match self.solve_on(Dir::Base, k, &[bad]) {
                SolveResult::Sat => return Some(k),
                SolveResult::Unsat => self.record_clean(ok, k),
                SolveResult::Unknown => return None,
            }
        }
        None
    }

    /// Whether any violation of `ok` is reachable within `depth` cycles —
    /// the base-case form Houdini uses, where the earliest violating cycle
    /// is irrelevant.
    pub fn any_violation(&mut self, ok: ExprRef, depth: usize) -> bool {
        self.first_violation(ok, depth).is_some()
    }

    /// K-induction proof attempt for `property` under the installed
    /// lemmas, entirely by assumptions on the persistent solvers: the step
    /// case assumes the property at frames `0..k` and asks for a violation
    /// at frame `k`; the base case runs on the pinned-reset unrolling.
    /// Matches [`crate::engine::KInduction::prove`] answer-for-answer.
    pub fn prove(&mut self, property: &Property) -> ProveResult {
        let _span = self.config.obs.span_with("prove", || property.name.clone());
        let start = Instant::now();
        let mut stats = CheckStats::default();
        let mut last_step_cex: Option<(usize, Trace)> = None;

        for k in 1..=self.config.max_k {
            // --- base case: no violation in cycles 0..k from reset -------
            // Skipped when an earlier BMC/reachability query on this
            // session already proved cycle k-1 clean (the validation
            // gauntlet's sanity check makes this the common case).
            let cached_clean =
                self.clean_upto.get(&property.ok).is_some_and(|&clean| k - 1 <= clean);
            if cached_clean {
                self.note_clean_skip(property.ok, k - 1);
            } else {
                self.ensure_frames_dir(Dir::Base, k - 1);
                let bad_base = !self.base.lit_at(k - 1, property.ok);
                let res = self.solve_on(Dir::Base, k - 1, &[bad_base]);
                self.drain_check_stats(Dir::Base, &mut stats);
                match res {
                    SolveResult::Sat => {
                        let trace = self.trace(
                            Dir::Base,
                            &property.name,
                            TraceKind::CounterexampleFromReset,
                            k - 1,
                        );
                        stats.duration = start.elapsed();
                        return ProveResult::Falsified { at: k - 1, trace, stats };
                    }
                    SolveResult::Unsat => self.record_clean(property.ok, k - 1),
                    SolveResult::Unknown => {
                        stats.duration = start.elapsed();
                        return ProveResult::Unknown {
                            reason: format!("base-case budget exhausted at k={k}"),
                            stats,
                        };
                    }
                }
            }

            // --- step case ------------------------------------------------
            self.ensure_frames_dir(Dir::Step, k);
            // The property is assumed at frames 0..k through one stable
            // activation literal (`guard → ok@frame`): learnt clauses
            // carry that single literal instead of a depth-dependent set
            // of `ok` assumptions, so conflict knowledge from earlier
            // depths — and earlier properties on this session — stays
            // usable.
            let (guard, covered) = match self.step_prop_guards.get(&property.ok) {
                Some(&(g, c)) => (g, c),
                None => (self.new_selector(), 0),
            };
            for frame in covered..k {
                let ok = self.step.lit_at(frame, property.ok);
                self.selectors.imply(self.step.blaster_mut().solver_mut(), guard, ok);
            }
            self.step_prop_guards.insert(property.ok, (guard, covered.max(k)));
            let mut assumptions: Vec<Lit> = Vec::with_capacity(3);
            assumptions.push(guard);
            if self.config.simple_path {
                let g = match self.sp_guard {
                    Some(g) => g,
                    None => {
                        let g = self.new_selector();
                        self.sp_guard = Some(g);
                        g
                    }
                };
                if self.sp_frames < k {
                    self.step.assert_simple_path_range(self.sp_frames + 1, k, Some(g));
                    self.sp_frames = k;
                }
                assumptions.push(g);
            }
            let bad_step = !self.step.lit_at(k, property.ok);
            assumptions.push(bad_step);
            let res = self.solve_on(Dir::Step, k, &assumptions);
            self.drain_check_stats(Dir::Step, &mut stats);
            match res {
                SolveResult::Unsat => {
                    stats.duration = start.elapsed();
                    return ProveResult::Proven { k, stats };
                }
                SolveResult::Sat => {
                    let trace = self.trace(Dir::Step, &property.name, TraceKind::InductionStep, k);
                    last_step_cex = Some((k, trace));
                }
                SolveResult::Unknown => {
                    stats.duration = start.elapsed();
                    return ProveResult::Unknown {
                        reason: format!("step-case budget exhausted at k={k}"),
                        stats,
                    };
                }
            }
        }

        stats.duration = start.elapsed();
        match last_step_cex {
            Some((k, trace)) => ProveResult::StepFailure { k, trace, stats },
            None => ProveResult::Unknown {
                reason: "no induction depth attempted (max_k = 0?)".to_string(),
                stats,
            },
        }
    }
}

impl Drop for ProofSession<'_> {
    /// Publishes this session's clean-depth facts into its seed (if any):
    /// the capital the next session over the same design starts from.
    /// Sound because every recorded fact is an UNSAT from-reset answer
    /// under proven-invariant assumptions only — a property of the design
    /// itself, not of this session's query history.
    fn drop(&mut self) {
        if let Some(seed) = &self.seed {
            seed.publish_clean(&self.clean_upto);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genfv_ir::Context;

    /// count' = count + 1, init 0, 4 bits.
    fn counter(ctx: &mut Context) -> TransitionSystem {
        let c = ctx.symbol("count", 4);
        let one = ctx.constant(1, 4);
        let zero = ctx.constant(0, 4);
        let next = ctx.add(c, one);
        let mut ts = TransitionSystem::new("counter");
        ts.add_state(c, Some(zero), next);
        ts.add_signal("count", c);
        ts
    }

    #[test]
    fn salted_seeds_stay_adoptable_but_distinct() {
        let mut ctx = Context::new();
        let ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let five = ctx.constant(5, 4);
        let lt5 = ctx.ult(c, five);
        let plain = SessionSeed::for_design(&ctx, &ts);
        let salted = SessionSeed::for_design_salted(&ctx, &ts, 0xdead_beef);
        assert_eq!(plain.salt(), 0);
        assert_eq!(salted.salt(), 0xdead_beef);
        // Both match the design they were built for...
        assert!(plain.matches(&ctx, &ts));
        assert!(salted.matches(&ctx, &ts));
        // ...and a session adopts a salted seed exactly like a plain one.
        let config = CheckConfig { seed: Some(Arc::clone(&salted)), ..Default::default() };
        {
            let mut s = ProofSession::new(&ctx, &ts, config.clone());
            match s.bmc_check(&Property::new("lt5", lt5), 8) {
                BmcResult::Falsified { at, .. } => assert_eq!(at, 5),
                other => panic!("expected falsification: {other:?}"),
            }
        }
        assert!(salted.template_ready(), "salted seed accumulates warm capital");
        let warm = ProofSession::new(&ctx, &ts, config);
        assert_eq!(warm.stats().templates_reused, 1);
    }

    #[test]
    fn one_session_serves_bmc_and_induction() {
        let mut ctx = Context::new();
        let ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let cc = ctx.eq(c, c);
        let trivially_true = Property::new("tauto", cc);
        let five = ctx.constant(5, 4);
        let lt5 = ctx.ult(c, five);
        let eventually_false = Property::new("lt5", lt5);

        let mut s = ProofSession::new(&ctx, &ts, CheckConfig::default());
        assert!(s.bmc_check(&trivially_true, 8).is_clean());
        assert!(s.prove(&trivially_true).is_proven());
        match s.bmc_check(&eventually_false, 8) {
            BmcResult::Falsified { at, .. } => assert_eq!(at, 5),
            other => panic!("expected falsification: {other:?}"),
        }
        let stats = s.stats();
        assert_eq!(stats.bitblasts, 1, "one persistent load for the whole session");
        assert_eq!(stats.rebuilds_avoided, stats.solver_calls - 1);
        assert!(stats.clauses_retained > 0);
    }

    #[test]
    fn selectors_activate_and_retire_hypotheses() {
        let mut ctx = Context::new();
        let ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let nine = ctx.constant(9, 4);
        let eq9 = ctx.eq(c, nine);
        let mut s = ProofSession::new(&ctx, &ts, CheckConfig::default());

        let sel = s.new_selector();
        s.guard_fact(sel, 0, eq9);
        let l = s.literal(0, eq9);
        // Selector assumed: count@0 == 9 is forced.
        assert!(s.solve_under(false, 0, &[sel, !l]).is_unsat());
        // Selector not assumed: free.
        assert!(s.solve_under(false, 0, &[!l]).is_sat());
        // Retired: assuming the selector now contradicts nothing else but
        // can no longer force the fact — the clause is satisfied by ¬sel.
        s.retire_selector(sel);
        assert!(s.solve_under(false, 0, &[!l]).is_sat());
    }

    #[test]
    fn violation_witness_finds_the_violated_member() {
        let mut ctx = Context::new();
        let ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let three = ctx.constant(3, 4);
        let lt3 = ctx.ult(c, three); // violated from reset at cycle 3
        let cc = ctx.eq(c, c); // never violated
        let mut s = ProofSession::new(&ctx, &ts, CheckConfig::default());
        assert!(s.any_violation(lt3, 8));
        assert!(!s.any_violation(cc, 8));
    }

    #[test]
    fn lemmas_scope_to_existing_and_future_frames() {
        let mut ctx = Context::new();
        let ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let eight = ctx.constant(8, 4);
        let lt8 = ctx.ult(c, eight);
        let four = ctx.constant(4, 4);
        let lt4 = ctx.ult(c, four);

        let mut s = ProofSession::new(&ctx, &ts, CheckConfig::default());
        // Build some frames first, then install: both directions covered.
        s.ensure_frames(2);
        s.add_lemma(lt4);
        let l0 = s.literal(0, lt8);
        // lt4@0 (lemma) implies lt8@0 in every model of the window.
        assert!(s.solve_under(false, 0, &[!l0]).is_unsat());
        let l3 = s.literal(3, lt8);
        // Frame 3 created after the lemma was installed: 0..3 all carry it,
        // and count < 4 at frame 0 cannot reach 8 by frame 3 anyway.
        assert!(s.solve_under(false, 3, &[!l3]).is_unsat());
    }

    #[test]
    fn portfolio_backed_session_matches_single_solver() {
        let mut ctx = Context::new();
        let ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let five = ctx.constant(5, 4);
        let lt5 = ctx.ult(c, five);
        let eventually_false = Property::new("lt5", lt5);
        let cc = ctx.eq(c, c);
        let tauto = Property::new("tauto", cc);

        let portfolio = genfv_portfolio::PortfolioConfig {
            workers: 3,
            probe_conflicts: Some(1), // force races even on a toy design
            epoch_start: 64,
            ..Default::default()
        };
        let config = CheckConfig { portfolio: Some(portfolio), ..CheckConfig::default() };
        let mut raced = ProofSession::new(&ctx, &ts, config);
        let mut solo = ProofSession::new(&ctx, &ts, CheckConfig::default());

        assert!(raced.prove(&tauto).is_proven());
        assert!(solo.prove(&tauto).is_proven());
        match (raced.bmc_check(&eventually_false, 8), solo.bmc_check(&eventually_false, 8)) {
            (BmcResult::Falsified { at: a, .. }, BmcResult::Falsified { at: b, .. }) => {
                assert_eq!(a, b, "portfolio and single-solver must find the same cycle");
            }
            other => panic!("expected falsification from both: {other:?}"),
        }
        assert_eq!(raced.stats().bitblasts, 1, "racing must not re-bit-blast");
    }

    #[test]
    fn seed_carries_template_and_clean_depths_across_sessions() {
        let mut ctx = Context::new();
        let ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let five = ctx.constant(5, 4);
        let lt5 = ctx.ult(c, five);
        let eventually_false = Property::new("lt5", lt5);
        let seed = SessionSeed::for_design(&ctx, &ts);
        let config = CheckConfig { seed: Some(Arc::clone(&seed)), ..Default::default() };

        // First session: builds the template, discovers clean depths.
        {
            let mut s = ProofSession::new(&ctx, &ts, config.clone());
            assert_eq!(s.stats().templates_reused, 0, "first session blasts");
            match s.bmc_check(&eventually_false, 8) {
                BmcResult::Falsified { at, .. } => assert_eq!(at, 5),
                other => panic!("expected falsification: {other:?}"),
            }
        } // drop publishes cycles 0..=4 clean into the seed
        assert!(seed.template_ready());
        assert!(seed.clean_entries() > 0);

        // Second session: stamps from the shared template and skips the
        // published base cases — same verdict, fewer queries.
        let mut warm = ProofSession::new(&ctx, &ts, config.clone());
        assert_eq!(warm.stats().templates_reused, 1);
        match warm.bmc_check(&eventually_false, 8) {
            BmcResult::Falsified { at, .. } => assert_eq!(at, 5),
            other => panic!("expected falsification: {other:?}"),
        }
        assert!(warm.stats().clean_seed_hits >= 5, "cycles 0..=4 skipped from the seed");

        // A mutated design (different layout) must not adopt the seed.
        let mut ctx2 = Context::new();
        let ts2 = counter(&mut ctx2);
        let extra = ctx2.constant(7, 4);
        let c2 = ctx2.find_symbol("count").unwrap();
        let _monitor = ctx2.eq(c2, extra);
        assert!(!seed.matches(&ctx2, &ts2));
        let cold = ProofSession::new(&ctx2, &ts2, config.clone());
        assert_eq!(cold.stats().templates_reused, 0);
    }

    /// s' = s + i with the free input constrained to i ≤ 16: proving
    /// "s ≠ 255 at cycle k" (true while 16·k < 255) forces the solver to
    /// bound the accumulated sum through the adder carries — real search,
    /// real learnt clauses, unlike a closed-form chain the base
    /// direction's constant folding would evaluate outright.
    fn bounded_accumulator(ctx: &mut Context) -> TransitionSystem {
        let s = ctx.symbol("s", 8);
        let i = ctx.symbol("i", 8);
        let zero = ctx.constant(0, 8);
        let cap = ctx.constant(17, 8);
        let next = ctx.add(s, i);
        let small = ctx.ult(i, cap);
        let mut ts = TransitionSystem::new("bounded_accumulator");
        ts.add_state(s, Some(zero), next);
        ts.add_input(i);
        ts.add_constraint(small);
        ts.add_signal("s", s);
        ts
    }

    #[test]
    fn clause_pool_warm_starts_clean_skips_and_stays_sound() {
        let mut ctx = Context::new();
        let ts = bounded_accumulator(&mut ctx);
        let s = ctx.find_symbol("s").unwrap();
        let full = ctx.constant(255, 8);
        let ne_full = ctx.ne(s, full); // 16·12 < 255: clean through depth 12
        let prop = Property::new("ne_full", ne_full);
        let seed = SessionSeed::for_design(&ctx, &ts);
        let config = CheckConfig { seed: Some(Arc::clone(&seed)), ..Default::default() };

        // Cold session: solves every base case, publishing glue + tags.
        let cold_stats = {
            let mut s = ProofSession::new(&ctx, &ts, config.clone());
            assert!(s.bmc_check(&prop, 12).is_clean());
            *s.stats()
        };
        assert!(cold_stats.pool_clauses_exported > 0, "multiplier queries must learn glue");
        assert!(seed.pool().stats().exports > 0);
        assert!(seed.pool().approx_bytes() > 0, "pool bytes count toward the seed footprint");

        // Warm session: every base case is clean-skipped, yet the skipped
        // solves' learnt clauses are replayed through the pool.
        let mut warm = ProofSession::new(&ctx, &ts, config.clone());
        assert!(warm.bmc_check(&prop, 12).is_clean());
        assert!(warm.stats().clean_seed_hits >= 12, "cycles skipped from the seed");
        assert!(warm.stats().pool_clauses_imported > 0, "skips must replay pooled clauses");
        assert!(warm.stats().pool_hits > 0);
        drop(warm);

        // Pool-disabled control: same verdict, no pool traffic.
        let off = CheckConfig { clause_pool: crate::engine::PoolScope::Off, ..config };
        let mut control = ProofSession::new(&ctx, &ts, off);
        assert!(control.bmc_check(&prop, 12).is_clean());
        assert_eq!(control.stats().pool_clauses_imported, 0);
        assert_eq!(control.stats().pool_clauses_exported, 0);
    }

    #[test]
    fn base_direction_constant_folds_reset() {
        let mut ctx = Context::new();
        let ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let three = ctx.constant(3, 4);
        let not3 = ctx.ne(c, three);
        let never3 = Property::new("never3", not3);
        let mut s = ProofSession::new(&ctx, &ts, CheckConfig::default());
        // The base unrolling knows the reset value outright (bound, not
        // activated), so `count != 3` is clean for exactly 3 cycles and
        // deterministically falsified at cycle 3.
        match s.bmc_check(&never3, 2) {
            BmcResult::Clean { depth, .. } => assert_eq!(depth, 2),
            other => panic!("unexpected: {other:?}"),
        }
        match s.bmc_check(&never3, 8) {
            BmcResult::Falsified { at, trace, .. } => {
                assert_eq!(at, 3);
                assert_eq!(trace.steps.len(), 4, "cycles 0..=3");
            }
            other => panic!("expected falsification at 3: {other:?}"),
        }
    }
}
