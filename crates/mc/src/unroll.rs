//! Time-frame expansion of a transition system over one incremental SAT
//! solver.
//!
//! Frame *i* has its own [`LitEnv`]; state symbols of frame *i+1* are bound
//! to the bit-blasted next-state functions evaluated in frame *i*. With
//! `use_init = true`, frame 0 additionally pins initialised states to their
//! reset values (BMC/base case) — binding them as constants, so the
//! bit-blaster folds reset values through the whole unrolling; with
//! `false`, frame 0 is an arbitrary state (induction step).
//!
//! Environment constraints hold in every frame. [`Unroller::new`] asserts
//! them outright (the one-shot/rebuild engines); [`Unroller::new_guarded`]
//! activates them per frame through [`Unroller::frame_guard`] literals
//! instead, so a query over frames `0..=k` of a long-lived unrolling
//! assumes exactly the constraints a fresh `k`-frame unrolling would
//! assert — deeper frames do not restrict shallower ones, and frames only
//! ever grow. The guarded form is the substrate of
//! [`crate::session::ProofSession`], which owns one guarded unroller per
//! proof direction (pinned base, free step).
//!
//! ## Frame encoding modes
//!
//! How a new frame's CNF is produced is selected by [`UnrollMode`]:
//!
//! * [`UnrollMode::Template`] (production default) — for a *free-start*
//!   unrolling (the induction-step direction), the transition relation
//!   and constraints are blasted **once** into a relocatable
//!   [`genfv_ir::Template`]; each frame is then stamped by a bulk
//!   clause-arena copy with a per-literal offset add, substituting
//!   current-state literals with the predecessor's next-state outputs
//!   (no linking clauses — state literals chain exactly like the DAG
//!   walk). A *reset-pinned* unrolling keeps the DAG-walk path for
//!   every frame: constant folding specialises pinned frames (on
//!   deterministic cones they cost no clauses at all), which a uniform
//!   frame copy can never beat.
//! * [`UnrollMode::DagWalk`] — the original per-frame expression-DAG walk
//!   with direct Tseitin encoding; preserved as the differential oracle
//!   (`template_differential` in `genfv-designs`) and for the
//!   rebuild-per-query reference engines.

use genfv_ir::{BitBlaster, Context, ExprRef, FrameStamp, LitEnv, Template, TransitionSystem};
use genfv_sat::Lit;
use std::sync::Arc;

/// How frame 0 treats initialised state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum InitMode {
    /// Frame 0 binds initialised states directly to their reset values.
    Pinned,
    /// Frame 0 is an arbitrary state.
    Free,
}

/// How new time frames are encoded (see the [module docs](self)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum UnrollMode {
    /// Template-stamped frames: one-time blast, per-frame clause-arena
    /// copy by literal renaming. The production default.
    #[default]
    Template,
    /// Per-frame expression-DAG walk with direct Tseitin encoding — the
    /// pre-template path, kept as the differential oracle.
    DagWalk,
}

/// Incremental unroller.
#[derive(Debug)]
pub struct Unroller<'c> {
    ctx: &'c Context,
    ts: &'c TransitionSystem,
    bb: BitBlaster,
    frames: Vec<LitEnv>,
    init: InitMode,
    /// Per-frame activation literals for environment constraints (and any
    /// caller-supplied frame-local facts); `None` when constraints are
    /// asserted unconditionally (one-shot/rebuild mode).
    frame_guards: Option<Vec<Lit>>,
    mode: UnrollMode,
    /// The shared one-time blast (built lazily on the first stamped
    /// frame unless supplied by the session).
    template: Option<Arc<Template>>,
    /// Per-frame window stamps; `None` for DAG-walked frames.
    stamps: Vec<Option<FrameStamp>>,
}

impl<'c> Unroller<'c> {
    /// Creates an unroller with zero frames and unconditional constraints,
    /// in the DAG-walk (reference) encoding.
    pub fn new(ctx: &'c Context, ts: &'c TransitionSystem, use_init: bool) -> Self {
        Unroller::with_mode(ctx, ts, use_init, false, UnrollMode::DagWalk)
    }

    /// Creates an unroller for long-lived sessions in the DAG-walk
    /// (reference) encoding: environment constraints are activated per
    /// frame through guard literals, so any query window `0..=k` on the
    /// persistent solver is equivalent to a fresh `k`-frame unrolling.
    pub fn new_guarded(ctx: &'c Context, ts: &'c TransitionSystem, use_init: bool) -> Self {
        Unroller::with_mode(ctx, ts, use_init, true, UnrollMode::DagWalk)
    }

    /// Creates an unroller with an explicit frame-encoding mode.
    pub fn with_mode(
        ctx: &'c Context,
        ts: &'c TransitionSystem,
        use_init: bool,
        guarded: bool,
        mode: UnrollMode,
    ) -> Self {
        let init = if use_init { InitMode::Pinned } else { InitMode::Free };
        Unroller {
            ctx,
            ts,
            bb: BitBlaster::new(),
            frames: Vec::new(),
            init,
            frame_guards: guarded.then(Vec::new),
            mode,
            template: None,
            stamps: Vec::new(),
        }
    }

    /// [`Unroller::with_mode`] with a pre-built template, so one blast
    /// serves several unrollers (a session's base and step directions).
    pub fn with_shared_template(
        ctx: &'c Context,
        ts: &'c TransitionSystem,
        use_init: bool,
        guarded: bool,
        template: Arc<Template>,
    ) -> Self {
        let mut u = Unroller::with_mode(ctx, ts, use_init, guarded, UnrollMode::Template);
        u.template = Some(template);
        u
    }

    /// The frame-encoding mode.
    pub fn mode(&self) -> UnrollMode {
        self.mode
    }

    /// The template backing stamped frames, building it on first use.
    fn ensure_template(&mut self) -> Arc<Template> {
        if self.template.is_none() {
            self.template = Some(Arc::new(Template::build(self.ctx, self.ts)));
        }
        self.template.clone().expect("just built")
    }

    /// Number of frames created so far.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no frame exists yet.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The activation literal of frame `k`'s environment constraints.
    /// `None` unless this is a guarded (session) unroller.
    ///
    /// # Panics
    /// Panics if frame `k` does not exist yet.
    pub fn frame_guard(&self, k: usize) -> Option<Lit> {
        self.frame_guards.as_ref().map(|g| g[k])
    }

    /// Ensures frames `0..=n` exist.
    pub fn ensure_frame(&mut self, n: usize) {
        while self.frames.len() <= n {
            self.push_frame();
        }
    }

    fn push_frame(&mut self) {
        let idx = self.frames.len();
        // A reset-pinned unrolling always takes the DAG-walk path: binding
        // init values as constants lets the blaster fold reset state
        // through the whole unrolling, so pinned frames are *not*
        // frame-uniform — on deterministic cones they cost no clauses at
        // all, which stamping a generic frame copy can never beat. The
        // free-start (induction-step) direction is where every frame is
        // the same relation and stamping wins.
        let stamp_this = self.mode == UnrollMode::Template && self.init == InitMode::Free;
        let mut env = LitEnv::new();
        let stamp = if stamp_this {
            let tpl = self.ensure_template();
            // The predecessor's next-state outputs resolve by pure offset
            // arithmetic (the mode is fixed at construction, so every
            // frame of a stamping unroller is stamped) and substitute for
            // the new frame's X slots: state literals chain exactly like
            // a DAG-walked unrolling, with no linking clauses.
            let prev = if idx == 0 {
                None
            } else {
                let pst =
                    self.stamps[idx - 1].as_ref().expect("stamping unrollers stamp every frame");
                Some(tpl.next_state_lits(pst, self.bb.true_lit()))
            };
            let st = tpl.stamp(self.bb.solver_mut(), prev.as_deref());
            tpl.bind_frame(&st, &mut env);
            Some(st)
        } else {
            if idx == 0 {
                if self.init == InitMode::Pinned {
                    for st in self.ts.states() {
                        if let Some(init) = st.init {
                            let lits = self.bb.blast(self.ctx, &mut env, init);
                            env.bind(st.symbol, lits);
                        }
                    }
                }
            } else {
                // Blast every next-state function in the previous frame,
                // then bind the state symbols in the new frame.
                let mut bound = Vec::with_capacity(self.ts.states().len());
                for st in self.ts.states() {
                    let prev_env = &mut self.frames[idx - 1];
                    let lits = self.bb.blast(self.ctx, prev_env, st.next);
                    bound.push((st.symbol, lits));
                }
                for (sym, lits) in bound {
                    env.bind(sym, lits);
                }
            }
            None
        };
        self.frames.push(env);
        self.stamps.push(stamp);
        // Environment constraints hold in every frame — asserted outright
        // in one-shot mode, activated by the frame guard in session mode.
        let guard = if let Some(guards) = &mut self.frame_guards {
            let g = Lit::pos(self.bb.solver_mut().new_var());
            guards.push(g);
            Some(g)
        } else {
            None
        };
        if let Some(st) = self.stamps[idx].clone() {
            // Stamped frames carry pre-encoded (polarity-aware)
            // constraint literals; activation is positive-phase only,
            // which is exactly what the encoding guarantees.
            let tpl = self.template.clone().expect("stamped frame has a template");
            let t = self.bb.true_lit();
            for i in 0..self.ts.constraints().len() {
                let l = tpl.constraint_lit(&st, i, t);
                match guard {
                    Some(g) => {
                        self.bb.solver_mut().add_clause([!g, l]);
                    }
                    None => self.bb.assert_lit(l),
                }
            }
        } else {
            let constraints: Vec<ExprRef> = self.ts.constraints().to_vec();
            for c in constraints {
                let l = self.lit_at(idx, c);
                match guard {
                    Some(g) => {
                        self.bb.solver_mut().add_clause([!g, l]);
                    }
                    None => self.bb.assert_lit(l),
                }
            }
        }
    }

    /// The 1-bit literal of `expr` evaluated in frame `frame`.
    ///
    /// # Panics
    /// Panics if the frame does not exist or `expr` is not 1 bit wide.
    pub fn lit_at(&mut self, frame: usize, expr: ExprRef) -> Lit {
        assert_eq!(self.ctx.width_of(expr), 1, "lit_at needs a 1-bit expression");
        self.lits_at(frame, expr)[0]
    }

    /// Blasts an arbitrary-width expression in a frame. On stamped frames
    /// template-encoded cones resolve by offset arithmetic; everything
    /// else (new lemmas, candidate monitors) falls back to the per-frame
    /// blaster, sharing template-covered sub-cones.
    pub fn lits_at(&mut self, frame: usize, expr: ExprRef) -> Vec<Lit> {
        match self.stamps[frame].clone() {
            Some(st) => {
                let tpl = self.template.clone().expect("stamped frame has a template");
                tpl.materialize(self.ctx, &mut self.bb, &mut self.frames[frame], &st, expr)
            }
            None => self.bb.blast(self.ctx, &mut self.frames[frame], expr),
        }
    }

    /// Adds a pairwise-distinct-states ("simple path") constraint between
    /// every pair of frames up to `max_frame` — required for k-induction
    /// completeness, optional for soundness.
    pub fn assert_simple_path(&mut self, max_frame: usize) {
        self.assert_simple_path_range(1, max_frame, None);
    }

    /// Adds simple-path constraints only for pairs `(i, j)` with
    /// `first_new_frame <= j <= max_frame` and `i < j`, optionally guarded
    /// by an activation literal. Long-lived sessions use the range form to
    /// avoid re-adding pairs as the window grows, and the guard so other
    /// queries on the same solver are unaffected.
    pub fn assert_simple_path_range(
        &mut self,
        first_new_frame: usize,
        max_frame: usize,
        guard: Option<Lit>,
    ) {
        for j in first_new_frame..=max_frame {
            for i in 0..j {
                let mut diff: Vec<Lit> = Vec::new();
                if let Some(g) = guard {
                    diff.push(!g);
                }
                for st in self.ts.states() {
                    let a = self.lits_at(i, st.symbol);
                    let b = self.lits_at(j, st.symbol);
                    for (x, y) in a.iter().zip(&b) {
                        // (x ⊕ y) as a fresh literal would need gates; reuse
                        // the blaster's builder through a scratch expression
                        // instead: assert at least one bit differs.
                        let solver = self.bb.solver_mut();
                        let d = genfv_sat::Lit::pos(solver.new_var());
                        // d → (x ⊕ y): clauses (¬d ∨ x ∨ y) ∧ (¬d ∨ ¬x ∨ ¬y)
                        solver.add_clause([!d, *x, *y]);
                        solver.add_clause([!d, !*x, !*y]);
                        diff.push(d);
                    }
                }
                self.bb.solver_mut().add_clause(diff);
            }
        }
    }

    /// The window stamp of frame `k`, if it was template-stamped (`None`
    /// for DAG-walked frames or frames that do not exist yet). The clause
    /// pool reads these to build its frame-layout tables.
    pub fn frame_stamp(&self, k: usize) -> Option<&FrameStamp> {
        self.stamps.get(k).and_then(|s| s.as_ref())
    }

    /// The template backing stamped frames, if one was built or supplied.
    pub fn template(&self) -> Option<&Arc<Template>> {
        self.template.as_ref()
    }

    /// Access to the underlying bit-blaster (for solving and models).
    pub fn blaster_mut(&mut self) -> &mut BitBlaster {
        &mut self.bb
    }

    /// Shared access to the blaster.
    pub fn blaster(&self) -> &BitBlaster {
        &self.bb
    }

    /// The per-frame environments (for trace extraction).
    pub fn frames(&self) -> &[LitEnv] {
        &self.frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genfv_ir::Context;

    fn counter(ctx: &mut Context) -> TransitionSystem {
        let c = ctx.symbol("count", 4);
        let one = ctx.constant(1, 4);
        let zero = ctx.constant(0, 4);
        let next = ctx.add(c, one);
        let mut ts = TransitionSystem::new("counter");
        ts.add_state(c, Some(zero), next);
        ts.add_signal("count", c);
        ts
    }

    #[test]
    fn init_frame_is_pinned() {
        let mut ctx = Context::new();
        let ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let mut u = Unroller::new(&ctx, &ts, true);
        u.ensure_frame(3);
        // count@0 == 0, count@3 == 3: query equality with constants.
        let three = ctx.constant(3, 4);
        // (count == 3) at frame 3 must be forced true.
        let mut ctx2 = ctx.clone();
        let eq3 = ctx2.eq(c, three);
        let mut u2 = Unroller::new(&ctx2, &ts, true);
        u2.ensure_frame(3);
        let l = u2.lit_at(3, eq3);
        assert!(u2.blaster_mut().solve_with_assumptions(&[!l]).is_unsat());
    }

    #[test]
    fn no_init_frame_is_free() {
        let mut ctx = Context::new();
        let ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let nine = ctx.constant(9, 4);
        let eq9 = ctx.eq(c, nine);
        let mut u = Unroller::new(&ctx, &ts, false);
        u.ensure_frame(0);
        let l = u.lit_at(0, eq9);
        assert!(
            u.blaster_mut().solve_with_assumptions(&[l]).is_sat(),
            "arbitrary start state can be 9"
        );
    }

    #[test]
    fn transition_relation_enforced() {
        let mut ctx = Context::new();
        let ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let five = ctx.constant(5, 4);
        let six = ctx.constant(6, 4);
        let eq5 = ctx.eq(c, five);
        let eq6 = ctx.eq(c, six);
        let mut u = Unroller::new(&ctx, &ts, false);
        u.ensure_frame(1);
        let a = u.lit_at(0, eq5);
        let b = u.lit_at(1, eq6);
        assert!(u.blaster_mut().solve_with_assumptions(&[a, b]).is_sat());
        assert!(u.blaster_mut().solve_with_assumptions(&[a, !b]).is_unsat());
    }

    #[test]
    fn constraints_apply_every_frame() {
        let mut ctx = Context::new();
        let mut ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let eight = ctx.constant(8, 4);
        let lt8 = ctx.ult(c, eight);
        ts.add_constraint(lt8);
        let seven = ctx.constant(7, 4);
        let eq7 = ctx.eq(c, seven);
        let mut u = Unroller::new(&ctx, &ts, false);
        u.ensure_frame(1);
        // count@0 == 7 forces count@1 == 8, violating the constraint.
        let l = u.lit_at(0, eq7);
        assert!(u.blaster_mut().solve_with_assumptions(&[l]).is_unsat());
    }

    #[test]
    fn simple_path_excludes_revisits() {
        let mut ctx = Context::new();
        // A 1-bit toggler: state space {0,1}; any 3 frames must revisit.
        let b = ctx.symbol("b", 1);
        let nb = ctx.not(b);
        let mut ts = TransitionSystem::new("toggle");
        ts.add_state(b, None, nb);
        let mut u = Unroller::new(&ctx, &ts, false);
        u.ensure_frame(2);
        u.assert_simple_path(2);
        assert!(u.blaster_mut().solver_mut().solve().is_unsat(), "3 distinct states impossible");
    }

    #[test]
    fn guarded_constraints_scope_to_the_assumed_window() {
        let mut ctx = Context::new();
        let mut ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let eight = ctx.constant(8, 4);
        let lt8 = ctx.ult(c, eight);
        ts.add_constraint(lt8);
        let seven = ctx.constant(7, 4);
        let eq7 = ctx.eq(c, seven);
        let mut u = Unroller::new_guarded(&ctx, &ts, false);
        u.ensure_frame(2);
        let g0 = u.frame_guard(0).expect("guarded");
        let g1 = u.frame_guard(1).expect("guarded");
        let l = u.lit_at(0, eq7);
        // count@0 == 7 is fine while only frame 0's constraint is active…
        assert!(u.blaster_mut().solve_with_assumptions(&[g0, l]).is_sat());
        // …but activating frame 1's constraint forbids it (count@1 == 8),
        // exactly like a fresh 2-frame unrolling with asserted constraints.
        assert!(u.blaster_mut().solve_with_assumptions(&[g0, g1, l]).is_unsat());
    }

    #[test]
    fn guarded_pinned_init_still_folds_reset_values() {
        let mut ctx = Context::new();
        let ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let three = ctx.constant(3, 4);
        let eq3 = ctx.eq(c, three);
        let mut u = Unroller::new_guarded(&ctx, &ts, true);
        u.ensure_frame(3);
        let l = u.lit_at(3, eq3);
        // Reset values are bound (not guarded), so count@3 == 3 outright.
        assert!(u.blaster_mut().solve_with_assumptions(&[!l]).is_unsat());
    }

    #[test]
    fn template_mode_enforces_the_transition_relation() {
        let mut ctx = Context::new();
        let ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let five = ctx.constant(5, 4);
        let six = ctx.constant(6, 4);
        let eq5 = ctx.eq(c, five);
        let eq6 = ctx.eq(c, six);
        let mut u = Unroller::with_mode(&ctx, &ts, false, false, UnrollMode::Template);
        u.ensure_frame(1);
        let a = u.lit_at(0, eq5);
        let b = u.lit_at(1, eq6);
        assert!(u.blaster_mut().solve_with_assumptions(&[a, b]).is_sat());
        assert!(u.blaster_mut().solve_with_assumptions(&[a, !b]).is_unsat());
    }

    #[test]
    fn template_mode_pins_reset_through_frame_zero() {
        let mut ctx = Context::new();
        let ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let three = ctx.constant(3, 4);
        let eq3 = ctx.eq(c, three);
        let mut u = Unroller::with_mode(&ctx, &ts, true, true, UnrollMode::Template);
        u.ensure_frame(3);
        let l = u.lit_at(3, eq3);
        // A pinned unrolling keeps the DAG-walk (folding) path even in
        // Template mode, so count@3 == 3 is forced outright.
        assert!(u.blaster_mut().solve_with_assumptions(&[!l]).is_unsat());
    }

    #[test]
    fn template_mode_guarded_constraints_scope_like_dagwalk() {
        let mut ctx = Context::new();
        let mut ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let eight = ctx.constant(8, 4);
        let lt8 = ctx.ult(c, eight);
        ts.add_constraint(lt8);
        let seven = ctx.constant(7, 4);
        let eq7 = ctx.eq(c, seven);
        let mut u = Unroller::with_mode(&ctx, &ts, false, true, UnrollMode::Template);
        u.ensure_frame(2);
        let g0 = u.frame_guard(0).expect("guarded");
        let g1 = u.frame_guard(1).expect("guarded");
        let l = u.lit_at(0, eq7);
        assert!(u.blaster_mut().solve_with_assumptions(&[g0, l]).is_sat());
        assert!(u.blaster_mut().solve_with_assumptions(&[g0, g1, l]).is_unsat());
    }

    #[test]
    fn template_mode_simple_path_still_works() {
        let mut ctx = Context::new();
        let b = ctx.symbol("b", 1);
        let nb = ctx.not(b);
        let mut ts = TransitionSystem::new("toggle");
        ts.add_state(b, None, nb);
        let mut u = Unroller::with_mode(&ctx, &ts, false, false, UnrollMode::Template);
        u.ensure_frame(2);
        u.assert_simple_path(2);
        assert!(u.blaster_mut().solver_mut().solve().is_unsat(), "3 distinct states impossible");
    }
}
