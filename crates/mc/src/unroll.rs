//! Time-frame expansion of a transition system over one incremental SAT
//! solver.
//!
//! Frame *i* has its own [`LitEnv`]; state symbols of frame *i+1* are bound
//! to the bit-blasted next-state functions evaluated in frame *i*.
//! Environment constraints are asserted in every frame. With
//! `use_init = true`, frame 0 additionally pins initialised states to their
//! reset values (BMC/base case); with `false`, frame 0 is an arbitrary
//! state (induction step).

use genfv_ir::{BitBlaster, Context, ExprRef, LitEnv, TransitionSystem};
use genfv_sat::Lit;

/// Incremental unroller.
#[derive(Debug)]
pub struct Unroller<'c> {
    ctx: &'c Context,
    ts: &'c TransitionSystem,
    bb: BitBlaster,
    frames: Vec<LitEnv>,
    use_init: bool,
}

impl<'c> Unroller<'c> {
    /// Creates an unroller with zero frames.
    pub fn new(ctx: &'c Context, ts: &'c TransitionSystem, use_init: bool) -> Self {
        Unroller { ctx, ts, bb: BitBlaster::new(), frames: Vec::new(), use_init }
    }

    /// Number of frames created so far.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no frame exists yet.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Ensures frames `0..=n` exist.
    pub fn ensure_frame(&mut self, n: usize) {
        while self.frames.len() <= n {
            self.push_frame();
        }
    }

    fn push_frame(&mut self) {
        let mut env = LitEnv::new();
        if self.frames.is_empty() {
            if self.use_init {
                for st in self.ts.states() {
                    if let Some(init) = st.init {
                        let lits = self.bb.blast(self.ctx, &mut env, init);
                        env.bind(st.symbol, lits);
                    }
                }
            }
        } else {
            let prev_idx = self.frames.len() - 1;
            // Blast every next-state function in the previous frame, then
            // bind the state symbols in the new frame.
            let mut bound = Vec::with_capacity(self.ts.states().len());
            for st in self.ts.states() {
                let prev_env = &mut self.frames[prev_idx];
                let lits = self.bb.blast(self.ctx, prev_env, st.next);
                bound.push((st.symbol, lits));
            }
            for (sym, lits) in bound {
                env.bind(sym, lits);
            }
        }
        self.frames.push(env);
        let idx = self.frames.len() - 1;
        // Environment constraints hold in every frame.
        let constraints: Vec<ExprRef> = self.ts.constraints().to_vec();
        for c in constraints {
            let l = self.lit_at(idx, c);
            self.bb.assert_lit(l);
        }
    }

    /// The 1-bit literal of `expr` evaluated in frame `frame`.
    ///
    /// # Panics
    /// Panics if the frame does not exist or `expr` is not 1 bit wide.
    pub fn lit_at(&mut self, frame: usize, expr: ExprRef) -> Lit {
        assert_eq!(self.ctx.width_of(expr), 1, "lit_at needs a 1-bit expression");
        let env = &mut self.frames[frame];
        self.bb.blast(self.ctx, env, expr)[0]
    }

    /// Blasts an arbitrary-width expression in a frame.
    pub fn lits_at(&mut self, frame: usize, expr: ExprRef) -> Vec<Lit> {
        let env = &mut self.frames[frame];
        self.bb.blast(self.ctx, env, expr)
    }

    /// Adds a pairwise-distinct-states ("simple path") constraint between
    /// every pair of frames up to `max_frame` — required for k-induction
    /// completeness, optional for soundness.
    pub fn assert_simple_path(&mut self, max_frame: usize) {
        for i in 0..max_frame {
            for j in (i + 1)..=max_frame {
                let mut diff: Vec<Lit> = Vec::new();
                for st in self.ts.states() {
                    let a = self.lits_at(i, st.symbol);
                    let b = self.lits_at(j, st.symbol);
                    for (x, y) in a.iter().zip(&b) {
                        // (x ⊕ y) as a fresh literal would need gates; reuse
                        // the blaster's builder through a scratch expression
                        // instead: assert at least one bit differs.
                        let solver = self.bb.solver_mut();
                        let d = genfv_sat::Lit::pos(solver.new_var());
                        // d → (x ⊕ y): clauses (¬d ∨ x ∨ y) ∧ (¬d ∨ ¬x ∨ ¬y)
                        solver.add_clause([!d, *x, *y]);
                        solver.add_clause([!d, !*x, !*y]);
                        diff.push(d);
                    }
                }
                self.bb.solver_mut().add_clause(diff);
            }
        }
    }

    /// Access to the underlying bit-blaster (for solving and models).
    pub fn blaster_mut(&mut self) -> &mut BitBlaster {
        &mut self.bb
    }

    /// Shared access to the blaster.
    pub fn blaster(&self) -> &BitBlaster {
        &self.bb
    }

    /// The per-frame environments (for trace extraction).
    pub fn frames(&self) -> &[LitEnv] {
        &self.frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genfv_ir::Context;

    fn counter(ctx: &mut Context) -> TransitionSystem {
        let c = ctx.symbol("count", 4);
        let one = ctx.constant(1, 4);
        let zero = ctx.constant(0, 4);
        let next = ctx.add(c, one);
        let mut ts = TransitionSystem::new("counter");
        ts.add_state(c, Some(zero), next);
        ts.add_signal("count", c);
        ts
    }

    #[test]
    fn init_frame_is_pinned() {
        let mut ctx = Context::new();
        let ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let mut u = Unroller::new(&ctx, &ts, true);
        u.ensure_frame(3);
        // count@0 == 0, count@3 == 3: query equality with constants.
        let three = ctx.constant(3, 4);
        // (count == 3) at frame 3 must be forced true.
        let mut ctx2 = ctx.clone();
        let eq3 = ctx2.eq(c, three);
        let mut u2 = Unroller::new(&ctx2, &ts, true);
        u2.ensure_frame(3);
        let l = u2.lit_at(3, eq3);
        assert!(u2.blaster_mut().solve_with_assumptions(&[!l]).is_unsat());
    }

    #[test]
    fn no_init_frame_is_free() {
        let mut ctx = Context::new();
        let ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let nine = ctx.constant(9, 4);
        let eq9 = ctx.eq(c, nine);
        let mut u = Unroller::new(&ctx, &ts, false);
        u.ensure_frame(0);
        let l = u.lit_at(0, eq9);
        assert!(
            u.blaster_mut().solve_with_assumptions(&[l]).is_sat(),
            "arbitrary start state can be 9"
        );
    }

    #[test]
    fn transition_relation_enforced() {
        let mut ctx = Context::new();
        let ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let five = ctx.constant(5, 4);
        let six = ctx.constant(6, 4);
        let eq5 = ctx.eq(c, five);
        let eq6 = ctx.eq(c, six);
        let mut u = Unroller::new(&ctx, &ts, false);
        u.ensure_frame(1);
        let a = u.lit_at(0, eq5);
        let b = u.lit_at(1, eq6);
        assert!(u.blaster_mut().solve_with_assumptions(&[a, b]).is_sat());
        assert!(u.blaster_mut().solve_with_assumptions(&[a, !b]).is_unsat());
    }

    #[test]
    fn constraints_apply_every_frame() {
        let mut ctx = Context::new();
        let mut ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let eight = ctx.constant(8, 4);
        let lt8 = ctx.ult(c, eight);
        ts.add_constraint(lt8);
        let seven = ctx.constant(7, 4);
        let eq7 = ctx.eq(c, seven);
        let mut u = Unroller::new(&ctx, &ts, false);
        u.ensure_frame(1);
        // count@0 == 7 forces count@1 == 8, violating the constraint.
        let l = u.lit_at(0, eq7);
        assert!(u.blaster_mut().solve_with_assumptions(&[l]).is_unsat());
    }

    #[test]
    fn simple_path_excludes_revisits() {
        let mut ctx = Context::new();
        // A 1-bit toggler: state space {0,1}; any 3 frames must revisit.
        let b = ctx.symbol("b", 1);
        let nb = ctx.not(b);
        let mut ts = TransitionSystem::new("toggle");
        ts.add_state(b, None, nb);
        let mut u = Unroller::new(&ctx, &ts, false);
        u.ensure_frame(2);
        u.assert_simple_path(2);
        assert!(u.blaster_mut().solver_mut().solve().is_unsat(), "3 distinct states impossible");
    }
}
