//! Counterexample traces.
//!
//! A [`Trace`] is a finite sequence of cycles with a value for every named
//! design signal. Traces come in two flavours, mirroring the two ways a
//! proof attempt can fail (paper Section II-A): a real counterexample
//! starting from the reset state, or an *induction-step* counterexample
//! starting from an arbitrary (possibly unreachable) state — the artefact
//! the paper feeds to the LLM in Fig. 2.

use genfv_ir::{evaluate, BitVecValue, Context, Env, TransitionSystem};
use std::collections::BTreeMap;

/// What kind of failure the trace witnesses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// A concrete safety violation reachable from reset (BMC / base case).
    CounterexampleFromReset,
    /// An inductive-step failure: the first state is arbitrary, every
    /// transition is legal, earlier cycles satisfy the property, and the
    /// final cycle violates it.
    InductionStep,
}

/// One cycle of a trace: values for all published signals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceStep {
    /// Signal name → value, ordered by name for stable rendering.
    pub values: BTreeMap<String, BitVecValue>,
}

impl TraceStep {
    /// Looks up a signal value by name.
    pub fn get(&self, name: &str) -> Option<&BitVecValue> {
        self.values.get(name)
    }
}

/// A finite counterexample trace.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The violated property's name.
    pub property: String,
    /// Flavour of failure.
    pub kind: TraceKind,
    /// Cycles, oldest first; the violation completes in the last cycle.
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// Builds a trace by evaluating every published signal of `ts` in each
    /// cycle of `symbol_values` (symbol → value maps, one per cycle).
    pub fn from_symbol_cycles(
        ctx: &Context,
        ts: &TransitionSystem,
        property: impl Into<String>,
        kind: TraceKind,
        symbol_values: &[Env],
    ) -> Self {
        let mut steps = Vec::with_capacity(symbol_values.len());
        for env in symbol_values {
            let mut step = TraceStep::default();
            for (name, expr) in ts.signals() {
                // Skip internal monitor registers in user-facing traces.
                if name.starts_with("__sva_") {
                    continue;
                }
                step.values.insert(name.clone(), evaluate(ctx, env, *expr));
            }
            steps.push(step);
        }
        Trace { property: property.into(), kind, steps }
    }

    /// Number of cycles.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the trace has no cycles.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The final (violating) cycle.
    pub fn last_step(&self) -> Option<&TraceStep> {
        self.steps.last()
    }

    /// Names of all signals appearing in the trace.
    pub fn signal_names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.steps.iter().flat_map(|s| s.values.keys().cloned()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Replays the trace on the design simulator and checks that every
    /// transition is consistent with the RTL (guards against extraction
    /// bugs). Returns the first inconsistent cycle, if any.
    pub fn validate_transitions(
        &self,
        ctx: &Context,
        ts: &TransitionSystem,
        symbol_cycles: &[Env],
    ) -> Option<usize> {
        for i in 0..symbol_cycles.len().saturating_sub(1) {
            for st in ts.states() {
                let expected = evaluate(ctx, &symbol_cycles[i], st.next);
                let actual = symbol_cycles[i + 1].get(&st.symbol);
                if actual != Some(&expected) {
                    return Some(i + 1);
                }
            }
        }
        None
    }
}

/// Extracts the symbol environment of each frame from a solved bit-blaster.
///
/// Symbols that were never bit-blasted (irrelevant to the query) default to
/// zero, which is always a legal completion for free inputs.
pub fn read_symbol_cycles(
    ctx: &Context,
    ts: &TransitionSystem,
    bb: &genfv_ir::BitBlaster,
    frames: &[genfv_ir::LitEnv],
) -> Vec<Env> {
    let mut out = Vec::with_capacity(frames.len());
    for env in frames {
        let mut cycle = Env::new();
        for sym in ts.all_symbols() {
            let w = ctx.width_of(sym);
            let v = match env.lookup(sym) {
                Some(lits) => bb.read_model_value(lits),
                None => BitVecValue::zero(w),
            };
            cycle.insert(sym, v);
        }
        // Monitor (SVA) registers are states too and already included via
        // all_symbols when registered in ts.states().
        out.push(cycle);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use genfv_ir::ExprRef;

    fn tiny_design() -> (Context, TransitionSystem, ExprRef) {
        let mut ctx = Context::new();
        let c = ctx.symbol("count", 4);
        let one = ctx.constant(1, 4);
        let zero = ctx.constant(0, 4);
        let next = ctx.add(c, one);
        let mut ts = TransitionSystem::new("counter");
        ts.add_state(c, Some(zero), next);
        ts.add_signal("count", c);
        let msb = ctx.bit(c, 3);
        ts.add_signal("msb", msb);
        (ctx, ts, c)
    }

    #[test]
    fn trace_from_cycles_evaluates_signals() {
        let (ctx, ts, c) = tiny_design();
        let cycles: Vec<Env> =
            (0..3u64).map(|i| Env::from([(c, BitVecValue::from_u64(i + 7, 4))])).collect();
        let t = Trace::from_symbol_cycles(&ctx, &ts, "p", TraceKind::InductionStep, &cycles);
        assert_eq!(t.len(), 3);
        assert_eq!(t.steps[0].get("count").unwrap().to_u64(), Some(7));
        assert_eq!(t.steps[1].get("msb").unwrap().to_u64(), Some(1));
        assert_eq!(t.signal_names(), vec!["count".to_string(), "msb".to_string()]);
    }

    #[test]
    fn validate_transitions_accepts_legal() {
        let (ctx, ts, c) = tiny_design();
        let cycles: Vec<Env> =
            (5..8u64).map(|i| Env::from([(c, BitVecValue::from_u64(i, 4))])).collect();
        let t = Trace::from_symbol_cycles(&ctx, &ts, "p", TraceKind::InductionStep, &cycles);
        assert_eq!(t.validate_transitions(&ctx, &ts, &cycles), None);
    }

    #[test]
    fn validate_transitions_rejects_illegal() {
        let (ctx, ts, c) = tiny_design();
        let cycles: Vec<Env> =
            [3u64, 9].iter().map(|&i| Env::from([(c, BitVecValue::from_u64(i, 4))])).collect();
        let t = Trace::from_symbol_cycles(&ctx, &ts, "p", TraceKind::InductionStep, &cycles);
        assert_eq!(t.validate_transitions(&ctx, &ts, &cycles), Some(1));
    }

    #[test]
    fn monitor_registers_hidden() {
        let mut ctx = Context::new();
        let c = ctx.symbol("c", 1);
        let aux = ctx.symbol("__sva_p1", 1);
        let mut ts = TransitionSystem::new("t");
        ts.add_state(c, None, c);
        ts.add_state(aux, None, c);
        ts.add_signal("c", c);
        ts.add_signal("__sva_p1", aux);
        let cycles = vec![Env::from([
            (c, BitVecValue::from_bool(true)),
            (aux, BitVecValue::from_bool(false)),
        ])];
        let t = Trace::from_symbol_cycles(&ctx, &ts, "p", TraceKind::InductionStep, &cycles);
        assert!(t.steps[0].get("__sva_p1").is_none());
        assert!(t.steps[0].get("c").is_some());
    }
}
