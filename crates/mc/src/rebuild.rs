//! Rebuild-per-query reference engine.
//!
//! This module preserves the pre-session architecture: every check builds
//! fresh [`Unroller`]s (a full re-bit-blast plus brand-new solvers that
//! must re-learn everything) and asserts lemmas permanently. It exists for
//! two reasons:
//!
//! * **differential testing** — [`ProofSession`](crate::ProofSession) must
//!   return identical verdicts, depths, and counterexamples; the
//!   `session_differential` suite in `genfv-designs` pins that across the
//!   corpus;
//! * **benchmarking** — the `e8_incremental_sessions` bench binary runs
//!   the Flow-2 repair loop against both engines and reports the speedup
//!   in `BENCH_incremental.json`.
//!
//! Production code paths should use [`ProofSession`](crate::ProofSession)
//! (or the thin wrappers in [`crate::engine`], which delegate to it).
//! Select this engine through [`EngineMode::RebuildPerQuery`].

use crate::engine::{BmcResult, CheckConfig, CheckStats, Property, ProveResult};
use crate::trace::{read_symbol_cycles, Trace, TraceKind};
use crate::unroll::Unroller;
use genfv_ir::{Context, ExprRef, TransitionSystem};
use genfv_sat::SolveResult;
use std::time::Instant;

/// Which engine architecture answers solver queries.
///
/// The verdicts are identical either way (pinned by the differential
/// suite); only the work profile differs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineMode {
    /// One persistent [`ProofSession`](crate::ProofSession) per design
    /// (one bit-blast, assumption-scoped queries, retained learnt
    /// clauses). The production default.
    #[default]
    Incremental,
    /// Fresh unrollers and solvers per logical check — the reference
    /// architecture in this module.
    RebuildPerQuery,
}

fn snapshot(bb: &genfv_ir::BitBlaster) -> (u64, u64, u64) {
    let s = bb.solver().stats();
    (s.conflicts, s.decisions, s.propagations)
}

fn add_delta(stats: &mut CheckStats, bb: &genfv_ir::BitBlaster, before: (u64, u64, u64)) {
    let s = bb.solver().stats();
    stats.conflicts += s.conflicts - before.0;
    stats.decisions += s.decisions - before.1;
    stats.propagations += s.propagations - before.2;
    stats.solver_calls += 1;
}

/// Bounded model checking with a fresh unroller for the whole run and
/// permanently asserted lemmas — the pre-session [`crate::engine::bmc`].
pub fn bmc_rebuild(
    ctx: &Context,
    ts: &TransitionSystem,
    property: &Property,
    lemmas: &[ExprRef],
    depth: usize,
    config: &CheckConfig,
) -> BmcResult {
    let start = Instant::now();
    let mut stats = CheckStats::default();
    let mut unroller = Unroller::new(ctx, ts, true);
    for k in 0..=depth {
        unroller.ensure_frame(k);
        for &lemma in lemmas {
            let l = unroller.lit_at(k, lemma);
            unroller.blaster_mut().assert_lit(l);
        }
        let bad = {
            let ok = unroller.lit_at(k, property.ok);
            !ok
        };
        if let Some(b) = config.conflict_budget {
            unroller.blaster_mut().solver_mut().set_conflict_budget(b);
        }
        let before = snapshot(unroller.blaster());
        let res = unroller.blaster_mut().solve_with_assumptions(&[bad]);
        add_delta(&mut stats, unroller.blaster(), before);
        match res {
            SolveResult::Sat => {
                let cycles =
                    read_symbol_cycles(ctx, ts, unroller.blaster(), &unroller.frames()[..=k]);
                let trace = Trace::from_symbol_cycles(
                    ctx,
                    ts,
                    &property.name,
                    TraceKind::CounterexampleFromReset,
                    &cycles,
                );
                stats.duration = start.elapsed();
                return BmcResult::Falsified { at: k, trace, stats };
            }
            SolveResult::Unsat => {}
            SolveResult::Unknown => {
                // Budget exhausted: report what we know (clean so far).
                stats.duration = start.elapsed();
                return BmcResult::Clean { depth: k.saturating_sub(1), stats };
            }
        }
    }
    stats.duration = start.elapsed();
    BmcResult::Clean { depth, stats }
}

/// K-induction with two fresh unrollers (base and step) per proof attempt
/// and permanently asserted lemmas — the pre-session
/// [`crate::engine::KInduction::prove`].
pub fn prove_rebuild(
    ctx: &Context,
    ts: &TransitionSystem,
    property: &Property,
    lemmas: &[ExprRef],
    config: &CheckConfig,
) -> ProveResult {
    let start = Instant::now();
    let mut stats = CheckStats::default();

    let mut base = Unroller::new(ctx, ts, true);
    let mut step = Unroller::new(ctx, ts, false);
    let mut last_step_cex: Option<(usize, Trace)> = None;

    // Frame 0 of both directions carries the lemmas.
    base.ensure_frame(0);
    step.ensure_frame(0);
    for &lemma in lemmas {
        let l = base.lit_at(0, lemma);
        base.blaster_mut().assert_lit(l);
        let l = step.lit_at(0, lemma);
        step.blaster_mut().assert_lit(l);
    }

    for k in 1..=config.max_k {
        // --- base case: no violation in cycles 0..k from reset -------
        base.ensure_frame(k - 1);
        for &lemma in lemmas {
            let l = base.lit_at(k - 1, lemma);
            base.blaster_mut().assert_lit(l);
        }
        let bad_base = {
            let ok = base.lit_at(k - 1, property.ok);
            !ok
        };
        if let Some(b) = config.conflict_budget {
            base.blaster_mut().solver_mut().set_conflict_budget(b);
        }
        let before = snapshot(base.blaster());
        let res = base.blaster_mut().solve_with_assumptions(&[bad_base]);
        add_delta(&mut stats, base.blaster(), before);
        match res {
            SolveResult::Sat => {
                let cycles = read_symbol_cycles(ctx, ts, base.blaster(), &base.frames()[..k]);
                let trace = Trace::from_symbol_cycles(
                    ctx,
                    ts,
                    &property.name,
                    TraceKind::CounterexampleFromReset,
                    &cycles,
                );
                stats.duration = start.elapsed();
                return ProveResult::Falsified { at: k - 1, trace, stats };
            }
            SolveResult::Unsat => {}
            SolveResult::Unknown => {
                stats.duration = start.elapsed();
                return ProveResult::Unknown {
                    reason: format!("base-case budget exhausted at k={k}"),
                    stats,
                };
            }
        }

        // --- step case ------------------------------------------------
        step.ensure_frame(k);
        for &lemma in lemmas {
            let l = step.lit_at(k, lemma);
            step.blaster_mut().assert_lit(l);
        }
        // Property assumed at frames 0..k (asserted permanently — sound
        // because deeper iterations only extend the window).
        let ok_prev = step.lit_at(k - 1, property.ok);
        step.blaster_mut().assert_lit(ok_prev);
        if config.simple_path {
            step.assert_simple_path(k);
        }
        let bad_step = {
            let ok = step.lit_at(k, property.ok);
            !ok
        };
        if let Some(b) = config.conflict_budget {
            step.blaster_mut().solver_mut().set_conflict_budget(b);
        }
        let before = snapshot(step.blaster());
        let res = step.blaster_mut().solve_with_assumptions(&[bad_step]);
        add_delta(&mut stats, step.blaster(), before);
        match res {
            SolveResult::Unsat => {
                stats.duration = start.elapsed();
                return ProveResult::Proven { k, stats };
            }
            SolveResult::Sat => {
                let cycles = read_symbol_cycles(ctx, ts, step.blaster(), step.frames());
                let trace = Trace::from_symbol_cycles(
                    ctx,
                    ts,
                    &property.name,
                    TraceKind::InductionStep,
                    &cycles,
                );
                last_step_cex = Some((k, trace));
            }
            SolveResult::Unknown => {
                stats.duration = start.elapsed();
                return ProveResult::Unknown {
                    reason: format!("step-case budget exhausted at k={k}"),
                    stats,
                };
            }
        }
    }

    stats.duration = start.elapsed();
    match last_step_cex {
        Some((k, trace)) => ProveResult::StepFailure { k, trace, stats },
        None => ProveResult::Unknown {
            reason: "no induction depth attempted (max_k = 0?)".to_string(),
            stats,
        },
    }
}

/// Chained assume-guarantee over a property batch with rebuild-per-attempt
/// engines — the pre-session [`crate::engine::KInduction::prove_all`].
pub fn prove_all_rebuild(
    ctx: &Context,
    ts: &TransitionSystem,
    properties: &[Property],
    lemmas: &[ExprRef],
    config: &CheckConfig,
) -> Vec<ProveResult> {
    let mut results = Vec::with_capacity(properties.len());
    let mut assumed: Vec<ExprRef> = lemmas.to_vec();
    for prop in properties {
        let res = prove_rebuild(ctx, ts, prop, &assumed, config);
        if res.is_proven() {
            assumed.push(prop.ok);
        }
        results.push(res);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use genfv_ir::Context;

    fn counter(ctx: &mut Context) -> TransitionSystem {
        let c = ctx.symbol("count", 4);
        let one = ctx.constant(1, 4);
        let zero = ctx.constant(0, 4);
        let next = ctx.add(c, one);
        let mut ts = TransitionSystem::new("counter");
        ts.add_state(c, Some(zero), next);
        ts.add_signal("count", c);
        ts
    }

    #[test]
    fn rebuild_and_session_agree_on_a_counter() {
        let mut ctx = Context::new();
        let ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let five = ctx.constant(5, 4);
        let lt5 = ctx.ult(c, five);
        let falsifiable = Property::new("lt5", lt5);
        let cc = ctx.eq(c, c);
        let tauto = Property::new("tauto", cc);
        let config = CheckConfig::default();

        let r = bmc_rebuild(&ctx, &ts, &falsifiable, &[], 8, &config);
        let i = crate::engine::bmc(&ctx, &ts, &falsifiable, &[], 8, &config);
        match (&r, &i) {
            (
                BmcResult::Falsified { at: ra, trace: rt, .. },
                BmcResult::Falsified { at: ia, trace: it, .. },
            ) => {
                assert_eq!(ra, ia);
                assert_eq!(rt.steps.len(), it.steps.len());
            }
            other => panic!("divergent BMC verdicts: {other:?}"),
        }

        let r = prove_rebuild(&ctx, &ts, &tauto, &[], &config);
        let prover = crate::engine::KInduction::new(&ctx, &ts, config);
        let i = prover.prove(&tauto, &[]);
        match (&r, &i) {
            (ProveResult::Proven { k: rk, .. }, ProveResult::Proven { k: ik, .. }) => {
                assert_eq!(rk, ik)
            }
            other => panic!("divergent prove verdicts: {other:?}"),
        }
    }
}
