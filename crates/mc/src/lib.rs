//! # genfv-mc — SAT-based model checker
//!
//! The "formal tool" of the paper's Figs. 1 and 2: bounded model checking
//! ([`bmc`]) and k-induction ([`KInduction`]) over
//! [`genfv_ir::TransitionSystem`]s, built on the `genfv-sat` CDCL solver
//! through the `genfv-ir` bit-blaster.
//!
//! Key capabilities:
//!
//! * **incremental proof sessions** ([`ProofSession`]) — one persistent
//!   pair of solvers per design (a pinned-reset *base* unrolling whose
//!   reset constants fold through every frame, and a free-start *step*
//!   unrolling); environment constraints, lemmas, per-property step
//!   obligations, and caller hypotheses all hang off activation literals,
//!   so BMC base cases, induction steps, and Houdini sweeps are answered
//!   with `solve_with_assumptions` on long-lived clause databases —
//!   frames and learnt clauses survive across candidates, Houdini
//!   rounds, and targets, and retracting a hypothesis is one unit clause
//!   (see [`session`] for the soundness argument);
//! * **portfolio-backed queries** ([`CheckConfig::portfolio`]) — any
//!   session query can be answered by racing jittered solver
//!   configurations on clones of the loaded clause database
//!   (`genfv-portfolio`): a solo probe settles easy queries at zero
//!   overhead, the variance-prone tail escalates to a deterministic
//!   first-winner race, and the winner's solver (with the losers' shared
//!   glue clauses) becomes the session's solver for the next query;
//! * **a rebuild-per-query reference engine** ([`rebuild`],
//!   [`EngineMode`]) — the pre-session architecture preserved verbatim
//!   for differential testing and the `BENCH_incremental.json` benchmark;
//! * incremental time-frame expansion with one solver per direction;
//! * **helper-lemma support** — proven assertions are assumed at every
//!   frame of the step case, exactly how the paper's generated lemmas
//!   accelerate and unblock proofs;
//! * **induction-step counterexamples** ([`TraceKind::InductionStep`]) with
//!   full signal traces, ASCII waveforms ([`render_waveform`]) in the
//!   spirit of the paper's Fig. 3, and VCD export;
//! * optional simple-path (unique-states) constraints;
//! * per-query conflict budgets for graceful `Unknown` answers.
//!
//! ```
//! use genfv_ir::{Context, TransitionSystem};
//! use genfv_mc::{KInduction, CheckConfig, Property};
//!
//! // count' = count + 1 with init 0: "count1 == count2" style lockstep
//! // properties prove at k=1; see the crate tests for the full paper flow.
//! let mut ctx = Context::new();
//! let c = ctx.symbol("count", 8);
//! let one = ctx.constant(1, 8);
//! let zero = ctx.constant(0, 8);
//! let next = ctx.add(c, one);
//! let mut ts = TransitionSystem::new("counter");
//! ts.add_state(c, Some(zero), next);
//! // Trivial invariant: count == count.
//! let ok = ctx.eq(c, c);
//! let prover = KInduction::new(&ctx, &ts, CheckConfig::default());
//! let result = prover.prove(&Property::new("trivial", ok), &[]);
//! assert!(result.is_proven());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod rebuild;
pub mod session;
pub mod trace;
pub mod unroll;
pub mod wave;

pub use engine::{
    bmc, BmcResult, CheckConfig, CheckStats, KInduction, PoolScope, Property, ProveResult,
};
pub use genfv_obs::{Accumulate, Obs, ObsConfig};
pub use genfv_portfolio::{Portfolio, PortfolioConfig, RaceOutcome, WorkerStats};
pub use rebuild::{bmc_rebuild, prove_all_rebuild, prove_rebuild, EngineMode};
pub use session::{ProofSession, SessionSeed, SessionStats};
pub use trace::{read_symbol_cycles, Trace, TraceKind, TraceStep};
pub use unroll::{UnrollMode, Unroller};
pub use wave::{render_final_bits, render_waveform, to_vcd};
