//! Property checking: bounded model checking and k-induction.
//!
//! This module is the "formal tool" box of the paper's Figs. 1 and 2. The
//! two entry points are [`bmc`] (find shallow bugs / sanity-check candidate
//! lemmas) and [`KInduction::prove`] (unbounded proof with helper-lemma
//! support). An inductive-step failure returns the counterexample trace
//! that Flow 2 renders into the LLM prompt.

use crate::trace::Trace;
use genfv_ir::{Context, ExprRef, TransitionSystem};
use std::time::Duration;

/// A property to check: a named 1-bit "ok every cycle" expression
/// (typically produced by `genfv-sva`).
#[derive(Clone, Debug)]
pub struct Property {
    /// Property name for reports and traces.
    pub name: String,
    /// 1-bit expression that must hold in every reachable state.
    pub ok: ExprRef,
}

impl Property {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ok: ExprRef) -> Self {
        Property { name: name.into(), ok }
    }
}

/// Aggregated solver effort for one check.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckStats {
    /// SAT conflicts consumed.
    pub conflicts: u64,
    /// SAT decisions consumed.
    pub decisions: u64,
    /// Propagations consumed.
    pub propagations: u64,
    /// Individual solver queries issued.
    pub solver_calls: u64,
    /// Wall-clock time.
    pub duration: Duration,
}

/// Result of a bounded model-checking run.
#[derive(Clone, Debug)]
pub enum BmcResult {
    /// No violation within the bound.
    Clean {
        /// The bound that was fully explored.
        depth: usize,
        /// Solver effort.
        stats: CheckStats,
    },
    /// A reachable violation was found.
    Falsified {
        /// Cycle at which the violation completes.
        at: usize,
        /// The witness trace from reset.
        trace: Trace,
        /// Solver effort.
        stats: CheckStats,
    },
}

impl BmcResult {
    /// Whether no violation was found.
    pub fn is_clean(&self) -> bool {
        matches!(self, BmcResult::Clean { .. })
    }
}

/// Result of a k-induction proof attempt.
#[derive(Clone, Debug)]
pub enum ProveResult {
    /// The property holds in all reachable states; proven inductive at
    /// depth `k` (with the lemmas that were supplied).
    Proven {
        /// Induction depth at which the step succeeded.
        k: usize,
        /// Solver effort.
        stats: CheckStats,
    },
    /// A real counterexample from reset (base-case failure).
    Falsified {
        /// Cycle of the violation.
        at: usize,
        /// Witness trace.
        trace: Trace,
        /// Solver effort.
        stats: CheckStats,
    },
    /// Every induction depth up to the configured maximum failed its step;
    /// the deepest step counterexample is returned — this is the artefact
    /// the paper's Flow 2 sends to the LLM.
    StepFailure {
        /// The depth of the reported step counterexample.
        k: usize,
        /// The inductive-step counterexample (arbitrary start state).
        trace: Trace,
        /// Solver effort.
        stats: CheckStats,
    },
    /// A resource budget expired.
    Unknown {
        /// What ran out.
        reason: String,
        /// Solver effort.
        stats: CheckStats,
    },
}

impl ProveResult {
    /// Whether the property was proven.
    pub fn is_proven(&self) -> bool {
        matches!(self, ProveResult::Proven { .. })
    }

    /// The stats of whichever outcome occurred.
    pub fn stats(&self) -> &CheckStats {
        match self {
            ProveResult::Proven { stats, .. }
            | ProveResult::Falsified { stats, .. }
            | ProveResult::StepFailure { stats, .. }
            | ProveResult::Unknown { stats, .. } => stats,
        }
    }
}

/// Configuration for [`KInduction`] and [`bmc`].
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Maximum induction depth to attempt.
    pub max_k: usize,
    /// Add pairwise-distinct-state constraints in the step case (makes
    /// k-induction complete for finite systems but is quadratic; the
    /// paper's flow instead strengthens with lemmas, so default off).
    pub simple_path: bool,
    /// Conflict budget per solver query (`None` = unlimited; in portfolio
    /// mode the budget caps each racing worker).
    pub conflict_budget: Option<u64>,
    /// When set, every session query is answered by portfolio racing:
    /// the loaded clause database is cloned across jittered worker
    /// configurations and the first winner's solver replaces the
    /// session's (see [`genfv_portfolio`]). `None` (the default) keeps
    /// the plain single-solver discipline.
    pub portfolio: Option<genfv_portfolio::PortfolioConfig>,
    /// How session unrollers encode new time frames: template stamping
    /// (default) or the per-frame DAG walk kept as a differential oracle
    /// (see [`crate::unroll::UnrollMode`]). The rebuild-per-query
    /// reference engines always DAG-walk.
    pub unroll_mode: crate::unroll::UnrollMode,
    /// Warm-start capital shared across sessions over one design (see
    /// [`crate::session::SessionSeed`]): the template and clean-depth
    /// pool of the `genfv-service` session cache. Sessions adopt the
    /// seed only when its fingerprint matches the design they are built
    /// for, so a stale handle is inert rather than unsound. `None` (the
    /// default) starts every session cold.
    pub seed: Option<std::sync::Arc<crate::session::SessionSeed>>,
    /// How much of the seed's persistent learnt-clause pool sessions
    /// participate in (replaying pooled glue before each query and
    /// publishing their own glue after; see [`genfv_sat::ClausePool`]).
    /// [`PoolScope::Full`] by default; inert without a matching
    /// [`CheckConfig::seed`].
    pub clause_pool: PoolScope,
    /// Observability handle threaded into every session solver this
    /// config creates: spans (`prove`, `session.extend.*`, `solve.*`)
    /// and per-query-kind metrics are recorded into it. The default
    /// [`genfv_obs::Obs::off`] handle costs one branch per span.
    pub obs: genfv_obs::Obs,
}

/// Scope of a session's clause-pool participation
/// ([`CheckConfig::clause_pool`]).
///
/// Pool imports never change a complete query's SAT/UNSAT answer, but
/// they legitimately steer the search — a warm solver can find a
/// *different model* than a cold one. Flows whose downstream decisions
/// read step-direction models (induction-step counterexamples rendered
/// into LLM prompts, Houdini violation witnesses selecting which
/// candidates die) therefore run [`PoolScope::BaseOnly`]: base-direction
/// answers are consumed as booleans (clean/violated, earliest cycle), so
/// warm-starting them is reproducibility-invariant, while step queries
/// stay bit-identical to a cold run. Unaided workloads (plain induction,
/// baseline sweeps) keep [`PoolScope::Full`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PoolScope {
    /// No pool participation (differential-testing control).
    Off,
    /// Base-direction queries only: model-reproducibility-safe.
    BaseOnly,
    /// Both directions (default).
    #[default]
    Full,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_k: 10,
            simple_path: false,
            conflict_budget: None,
            portfolio: None,
            unroll_mode: crate::unroll::UnrollMode::default(),
            seed: None,
            clause_pool: PoolScope::default(),
            obs: genfv_obs::Obs::off(),
        }
    }
}

/// Bounded model checking of `property` (plus always-assumed `lemmas`) up
/// to `depth` cycles from reset.
///
/// Lemmas are *assumed* at every cycle — callers must only pass lemmas that
/// are themselves proven (or are being sanity-checked, as in candidate
/// validation where a `Falsified` answer is the useful signal).
///
/// This is the one-shot convenience form: it builds a throwaway
/// [`crate::session::ProofSession`] for the single check. Callers with more
/// than one query per design should hold a session themselves and call
/// [`crate::session::ProofSession::bmc_check`] so the bit-blast and the learnt
/// clauses amortise.
pub fn bmc(
    ctx: &Context,
    ts: &TransitionSystem,
    property: &Property,
    lemmas: &[ExprRef],
    depth: usize,
    config: &CheckConfig,
) -> BmcResult {
    let mut session = crate::session::ProofSession::new(ctx, ts, config.clone());
    session.add_lemmas(lemmas);
    session.bmc_check(property, depth)
}

/// K-induction prover with helper-lemma support.
///
/// The step case assumes, at every frame, the environment constraints, the
/// supplied lemmas, and the property itself at frames `0..k`; it then asks
/// whether the property can fail at frame `k`. The base case is plain BMC
/// over `k` frames. This is the classic strengthened-induction scheme the
/// paper builds on (Section II-A).
#[derive(Debug)]
pub struct KInduction<'c> {
    ctx: &'c Context,
    ts: &'c TransitionSystem,
    config: CheckConfig,
}

impl<'c> KInduction<'c> {
    /// Creates a prover for one design.
    pub fn new(ctx: &'c Context, ts: &'c TransitionSystem, config: CheckConfig) -> Self {
        KInduction { ctx, ts, config }
    }

    /// Attempts to prove `property` invariant, assuming `lemmas` (which
    /// must already be proven invariants — see [`bmc`] for the validation
    /// path used by the GenAI flows before lemmas get here).
    ///
    /// One-shot convenience over [`crate::session::ProofSession::prove`]; the
    /// base and step cases share a single persistent solver through the
    /// session's persistent base and step unrollings.
    pub fn prove(&self, property: &Property, lemmas: &[ExprRef]) -> ProveResult {
        let mut session = crate::session::ProofSession::new(self.ctx, self.ts, self.config.clone());
        session.add_lemmas(lemmas);
        session.prove(property)
    }
}

impl KInduction<'_> {
    /// Proves a batch of properties with chained assume-guarantee: the
    /// properties are attempted in order and every *proven* property is
    /// assumed (as an additional lemma) for the later ones — the way
    /// commercial property databases exploit already-closed assertions.
    ///
    /// The whole batch runs on **one** incremental session: every proof
    /// reuses the frames and learnt clauses of its predecessors, and each
    /// newly proven property is installed as a session lemma.
    ///
    /// Returns one [`ProveResult`] per property, index-aligned. Sound:
    /// only proven properties join the assumption set.
    pub fn prove_all(&self, properties: &[Property], lemmas: &[ExprRef]) -> Vec<ProveResult> {
        let mut session = crate::session::ProofSession::new(self.ctx, self.ts, self.config.clone());
        session.add_lemmas(lemmas);
        let mut results = Vec::with_capacity(properties.len());
        for prop in properties {
            let res = session.prove(prop);
            if res.is_proven() {
                session.add_lemma(prop.ok);
            }
            results.push(res);
        }
        results
    }
}
