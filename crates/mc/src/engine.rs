//! Property checking: bounded model checking and k-induction.
//!
//! This module is the "formal tool" box of the paper's Figs. 1 and 2. The
//! two entry points are [`bmc`] (find shallow bugs / sanity-check candidate
//! lemmas) and [`KInduction::prove`] (unbounded proof with helper-lemma
//! support). An inductive-step failure returns the counterexample trace
//! that Flow 2 renders into the LLM prompt.

use crate::trace::{read_symbol_cycles, Trace, TraceKind};
use crate::unroll::Unroller;
use genfv_ir::{Context, ExprRef, TransitionSystem};
use genfv_sat::SolveResult;
use std::time::{Duration, Instant};

/// A property to check: a named 1-bit "ok every cycle" expression
/// (typically produced by `genfv-sva`).
#[derive(Clone, Debug)]
pub struct Property {
    /// Property name for reports and traces.
    pub name: String,
    /// 1-bit expression that must hold in every reachable state.
    pub ok: ExprRef,
}

impl Property {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ok: ExprRef) -> Self {
        Property { name: name.into(), ok }
    }
}

/// Aggregated solver effort for one check.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckStats {
    /// SAT conflicts consumed.
    pub conflicts: u64,
    /// SAT decisions consumed.
    pub decisions: u64,
    /// Propagations consumed.
    pub propagations: u64,
    /// Individual solver queries issued.
    pub solver_calls: u64,
    /// Wall-clock time.
    pub duration: Duration,
}

/// Result of a bounded model-checking run.
#[derive(Clone, Debug)]
pub enum BmcResult {
    /// No violation within the bound.
    Clean {
        /// The bound that was fully explored.
        depth: usize,
        /// Solver effort.
        stats: CheckStats,
    },
    /// A reachable violation was found.
    Falsified {
        /// Cycle at which the violation completes.
        at: usize,
        /// The witness trace from reset.
        trace: Trace,
        /// Solver effort.
        stats: CheckStats,
    },
}

impl BmcResult {
    /// Whether no violation was found.
    pub fn is_clean(&self) -> bool {
        matches!(self, BmcResult::Clean { .. })
    }
}

/// Result of a k-induction proof attempt.
#[derive(Clone, Debug)]
pub enum ProveResult {
    /// The property holds in all reachable states; proven inductive at
    /// depth `k` (with the lemmas that were supplied).
    Proven {
        /// Induction depth at which the step succeeded.
        k: usize,
        /// Solver effort.
        stats: CheckStats,
    },
    /// A real counterexample from reset (base-case failure).
    Falsified {
        /// Cycle of the violation.
        at: usize,
        /// Witness trace.
        trace: Trace,
        /// Solver effort.
        stats: CheckStats,
    },
    /// Every induction depth up to the configured maximum failed its step;
    /// the deepest step counterexample is returned — this is the artefact
    /// the paper's Flow 2 sends to the LLM.
    StepFailure {
        /// The depth of the reported step counterexample.
        k: usize,
        /// The inductive-step counterexample (arbitrary start state).
        trace: Trace,
        /// Solver effort.
        stats: CheckStats,
    },
    /// A resource budget expired.
    Unknown {
        /// What ran out.
        reason: String,
        /// Solver effort.
        stats: CheckStats,
    },
}

impl ProveResult {
    /// Whether the property was proven.
    pub fn is_proven(&self) -> bool {
        matches!(self, ProveResult::Proven { .. })
    }

    /// The stats of whichever outcome occurred.
    pub fn stats(&self) -> &CheckStats {
        match self {
            ProveResult::Proven { stats, .. }
            | ProveResult::Falsified { stats, .. }
            | ProveResult::StepFailure { stats, .. }
            | ProveResult::Unknown { stats, .. } => stats,
        }
    }
}

/// Configuration for [`KInduction`] and [`bmc`].
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Maximum induction depth to attempt.
    pub max_k: usize,
    /// Add pairwise-distinct-state constraints in the step case (makes
    /// k-induction complete for finite systems but is quadratic; the
    /// paper's flow instead strengthens with lemmas, so default off).
    pub simple_path: bool,
    /// Conflict budget per solver query (`None` = unlimited).
    pub conflict_budget: Option<u64>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig { max_k: 10, simple_path: false, conflict_budget: None }
    }
}

fn snapshot(bb: &genfv_ir::BitBlaster) -> (u64, u64, u64) {
    let s = bb.solver().stats();
    (s.conflicts, s.decisions, s.propagations)
}

fn add_delta(stats: &mut CheckStats, bb: &genfv_ir::BitBlaster, before: (u64, u64, u64)) {
    let s = bb.solver().stats();
    stats.conflicts += s.conflicts - before.0;
    stats.decisions += s.decisions - before.1;
    stats.propagations += s.propagations - before.2;
    stats.solver_calls += 1;
}

/// Bounded model checking of `property` (plus always-assumed `lemmas`) up
/// to `depth` cycles from reset.
///
/// Lemmas are *assumed* at every cycle — callers must only pass lemmas that
/// are themselves proven (or are being sanity-checked, as in candidate
/// validation where a `Falsified` answer is the useful signal).
pub fn bmc(
    ctx: &Context,
    ts: &TransitionSystem,
    property: &Property,
    lemmas: &[ExprRef],
    depth: usize,
    config: &CheckConfig,
) -> BmcResult {
    let start = Instant::now();
    let mut stats = CheckStats::default();
    let mut unroller = Unroller::new(ctx, ts, true);
    for k in 0..=depth {
        unroller.ensure_frame(k);
        for &lemma in lemmas {
            let l = unroller.lit_at(k, lemma);
            unroller.blaster_mut().assert_lit(l);
        }
        let bad = {
            let ok = unroller.lit_at(k, property.ok);
            !ok
        };
        if let Some(b) = config.conflict_budget {
            unroller.blaster_mut().solver_mut().set_conflict_budget(b);
        }
        let before = snapshot(unroller.blaster());
        let res = unroller.blaster_mut().solve_with_assumptions(&[bad]);
        add_delta(&mut stats, unroller.blaster(), before);
        match res {
            SolveResult::Sat => {
                let cycles =
                    read_symbol_cycles(ctx, ts, unroller.blaster(), &unroller.frames()[..=k]);
                let trace = Trace::from_symbol_cycles(
                    ctx,
                    ts,
                    &property.name,
                    TraceKind::CounterexampleFromReset,
                    &cycles,
                );
                stats.duration = start.elapsed();
                return BmcResult::Falsified { at: k, trace, stats };
            }
            SolveResult::Unsat => {}
            SolveResult::Unknown => {
                // Budget exhausted: report what we know (clean so far).
                stats.duration = start.elapsed();
                return BmcResult::Clean { depth: k.saturating_sub(1), stats };
            }
        }
    }
    stats.duration = start.elapsed();
    BmcResult::Clean { depth, stats }
}

/// K-induction prover with helper-lemma support.
///
/// The step case assumes, at every frame, the environment constraints, the
/// supplied lemmas, and the property itself at frames `0..k`; it then asks
/// whether the property can fail at frame `k`. The base case is plain BMC
/// over `k` frames. This is the classic strengthened-induction scheme the
/// paper builds on (Section II-A).
#[derive(Debug)]
pub struct KInduction<'c> {
    ctx: &'c Context,
    ts: &'c TransitionSystem,
    config: CheckConfig,
}

impl<'c> KInduction<'c> {
    /// Creates a prover for one design.
    pub fn new(ctx: &'c Context, ts: &'c TransitionSystem, config: CheckConfig) -> Self {
        KInduction { ctx, ts, config }
    }

    /// Attempts to prove `property` invariant, assuming `lemmas` (which
    /// must already be proven invariants — see [`bmc`] for the validation
    /// path used by the GenAI flows before lemmas get here).
    pub fn prove(&self, property: &Property, lemmas: &[ExprRef]) -> ProveResult {
        let start = Instant::now();
        let mut stats = CheckStats::default();

        let mut base = Unroller::new(self.ctx, self.ts, true);
        let mut step = Unroller::new(self.ctx, self.ts, false);
        let mut last_step_cex: Option<(usize, Trace)> = None;

        // Frame 0 of both directions carries the lemmas.
        base.ensure_frame(0);
        step.ensure_frame(0);
        for &lemma in lemmas {
            let l = base.lit_at(0, lemma);
            base.blaster_mut().assert_lit(l);
            let l = step.lit_at(0, lemma);
            step.blaster_mut().assert_lit(l);
        }

        for k in 1..=self.config.max_k {
            // --- base case: no violation in cycles 0..k from reset -------
            base.ensure_frame(k - 1);
            for &lemma in lemmas {
                let l = base.lit_at(k - 1, lemma);
                base.blaster_mut().assert_lit(l);
            }
            let bad_base = {
                let ok = base.lit_at(k - 1, property.ok);
                !ok
            };
            if let Some(b) = self.config.conflict_budget {
                base.blaster_mut().solver_mut().set_conflict_budget(b);
            }
            let before = snapshot(base.blaster());
            let res = base.blaster_mut().solve_with_assumptions(&[bad_base]);
            add_delta(&mut stats, base.blaster(), before);
            match res {
                SolveResult::Sat => {
                    let cycles = read_symbol_cycles(
                        self.ctx,
                        self.ts,
                        base.blaster(),
                        &base.frames()[..k],
                    );
                    let trace = Trace::from_symbol_cycles(
                        self.ctx,
                        self.ts,
                        &property.name,
                        TraceKind::CounterexampleFromReset,
                        &cycles,
                    );
                    stats.duration = start.elapsed();
                    return ProveResult::Falsified { at: k - 1, trace, stats };
                }
                SolveResult::Unsat => {}
                SolveResult::Unknown => {
                    stats.duration = start.elapsed();
                    return ProveResult::Unknown {
                        reason: format!("base-case budget exhausted at k={k}"),
                        stats,
                    };
                }
            }

            // --- step case ------------------------------------------------
            step.ensure_frame(k);
            for &lemma in lemmas {
                let l = step.lit_at(k, lemma);
                step.blaster_mut().assert_lit(l);
            }
            // Property assumed at frames 0..k (asserted permanently — sound
            // because deeper iterations only extend the window).
            let ok_prev = step.lit_at(k - 1, property.ok);
            step.blaster_mut().assert_lit(ok_prev);
            if self.config.simple_path {
                step.assert_simple_path(k);
            }
            let bad_step = {
                let ok = step.lit_at(k, property.ok);
                !ok
            };
            if let Some(b) = self.config.conflict_budget {
                step.blaster_mut().solver_mut().set_conflict_budget(b);
            }
            let before = snapshot(step.blaster());
            let res = step.blaster_mut().solve_with_assumptions(&[bad_step]);
            add_delta(&mut stats, step.blaster(), before);
            match res {
                SolveResult::Unsat => {
                    stats.duration = start.elapsed();
                    return ProveResult::Proven { k, stats };
                }
                SolveResult::Sat => {
                    let cycles = read_symbol_cycles(
                        self.ctx,
                        self.ts,
                        step.blaster(),
                        step.frames(),
                    );
                    let trace = Trace::from_symbol_cycles(
                        self.ctx,
                        self.ts,
                        &property.name,
                        TraceKind::InductionStep,
                        &cycles,
                    );
                    last_step_cex = Some((k, trace));
                }
                SolveResult::Unknown => {
                    stats.duration = start.elapsed();
                    return ProveResult::Unknown {
                        reason: format!("step-case budget exhausted at k={k}"),
                        stats,
                    };
                }
            }
        }

        stats.duration = start.elapsed();
        match last_step_cex {
            Some((k, trace)) => ProveResult::StepFailure { k, trace, stats },
            None => ProveResult::Unknown {
                reason: "no induction depth attempted (max_k = 0?)".to_string(),
                stats,
            },
        }
    }
}

impl KInduction<'_> {
    /// Proves a batch of properties with chained assume-guarantee: the
    /// properties are attempted in order and every *proven* property is
    /// assumed (as an additional lemma) for the later ones — the way
    /// commercial property databases exploit already-closed assertions.
    ///
    /// Returns one [`ProveResult`] per property, index-aligned. Sound:
    /// only proven properties join the assumption set.
    pub fn prove_all(&self, properties: &[Property], lemmas: &[ExprRef]) -> Vec<ProveResult> {
        let mut results = Vec::with_capacity(properties.len());
        let mut assumed: Vec<ExprRef> = lemmas.to_vec();
        for prop in properties {
            let res = self.prove(prop, &assumed);
            if res.is_proven() {
                assumed.push(prop.ok);
            }
            results.push(res);
        }
        results
    }
}
