//! Waveform rendering for counterexample traces.
//!
//! Two outputs are provided: an ASCII rendering in the spirit of the
//! paper's Fig. 3 (1-bit signals as pulse trains, vectors as hex values),
//! and an industry-standard VCD dump for external viewers.

use crate::trace::Trace;
use genfv_ir::BitVecValue;
use std::fmt::Write as _;

/// Renders a trace as an ASCII waveform.
///
/// 1-bit signals are drawn as pulse trains (`▁` low, `▔` high); wider
/// signals display one hex value per cycle. The final cycle — where the
/// violation completes — is marked with `!`.
///
/// ```
/// # use genfv_mc::{Trace, TraceKind, TraceStep};
/// # use genfv_ir::BitVecValue;
/// # use std::collections::BTreeMap;
/// let steps = (0u64..3).map(|i| TraceStep {
///     values: BTreeMap::from([("count".to_string(), BitVecValue::from_u64(i, 8))]),
/// }).collect();
/// let t = Trace { property: "p".into(), kind: TraceKind::InductionStep, steps };
/// let art = genfv_mc::render_waveform(&t);
/// assert!(art.contains("count"));
/// ```
pub fn render_waveform(trace: &Trace) -> String {
    let names = trace.signal_names();
    let n = trace.len();
    let mut out = String::new();
    let kind = match trace.kind {
        crate::trace::TraceKind::CounterexampleFromReset => "counterexample from reset",
        crate::trace::TraceKind::InductionStep => "induction step failure (arbitrary start state)",
    };
    let _ = writeln!(out, "── {} — property `{}` ──", kind, trace.property);

    let name_w = names.iter().map(|s| s.len()).max().unwrap_or(4).max(5);
    // Determine the cell width per signal from the widest rendered value.
    let mut rendered: Vec<(String, Vec<String>, bool)> = Vec::new();
    for name in &names {
        let mut cells = Vec::with_capacity(n);
        let mut is_bit = true;
        for step in &trace.steps {
            match step.get(name) {
                Some(v) => {
                    if v.width() > 1 {
                        is_bit = false;
                    }
                    cells.push(v.to_hex_string());
                }
                None => cells.push("-".to_string()),
            }
        }
        rendered.push((name.clone(), cells, is_bit));
    }
    let cell_w = rendered
        .iter()
        .flat_map(|(_, cells, _)| cells.iter().map(|c| c.len()))
        .max()
        .unwrap_or(1)
        .max(2);

    // Header: cycle numbers; the last cycle gets a violation marker.
    let mut header = format!("{:name_w$}   ", "cycle");
    for i in 0..n {
        let marker = if i + 1 == n { "!" } else { " " };
        let _ = write!(header, "{:>cell_w$}{} ", i, marker);
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{}", "─".repeat(header.chars().count().max(16)));

    for (name, cells, is_bit) in &rendered {
        let mut line = format!("{name:name_w$} │ ");
        for cell in cells {
            if *is_bit {
                let sym = match cell.as_str() {
                    "1" => "▔".repeat(cell_w),
                    "0" => "▁".repeat(cell_w),
                    _ => "-".repeat(cell_w),
                };
                let _ = write!(line, "{sym}  ");
            } else {
                let _ = write!(line, "{cell:>cell_w$}  ");
            }
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Renders a compact per-bit view of one vector signal in the final cycle —
/// the presentation style of the paper's Fig. 3, which highlights that bit
/// 31 of `count2` is low while `count1` is all ones.
pub fn render_final_bits(trace: &Trace, signal: &str) -> Option<String> {
    let v = trace.last_step()?.get(signal)?;
    let mut out = format!("{signal} (final cycle) = {}'b", v.width());
    out.push_str(&v.to_binary_string());
    let low_bits: Vec<u32> = (0..v.width()).filter(|&i| !v.bit(i)).collect();
    if !low_bits.is_empty() && low_bits.len() <= 4 {
        let _ = write!(out, "   // bit(s) {low_bits:?} are 0");
    }
    Some(out)
}

/// Writes the trace as a Value Change Dump (VCD) document.
pub fn to_vcd(trace: &Trace) -> String {
    let names = trace.signal_names();
    let mut out = String::new();
    out.push_str("$date genfv $end\n$version genfv-mc $end\n$timescale 1ns $end\n");
    out.push_str("$scope module trace $end\n");
    // VCD id codes: printable ASCII starting at '!'.
    let ids: Vec<String> = (0..names.len())
        .map(|i| {
            let mut s = String::new();
            let mut x = i;
            loop {
                s.push((33 + (x % 94)) as u8 as char);
                x /= 94;
                if x == 0 {
                    break;
                }
            }
            s
        })
        .collect();
    let width_of = |name: &str| -> u32 {
        trace.steps.iter().find_map(|s| s.get(name)).map(BitVecValue::width).unwrap_or(1)
    };
    for (name, id) in names.iter().zip(&ids) {
        let w = width_of(name);
        let _ = writeln!(out, "$var wire {w} {id} {name} $end");
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");
    for (t, step) in trace.steps.iter().enumerate() {
        let _ = writeln!(out, "#{t}");
        for (name, id) in names.iter().zip(&ids) {
            if let Some(v) = step.get(name) {
                if v.width() == 1 {
                    let _ = writeln!(out, "{}{id}", if v.to_bool() { 1 } else { 0 });
                } else {
                    let _ = writeln!(out, "b{} {id}", v.to_binary_string());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceKind, TraceStep};
    use std::collections::BTreeMap;

    fn sample_trace() -> Trace {
        let mut steps = Vec::new();
        for i in 0..3u64 {
            let mut values = BTreeMap::new();
            values.insert("count1".to_string(), BitVecValue::from_u64(0xFF - i, 8));
            values.insert("count2".to_string(), BitVecValue::from_u64(0x7F - i, 8));
            values.insert("rst".to_string(), BitVecValue::from_bool(i == 0));
            steps.push(TraceStep { values });
        }
        Trace { property: "equal_count".into(), kind: TraceKind::InductionStep, steps }
    }

    #[test]
    fn waveform_contains_signals_and_marker() {
        let art = render_waveform(&sample_trace());
        assert!(art.contains("count1"));
        assert!(art.contains("count2"));
        assert!(art.contains("equal_count"));
        assert!(art.contains("!"), "violation marker");
        assert!(art.contains("induction step failure"));
        // 1-bit rst rendered as pulse, not hex.
        assert!(art.contains('▔') || art.contains('▁'));
    }

    #[test]
    fn final_bits_highlights_zero_bit() {
        let t = sample_trace();
        // count2 final = 0x7D: bit 7 is 0 (like the paper's bit-31 callout).
        let s = render_final_bits(&t, "count2").unwrap();
        assert!(s.contains("8'b0"), "{s}");
        assert!(render_final_bits(&t, "nope").is_none());
    }

    #[test]
    fn vcd_well_formed() {
        let vcd = to_vcd(&sample_trace());
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("$var wire 8"));
        assert!(vcd.contains("$var wire 1"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("#2"));
        assert!(vcd.lines().any(|l| l.starts_with('b')));
    }
}
