//! Model-checker integration tests reproducing the paper's core mechanics:
//! the sync-counters property passes BMC but fails its induction step; the
//! helper lemma `count1 == count2` is itself inductive and, once assumed,
//! closes the original proof (paper Listings 1-3 / Fig. 3).

use genfv_hdl::{elaborate, parse_source};
use genfv_ir::{Context, TransitionSystem};
use genfv_mc::{bmc, BmcResult, CheckConfig, KInduction, Property, ProveResult, TraceKind};
use genfv_sva::{parse_assertion, PropertyCompiler};

/// Narrow (8-bit) version of the paper's Listing 1 for test speed; the
/// examples and benches run the full 32-bit version.
const SYNC_COUNTERS: &str = r#"
module sync_counters (input clk, rst, output logic [7:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 8'b0;
      count2 <= 8'b0;
    end else begin
      count1++;
      count2++;
    end
  end
endmodule
"#;

fn sync_counters() -> (Context, TransitionSystem) {
    let module = parse_source(SYNC_COUNTERS).unwrap().remove(0);
    let mut ctx = Context::new();
    let ts = elaborate(&mut ctx, &module).unwrap();
    (ctx, ts)
}

fn compile_prop(
    ctx: &mut Context,
    ts: &mut TransitionSystem,
    src: &str,
) -> genfv_sva::CompiledProperty {
    let a = parse_assertion(src).unwrap();
    PropertyCompiler::new(ctx, ts).compile(&a).unwrap()
}

#[test]
fn paper_property_clean_in_bmc() {
    let (mut ctx, mut ts) = sync_counters();
    let p =
        compile_prop(&mut ctx, &mut ts, "property equal_count; &count1 |-> &count2; endproperty");
    let prop = Property::new(p.name, p.ok);
    let res = bmc(&ctx, &ts, &prop, &[], 20, &CheckConfig::default());
    assert!(res.is_clean(), "no reachable violation: {res:?}");
}

#[test]
fn paper_property_fails_induction_step() {
    let (mut ctx, mut ts) = sync_counters();
    let p =
        compile_prop(&mut ctx, &mut ts, "property equal_count; &count1 |-> &count2; endproperty");
    let prop = Property::new(p.name, p.ok);
    let prover = KInduction::new(&ctx, &ts, CheckConfig { max_k: 3, ..Default::default() });
    match prover.prove(&prop, &[]) {
        ProveResult::StepFailure { k, trace, .. } => {
            assert!(k >= 1);
            assert_eq!(trace.kind, TraceKind::InductionStep);
            // The final cycle demonstrates &count1 true but &count2 false —
            // the paper's Fig. 3 situation (a low bit in count2).
            let last = trace.last_step().unwrap();
            let c1 = last.get("count1").unwrap();
            let c2 = last.get("count2").unwrap();
            assert!(c1.red_and(), "count1 must be all-ones in the violating cycle");
            assert!(!c2.red_and(), "count2 must have a zero bit");
        }
        other => panic!("expected StepFailure, got {other:?}"),
    }
}

#[test]
fn helper_lemma_is_inductive_and_closes_proof() {
    let (mut ctx, mut ts) = sync_counters();
    let target =
        compile_prop(&mut ctx, &mut ts, "property equal_count; &count1 |-> &count2; endproperty");
    let helper = compile_prop(&mut ctx, &mut ts, "property helper; count1 == count2; endproperty");

    let config = CheckConfig { max_k: 3, ..Default::default() };
    let prover = KInduction::new(&ctx, &ts, config);

    // The helper itself proves at k=1 (paper: "proved the original
    // assertion faster").
    let helper_prop = Property::new(helper.name.clone(), helper.ok);
    match prover.prove(&helper_prop, &[]) {
        ProveResult::Proven { k, .. } => assert_eq!(k, 1, "helper is 1-inductive"),
        other => panic!("helper must prove: {other:?}"),
    }

    // With the proven helper assumed, the target property closes.
    let target_prop = Property::new(target.name.clone(), target.ok);
    match prover.prove(&target_prop, &[helper.ok]) {
        ProveResult::Proven { k, .. } => assert_eq!(k, 1),
        other => panic!("target must prove with helper: {other:?}"),
    }
}

#[test]
fn real_bug_is_falsified_not_step_failure() {
    // Counters with different increments: the lockstep property has a real,
    // reachable counterexample.
    let src = r#"
module desync (input clk, rst, output logic [7:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 8'b0;
      count2 <= 8'b0;
    end else begin
      count1 <= count1 + 8'd1;
      count2 <= count2 + 8'd2;
    end
  end
endmodule
"#;
    let module = parse_source(src).unwrap().remove(0);
    let mut ctx = Context::new();
    let mut ts = elaborate(&mut ctx, &module).unwrap();
    let p = compile_prop(&mut ctx, &mut ts, "count1 == count2");
    let prop = Property::new(p.name, p.ok);

    let prover = KInduction::new(&ctx, &ts, CheckConfig { max_k: 5, ..Default::default() });
    match prover.prove(&prop, &[]) {
        ProveResult::Falsified { at, trace, .. } => {
            assert!(at >= 1, "counters agree at reset, diverge after");
            assert_eq!(trace.kind, TraceKind::CounterexampleFromReset);
            // First cycle must be the reset state (both zero).
            let first = &trace.steps[0];
            assert!(first.get("count1").unwrap().is_zero());
            assert!(first.get("count2").unwrap().is_zero());
        }
        other => panic!("expected Falsified, got {other:?}"),
    }
}

#[test]
fn bmc_finds_shallow_bug_with_exact_depth() {
    // A counter that breaks a bound at a known cycle: count < 5 fails at
    // cycle 5 exactly.
    let src = r#"
module cnt (input clk, rst, output logic [7:0] c);
  always_ff @(posedge clk) begin
    if (rst) c <= '0;
    else c <= c + 8'd1;
  end
endmodule
"#;
    let module = parse_source(src).unwrap().remove(0);
    let mut ctx = Context::new();
    let mut ts = elaborate(&mut ctx, &module).unwrap();
    let p = compile_prop(&mut ctx, &mut ts, "c < 8'd5");
    let prop = Property::new(p.name, p.ok);
    match bmc(&ctx, &ts, &prop, &[], 10, &CheckConfig::default()) {
        BmcResult::Falsified { at, trace, .. } => {
            assert_eq!(at, 5);
            assert_eq!(trace.len(), 6);
            assert_eq!(trace.last_step().unwrap().get("c").unwrap().to_u64(), Some(5));
        }
        other => panic!("expected Falsified, got {other:?}"),
    }
}

#[test]
fn simple_path_proves_without_lemmas_eventually() {
    // A 2-bit free-running counter with property `c != 2 → c != 2` style
    // tautology is trivial; instead check `c == 0 |-> true` equivalent...
    // More interesting: with simple-path constraints, "c wraps" properties
    // become provable at k = state-count without lemmas. Use a 2-bit
    // counter and the property `true` (sanity: simple path should not
    // break soundness).
    let src = r#"
module c2 (input clk, rst, output logic [1:0] c);
  always_ff @(posedge clk) begin
    if (rst) c <= '0;
    else c <= c + 2'd1;
  end
endmodule
"#;
    let module = parse_source(src).unwrap().remove(0);
    let mut ctx = Context::new();
    let mut ts = elaborate(&mut ctx, &module).unwrap();
    // Property that is true but not 1-inductive: c != 2 is false (c does
    // reach 2), so use: rst-free runs reach everything. Take instead the
    // property `c == c` under simple path — must still prove.
    let p = compile_prop(&mut ctx, &mut ts, "c == c");
    let prop = Property::new(p.name, p.ok);
    let prover = KInduction::new(
        &ctx,
        &ts,
        CheckConfig { max_k: 6, simple_path: true, ..Default::default() },
    );
    assert!(prover.prove(&prop, &[]).is_proven());
}

#[test]
fn conflict_budget_reports_unknown() {
    let (mut ctx, mut ts) = sync_counters();
    let p = compile_prop(&mut ctx, &mut ts, "&count1 |-> &count2");
    let prop = Property::new(p.name, p.ok);
    let prover = KInduction::new(
        &ctx,
        &ts,
        CheckConfig { max_k: 2, conflict_budget: Some(1), ..Default::default() },
    );
    match prover.prove(&prop, &[]) {
        ProveResult::Unknown { reason, .. } => {
            assert!(reason.contains("budget"), "{reason}");
        }
        // With a budget of 1 conflict the 8-bit instance may still solve
        // (propagation alone); accept a decisive answer too.
        ProveResult::StepFailure { .. } | ProveResult::Proven { .. } => {}
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn stats_are_populated() {
    let (mut ctx, mut ts) = sync_counters();
    let p = compile_prop(&mut ctx, &mut ts, "count1 == count2");
    let prop = Property::new(p.name, p.ok);
    let prover = KInduction::new(&ctx, &ts, CheckConfig::default());
    let res = prover.prove(&prop, &[]);
    let stats = res.stats();
    assert!(stats.solver_calls >= 2, "base + step at least");
    assert!(res.is_proven());
}

#[test]
fn temporal_property_with_monitor_proves() {
    // Non-overlapping implication compiled to a monitor with history
    // registers must survive induction: en && c==3 |=> c==4 on a counter
    // with enable... the monitor adds state; prove with the engine.
    let src = r#"
module encnt (input clk, rst, input en, output logic [3:0] c);
  always_ff @(posedge clk) begin
    if (rst) c <= '0;
    else if (en) c <= c + 4'd1;
  end
endmodule
"#;
    let module = parse_source(src).unwrap().remove(0);
    let mut ctx = Context::new();
    let mut ts = elaborate(&mut ctx, &module).unwrap();
    let p = compile_prop(&mut ctx, &mut ts, "en && !rst && (c == 4'd3) |=> (c == 4'd4)");
    let prop = Property::new(p.name, p.ok);
    let prover = KInduction::new(&ctx, &ts, CheckConfig { max_k: 4, ..Default::default() });
    let res = prover.prove(&prop, &[]);
    assert!(res.is_proven(), "{res:?}");
}
