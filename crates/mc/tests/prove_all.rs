//! Tests for batch proving with chained assume-guarantee.

use genfv_hdl::{elaborate, parse_source};
use genfv_ir::Context;
use genfv_mc::{CheckConfig, KInduction, Property, ProveResult};
use genfv_sva::{parse_assertion, PropertyCompiler};

/// sync counters where the strong invariant is listed before the weak
/// target: prove_all must close both, plain per-property proving only one.
#[test]
fn assume_guarantee_chains_properties() {
    let src = r#"
module sync8 (input clk, rst, output logic [7:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 8'b0;
      count2 <= 8'b0;
    end else begin
      count1++;
      count2++;
    end
  end
endmodule
"#;
    let module = parse_source(src).unwrap().remove(0);
    let mut ctx = Context::new();
    let mut ts = elaborate(&mut ctx, &module).unwrap();
    let mut pc = PropertyCompiler::new(&mut ctx, &mut ts);
    let strong = pc.compile(&parse_assertion("count1 == count2").unwrap()).unwrap();
    let weak = pc.compile(&parse_assertion("&count1 |-> &count2").unwrap()).unwrap();

    let config = CheckConfig { max_k: 3, ..Default::default() };
    let prover = KInduction::new(&ctx, &ts, config);

    // Ordered strong-first: both prove (weak uses strong as assumption).
    let props = [Property::new("strong", strong.ok), Property::new("weak", weak.ok)];
    let results = prover.prove_all(&props, &[]);
    assert!(results[0].is_proven(), "{:?}", results[0]);
    assert!(results[1].is_proven(), "{:?}", results[1]);

    // Ordered weak-first: the weak one fails its step (nothing to assume
    // yet), the strong one still proves — order matters, soundness not.
    let props = [Property::new("weak", weak.ok), Property::new("strong", strong.ok)];
    let results = prover.prove_all(&props, &[]);
    assert!(matches!(results[0], ProveResult::StepFailure { .. }), "{:?}", results[0]);
    assert!(results[1].is_proven());
}

#[test]
fn falsified_property_is_not_assumed() {
    // A false first property must not poison the second.
    let src = r#"
module c (input clk, rst, output logic [7:0] x);
  always_ff @(posedge clk) begin
    if (rst) x <= '0;
    else x <= x + 8'd1;
  end
endmodule
"#;
    let module = parse_source(src).unwrap().remove(0);
    let mut ctx = Context::new();
    let mut ts = elaborate(&mut ctx, &module).unwrap();
    let mut pc = PropertyCompiler::new(&mut ctx, &mut ts);
    let false_prop = pc.compile(&parse_assertion("x < 8'd3").unwrap()).unwrap();
    let true_prop = pc.compile(&parse_assertion("x == x").unwrap()).unwrap();

    let prover = KInduction::new(&ctx, &ts, CheckConfig::default());
    let props = [Property::new("false", false_prop.ok), Property::new("true", true_prop.ok)];
    let results = prover.prove_all(&props, &[]);
    assert!(matches!(results[0], ProveResult::Falsified { .. }));
    assert!(results[1].is_proven());
    // Crucially: had the false property been assumed, the trivial one
    // would still prove; assert instead that re-running the false one
    // alone gives the same verdict (no contamination of the prover).
    let again = prover.prove(&props[0], &[]);
    assert!(matches!(again, ProveResult::Falsified { .. }));
}
