//! Property test: random add/retract orders of guarded hypotheses on one
//! long-lived [`ProofSession`] must be observationally identical to a
//! fresh session holding only the currently-active hypotheses.
//!
//! This is the executable form of the activation-literal retraction
//! soundness argument (see `genfv_sat::assume`): retiring a selector adds
//! only the unit clause `¬sel`, so however many hypotheses were added,
//! retired, and re-added — and in whatever order — the surviving solver
//! answers every query exactly as a freshly-built solver loaded with just
//! the active set would. Divergence here would mean retraction leaks
//! constraints (unsound) or drops learnt consequences it may keep
//! (incomplete reuse).

use genfv_ir::{Context, ExprRef, TransitionSystem};
use genfv_mc::{CheckConfig, ProofSession};
use genfv_sat::Lit;
use proptest::prelude::*;

/// count' = count + 1, init 0, 4 bits — small enough that every query is
/// instant, rich enough that hypotheses genuinely interact (count bounds
/// propagate through the transition relation).
fn counter(ctx: &mut Context) -> TransitionSystem {
    let c = ctx.symbol("count", 4);
    let one = ctx.constant(1, 4);
    let zero = ctx.constant(0, 4);
    let next = ctx.add(c, one);
    let mut ts = TransitionSystem::new("counter");
    ts.add_state(c, Some(zero), next);
    ts.add_signal("count", c);
    ts
}

/// Frame-0 hypotheses to add/retract: upper bounds and exclusions over
/// `count`. Some imply others (count < 3 ⇒ count < 6), so the solver's
/// learnt clauses genuinely cross hypothesis boundaries.
fn fact_pool(ctx: &mut Context) -> Vec<ExprRef> {
    let c = ctx.find_symbol("count").unwrap();
    let mut pool = Vec::new();
    for bound in [3u64, 6, 11, 15] {
        let k = ctx.constant(bound, 4);
        pool.push(ctx.ult(c, k));
    }
    for excluded in [7u64, 12] {
        let k = ctx.constant(excluded, 4);
        pool.push(ctx.ne(c, k));
    }
    pool
}

/// One add/retract episode: `(action, fact_index)`; action 0 adds the
/// fact (fresh selector, also after an earlier retirement), 1 retires it.
type Episode = (u8, u8);

fn apply_episodes(
    session: &mut ProofSession<'_>,
    pool: &[ExprRef],
    episodes: &[Episode],
) -> Vec<Option<Lit>> {
    let mut sels: Vec<Option<Lit>> = vec![None; pool.len()];
    for &(action, idx) in episodes {
        let i = idx as usize % pool.len();
        match action {
            0 if sels[i].is_none() => {
                let sel = session.new_selector();
                session.guard_fact(sel, 0, pool[i]);
                sels[i] = Some(sel);
            }
            1 => {
                if let Some(sel) = sels[i].take() {
                    session.retire_selector(sel);
                }
            }
            _ => {}
        }
    }
    sels
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn retract_equals_absence(
        episodes in proptest::collection::vec((0u8..2, 0u8..6), 0..20)
    ) {
        let mut ctx = Context::new();
        let ts = counter(&mut ctx);
        let pool = fact_pool(&mut ctx);

        // The long-lived session experiences the whole history.
        let mut veteran = ProofSession::new(&ctx, &ts, CheckConfig::default());
        let sels = apply_episodes(&mut veteran, &pool, &episodes);
        let active: Vec<usize> =
            (0..pool.len()).filter(|&i| sels[i].is_some()).collect();

        // The fresh session sees only the survivors.
        let mut fresh = ProofSession::new(&ctx, &ts, CheckConfig::default());
        let mut fresh_sels: Vec<Option<Lit>> = vec![None; pool.len()];
        for &i in &active {
            let sel = fresh.new_selector();
            fresh.guard_fact(sel, 0, pool[i]);
            fresh_sels[i] = Some(sel);
        }

        let veteran_active: Vec<Lit> = active.iter().map(|&i| sels[i].unwrap()).collect();
        let fresh_active: Vec<Lit> =
            active.iter().map(|&i| fresh_sels[i].unwrap()).collect();

        for &probe in &pool {
            // Step-style query: do the active hypotheses at frame 0 force
            // `probe` at frame 1?
            let bad_v = !veteran.literal(1, probe);
            let mut asm_v = veteran_active.clone();
            asm_v.push(bad_v);
            let v = veteran.solve_under(false, 1, &asm_v);

            let bad_f = !fresh.literal(1, probe);
            let mut asm_f = fresh_active.clone();
            asm_f.push(bad_f);
            let f = fresh.solve_under(false, 1, &asm_f);
            prop_assert_eq!(
                v, f,
                "step query diverged after {:?} (active {:?})", episodes, active
            );

            // Deeper step window: frame-0 hypotheses propagate two
            // transitions the same way on both sessions.
            let bad_v = !veteran.literal(2, probe);
            let mut asm_v = veteran_active.clone();
            asm_v.push(bad_v);
            let v = veteran.solve_under(false, 2, &asm_v);

            let bad_f = !fresh.literal(2, probe);
            let mut asm_f = fresh_active.clone();
            asm_f.push(bad_f);
            let f = fresh.solve_under(false, 2, &asm_f);
            prop_assert_eq!(
                v, f,
                "window-2 query diverged after {:?} (active {:?})", episodes, active
            );

            // From-reset probe (base direction; hypotheses are step-side
            // and do not apply): both sessions must agree outright.
            let v = veteran.first_violation(probe, 3);
            let f = fresh.first_violation(probe, 3);
            prop_assert_eq!(
                v, f,
                "reset probe diverged after {:?} (active {:?})", episodes, active
            );
        }
    }
}
