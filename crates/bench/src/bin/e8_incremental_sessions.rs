//! **E8 — incremental proof sessions**: the Flow-2 repair loop with
//! rebuild-per-query engines versus persistent [`ProofSession`]s.
//!
//! Both contestants run the complete Flow 2 (validation gauntlet, sharded
//! parallel validation, Houdini, target proofs, CEX-driven LLM repair) on
//! the same designs across all four synthetic model profiles — the
//! chattier and noisier the model, the more candidates per completion and
//! the more closely-related solver queries per design, which is exactly
//! the workload the sessions amortise. The only knob that differs between
//! the contestants is `FlowConfig::with_engine`: `RebuildPerQuery`
//! rebuilds the unrolling and a fresh solver for every logical check (the
//! pre-session architecture), `Incremental` answers everything with
//! assumptions on persistent solvers. The corpus differential suite pins
//! the two modes to identical verdicts, so the timing gap is pure
//! solver-reuse win.
//!
//! Results go to stdout as a table and to `BENCH_incremental.json`
//! (working directory, or `$GENFV_BENCH_JSON`) for the CI trajectory:
//! per-(model, design) medians over `--samples` runs (default 5,
//! `--quick` = 2) plus the aggregate speedup. The run **fails** (exit 1)
//! if any cell's verdicts diverge between the modes — the bench doubles
//! as an end-to-end differential check in CI.
//!
//! Run with `cargo run --release -p genfv-bench --bin e8_incremental_sessions`.

use genfv_bench::{experiment_config, ms};
use genfv_core::{run_flow2, FlowReport, Table, TargetOutcome};
use genfv_genai::{ModelProfile, SyntheticLlm};
use genfv_mc::EngineMode;
use std::time::{Duration, Instant};

/// The benchmark family: the paper's lemma-hungry designs (many
/// candidates per completion — the chatty-model workload the sessions
/// target) plus cheap unaided designs as a floor.
const DESIGNS: &[&str] = &[
    "sync_counters_16",
    "modn_counter",
    "parity_pipe",
    "hamming74",
    "ecc_counter",
    "fifo_counters",
];

/// Every synthetic model profile, chatty and terse alike.
const MODELS: &[ModelProfile] = &[
    ModelProfile::GptFourTurbo,
    ModelProfile::GptFourO,
    ModelProfile::LlamaThree,
    ModelProfile::GeminiPro,
];

fn verdict_class(outcome: &TargetOutcome) -> &'static str {
    match outcome {
        TargetOutcome::Proven { .. } => "proven",
        TargetOutcome::Falsified { .. } => "falsified",
        TargetOutcome::StillUnproven { .. } => "still_unproven",
        TargetOutcome::Unknown { .. } => "unknown",
    }
}

fn verdicts(report: &FlowReport) -> Vec<(String, &'static str)> {
    report.targets.iter().map(|t| (t.name.clone(), verdict_class(&t.outcome))).collect()
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn run_mode(
    design: &genfv_designs::DesignBundle,
    model: ModelProfile,
    engine: EngineMode,
) -> (Duration, FlowReport) {
    let config = experiment_config().with_engine(engine);
    let mut llm = SyntheticLlm::new(model, 42);
    let t0 = Instant::now();
    let report = run_flow2(design.prepare().expect("prepare"), &mut llm, &config);
    (t0.elapsed(), report)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let samples = args
        .iter()
        .position(|a| a == "--samples")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick { 2 } else { 5 })
        .max(1);

    let mut table = Table::new([
        "model",
        "design",
        "rebuild (median)",
        "incremental (median)",
        "speedup",
        "verdicts",
    ]);
    let mut json_rows = Vec::new();
    let mut total_rebuild = Duration::ZERO;
    let mut total_incremental = Duration::ZERO;
    let mut divergent = false;

    for &model in MODELS {
        let llm_name = model.name().to_string();
        for name in DESIGNS {
            let bundle = genfv_designs::by_name(name).expect("benchmark design exists");
            let mut rebuild_times = Vec::with_capacity(samples);
            let mut incremental_times = Vec::with_capacity(samples);
            let mut rebuild_verdicts = Vec::new();
            let mut incremental_verdicts = Vec::new();
            for _ in 0..samples {
                let (t, report) = run_mode(&bundle, model, EngineMode::RebuildPerQuery);
                rebuild_times.push(t);
                rebuild_verdicts = verdicts(&report);
                let (t, report) = run_mode(&bundle, model, EngineMode::Incremental);
                incremental_times.push(t);
                incremental_verdicts = verdicts(&report);
            }
            let rebuild = median(&mut rebuild_times);
            let incremental = median(&mut incremental_times);
            total_rebuild += rebuild;
            total_incremental += incremental;
            let speedup = rebuild.as_secs_f64() / incremental.as_secs_f64().max(1e-9);
            let agree = rebuild_verdicts == incremental_verdicts;
            divergent |= !agree;
            table.row([
                llm_name.clone(),
                name.to_string(),
                ms(rebuild),
                ms(incremental),
                format!("{speedup:.2}x"),
                if agree { "identical".to_string() } else { "DIVERGED".to_string() },
            ]);
            json_rows.push(format!(
                "    {{\"model\": \"{llm_name}\", \"design\": \"{name}\", \
                 \"rebuild_ms\": {:.3}, \"incremental_ms\": {:.3}, \"speedup\": {speedup:.3}, \
                 \"verdicts_identical\": {agree}}}",
                rebuild.as_secs_f64() * 1e3,
                incremental.as_secs_f64() * 1e3,
            ));
        }
    }

    let overall = total_rebuild.as_secs_f64() / total_incremental.as_secs_f64().max(1e-9);
    println!("E8: Flow-2 repair loop — rebuild-per-query vs incremental sessions\n");
    println!("{}", table.render());
    println!(
        "\noverall: rebuild {} vs incremental {} → {overall:.2}x ({samples} samples/cell)",
        ms(total_rebuild),
        ms(total_incremental)
    );

    let json = format!(
        "{{\n  \"experiment\": \"e8_incremental_sessions\",\n  \"samples\": {samples},\n  \
         \"overall_speedup\": {overall:.3},\n  \"cells\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path =
        std::env::var("GENFV_BENCH_JSON").unwrap_or_else(|_| "BENCH_incremental.json".to_string());
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {path}");

    if divergent {
        eprintln!("FAIL: verdicts diverged between engine modes");
        std::process::exit(1);
    }
}
