//! **E7 — induction-depth sweep** (paper Section II-A mechanics): for each
//! design, the minimum k at which plain k-induction closes each target,
//! versus the depth needed once the GenAI lemmas are assumed.
//!
//! This exhibits the mechanism the whole paper rests on: a stronger
//! invariant (the helper) turns a deep — or impossible — induction into a
//! k=1 proof.

use genfv_bench::{experiment_config, ms};
use genfv_core::{run_flow2, Table};
use genfv_genai::{ModelProfile, SyntheticLlm};
use genfv_ir::ExprRef;
use genfv_mc::{CheckConfig, KInduction, Property, ProveResult};

const MAX_K: usize = 10;

/// Minimum k at which the target proves, or `None` within the sweep bound.
fn min_k(
    design: &genfv_core::PreparedDesign,
    target_idx: usize,
    lemmas: &[ExprRef],
) -> (Option<usize>, std::time::Duration) {
    let target = &design.targets[target_idx];
    let prop = Property::new(target.name.clone(), target.prop.ok);
    let config = CheckConfig { max_k: MAX_K, ..Default::default() };
    let prover = KInduction::new(&design.ctx, &design.ts, config);
    let t0 = std::time::Instant::now();
    let res = prover.prove(&prop, lemmas);
    let elapsed = t0.elapsed();
    match res {
        ProveResult::Proven { k, .. } => (Some(k), elapsed),
        _ => (None, elapsed),
    }
}

fn main() {
    println!("E7: induction-depth sweep, plain vs with GenAI lemmas (bound k ≤ {MAX_K})\n");
    let mut table = Table::new([
        "design",
        "target",
        "min k (plain)",
        "time (plain)",
        "min k (lemmas)",
        "time (lemmas)",
        "lemmas",
    ]);

    for bundle in genfv_designs::all_designs() {
        if bundle.name == "desync_counters" {
            continue;
        }
        // Generate lemmas once per design via Flow 2.
        let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 9009);
        let flow2 = run_flow2(bundle.prepare().expect("prepare"), &mut llm, &experiment_config());

        // Re-install the lemma texts on a fresh design.
        let mut design = bundle.prepare().expect("prepare");
        let lemma_exprs: Vec<ExprRef> = flow2
            .lemmas
            .iter()
            .map(|l| {
                let a = genfv_sva::parse_assertion(&l.text).expect("lemma parses");
                genfv_sva::PropertyCompiler::new(&mut design.ctx, &mut design.ts)
                    .compile(&a)
                    .expect("lemma compiles")
                    .ok
            })
            .collect();

        for idx in 0..design.targets.len() {
            let (plain_k, plain_t) = min_k(&design, idx, &[]);
            let (lemma_k, lemma_t) = min_k(&design, idx, &lemma_exprs);
            let fmt_k =
                |k: Option<usize>| k.map(|k| k.to_string()).unwrap_or_else(|| format!(">{MAX_K}"));
            table.row([
                bundle.name.to_string(),
                design.targets[idx].name.clone(),
                fmt_k(plain_k),
                ms(plain_t),
                fmt_k(lemma_k),
                ms(lemma_t),
                lemma_exprs.len().to_string(),
            ]);
        }
    }

    println!("{}", table.render());
    println!(
        "Expected shape: lemma-assisted induction closes at k=1 everywhere; plain\n\
         induction needs k=2 for feed-forward pipelines, k≈6 for the decade counter,\n\
         k=16 (beyond the bound) for twin shift registers, and never closes for the\n\
         free-running counter pairs — matching Section II-A's account of why\n\
         strengthening invariants are needed."
    );
}
