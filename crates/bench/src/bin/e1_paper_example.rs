//! **E1 — the paper's worked example** (Listings 1-3, Fig. 3).
//!
//! Mechanically reproduces the narrative: `sync_counters` passes BMC,
//! fails its induction step with a counterexample in which `count1` is
//! all-ones while `count2` has a zero bit (the paper highlights bit 31),
//! and the LLM-generated helper `count1 == count2` closes the proof.

use genfv_bench::{experiment_config, ms, outcome_cell};
use genfv_core::{run_baseline, run_flow2, TargetOutcome};
use genfv_genai::{ModelProfile, SyntheticLlm};
use genfv_mc::{bmc, render_final_bits, render_waveform, BmcResult, Property};

fn main() {
    let bundle = genfv_designs::by_name("sync_counters").expect("corpus");
    let config = experiment_config();

    println!("E1: paper worked example — sync_counters, `&count1 |-> &count2`\n");

    // BMC is clean (the property is true): paper Section II-A context.
    let design = bundle.prepare().expect("prepare");
    let target = &design.targets[0];
    let prop = Property::new(target.name.clone(), target.prop.ok);
    match bmc(&design.ctx, &design.ts, &prop, &[], 16, &config.check) {
        BmcResult::Clean { depth, stats } => println!(
            "BMC to depth {depth}: clean ({} conflicts, {})",
            stats.conflicts,
            ms(stats.duration)
        ),
        BmcResult::Falsified { at, .. } => panic!("property must be true, violated at {at}"),
    }

    // Plain induction: the step fails (Fig. 3).
    let baseline = run_baseline(&design, &config);
    let TargetOutcome::StillUnproven { k, trace } = &baseline.targets[0].outcome else {
        panic!("expected step failure, got {:?}", baseline.targets[0].outcome);
    };
    println!("\nPlain k-induction: step fails at k={k}. Counterexample:");
    println!("{}", render_waveform(trace));
    let last = trace.last_step().expect("non-empty trace");
    let c1 = last.get("count1").expect("count1");
    let c2 = last.get("count2").expect("count2");
    println!("final cycle: count1 = 32'h{:x}, count2 = 32'h{:x}", c1, c2);
    assert!(c1.red_and() && !c2.red_and());
    let zero_bits: Vec<u32> = (0..32).filter(|&i| !c2.bit(i)).collect();
    println!(
        "count2 has zero bit(s) {:?} — the paper's Fig. 3 shows exactly this shape\n",
        &zero_bits[..zero_bits.len().min(8)]
    );
    if let Some(bits) = render_final_bits(trace, "count2") {
        println!("{bits}");
    }

    // Flow 2 closes it with the Listing-3 helper.
    let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 42);
    let report = run_flow2(bundle.prepare().expect("prepare"), &mut llm, &config);
    println!("\nFlow 2 with {}:", report.model);
    println!("{}", genfv_core::render_events(&report));
    for lemma in &report.lemmas {
        println!("accepted lemma: {}", lemma.text);
    }
    println!("\noutcome: {}", outcome_cell(&report.targets[0].outcome));
    assert!(report.all_proven());
    assert!(
        report.lemmas.iter().any(|l| l.text.contains("count1") && l.text.contains("count2")),
        "the Listing-3 helper must be among the lemmas"
    );
    println!("\nE1 PASSED: the paper's example reproduces end to end.");
}
