//! **E10 — template-stamped unrolling**: DAG-walk frame encoding versus
//! template stamping (`UnrollMode::{DagWalk, Template}`), both on the
//! incremental-session engine.
//!
//! Three workloads, all differential (the run **fails** with exit 1 if
//! any verdict diverges between the encodings):
//!
//! * **encode** — the hot path itself, isolated: warm a batch of
//!   free-start session unrollers to frame 64 (2× the deep-induction
//!   depth) over the whole corpus, finishing each with a window-guarded
//!   solver call so every stamped clause really propagates. The batch
//!   size approximates one validation gauntlet's worth of session
//!   creations — the Flow-2 loop builds a session per shard, per Houdini
//!   run, and per lemma-installing repair iteration, so per-session
//!   encoding cost is paid constantly. This section is where the
//!   template's one-blast-then-stamp design shows directly.
//! * **flow** — the complete Flow 2 (validation gauntlet, Houdini,
//!   target proofs, CEX-driven repair) across designs × model profiles.
//!   End-to-end these runs are CDCL-dominated, so the expected result is
//!   parity-or-better; the section keeps the aggregate honest.
//!   Induction-step counterexample *values* are solver-chosen and feed
//!   the repair prompt, so the contest compares verdict classes and
//!   falsification cycles — the observables the flows branch on.
//! * **deep** — unaided `ProofSession::prove` at `max_k` 32 (twice the
//!   e9 deep depth): every frame costs a full DAG re-walk in the
//!   reference encoding and one clause-arena stamp in template mode, and
//!   the hash-consed block is smaller, so the solver often searches less
//!   too. Unaided proofs issue identical query sequences in both modes,
//!   so verdicts (including depths and cycles) must match exactly.
//!
//! Results go to stdout and to `BENCH_unroll.json` (working directory,
//! or `$GENFV_BENCH_JSON`): per-cell medians over `--samples` runs
//! (default 5, `--quick` = 2 with a smaller encode batch), per-section
//! and overall speedups.
//!
//! Run with `cargo run --release -p genfv-bench --bin e10_template_unroll`.

use genfv_bench::ms;
use genfv_core::{run_flow2, FlowConfig, FlowReport, Table, TargetOutcome};
use genfv_genai::{ModelProfile, SyntheticLlm};
use genfv_mc::{CheckConfig, ProofSession, Property, ProveResult, UnrollMode, Unroller};
use std::time::{Duration, Instant};

/// Flow-workload designs: the lemma-hungry family (same as e8/e9).
const FLOW_DESIGNS: &[&str] =
    &["sync_counters_16", "parity_pipe", "hamming74", "ecc_counter", "fifo_counters"];

const MODELS: &[ModelProfile] = &[ModelProfile::GptFourTurbo, ModelProfile::LlamaThree];

/// Deep-induction designs: the arithmetic checkers (divider, multiplier
/// identities) whose frames are encoding-bound, the wide lockstep
/// counters, the parity/ECC family — and `ecc_counter` as a
/// solver-bound control whose step tail is conflict-dominated, so frame
/// encoding buys little there (the cell keeps the aggregate honest).
/// `fifo_counters` is deliberately absent: its unaided step obligations
/// blow up exponentially past k≈20 in *both* encodings (that tail is
/// e9's portfolio territory, not an encoding problem).
const DEEP_DESIGNS: &[&str] = &[
    "div_checker",
    "mul_incr",
    "mul_distrib",
    "sync_counters_16",
    "hamming74",
    "secded84",
    "offset_counters",
    "gray_counter",
    "ecc_counter",
];

/// 2× the e9 deep-induction depth: frame encoding scales linearly with
/// depth, so doubling the unroll doubles the template's advantage.
const DEEP_MAX_K: usize = 32;

/// Unroll depth of the encode section (2× the deep induction's window).
const ENCODE_FRAMES: usize = 64;

/// Sessions warmed per encode cell — roughly one validation gauntlet's
/// worth of session churn.
const ENCODE_SESSIONS: usize = 25;
const ENCODE_SESSIONS_QUICK: usize = 8;

fn verdict_class(outcome: &TargetOutcome) -> String {
    match outcome {
        TargetOutcome::Proven { .. } => "proven".to_string(),
        TargetOutcome::Falsified { at } => format!("falsified@{at}"),
        TargetOutcome::StillUnproven { .. } => "still_unproven".to_string(),
        TargetOutcome::Unknown { .. } => "unknown".to_string(),
    }
}

fn flow_verdicts(report: &FlowReport) -> Vec<(String, String)> {
    report.targets.iter().map(|t| (t.name.clone(), verdict_class(&t.outcome))).collect()
}

fn prove_verdict(res: &ProveResult) -> String {
    match res {
        ProveResult::Proven { k, .. } => format!("proven@{k}"),
        ProveResult::Falsified { at, .. } => format!("falsified@{at}"),
        ProveResult::StepFailure { k, .. } => format!("step_failure@{k}"),
        ProveResult::Unknown { .. } => "unknown".to_string(),
    }
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Cell {
    section: &'static str,
    model: String,
    design: String,
    dagwalk: Duration,
    template: Duration,
    max_frame: usize,
    agree: bool,
}

/// One encode run: warm `sessions` guarded step unrollers to
/// [`ENCODE_FRAMES`], each finished with a window-guarded solve (no
/// property asserted) so the stamped clauses must actually propagate.
/// Returns the wall time and the solve verdict (compared *between* the
/// encodings — the differential observable of this section).
fn encode_run(
    design: &genfv_core::PreparedDesign,
    mode: UnrollMode,
    sessions: usize,
) -> (Duration, bool) {
    let t0 = Instant::now();
    let mut all_sat = true;
    for _ in 0..sessions {
        let mut u = Unroller::with_mode(&design.ctx, &design.ts, false, true, mode);
        u.ensure_frame(ENCODE_FRAMES);
        let guards: Vec<_> =
            (0..=ENCODE_FRAMES).map(|k| u.frame_guard(k).expect("guarded")).collect();
        all_sat &= u.blaster_mut().solve_with_assumptions(&guards).is_sat();
    }
    (t0.elapsed(), all_sat)
}

fn run_encode_cell(name: &str, samples: usize, sessions: usize) -> Cell {
    let bundle = genfv_designs::by_name(name).expect("benchmark design exists");
    let design = bundle.prepare().expect("prepare");
    let mut dag_times = Vec::new();
    let mut tpl_times = Vec::new();
    let mut agree = true;
    for _ in 0..samples {
        let (t, dag_sat) = encode_run(&design, UnrollMode::DagWalk, sessions);
        dag_times.push(t);
        let (t, tpl_sat) = encode_run(&design, UnrollMode::Template, sessions);
        tpl_times.push(t);
        agree &= dag_sat == tpl_sat;
    }
    Cell {
        section: "encode",
        model: "-".to_string(),
        design: name.to_string(),
        dagwalk: median(&mut dag_times),
        template: median(&mut tpl_times),
        max_frame: ENCODE_FRAMES,
        agree,
    }
}

fn run_flow_cell(name: &str, model: ModelProfile, samples: usize) -> Cell {
    let bundle = genfv_designs::by_name(name).expect("benchmark design exists");
    let base = FlowConfig {
        check: CheckConfig { max_k: 6, ..Default::default() },
        max_iterations: 4,
        ..Default::default()
    };
    let mut dag_times = Vec::new();
    let mut tpl_times = Vec::new();
    let mut dag_verdicts = Vec::new();
    let mut tpl_verdicts = Vec::new();
    let mut max_frame = 0;
    for _ in 0..samples {
        let config = base.clone().with_unroll_mode(UnrollMode::DagWalk);
        let mut llm = SyntheticLlm::new(model, 42);
        let t0 = Instant::now();
        let report = run_flow2(bundle.prepare().expect("prepare"), &mut llm, &config);
        dag_times.push(t0.elapsed());
        dag_verdicts = flow_verdicts(&report);

        let config = base.clone().with_unroll_mode(UnrollMode::Template);
        let mut llm = SyntheticLlm::new(model, 42);
        let t0 = Instant::now();
        let report = run_flow2(bundle.prepare().expect("prepare"), &mut llm, &config);
        tpl_times.push(t0.elapsed());
        tpl_verdicts = flow_verdicts(&report);
        max_frame = report.metrics.solver.max_frame;
    }
    Cell {
        section: "flow",
        model: model.name().to_string(),
        design: name.to_string(),
        dagwalk: median(&mut dag_times),
        template: median(&mut tpl_times),
        max_frame,
        agree: dag_verdicts == tpl_verdicts,
    }
}

fn run_deep_cell(name: &str, samples: usize, max_k: usize) -> Cell {
    let bundle = genfv_designs::by_name(name).expect("benchmark design exists");
    let design = bundle.prepare().expect("prepare");
    let props: Vec<Property> =
        design.targets.iter().map(|t| Property::new(t.name.clone(), t.prop.ok)).collect();
    let dag_cfg = CheckConfig { max_k, unroll_mode: UnrollMode::DagWalk, ..Default::default() };
    let tpl_cfg = CheckConfig { max_k, unroll_mode: UnrollMode::Template, ..Default::default() };

    let mut dag_times = Vec::new();
    let mut tpl_times = Vec::new();
    let mut dag_verdicts = Vec::new();
    let mut tpl_verdicts = Vec::new();
    let mut max_frame = 0;
    for _ in 0..samples {
        let t0 = Instant::now();
        let mut s = ProofSession::new(&design.ctx, &design.ts, dag_cfg.clone());
        dag_verdicts = props.iter().map(|p| prove_verdict(&s.prove(p))).collect::<Vec<_>>();
        dag_times.push(t0.elapsed());

        let t0 = Instant::now();
        let mut s = ProofSession::new(&design.ctx, &design.ts, tpl_cfg.clone());
        tpl_verdicts = props.iter().map(|p| prove_verdict(&s.prove(p))).collect::<Vec<_>>();
        tpl_times.push(t0.elapsed());
        max_frame = s.stats().max_frame;
    }
    Cell {
        section: "deep",
        model: "-".to_string(),
        design: name.to_string(),
        dagwalk: median(&mut dag_times),
        template: median(&mut tpl_times),
        max_frame,
        agree: dag_verdicts == tpl_verdicts,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let samples = args
        .iter()
        .position(|a| a == "--samples")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick { 2 } else { 5 })
        .max(1);
    let deep_k = args
        .iter()
        .position(|a| a == "--deep-k")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEEP_MAX_K)
        .max(1);
    let sessions = if quick { ENCODE_SESSIONS_QUICK } else { ENCODE_SESSIONS };
    let only: Option<&String> =
        args.iter().position(|a| a == "--only").and_then(|p| args.get(p + 1));
    let keep = |name: &str| only.is_none_or(|o| o == name);

    let mut cells: Vec<Cell> = Vec::new();
    for bundle in genfv_designs::all_designs().into_iter().chain(genfv_designs::datapath_designs())
    {
        if keep(bundle.name) {
            cells.push(run_encode_cell(bundle.name, samples, sessions));
        }
    }
    for &model in MODELS {
        for name in FLOW_DESIGNS {
            if keep(name) {
                cells.push(run_flow_cell(name, model, samples));
            }
        }
    }
    for name in DEEP_DESIGNS {
        if keep(name) {
            cells.push(run_deep_cell(name, samples, deep_k));
        }
    }

    let mut table = Table::new([
        "section",
        "model",
        "design",
        "dagwalk (median)",
        "template (median)",
        "speedup",
        "frames",
        "verdicts",
    ]);
    let mut json_rows = Vec::new();
    let mut totals: std::collections::BTreeMap<&'static str, (Duration, Duration)> =
        std::collections::BTreeMap::new();
    let mut divergent = false;
    for c in &cells {
        let entry = totals.entry(c.section).or_insert((Duration::ZERO, Duration::ZERO));
        entry.0 += c.dagwalk;
        entry.1 += c.template;
        let speedup = c.dagwalk.as_secs_f64() / c.template.as_secs_f64().max(1e-9);
        divergent |= !c.agree;
        table.row([
            c.section.to_string(),
            c.model.clone(),
            c.design.clone(),
            ms(c.dagwalk),
            ms(c.template),
            format!("{speedup:.2}x"),
            c.max_frame.to_string(),
            if c.agree { "identical".to_string() } else { "DIVERGED".to_string() },
        ]);
        json_rows.push(format!(
            "    {{\"section\": \"{}\", \"model\": \"{}\", \"design\": \"{}\", \
             \"dagwalk_ms\": {:.3}, \"template_ms\": {:.3}, \"speedup\": {speedup:.3}, \
             \"max_frame\": {}, \"verdicts_identical\": {}}}",
            c.section,
            c.model,
            c.design,
            c.dagwalk.as_secs_f64() * 1e3,
            c.template.as_secs_f64() * 1e3,
            c.max_frame,
            c.agree,
        ));
    }

    let total_dag: Duration = totals.values().map(|&(d, _)| d).sum();
    let total_tpl: Duration = totals.values().map(|&(_, t)| t).sum();
    let overall = total_dag.as_secs_f64() / total_tpl.as_secs_f64().max(1e-9);
    println!("E10: frame encoding — per-frame DAG walk vs template stamping\n");
    println!("{}", table.render());
    let mut section_json = Vec::new();
    println!();
    for (section, (d, t)) in &totals {
        let s = d.as_secs_f64() / t.as_secs_f64().max(1e-9);
        println!("{section}: dagwalk {} vs template {} → {s:.2}x", ms(*d), ms(*t));
        section_json.push(format!("    \"{section}\": {s:.3}"));
    }
    println!(
        "overall: dagwalk {} vs template {} → {overall:.2}x \
         ({samples} samples/cell, {sessions} sessions/encode cell, deep max_k {deep_k})",
        ms(total_dag),
        ms(total_tpl)
    );

    let json = format!(
        "{{\n  \"experiment\": \"e10_template_unroll\",\n  \"samples\": {samples},\n  \
         \"encode_sessions\": {sessions},\n  \"encode_frames\": {ENCODE_FRAMES},\n  \
         \"deep_max_k\": {deep_k},\n  \"overall_speedup\": {overall:.3},\n  \
         \"section_speedups\": {{\n{}\n  }},\n  \"cells\": [\n{}\n  ]\n}}\n",
        section_json.join(",\n"),
        json_rows.join(",\n")
    );
    let path =
        std::env::var("GENFV_BENCH_JSON").unwrap_or_else(|_| "BENCH_unroll.json".to_string());
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {path}");

    if divergent {
        eprintln!("FAIL: verdicts diverged between DAG-walk and template encodings");
        std::process::exit(1);
    }
}
