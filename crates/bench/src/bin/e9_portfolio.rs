//! **E9 — portfolio solving**: single-solver incremental sessions versus
//! portfolio-backed sessions (`genfv-portfolio`).
//!
//! Two workloads, both differential (the run **fails** with exit 1 if any
//! verdict diverges between the modes):
//!
//! * **flow** — the complete Flow 2 (validation gauntlet, Houdini, target
//!   proofs, CEX-driven repair) across designs × model profiles. Its
//!   queries are mostly light, so the portfolio's probe settles them solo
//!   and the contest checks that portfolio mode costs ~nothing when there
//!   is nothing to win.
//! * **deep induction** — unaided `ProofSession::prove` at `max_k` 16,
//!   where step queries on the variance-prone designs (FIFO pointer
//!   obligations, ECC lockstep) run to tens of thousands of conflicts and
//!   escalate past the probe into ladder races. This is the heavy tail
//!   the portfolio exists for.
//!
//! The portfolio runs the deterministic sequential ladder (2 workers,
//! probe 2000, epochs from 16k conflicts), so every reported number is
//! bit-reproducible; see `genfv-portfolio` for the discipline. Results go
//! to stdout and to `BENCH_portfolio.json` (working directory, or
//! `$GENFV_BENCH_JSON`): per-cell medians over `--samples` runs (default
//! 5, `--quick` = 2), race/glue counters, and the aggregate speedup.
//!
//! Run with `cargo run --release -p genfv-bench --bin e9_portfolio`.

use genfv_bench::ms;
use genfv_core::{run_flow2, FlowConfig, FlowReport, Table, TargetOutcome};
use genfv_genai::{ModelProfile, SyntheticLlm};
use genfv_mc::{CheckConfig, PortfolioConfig, ProofSession, Property, ProveResult};
use std::time::{Duration, Instant};

/// Flow-workload designs: the lemma-hungry E8 family.
const FLOW_DESIGNS: &[&str] =
    &["sync_counters_16", "parity_pipe", "hamming74", "ecc_counter", "fifo_counters"];

const MODELS: &[ModelProfile] = &[ModelProfile::GptFourTurbo, ModelProfile::LlamaThree];

/// Deep-induction designs: heavy unaided step queries (fifo, ecc) plus
/// cheap ones as an overhead floor.
const DEEP_DESIGNS: &[&str] =
    &["fifo_counters", "ecc_counter", "secded84", "div_checker", "gray_counter"];

/// The raced contestant's portfolio: two workers on the deterministic
/// sequential ladder. Calibrated on this corpus — the probe keeps light
/// queries race-free, the 16k first epoch keeps ladder overshoot small
/// relative to the heavy tails it rescues.
fn portfolio_config() -> PortfolioConfig {
    PortfolioConfig {
        workers: 2,
        probe_conflicts: Some(2000),
        epoch_start: 16000,
        adopt_winner: false,
        ..PortfolioConfig::default()
    }
}

fn verdict_class(outcome: &TargetOutcome) -> &'static str {
    match outcome {
        TargetOutcome::Proven { .. } => "proven",
        TargetOutcome::Falsified { .. } => "falsified",
        TargetOutcome::StillUnproven { .. } => "still_unproven",
        TargetOutcome::Unknown { .. } => "unknown",
    }
}

fn flow_verdicts(report: &FlowReport) -> Vec<(String, &'static str)> {
    report.targets.iter().map(|t| (t.name.clone(), verdict_class(&t.outcome))).collect()
}

fn prove_verdict(res: &ProveResult) -> String {
    match res {
        ProveResult::Proven { k, .. } => format!("proven@{k}"),
        ProveResult::Falsified { at, .. } => format!("falsified@{at}"),
        ProveResult::StepFailure { k, .. } => format!("step_failure@{k}"),
        ProveResult::Unknown { .. } => "unknown".to_string(),
    }
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Cell {
    section: &'static str,
    model: String,
    design: String,
    single: Duration,
    portfolio: Duration,
    races: u64,
    glue: u64,
    agree: bool,
}

fn run_flow_cell(name: &str, model: ModelProfile, samples: usize) -> Cell {
    let bundle = genfv_designs::by_name(name).expect("benchmark design exists");
    let base = FlowConfig {
        check: CheckConfig { max_k: 6, ..Default::default() },
        max_iterations: 4,
        ..Default::default()
    };
    let mut single_times = Vec::new();
    let mut portfolio_times = Vec::new();
    let mut single_verdicts = Vec::new();
    let mut portfolio_verdicts = Vec::new();
    let mut races = 0;
    let mut glue = 0;
    for _ in 0..samples {
        let mut llm = SyntheticLlm::new(model, 42);
        let t0 = Instant::now();
        let report = run_flow2(bundle.prepare().expect("prepare"), &mut llm, &base);
        single_times.push(t0.elapsed());
        single_verdicts = flow_verdicts(&report);

        let config = base.clone().with_portfolio(portfolio_config());
        let mut llm = SyntheticLlm::new(model, 42);
        let t0 = Instant::now();
        let report = run_flow2(bundle.prepare().expect("prepare"), &mut llm, &config);
        portfolio_times.push(t0.elapsed());
        portfolio_verdicts = flow_verdicts(&report);
        races = report.metrics.solver.portfolio_races;
        glue = report.metrics.solver.portfolio_glue_shared;
    }
    Cell {
        section: "flow",
        model: model.name().to_string(),
        design: name.to_string(),
        single: median(&mut single_times),
        portfolio: median(&mut portfolio_times),
        races,
        glue,
        agree: single_verdicts == portfolio_verdicts,
    }
}

fn run_deep_cell(name: &str, samples: usize) -> Cell {
    let bundle = genfv_designs::by_name(name).expect("benchmark design exists");
    let design = bundle.prepare().expect("prepare");
    let props: Vec<Property> =
        design.targets.iter().map(|t| Property::new(t.name.clone(), t.prop.ok)).collect();
    let single_cfg = CheckConfig { max_k: 16, ..Default::default() };
    let raced_cfg = CheckConfig { portfolio: Some(portfolio_config()), ..single_cfg.clone() };

    let mut single_times = Vec::new();
    let mut portfolio_times = Vec::new();
    let mut single_verdicts = Vec::new();
    let mut portfolio_verdicts = Vec::new();
    let mut races = 0;
    let mut glue = 0;
    for _ in 0..samples {
        let t0 = Instant::now();
        let mut s = ProofSession::new(&design.ctx, &design.ts, single_cfg.clone());
        single_verdicts = props.iter().map(|p| prove_verdict(&s.prove(p))).collect::<Vec<_>>();
        single_times.push(t0.elapsed());

        let t0 = Instant::now();
        let mut s = ProofSession::new(&design.ctx, &design.ts, raced_cfg.clone());
        portfolio_verdicts = props.iter().map(|p| prove_verdict(&s.prove(p))).collect::<Vec<_>>();
        portfolio_times.push(t0.elapsed());
        races = s.stats().portfolio_races;
        glue = s.stats().portfolio_glue_shared;
    }
    Cell {
        section: "deep",
        model: "-".to_string(),
        design: name.to_string(),
        single: median(&mut single_times),
        portfolio: median(&mut portfolio_times),
        races,
        glue,
        agree: single_verdicts == portfolio_verdicts,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let samples = args
        .iter()
        .position(|a| a == "--samples")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick { 2 } else { 5 })
        .max(1);

    let mut cells: Vec<Cell> = Vec::new();
    for &model in MODELS {
        for name in FLOW_DESIGNS {
            cells.push(run_flow_cell(name, model, samples));
        }
    }
    for name in DEEP_DESIGNS {
        cells.push(run_deep_cell(name, samples));
    }

    let mut table = Table::new([
        "section",
        "model",
        "design",
        "single (median)",
        "portfolio (median)",
        "speedup",
        "races",
        "glue",
        "verdicts",
    ]);
    let mut json_rows = Vec::new();
    let mut total_single = Duration::ZERO;
    let mut total_portfolio = Duration::ZERO;
    let mut divergent = false;
    for c in &cells {
        total_single += c.single;
        total_portfolio += c.portfolio;
        let speedup = c.single.as_secs_f64() / c.portfolio.as_secs_f64().max(1e-9);
        divergent |= !c.agree;
        table.row([
            c.section.to_string(),
            c.model.clone(),
            c.design.clone(),
            ms(c.single),
            ms(c.portfolio),
            format!("{speedup:.2}x"),
            c.races.to_string(),
            c.glue.to_string(),
            if c.agree { "identical".to_string() } else { "DIVERGED".to_string() },
        ]);
        json_rows.push(format!(
            "    {{\"section\": \"{}\", \"model\": \"{}\", \"design\": \"{}\", \
             \"single_ms\": {:.3}, \"portfolio_ms\": {:.3}, \"speedup\": {speedup:.3}, \
             \"races\": {}, \"glue_shared\": {}, \"verdicts_identical\": {}}}",
            c.section,
            c.model,
            c.design,
            c.single.as_secs_f64() * 1e3,
            c.portfolio.as_secs_f64() * 1e3,
            c.races,
            c.glue,
            c.agree,
        ));
    }

    let overall = total_single.as_secs_f64() / total_portfolio.as_secs_f64().max(1e-9);
    println!("E9: incremental sessions — single solver vs portfolio racing\n");
    println!("{}", table.render());
    println!(
        "\noverall: single {} vs portfolio {} → {overall:.2}x ({samples} samples/cell)",
        ms(total_single),
        ms(total_portfolio)
    );

    let json = format!(
        "{{\n  \"experiment\": \"e9_portfolio\",\n  \"samples\": {samples},\n  \
         \"workers\": {},\n  \"overall_speedup\": {overall:.3},\n  \"cells\": [\n{}\n  ]\n}}\n",
        portfolio_config().workers,
        json_rows.join(",\n")
    );
    let path =
        std::env::var("GENFV_BENCH_JSON").unwrap_or_else(|_| "BENCH_portfolio.json".to_string());
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {path}");

    if divergent {
        eprintln!("FAIL: verdicts diverged between single-solver and portfolio sessions");
        std::process::exit(1);
    }
}
