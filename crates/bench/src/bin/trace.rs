//! Trace one design/flow run and export it: Chrome `trace_event` JSON
//! (loadable in Perfetto / `chrome://tracing`) to a file, human-readable
//! span tree to stdout.
//!
//! ```text
//! cargo run --release -p genfv-bench --bin trace -- \
//!     [design] [--flow baseline|flow1|flow2|combined] \
//!     [--deterministic] [--out trace.json] [--list]
//! ```
//!
//! With no arguments the first corpus design runs the baseline flow and
//! the trace lands in `trace.json`. `--deterministic` swaps the
//! wall-clock for the logical tick clock (spans keep their shape, wall
//! times disappear — the mode the differential suites pin). See also
//! `scripts/trace.sh`.

use genfv_core::{run_baseline, run_combined, run_flow1, run_flow2, FlowConfig};
use genfv_genai::{ModelProfile, SyntheticLlm};
use genfv_obs::{Obs, ObsConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for bundle in genfv_designs::all_designs() {
            println!("{}", bundle.name);
        }
        return;
    }
    let flag = |name: &str| args.iter().position(|a| a == name);
    let flow = flag("--flow")
        .and_then(|p| args.get(p + 1))
        .map(String::as_str)
        .unwrap_or("baseline")
        .to_string();
    let out = flag("--out")
        .and_then(|p| args.get(p + 1))
        .map(String::as_str)
        .unwrap_or("trace.json")
        .to_string();
    let deterministic = args.iter().any(|a| a == "--deterministic");
    let design_name = args
        .iter()
        .position(|a| !a.starts_with("--"))
        .filter(|&p| p == 0 || !args[p - 1].starts_with("--") || args[p - 1] == "--deterministic")
        .map(|p| args[p].clone());

    let bundle = match &design_name {
        Some(name) => genfv_designs::by_name(name).unwrap_or_else(|| {
            eprintln!("unknown design `{name}` — try --list");
            std::process::exit(2);
        }),
        None => genfv_designs::all_designs().into_iter().next().expect("corpus is non-empty"),
    };
    let design = bundle.prepare().expect("corpus design prepares");

    let mode = if deterministic { ObsConfig::Deterministic } else { ObsConfig::Full };
    let obs = Obs::new(mode);
    let config = FlowConfig::default().with_obs(obs.clone());
    let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 42);
    let report = match flow.as_str() {
        "baseline" => run_baseline(&design, &config),
        "flow1" => run_flow1(design.clone(), &mut llm, &config),
        "flow2" => run_flow2(design.clone(), &mut llm, &config),
        "combined" => run_combined(design.clone(), &mut llm, &config),
        other => {
            eprintln!("unknown flow `{other}` (baseline|flow1|flow2|combined)");
            std::process::exit(2);
        }
    };

    let obs_report = obs.report().expect("enabled handle yields a report");
    std::fs::write(&out, obs_report.chrome_json()).expect("write trace json");

    println!(
        "{} / {} — {} targets, {} spans ({} events, {} dropped)\n",
        design.name,
        flow,
        report.targets.len(),
        obs_report.events.len() / 2,
        obs_report.events.len(),
        obs_report.dropped
    );
    print!("{}", obs_report.render_tree());
    println!("\nwrote {out} — open in https://ui.perfetto.dev or chrome://tracing");
}
