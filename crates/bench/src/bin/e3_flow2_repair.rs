//! **E3 — Flow 2** (paper Fig. 2): CEX-driven induction repair.
//!
//! For every design whose targets fail their induction step, the table
//! reports how many LLM repair iterations the flow needed, the prompt and
//! completion token volumes, and the final outcome — including the buggy
//! design, which must short-circuit to a real counterexample without ever
//! consulting the model.

use genfv_bench::{experiment_config, ms, outcome_cell, total_rejected};
use genfv_core::{run_flow2, Table};
use genfv_genai::{ModelProfile, SyntheticLlm};

fn main() {
    let config = experiment_config();
    let mut table = Table::new([
        "design",
        "target",
        "outcome",
        "iterations",
        "llm calls",
        "lemmas",
        "rejected",
        "prompt tok",
        "completion tok",
        "total time",
    ]);

    for bundle in genfv_designs::all_designs() {
        let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 2002);
        let report = run_flow2(bundle.prepare().expect("prepare"), &mut llm, &config);
        for t in &report.targets {
            table.row([
                bundle.name.to_string(),
                t.name.clone(),
                outcome_cell(&t.outcome),
                report.metrics.iterations.to_string(),
                report.metrics.llm_calls.to_string(),
                report.metrics.lemmas_accepted.to_string(),
                total_rejected(&report).to_string(),
                report.metrics.prompt_tokens.to_string(),
                report.metrics.completion_tokens.to_string(),
                ms(report.metrics.total_time),
            ]);
        }
    }

    println!("E3: Flow 2 — CEX-driven induction repair (paper Fig. 2)\n");
    println!("{}", table.render());
    println!(
        "Expected shape: lemma-hungry designs close after 1-2 repair iterations;\n\
         unaided-provable designs close with zero LLM calls; the seeded bug\n\
         (desync_counters) is reported as a reachable counterexample without any\n\
         LLM involvement — real bugs must never be 'repaired'."
    );
}
