//! **E11 — verification service**: warm-session cache and same-design
//! batching versus a cold service, on repeat-design traffic.
//!
//! The service's bet is that verification traffic repeats: the same
//! design comes back re-verified again and again (CI, spec tweaks, model
//! sweeps), and almost all of a small job's cost is *capital* —
//! parse/elaborate/compile, template bit-blasting, base cases — that a
//! design-hash-keyed cache can carry from one request to the next. This
//! experiment measures exactly that: for each design, a burst of
//! identical jobs is pushed through
//!
//! * a **warm** service (default configuration: LRU design cache on,
//!   same-design batching on), and
//! * a **cold** service (`with_cache_entries(0).with_batching(false)`:
//!   every job re-prepares its design and starts its sessions from
//!   nothing),
//!
//! both single-worker so the comparison is scheduling-free. Two
//! sections: **baseline** (plain k-induction; pure capital, the cache's
//! best case) and **flow2** (the full CEX-driven repair loop around it).
//! The run is differential — it **fails with exit 1** if any job's
//! verdict classes differ between warm, cold, and a direct flow call,
//! or if the warm service records no cache hits.
//!
//! Results go to stdout and `BENCH_service.json` (working directory, or
//! `$GENFV_BENCH_JSON`): per-cell medians over `--samples` service
//! bursts (default 5, `--quick` = 2) of `--repeats` jobs each. The
//! headline `overall_speedup` is the geometric mean of per-cell
//! speedups — the cells span two orders of magnitude of runtime, so a
//! total-time ratio would just re-measure the two slowest (deliberately
//! adversarial) cells; the raw cold/warm totals are reported alongside.
//!
//! Run with `cargo run --release -p genfv-bench --bin e11_service`.

use genfv_bench::ms;
use genfv_core::{
    run_baseline, run_flow2, CorpusMode, FlowConfig, FlowReport, Table, TargetOutcome,
};
use genfv_genai::{ModelProfile, SyntheticLlm};
use genfv_service::{DesignInput, JobRequest, ServiceConfig, VerificationService};
use std::time::{Duration, Instant};

/// Baseline-section designs: capital-dominated corpus members (encoding
/// and base cases outweigh the step search) — plus `mul_incr` as a
/// deliberately adversarial control. Its multiplier cone makes the step
/// search conflict-dominated, and skipping seeded base cases used to
/// also skip the learned-clause warmup those solves would have given
/// the step query, making the warm service slightly *slower* there.
/// The seed's clause pool now replays the skipped solves' learnt
/// clauses (see `e13_cube`), so the cell is kept as the regression
/// sentinel for exactly that trade.
const BASELINE_DESIGNS: &[&str] = &[
    "sync_counters_16",
    "hamming74",
    "secded84",
    "gray_counter",
    "ring_counter",
    "div_checker",
    "mul_incr",
];

/// Flow-section designs: the lemma-hungry family (same as e8/e9/e10).
const FLOW_DESIGNS: &[&str] =
    &["sync_counters_16", "parity_pipe", "hamming74", "ecc_counter", "fifo_counters"];

const MODEL: ModelProfile = ModelProfile::GptFourTurbo;
const LLM_SEED: u64 = 42;

fn verdict_class(outcome: &TargetOutcome) -> String {
    match outcome {
        TargetOutcome::Proven { .. } => "proven".to_string(),
        TargetOutcome::Falsified { at } => format!("falsified@{at}"),
        TargetOutcome::StillUnproven { .. } => "still_unproven".to_string(),
        TargetOutcome::Unknown { .. } => "unknown".to_string(),
    }
}

fn flow_verdicts(report: &FlowReport) -> Vec<(String, String)> {
    report.targets.iter().map(|t| (t.name.clone(), verdict_class(&t.outcome))).collect()
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Cell {
    section: &'static str,
    design: String,
    cold: Duration,
    warm: Duration,
    cache_hits: u64,
    batched_jobs: u64,
    templates_reused: u64,
    clean_seed_hits: u64,
    agree: bool,
}

/// One burst: `repeats` identical jobs through a fresh single-worker
/// service. Returns the wall time (first submit to last report), the
/// per-job verdicts, and the service stats.
fn burst(
    bundle: &genfv_designs::DesignBundle,
    mode: CorpusMode,
    repeats: usize,
    warm: bool,
) -> (Duration, Vec<Vec<(String, String)>>, genfv_service::ServiceStats) {
    let mut config = ServiceConfig::default()
        .with_workers(1)
        .with_queue_capacity(repeats.max(1))
        .with_mode(mode);
    if !warm {
        config = config.with_cache_entries(0).with_batching(false);
    }
    let service = VerificationService::new(config);
    let t0 = Instant::now();
    let handles: Vec<_> = (0..repeats)
        .map(|_| {
            let mut request = JobRequest::new(DesignInput::Source {
                name: bundle.name.to_string(),
                rtl: bundle.rtl.to_string(),
                spec: bundle.spec.to_string(),
                targets: bundle.targets.clone(),
            })
            .with_mode(mode);
            if mode.needs_model() {
                request = request.with_llm(SyntheticLlm::new(MODEL, LLM_SEED));
            }
            service.submit(request).expect("bench submit")
        })
        .collect();
    let verdicts: Vec<_> =
        handles.into_iter().map(|h| flow_verdicts(&h.wait().expect("bench job").flow)).collect();
    let elapsed = t0.elapsed();
    let stats = service.stats();
    service.shutdown();
    (elapsed, verdicts, stats)
}

fn run_cell(
    section: &'static str,
    name: &str,
    mode: CorpusMode,
    repeats: usize,
    samples: usize,
) -> Cell {
    let bundle = genfv_designs::by_name(name).expect("benchmark design exists");

    // Direct flow call: the reference verdicts every service job must hit.
    let design = bundle.prepare().expect("prepare");
    let reference = match mode {
        CorpusMode::Baseline => run_baseline(&design, &FlowConfig::default()),
        _ => run_flow2(design, &mut SyntheticLlm::new(MODEL, LLM_SEED), &FlowConfig::default()),
    };
    let reference = flow_verdicts(&reference);

    let mut cold_times = Vec::new();
    let mut warm_times = Vec::new();
    let mut agree = true;
    let mut cache_hits = 0;
    let mut batched_jobs = 0;
    let mut templates_reused = 0;
    let mut clean_seed_hits = 0;
    for _ in 0..samples {
        let (t, verdicts, _) = burst(&bundle, mode, repeats, false);
        cold_times.push(t);
        agree &= verdicts.iter().all(|v| *v == reference);

        let (t, verdicts, stats) = burst(&bundle, mode, repeats, true);
        warm_times.push(t);
        agree &= verdicts.iter().all(|v| *v == reference);
        cache_hits = stats.cache_hits;
        batched_jobs = stats.batched_jobs;
        templates_reused = stats.templates_reused;
        clean_seed_hits = stats.clean_seed_hits;
    }
    Cell {
        section,
        design: name.to_string(),
        cold: median(&mut cold_times),
        warm: median(&mut warm_times),
        cache_hits,
        batched_jobs,
        templates_reused,
        clean_seed_hits,
        agree,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let samples = args
        .iter()
        .position(|a| a == "--samples")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick { 2 } else { 5 })
        .max(1);
    let repeats = args
        .iter()
        .position(|a| a == "--repeats")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick { 3 } else { 6 })
        .max(2); // below 2 there is no repeat traffic to measure
    let only: Option<&String> =
        args.iter().position(|a| a == "--only").and_then(|p| args.get(p + 1));
    let keep = |name: &str| only.is_none_or(|o| o == name);

    let mut cells: Vec<Cell> = Vec::new();
    for name in BASELINE_DESIGNS {
        if keep(name) {
            cells.push(run_cell("baseline", name, CorpusMode::Baseline, repeats, samples));
        }
    }
    for name in FLOW_DESIGNS {
        if keep(name) {
            cells.push(run_cell("flow2", name, CorpusMode::Flow2, repeats, samples));
        }
    }

    let mut table = Table::new([
        "section",
        "design",
        "cold (median)",
        "warm (median)",
        "speedup",
        "hits",
        "batched",
        "tpl reuse",
        "clean hits",
        "verdicts",
    ]);
    let mut json_rows = Vec::new();
    let mut totals: std::collections::BTreeMap<&'static str, (Duration, Duration, Vec<f64>)> =
        std::collections::BTreeMap::new();
    let mut divergent = false;
    let mut total_hits = 0u64;
    for c in &cells {
        let entry = totals.entry(c.section).or_insert((Duration::ZERO, Duration::ZERO, Vec::new()));
        entry.0 += c.cold;
        entry.1 += c.warm;
        total_hits += c.cache_hits;
        let speedup = c.cold.as_secs_f64() / c.warm.as_secs_f64().max(1e-9);
        entry.2.push(speedup);
        divergent |= !c.agree;
        table.row([
            c.section.to_string(),
            c.design.clone(),
            ms(c.cold),
            ms(c.warm),
            format!("{speedup:.2}x"),
            c.cache_hits.to_string(),
            c.batched_jobs.to_string(),
            c.templates_reused.to_string(),
            c.clean_seed_hits.to_string(),
            if c.agree { "identical".to_string() } else { "DIVERGED".to_string() },
        ]);
        json_rows.push(format!(
            "    {{\"section\": \"{}\", \"design\": \"{}\", \"cold_ms\": {:.3}, \
             \"warm_ms\": {:.3}, \"speedup\": {speedup:.3}, \"cache_hits\": {}, \
             \"batched_jobs\": {}, \"templates_reused\": {}, \"clean_seed_hits\": {}, \
             \"verdicts_identical\": {}}}",
            c.section,
            c.design,
            c.cold.as_secs_f64() * 1e3,
            c.warm.as_secs_f64() * 1e3,
            c.cache_hits,
            c.batched_jobs,
            c.templates_reused,
            c.clean_seed_hits,
            c.agree,
        ));
    }

    let geomean = |speedups: &[f64]| -> f64 {
        (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len().max(1) as f64).exp()
    };
    let total_cold: Duration = totals.values().map(|&(c, _, _)| c).sum();
    let total_warm: Duration = totals.values().map(|&(_, w, _)| w).sum();
    let all_speedups: Vec<f64> = totals.values().flat_map(|(_, _, s)| s.iter().copied()).collect();
    let overall = geomean(&all_speedups);
    let time_ratio = total_cold.as_secs_f64() / total_warm.as_secs_f64().max(1e-9);
    println!("E11: verification service — cold vs warm-session-cache repeat traffic\n");
    println!("{}", table.render());
    let mut section_json = Vec::new();
    println!();
    for (section, (c, w, speedups)) in &totals {
        let s = geomean(speedups);
        println!("{section}: cold {} vs warm {} → geomean {s:.2}x", ms(*c), ms(*w));
        section_json.push(format!("    \"{section}\": {s:.3}"));
    }
    println!(
        "overall: geomean {overall:.2}x over {} cells (cold {} vs warm {} total, \
         {repeats} jobs/burst, {samples} bursts/cell, {total_hits} cache hits)",
        all_speedups.len(),
        ms(total_cold),
        ms(total_warm)
    );

    let json = format!(
        "{{\n  \"experiment\": \"e11_service\",\n  \"samples\": {samples},\n  \
         \"repeats\": {repeats},\n  \"overall_speedup\": {overall:.3},\n  \
         \"total_cold_ms\": {:.3},\n  \"total_warm_ms\": {:.3},\n  \
         \"total_time_ratio\": {time_ratio:.3},\n  \
         \"cache_hits\": {total_hits},\n  \"section_speedups\": {{\n{}\n  }},\n  \
         \"cells\": [\n{}\n  ]\n}}\n",
        total_cold.as_secs_f64() * 1e3,
        total_warm.as_secs_f64() * 1e3,
        section_json.join(",\n"),
        json_rows.join(",\n")
    );
    let path =
        std::env::var("GENFV_BENCH_JSON").unwrap_or_else(|_| "BENCH_service.json".to_string());
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {path}");

    if divergent {
        eprintln!("FAIL: service verdicts diverged from the direct flow runs");
        std::process::exit(1);
    }
    if total_hits == 0 {
        eprintln!("FAIL: warm service recorded no cache hits");
        std::process::exit(1);
    }
}
