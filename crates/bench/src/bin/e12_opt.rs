//! **E12 — prepare-time netlist optimization**: CNF shrinkage and flow
//! speedup from the `genfv_ir::opt` pipeline, differentially checked.
//!
//! Every design is prepared twice — `OptLevel::None` (the system exactly
//! as elaborated) and the default `OptLevel::Full` — and measured two
//! ways:
//!
//! * **CNF section** (whole corpus + datapath): the per-frame transition
//!   template is built over both netlists and its variable/clause counts
//!   compared. The datapath designs are the showcase: the factoring
//!   rewrite collapses their two multiplier cones into one shared node,
//!   so the template should roughly halve.
//! * **Flow section**: plain k-induction (`run_baseline`) and the full
//!   Flow-2 repair loop run end to end on both netlists, median wall
//!   time over `--samples` runs each.
//!
//! The run is differential — it **fails with exit 1** if any optimized
//! verdict *regresses* (classes must match, except that an optimized
//! netlist may close a proof the elaborated one stalled on — stuck-at
//! folding installs proven invariants, which only ever strengthens the
//! induction), if any real falsification lands on a different cycle, or
//! if a datapath design shows no CNF reduction (the factoring rewrite
//! silently stopped firing).
//!
//! Results go to stdout and `BENCH_opt.json` (working directory, or
//! `$GENFV_BENCH_JSON`). Run with
//! `cargo run --release -p genfv-bench --bin e12_opt`.

use genfv_bench::ms;
use genfv_core::{
    run_baseline, run_flow2, FlowConfig, FlowReport, OptConfig, OptLevel, PreparedDesign, Table,
    TargetOutcome,
};
use genfv_designs::DesignBundle;
use genfv_genai::{ModelProfile, SyntheticLlm};
use genfv_ir::{ExprRef, Template};
use std::time::{Duration, Instant};

/// Flow-section designs for the plain-induction comparison: the datapath
/// pair (where optimization pays) plus corpus members covering proofs,
/// falsifications, and lemma-hungry stalls.
const BASELINE_DESIGNS: &[&str] =
    &["mul_incr", "mul_distrib", "sync_counters_16", "hamming74", "div_checker", "desync_counters"];

/// Flow-2 section designs: the lemma-hungry family (same as e8-e11).
const FLOW_DESIGNS: &[&str] =
    &["sync_counters_16", "parity_pipe", "hamming74", "ecc_counter", "fifo_counters"];

const MODEL: ModelProfile = ModelProfile::GptFourTurbo;
const LLM_SEED: u64 = 42;

fn baseline_prep(bundle: &DesignBundle) -> PreparedDesign {
    bundle.prepare_with(&OptConfig::default().with_level(OptLevel::None)).expect("baseline prepare")
}

fn optimized_prep(bundle: &DesignBundle) -> PreparedDesign {
    bundle.prepare().expect("optimized prepare")
}

/// Proven-class verdicts deliberately exclude k: stuck-at strengthening
/// may close the optimized proof at a smaller depth.
fn verdict_class(outcome: &TargetOutcome) -> String {
    match outcome {
        TargetOutcome::Proven { .. } => "proven".to_string(),
        TargetOutcome::Falsified { at } => format!("falsified@{at}"),
        TargetOutcome::StillUnproven { .. } => "still_unproven".to_string(),
        TargetOutcome::Unknown { .. } => "unknown".to_string(),
    }
}

/// Equal classes, or improvement in the strengthening direction only.
fn verdicts_ok(base: &FlowReport, opt: &FlowReport) -> bool {
    base.targets.len() == opt.targets.len()
        && base.targets.iter().zip(&opt.targets).all(|(b, o)| {
            let (b, o) = (verdict_class(&b.outcome), verdict_class(&o.outcome));
            b == o || (o == "proven" && (b == "still_unproven" || b == "unknown"))
        })
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Per-frame CNF size of the design's transition template with the
/// target properties as extra roots — the cost every stamped frame pays.
fn cnf_size(design: &PreparedDesign) -> (u32, usize) {
    let roots: Vec<ExprRef> = design.targets.iter().map(|t| t.prop.ok).collect();
    let template = Template::build_with(&design.ctx, &design.ts, &roots);
    (template.num_vars(), template.num_clauses())
}

struct CnfCell {
    design: String,
    datapath: bool,
    base_vars: u32,
    base_clauses: usize,
    opt_vars: u32,
    opt_clauses: usize,
    nodes_removed: usize,
    states_dropped: u64,
    rounds: usize,
}

fn cnf_cell(bundle: &DesignBundle, datapath: bool) -> CnfCell {
    let base = baseline_prep(bundle);
    let opt = optimized_prep(bundle);
    let (base_vars, base_clauses) = cnf_size(&base);
    let (opt_vars, opt_clauses) = cnf_size(&opt);
    CnfCell {
        design: bundle.name.to_string(),
        datapath,
        base_vars,
        base_clauses,
        opt_vars,
        opt_clauses,
        nodes_removed: opt.opt_stats.nodes_removed(),
        states_dropped: opt.opt_stats.states_dropped(),
        rounds: opt.opt_stats.rounds,
    }
}

struct FlowCell {
    section: &'static str,
    design: String,
    base: Duration,
    opt: Duration,
    agree: bool,
}

fn flow_cell(section: &'static str, name: &str, samples: usize) -> FlowCell {
    let bundle = genfv_designs::by_name(name).expect("benchmark design exists");
    let run = |design: PreparedDesign| -> FlowReport {
        match section {
            "baseline" => run_baseline(&design, &FlowConfig::default()),
            _ => run_flow2(design, &mut SyntheticLlm::new(MODEL, LLM_SEED), &FlowConfig::default()),
        }
    };
    let mut base_times = Vec::new();
    let mut opt_times = Vec::new();
    let mut agree = true;
    for _ in 0..samples {
        let design = baseline_prep(&bundle);
        let t0 = Instant::now();
        let base_report = run(design);
        base_times.push(t0.elapsed());

        let design = optimized_prep(&bundle);
        let t0 = Instant::now();
        let opt_report = run(design);
        opt_times.push(t0.elapsed());

        agree &= verdicts_ok(&base_report, &opt_report);
    }
    FlowCell {
        section,
        design: name.to_string(),
        base: median(&mut base_times),
        opt: median(&mut opt_times),
        agree,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let samples = args
        .iter()
        .position(|a| a == "--samples")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick { 2 } else { 5 })
        .max(1);
    let only: Option<&String> =
        args.iter().position(|a| a == "--only").and_then(|p| args.get(p + 1));
    let keep = |name: &str| only.is_none_or(|o| o == name);

    // ---- CNF section ---------------------------------------------------
    let mut cnf_cells: Vec<CnfCell> = Vec::new();
    for bundle in genfv_designs::all_designs() {
        if keep(bundle.name) {
            cnf_cells.push(cnf_cell(&bundle, false));
        }
    }
    for bundle in genfv_designs::datapath_designs() {
        if keep(bundle.name) {
            cnf_cells.push(cnf_cell(&bundle, true));
        }
    }

    let mut cnf_table = Table::new([
        "design",
        "vars (none)",
        "vars (full)",
        "clauses (none)",
        "clauses (full)",
        "reduction",
        "nodes removed",
        "states dropped",
        "rounds",
    ]);
    let mut json_cnf = Vec::new();
    let mut datapath_unshrunk: Vec<String> = Vec::new();
    for c in &cnf_cells {
        let reduction = 1.0 - c.opt_clauses as f64 / c.base_clauses.max(1) as f64;
        if c.datapath && (c.opt_vars >= c.base_vars || c.opt_clauses >= c.base_clauses) {
            datapath_unshrunk.push(c.design.clone());
        }
        cnf_table.row([
            c.design.clone(),
            c.base_vars.to_string(),
            c.opt_vars.to_string(),
            c.base_clauses.to_string(),
            c.opt_clauses.to_string(),
            format!("{:.1}%", reduction * 100.0),
            c.nodes_removed.to_string(),
            c.states_dropped.to_string(),
            c.rounds.to_string(),
        ]);
        json_cnf.push(format!(
            "    {{\"design\": \"{}\", \"datapath\": {}, \"base_vars\": {}, \
             \"opt_vars\": {}, \"base_clauses\": {}, \"opt_clauses\": {}, \
             \"clause_reduction\": {reduction:.4}, \"nodes_removed\": {}, \
             \"states_dropped\": {}, \"rounds\": {}}}",
            c.design,
            c.datapath,
            c.base_vars,
            c.opt_vars,
            c.base_clauses,
            c.opt_clauses,
            c.nodes_removed,
            c.states_dropped,
            c.rounds,
        ));
    }

    // ---- Flow section --------------------------------------------------
    let mut flow_cells: Vec<FlowCell> = Vec::new();
    for name in BASELINE_DESIGNS {
        if keep(name) {
            flow_cells.push(flow_cell("baseline", name, samples));
        }
    }
    for name in FLOW_DESIGNS {
        if keep(name) {
            flow_cells.push(flow_cell("flow2", name, samples));
        }
    }

    let mut flow_table =
        Table::new(["section", "design", "none (median)", "full (median)", "speedup", "verdicts"]);
    let mut json_flow = Vec::new();
    let mut speedups = Vec::new();
    let mut divergent = false;
    for c in &flow_cells {
        let speedup = c.base.as_secs_f64() / c.opt.as_secs_f64().max(1e-9);
        speedups.push(speedup);
        divergent |= !c.agree;
        flow_table.row([
            c.section.to_string(),
            c.design.clone(),
            ms(c.base),
            ms(c.opt),
            format!("{speedup:.2}x"),
            if c.agree { "no regression".to_string() } else { "DIVERGED".to_string() },
        ]);
        json_flow.push(format!(
            "    {{\"section\": \"{}\", \"design\": \"{}\", \"none_ms\": {:.3}, \
             \"full_ms\": {:.3}, \"speedup\": {speedup:.3}, \"verdicts_ok\": {}}}",
            c.section,
            c.design,
            c.base.as_secs_f64() * 1e3,
            c.opt.as_secs_f64() * 1e3,
            c.agree,
        ));
    }

    let geomean =
        (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len().max(1) as f64).exp();

    println!("E12: prepare-time netlist optimization — OptLevel::None vs OptLevel::Full\n");
    println!("per-frame transition-template CNF:\n");
    println!("{}", cnf_table.render());
    println!("\nend-to-end flows ({samples} samples/cell):\n");
    println!("{}", flow_table.render());
    println!("\nflow geomean speedup: {geomean:.2}x over {} cells", speedups.len());

    let json = format!(
        "{{\n  \"experiment\": \"e12_opt\",\n  \"samples\": {samples},\n  \
         \"flow_geomean_speedup\": {geomean:.3},\n  \"cnf\": [\n{}\n  ],\n  \
         \"flows\": [\n{}\n  ]\n}}\n",
        json_cnf.join(",\n"),
        json_flow.join(",\n")
    );
    let path = std::env::var("GENFV_BENCH_JSON").unwrap_or_else(|_| "BENCH_opt.json".to_string());
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {path}");

    if divergent {
        eprintln!("FAIL: an optimized flow verdict regressed against OptLevel::None");
        std::process::exit(1);
    }
    if !datapath_unshrunk.is_empty() {
        eprintln!(
            "FAIL: no CNF reduction on datapath design(s) {} — the factoring \
             rewrite stopped firing",
            datapath_unshrunk.join(", ")
        );
        std::process::exit(1);
    }
}
