//! **E14 — observability overhead gate**: warm service traffic with
//! tracing `Off` versus `Full`, plus a schema check on the exported
//! Chrome trace.
//!
//! `genfv-obs` promises that a disabled handle costs one branch per span
//! and that full tracing stays in the noise. This experiment holds the
//! stack to that promise on the service's best case — warm repeat
//! traffic, where per-job fixed costs are smallest and any per-span
//! overhead is proportionally largest:
//!
//! * for each design, a burst of identical jobs runs through a warm
//!   single-worker service twice per sample — once with
//!   [`ObsConfig::Off`] and once with [`ObsConfig::Full`] — and the
//!   **minimum** total over `--samples` rounds is compared (minima gate
//!   more stably than medians under CI noise; a warmup round is
//!   discarded first);
//! * one `Full` job's trace is exported with
//!   [`genfv_obs::ObsReport::chrome_json`] and re-parsed with
//!   [`genfv_obs::validate_chrome_trace`]: it must be schema-valid,
//!   balanced, and deep enough to reach individual `solve.*` calls;
//! * the service's Prometheus exposition must carry the queue-wait and
//!   solve-latency histograms.
//!
//! **Exit 1** if the aggregate `Full` overhead exceeds 5%, if the trace
//! fails its schema check, or if the exposition is missing histograms.
//! Results go to stdout and `BENCH_obs.json` (working directory, or
//! `$GENFV_BENCH_JSON`).
//!
//! Run with `cargo run --release -p genfv-bench --bin e14_obs`.

use genfv_bench::ms;
use genfv_core::{CorpusMode, Table};
use genfv_obs::{validate_chrome_trace, Counter, ObsConfig, QueryKind};
use genfv_service::{
    DesignInput, JobReport, JobRequest, ServiceConfig, ServiceStats, VerificationService,
};
use std::time::{Duration, Instant};

/// Warm-traffic designs: the service bench's capital-dominated family,
/// where per-job runtime is smallest and relative overhead largest.
const DESIGNS: &[&str] = &["sync_counters_16", "hamming74", "gray_counter", "ring_counter"];

/// Maximum tolerated (full - off) / off on the aggregate minima.
const MAX_OVERHEAD: f64 = 0.05;

/// One warm burst: `repeats` identical baseline jobs through a fresh
/// single-worker service with the given obs mode. Returns the wall time,
/// the last job's report, and the service stats.
fn burst(
    bundle: &genfv_designs::DesignBundle,
    obs: ObsConfig,
    repeats: usize,
) -> (Duration, JobReport, ServiceStats) {
    let config = ServiceConfig::default()
        .with_workers(1)
        .with_queue_capacity(repeats.max(1))
        .with_mode(CorpusMode::Baseline)
        .with_obs(obs);
    let service = VerificationService::new(config);
    let t0 = Instant::now();
    let handles: Vec<_> = (0..repeats)
        .map(|_| {
            let request = JobRequest::new(DesignInput::Source {
                name: bundle.name.to_string(),
                rtl: bundle.rtl.to_string(),
                spec: bundle.spec.to_string(),
                targets: bundle.targets.clone(),
            })
            .with_mode(CorpusMode::Baseline);
            service.submit(request).expect("bench submit")
        })
        .collect();
    let mut last = None;
    for h in handles {
        last = Some(h.wait().expect("bench job"));
    }
    let elapsed = t0.elapsed();
    let stats = service.stats();
    service.shutdown();
    (elapsed, last.expect("at least one job"), stats)
}

struct Cell {
    design: String,
    off: Duration,
    full: Duration,
    events: usize,
    solves: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let samples = args
        .iter()
        .position(|a| a == "--samples")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick { 3 } else { 7 })
        .max(1);
    let repeats = if quick { 3 } else { 6 };

    let mut failures: Vec<String> = Vec::new();
    let mut cells: Vec<Cell> = Vec::new();
    let mut trace_checked = false;

    for name in DESIGNS {
        let bundle = genfv_designs::by_name(name).expect("benchmark design exists");
        // Warmup round (both modes), discarded: first-touch costs (lazy
        // statics, allocator growth) land here instead of in a sample.
        let _ = burst(&bundle, ObsConfig::Off, repeats);
        let _ = burst(&bundle, ObsConfig::Full, repeats);

        let mut off_min = Duration::MAX;
        let mut full_min = Duration::MAX;
        let mut events = 0usize;
        let mut solves = 0u64;
        for _ in 0..samples {
            let (t, _, _) = burst(&bundle, ObsConfig::Off, repeats);
            off_min = off_min.min(t);
            let (t, report, stats) = burst(&bundle, ObsConfig::Full, repeats);
            full_min = full_min.min(t);

            let obs = report.obs.as_ref().expect("Full mode attaches obs reports");
            events = obs.events.len();
            solves = obs.metrics.counter(Counter::Solves);
            if !trace_checked {
                trace_checked = true;
                let json = obs.chrome_json();
                match validate_chrome_trace(&json) {
                    Ok(check) => {
                        if !check.balanced {
                            failures.push(format!("{name}: Chrome trace spans unbalanced"));
                        }
                        if check.depth_of_prefix("solve.").is_none() {
                            failures.push(format!("{name}: trace never reaches a solve.* span"));
                        }
                    }
                    Err(e) => failures.push(format!("{name}: Chrome trace schema: {e}")),
                }
                let prom = stats.render_prometheus();
                for needle in
                    ["genfv_queue_wait_seconds_bucket", "genfv_solve_latency_seconds_bucket"]
                {
                    if !prom.contains(needle) {
                        failures.push(format!("{name}: Prometheus exposition missing {needle}"));
                    }
                }
                if obs.metrics.latency(QueryKind::Base).count
                    + obs.metrics.latency(QueryKind::Step).count
                    == 0
                {
                    failures.push(format!("{name}: no per-kind solve latency recorded"));
                }
            }
        }
        cells.push(Cell { design: name.to_string(), off: off_min, full: full_min, events, solves });
    }

    let total_off: Duration = cells.iter().map(|c| c.off).sum();
    let total_full: Duration = cells.iter().map(|c| c.full).sum();
    let overhead =
        (total_full.as_secs_f64() - total_off.as_secs_f64()) / total_off.as_secs_f64().max(1e-9);

    let mut table =
        Table::new(["design", "off (min)", "full (min)", "overhead", "events", "solves"]);
    let mut json_rows = Vec::new();
    for c in &cells {
        let cell_overhead =
            (c.full.as_secs_f64() - c.off.as_secs_f64()) / c.off.as_secs_f64().max(1e-9);
        table.row([
            c.design.clone(),
            ms(c.off),
            ms(c.full),
            format!("{:+.1}%", cell_overhead * 100.0),
            c.events.to_string(),
            c.solves.to_string(),
        ]);
        json_rows.push(format!(
            "    {{\"design\": \"{}\", \"off_ms\": {:.3}, \"full_ms\": {:.3}, \
             \"overhead\": {cell_overhead:.4}, \"trace_events\": {}, \"solves\": {}}}",
            c.design,
            c.off.as_secs_f64() * 1e3,
            c.full.as_secs_f64() * 1e3,
            c.events,
            c.solves,
        ));
    }

    println!("E14: observability — warm service traffic, tracing Off vs Full\n");
    println!("{}", table.render());
    println!(
        "\naggregate: off {} vs full {} → {:+.2}% overhead (gate ≤ {:.0}%, minima over \
         {samples} samples of {repeats}-job bursts)",
        ms(total_off),
        ms(total_full),
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );

    let json = format!(
        "{{\n  \"experiment\": \"e14_obs\",\n  \"samples\": {samples},\n  \
         \"repeats\": {repeats},\n  \"total_off_ms\": {:.3},\n  \"total_full_ms\": {:.3},\n  \
         \"overhead\": {overhead:.4},\n  \"max_overhead\": {MAX_OVERHEAD},\n  \
         \"trace_schema_ok\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
        total_off.as_secs_f64() * 1e3,
        total_full.as_secs_f64() * 1e3,
        failures.is_empty(),
        json_rows.join(",\n")
    );
    let path = std::env::var("GENFV_BENCH_JSON").unwrap_or_else(|_| "BENCH_obs.json".to_string());
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {path}");

    if overhead > MAX_OVERHEAD {
        failures.push(format!(
            "Full-tracing overhead {:.2}% exceeds the {:.0}% gate",
            overhead * 100.0,
            MAX_OVERHEAD * 100.0
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
