//! **E2 — Flow 1** (paper Fig. 1): upfront helper-assertion generation
//! from specification + RTL, across the full corpus.
//!
//! For every design the table shows the target outcomes without any help
//! and with Flow-1 lemmas, plus what the LLM emitted and how much of it
//! survived validation.

use genfv_bench::{experiment_config, ms, outcome_cell, total_rejected};
use genfv_core::{run_baseline, run_flow1, Table};
use genfv_genai::{ModelProfile, SyntheticLlm};

fn main() {
    let config = experiment_config();
    let mut table = Table::new([
        "design",
        "target",
        "baseline",
        "flow1 (gpt-4-turbo)",
        "lemmas",
        "rejected",
        "proof time",
    ]);

    for bundle in genfv_designs::all_designs() {
        if bundle.name == "desync_counters" {
            continue; // the bug design is covered by E3/E4
        }
        let baseline = run_baseline(&bundle.prepare().expect("prepare"), &config);
        let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 1001);
        let flow1 = run_flow1(bundle.prepare().expect("prepare"), &mut llm, &config);
        for (b, f) in baseline.targets.iter().zip(&flow1.targets) {
            table.row([
                bundle.name.to_string(),
                b.name.clone(),
                outcome_cell(&b.outcome),
                outcome_cell(&f.outcome),
                flow1.metrics.lemmas_accepted.to_string(),
                total_rejected(&flow1).to_string(),
                ms(flow1.metrics.proof_time),
            ]);
        }
    }

    println!("E2: Flow 1 — spec+RTL lemma generation (paper Fig. 1)\n");
    println!("{}", table.render());
    println!(
        "Expected shape: every `step fails` baseline becomes `proven k=1` once the\n\
         Flow-1 lemmas are assumed; designs that already proved unaided stay proven\n\
         (often at lower k). The LLM emits junk too — the `rejected` column is the\n\
         validation layer earning its keep."
    );
}
