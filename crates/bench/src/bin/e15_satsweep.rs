//! **E15 — SAT-sweeping**: additional CNF shrinkage and flow cost of
//! `OptLevel::SatSweep` over the PR 7 `OptLevel::Full` pipeline,
//! differentially checked.
//!
//! Every design is prepared twice — at the default `OptLevel::Full`
//! (sweep off) and at `OptLevel::SatSweep` (sweep on) — and measured two
//! ways:
//!
//! * **CNF section** (whole corpus + datapath): the per-frame transition
//!   template is built over both netlists and its variable/clause counts
//!   compared, alongside the sweep's own counters
//!   (`pairs_proved` / `pairs_refuted` / `nodes_merged` /
//!   `sweep_conflicts`). The datapath designs are the showcase: register
//!   correspondence merges the shadow accumulator into the multiplier
//!   register on top of PR 7's factoring.
//! * **Flow section**: plain k-induction (`run_baseline`) and the full
//!   Flow-2 repair loop run end to end on both netlists, median wall
//!   time over `--samples` runs each — the sweep happens at prepare
//!   time, so this prices the trade of prepare-time SAT calls against
//!   smaller per-frame templates.
//!
//! The run is differential — it **fails with exit 1** if any swept
//! verdict *regresses* (classes must match, except that the swept
//! netlist may close a proof the unswept one stalled on — register
//! merges strengthen the induction hypothesis exactly like stuck-at
//! folding), if any real falsification lands on a different cycle, if a
//! datapath design shows zero merges or no clause reduction beyond
//! `Full` (the sweep silently stopped firing), or if any design's total
//! sweep conflicts exceed the per-pair budget envelope (an unbounded
//! solver call escaped the budget).
//!
//! Results go to stdout and `BENCH_satsweep.json` (working directory, or
//! `$GENFV_BENCH_JSON`). Run with
//! `cargo run --release -p genfv-bench --bin e15_satsweep`.

use genfv_bench::ms;
use genfv_core::{
    run_baseline, run_flow2, FlowConfig, FlowReport, OptConfig, OptLevel, PreparedDesign, Table,
    TargetOutcome,
};
use genfv_designs::DesignBundle;
use genfv_genai::{ModelProfile, SyntheticLlm};
use genfv_ir::{ExprRef, SatSweepConfig, Template};
use std::time::{Duration, Instant};

/// Flow-section designs for the plain-induction comparison: the datapath
/// pair (where register correspondence pays), the lockstep designs the
/// sweep collapses outright, and corpus members covering falsifications
/// and refuted-pair churn.
const BASELINE_DESIGNS: &[&str] =
    &["mul_incr", "mul_distrib", "sync_counters_16", "twin_shift", "hamming74", "desync_counters"];

/// Flow-2 section designs: the lemma-hungry family (same as e8-e12).
const FLOW_DESIGNS: &[&str] =
    &["sync_counters_16", "parity_pipe", "hamming74", "ecc_counter", "fifo_counters"];

const MODEL: ModelProfile = ModelProfile::GptFourTurbo;
const LLM_SEED: u64 = 42;

fn full_prep(bundle: &DesignBundle) -> PreparedDesign {
    bundle.prepare().expect("full prepare")
}

fn sweep_prep(bundle: &DesignBundle) -> PreparedDesign {
    bundle
        .prepare_with(&OptConfig::default().with_level(OptLevel::SatSweep))
        .expect("sweep prepare")
}

/// Proven-class verdicts deliberately exclude k: register-correspondence
/// strengthening may close the swept proof at a smaller depth.
fn verdict_class(outcome: &TargetOutcome) -> String {
    match outcome {
        TargetOutcome::Proven { .. } => "proven".to_string(),
        TargetOutcome::Falsified { at } => format!("falsified@{at}"),
        TargetOutcome::StillUnproven { .. } => "still_unproven".to_string(),
        TargetOutcome::Unknown { .. } => "unknown".to_string(),
    }
}

/// Equal classes, or improvement in the strengthening direction only.
fn verdicts_ok(base: &FlowReport, swept: &FlowReport) -> bool {
    base.targets.len() == swept.targets.len()
        && base.targets.iter().zip(&swept.targets).all(|(b, o)| {
            let (b, o) = (verdict_class(&b.outcome), verdict_class(&o.outcome));
            b == o || (o == "proven" && (b == "still_unproven" || b == "unknown"))
        })
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Per-frame CNF size of the design's transition template with the
/// target properties as extra roots — the cost every stamped frame pays.
fn cnf_size(design: &PreparedDesign) -> (u32, usize) {
    let roots: Vec<ExprRef> = design.targets.iter().map(|t| t.prop.ok).collect();
    let template = Template::build_with(&design.ctx, &design.ts, &roots);
    (template.num_vars(), template.num_clauses())
}

struct CnfCell {
    design: String,
    datapath: bool,
    full_vars: u32,
    full_clauses: usize,
    sweep_vars: u32,
    sweep_clauses: usize,
    pairs_proved: u64,
    pairs_refuted: u64,
    nodes_merged: u64,
    sweep_conflicts: u64,
}

fn cnf_cell(bundle: &DesignBundle, datapath: bool) -> CnfCell {
    let full = full_prep(bundle);
    let swept = sweep_prep(bundle);
    let (full_vars, full_clauses) = cnf_size(&full);
    let (sweep_vars, sweep_clauses) = cnf_size(&swept);
    CnfCell {
        design: bundle.name.to_string(),
        datapath,
        full_vars,
        full_clauses,
        sweep_vars,
        sweep_clauses,
        pairs_proved: swept.opt_stats.pairs_proved,
        pairs_refuted: swept.opt_stats.pairs_refuted,
        nodes_merged: swept.opt_stats.nodes_merged,
        sweep_conflicts: swept.opt_stats.sweep_conflicts,
    }
}

struct FlowCell {
    section: &'static str,
    design: String,
    full: Duration,
    sweep: Duration,
    agree: bool,
}

fn flow_cell(section: &'static str, name: &str, samples: usize) -> FlowCell {
    let bundle = genfv_designs::by_name(name).expect("benchmark design exists");
    let run = |design: PreparedDesign| -> FlowReport {
        match section {
            "baseline" => run_baseline(&design, &FlowConfig::default()),
            _ => run_flow2(design, &mut SyntheticLlm::new(MODEL, LLM_SEED), &FlowConfig::default()),
        }
    };
    let mut full_times = Vec::new();
    let mut sweep_times = Vec::new();
    let mut agree = true;
    for _ in 0..samples {
        let design = full_prep(&bundle);
        let t0 = Instant::now();
        let full_report = run(design);
        full_times.push(t0.elapsed());

        let design = sweep_prep(&bundle);
        let t0 = Instant::now();
        let sweep_report = run(design);
        sweep_times.push(t0.elapsed());

        agree &= verdicts_ok(&full_report, &sweep_report);
    }
    FlowCell {
        section,
        design: name.to_string(),
        full: median(&mut full_times),
        sweep: median(&mut sweep_times),
        agree,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let samples = args
        .iter()
        .position(|a| a == "--samples")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick { 2 } else { 5 })
        .max(1);
    let only: Option<&String> =
        args.iter().position(|a| a == "--only").and_then(|p| args.get(p + 1));
    let keep = |name: &str| only.is_none_or(|o| o == name);
    let budget = SatSweepConfig::default().conflict_budget;

    // ---- CNF section ---------------------------------------------------
    let mut cnf_cells: Vec<CnfCell> = Vec::new();
    for bundle in genfv_designs::all_designs() {
        if keep(bundle.name) {
            cnf_cells.push(cnf_cell(&bundle, false));
        }
    }
    for bundle in genfv_designs::datapath_designs() {
        if keep(bundle.name) {
            cnf_cells.push(cnf_cell(&bundle, true));
        }
    }

    let mut cnf_table = Table::new([
        "design",
        "vars (full)",
        "vars (sweep)",
        "clauses (full)",
        "clauses (sweep)",
        "reduction",
        "proved",
        "refuted",
        "merged",
        "conflicts",
    ]);
    let mut json_cnf = Vec::new();
    let mut datapath_unswept: Vec<String> = Vec::new();
    let mut over_budget: Vec<String> = Vec::new();
    for c in &cnf_cells {
        let reduction = 1.0 - c.sweep_clauses as f64 / c.full_clauses.max(1) as f64;
        if c.datapath && (c.nodes_merged == 0 || c.sweep_clauses >= c.full_clauses) {
            datapath_unswept.push(c.design.clone());
        }
        // Budget envelope: every miter is individually capped, so the
        // design's total can never exceed queries x per-pair budget.
        let queries = (c.pairs_proved + c.pairs_refuted).max(1);
        if c.sweep_conflicts > queries * budget {
            over_budget.push(c.design.clone());
        }
        cnf_table.row([
            c.design.clone(),
            c.full_vars.to_string(),
            c.sweep_vars.to_string(),
            c.full_clauses.to_string(),
            c.sweep_clauses.to_string(),
            format!("{:.1}%", reduction * 100.0),
            c.pairs_proved.to_string(),
            c.pairs_refuted.to_string(),
            c.nodes_merged.to_string(),
            c.sweep_conflicts.to_string(),
        ]);
        json_cnf.push(format!(
            "    {{\"design\": \"{}\", \"datapath\": {}, \"full_vars\": {}, \
             \"sweep_vars\": {}, \"full_clauses\": {}, \"sweep_clauses\": {}, \
             \"clause_reduction\": {reduction:.4}, \"pairs_proved\": {}, \
             \"pairs_refuted\": {}, \"nodes_merged\": {}, \"sweep_conflicts\": {}}}",
            c.design,
            c.datapath,
            c.full_vars,
            c.sweep_vars,
            c.full_clauses,
            c.sweep_clauses,
            c.pairs_proved,
            c.pairs_refuted,
            c.nodes_merged,
            c.sweep_conflicts,
        ));
    }

    // ---- Flow section --------------------------------------------------
    let mut flow_cells: Vec<FlowCell> = Vec::new();
    for name in BASELINE_DESIGNS {
        if keep(name) {
            flow_cells.push(flow_cell("baseline", name, samples));
        }
    }
    for name in FLOW_DESIGNS {
        if keep(name) {
            flow_cells.push(flow_cell("flow2", name, samples));
        }
    }

    let mut flow_table =
        Table::new(["section", "design", "full (median)", "sweep (median)", "speedup", "verdicts"]);
    let mut json_flow = Vec::new();
    let mut speedups = Vec::new();
    let mut divergent = false;
    for c in &flow_cells {
        let speedup = c.full.as_secs_f64() / c.sweep.as_secs_f64().max(1e-9);
        speedups.push(speedup);
        divergent |= !c.agree;
        flow_table.row([
            c.section.to_string(),
            c.design.clone(),
            ms(c.full),
            ms(c.sweep),
            format!("{speedup:.2}x"),
            if c.agree { "no regression".to_string() } else { "DIVERGED".to_string() },
        ]);
        json_flow.push(format!(
            "    {{\"section\": \"{}\", \"design\": \"{}\", \"full_ms\": {:.3}, \
             \"sweep_ms\": {:.3}, \"speedup\": {speedup:.3}, \"verdicts_ok\": {}}}",
            c.section,
            c.design,
            c.full.as_secs_f64() * 1e3,
            c.sweep.as_secs_f64() * 1e3,
            c.agree,
        ));
    }

    let geomean =
        (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len().max(1) as f64).exp();

    println!("E15: SAT-sweeping — OptLevel::Full vs OptLevel::SatSweep\n");
    println!("per-frame transition-template CNF:\n");
    println!("{}", cnf_table.render());
    println!("\nend-to-end flows ({samples} samples/cell):\n");
    println!("{}", flow_table.render());
    println!("\nflow geomean speedup: {geomean:.2}x over {} cells", speedups.len());

    let json = format!(
        "{{\n  \"experiment\": \"e15_satsweep\",\n  \"samples\": {samples},\n  \
         \"conflict_budget\": {budget},\n  \
         \"flow_geomean_speedup\": {geomean:.3},\n  \"cnf\": [\n{}\n  ],\n  \
         \"flows\": [\n{}\n  ]\n}}\n",
        json_cnf.join(",\n"),
        json_flow.join(",\n")
    );
    let path =
        std::env::var("GENFV_BENCH_JSON").unwrap_or_else(|_| "BENCH_satsweep.json".to_string());
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {path}");

    if divergent {
        eprintln!("FAIL: a swept flow verdict regressed against OptLevel::Full");
        std::process::exit(1);
    }
    if !datapath_unswept.is_empty() {
        eprintln!(
            "FAIL: zero merges or no CNF reduction beyond Full on datapath design(s) {} — \
             the sweep stopped firing",
            datapath_unswept.join(", ")
        );
        std::process::exit(1);
    }
    if !over_budget.is_empty() {
        eprintln!(
            "FAIL: sweep conflicts exceeded the per-pair budget envelope on {} — \
             an unbounded solver call escaped",
            over_budget.join(", ")
        );
        std::process::exit(1);
    }
}
