//! **E4 — verification throughput** (paper Section V, main claim):
//! "the flow was able to figure out necessary helper assertions that
//! helped in faster proof for complex properties" on counters and ECC.
//!
//! Per design × target: plain k-induction vs the GenAI-augmented flow —
//! outcome, induction depth, SAT conflicts, and wall-clock proof time.

use genfv_bench::{experiment_config, ms, outcome_cell};
use genfv_core::{run_baseline, run_flow2, Table, TargetOutcome};
use genfv_genai::{ModelProfile, SyntheticLlm};
use genfv_mc::{CheckConfig, KInduction, Property};
use std::time::Instant;

fn main() {
    let config = experiment_config();
    let mut table = Table::new([
        "design",
        "target",
        "plain induction",
        "plain time",
        "genai-augmented",
        "aug time (proof only)",
        "speedup",
    ]);

    let mut wins = 0usize;
    let mut comparable = 0usize;
    for bundle in genfv_designs::all_designs() {
        if bundle.name == "desync_counters" {
            continue;
        }
        let baseline = run_baseline(&bundle.prepare().expect("prepare"), &config);
        let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 4004);
        let flow2 = run_flow2(bundle.prepare().expect("prepare"), &mut llm, &config);

        // For the augmented side, measure the *final* proof time with the
        // accepted lemmas installed (the recurring cost in a proof
        // regression run, where lemma generation is a one-time expense).
        let mut design = bundle.prepare().expect("prepare");
        let lemma_exprs: Vec<_> = flow2
            .lemmas
            .iter()
            .map(|l| {
                let cand = genfv_sva::parse_assertion(&l.text).expect("lemma text parses");
                let compiled = genfv_sva::PropertyCompiler::new(&mut design.ctx, &mut design.ts)
                    .compile(&cand)
                    .expect("lemma text compiles");
                compiled.ok
            })
            .collect();

        for (i, (b, f)) in baseline.targets.iter().zip(&flow2.targets).enumerate() {
            let target = &design.targets[i];
            let t0 = Instant::now();
            let prover = KInduction::new(
                &design.ctx,
                &design.ts,
                CheckConfig { max_k: 3, ..Default::default() },
            );
            let _ = prover.prove(&Property::new(target.name.clone(), target.prop.ok), &lemma_exprs);
            let aug_time = t0.elapsed();

            let plain_time = baseline.metrics.proof_time / baseline.targets.len() as u32;
            let speedup = match (&b.outcome, &f.outcome) {
                (TargetOutcome::StillUnproven { .. }, TargetOutcome::Proven { .. }) => {
                    wins += 1;
                    "∞ (unproven → proven)".to_string()
                }
                (TargetOutcome::Proven { .. }, TargetOutcome::Proven { .. }) => {
                    comparable += 1;
                    let s = plain_time.as_secs_f64() / aug_time.as_secs_f64().max(1e-9);
                    if s >= 1.05 {
                        wins += 1;
                    }
                    format!("{s:.2}x")
                }
                _ => "-".to_string(),
            };
            table.row([
                bundle.name.to_string(),
                b.name.clone(),
                outcome_cell(&b.outcome),
                ms(plain_time),
                outcome_cell(&f.outcome),
                ms(aug_time),
                speedup,
            ]);
        }
    }

    println!("E4: verification throughput with vs without GenAI lemmas (paper Section V)\n");
    println!("{}", table.render());
    println!(
        "{wins} target(s) improved; {comparable} were provable either way (for those the\n\
         lemma typically lowers the induction depth, e.g. k=2 → k=1).\n\
         Expected shape per the paper: helpers enable otherwise-unprovable targets and\n\
         speed up the rest; absolute times differ from the paper's JasperGold testbed."
    );
}
