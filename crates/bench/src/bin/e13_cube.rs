//! **E13 — cube-and-conquer + persistent clause pool**: deep unaided
//! induction and repeat-design service traffic, cold versus pooled.
//!
//! Two sections:
//!
//! * **induction** — unaided k-induction pushed deep (`max_k` well past
//!   the default) on the lemma-hungry FIFO/ECC family, with the
//!   portfolio's cube scheduler armed (`cube_depth > 0`, a small probe so
//!   the hard step obligations actually split). Each cell runs three
//!   sessions over the same design: **cold** (no seed — every query
//!   starts from nothing), **seed** (warm [`SessionSeed`] with the clause
//!   pool scoped off: template reuse + clean-depth skips only — the
//!   pre-pool warm start), and **pooled** (the same seed with
//!   [`PoolScope::Full`]: skipped base cases replay their learnt clauses
//!   and step queries import frame-relocated glue). The seed/pooled gap
//!   isolates what the pool itself buys on top of the older capital.
//! * **service** — repeat-traffic bursts through a warm
//!   (cache+batching) versus cold service in baseline mode, including
//!   the `mul_incr` control cell: its step search is conflict-dominated,
//!   and before clause replay the warm service ran it *slower* because
//!   skipping seeded base cases also skipped their learnt-clause warmup.
//!   The pool closes exactly that gap, so this cell is the honesty check.
//!
//! The run is differential — it **fails with exit 1** if any pooled or
//! cubed verdict diverges from its cold reference, or if the whole run
//! records zero pool hits.
//!
//! Results go to stdout and `BENCH_cube.json` (working directory, or
//! `$GENFV_BENCH_JSON`): per-cell medians over `--samples` runs
//! (default 5, `--quick` = 2). The headline is the geometric mean of
//! per-cell cold/pooled speedups.
//!
//! Run with `cargo run --release -p genfv-bench --bin e13_cube`.

use genfv_bench::ms;
use genfv_core::{CorpusMode, FlowReport, Table, TargetOutcome};
use genfv_mc::{
    CheckConfig, PoolScope, PortfolioConfig, ProofSession, ProveResult, SessionSeed, SessionStats,
};
use genfv_service::{DesignInput, JobRequest, ServiceConfig, VerificationService};
use std::time::{Duration, Instant};

/// Induction-section designs: the corpus members whose unaided step
/// searches are deep enough for the pool and the cube scheduler to have
/// something to chew on.
const INDUCTION_DESIGNS: &[&str] = &["fifo_counters", "ecc_counter", "credit_flow", "parity_pipe"];

/// Service-section designs: capital-dominated repeat traffic plus the
/// `mul_incr` conflict-dominated control cell.
const SERVICE_DESIGNS: &[&str] = &["sync_counters_16", "div_checker", "mul_incr"];

/// How deep the induction section pushes `max_k`.
const DEEP_K: usize = 12;

fn verdict_class(res: &ProveResult) -> String {
    match res {
        ProveResult::Proven { k, .. } => format!("proven@{k}"),
        ProveResult::Falsified { at, .. } => format!("falsified@{at}"),
        ProveResult::StepFailure { k, .. } => format!("step_failure@{k}"),
        ProveResult::Unknown { .. } => "unknown".to_string(),
    }
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The deep-induction check configuration: cube scheduling armed with a
/// small probe so conflict-heavy step obligations split instead of
/// grinding solo.
fn deep_config() -> CheckConfig {
    CheckConfig {
        max_k: DEEP_K,
        portfolio: Some(PortfolioConfig {
            probe_conflicts: Some(256),
            cube_depth: 2,
            ..PortfolioConfig::default()
        }),
        ..CheckConfig::default()
    }
}

struct InductionCell {
    design: String,
    cold: Duration,
    seed_only: Duration,
    pooled: Duration,
    /// Cold-run stats: the hard (splittable) obligations live here.
    cold_stats: SessionStats,
    /// Pooled warm-run stats: the pool traffic lives here.
    stats: SessionStats,
    agree: bool,
}

/// One timed session over every target of `design` under `config`.
fn timed_session(
    design: &genfv_core::PreparedDesign,
    config: CheckConfig,
) -> (Duration, Vec<String>, SessionStats) {
    let mut session = ProofSession::new(&design.ctx, &design.ts, config);
    let t0 = Instant::now();
    let verdicts: Vec<String> =
        design.targets.iter().map(|t| verdict_class(&session.prove(&t.prop))).collect();
    (t0.elapsed(), verdicts, *session.stats())
}

fn run_induction_cell(name: &str, samples: usize) -> InductionCell {
    let bundle = genfv_designs::by_name(name).expect("benchmark design exists");
    let design = bundle.prepare().expect("prepare");
    let base = deep_config();

    let mut cold_times = Vec::new();
    let mut seed_times = Vec::new();
    let mut pooled_times = Vec::new();
    let mut agree = true;
    let mut pooled_stats = SessionStats::default();
    let mut cold_stats = SessionStats::default();
    for _ in 0..samples {
        let (t, reference, stats) = timed_session(&design, base.clone());
        cold_times.push(t);
        cold_stats = stats;

        // Fresh seed per sample; one unmetered run populates it, then the
        // warm runs measure the repeat-traffic case.
        let seed = SessionSeed::for_design(&design.ctx, &design.ts);
        let warm = CheckConfig { seed: Some(seed.clone()), ..base.clone() };
        let (_, prime_verdicts, _) = timed_session(&design, warm.clone());
        agree &= prime_verdicts == reference;

        let no_pool = CheckConfig { clause_pool: PoolScope::Off, ..warm.clone() };
        let (t, verdicts, _) = timed_session(&design, no_pool);
        seed_times.push(t);
        agree &= verdicts == reference;

        let (t, verdicts, stats) = timed_session(&design, warm);
        pooled_times.push(t);
        agree &= verdicts == reference;
        pooled_stats = stats;
    }
    InductionCell {
        design: name.to_string(),
        cold: median(&mut cold_times),
        seed_only: median(&mut seed_times),
        pooled: median(&mut pooled_times),
        cold_stats,
        stats: pooled_stats,
        agree,
    }
}

fn flow_verdicts(report: &FlowReport) -> Vec<String> {
    report
        .targets
        .iter()
        .map(|t| match &t.outcome {
            TargetOutcome::Proven { .. } => format!("{}:proven", t.name),
            TargetOutcome::Falsified { at } => format!("{}:falsified@{at}", t.name),
            TargetOutcome::StillUnproven { .. } => format!("{}:still_unproven", t.name),
            TargetOutcome::Unknown { .. } => format!("{}:unknown", t.name),
        })
        .collect()
}

struct ServiceCell {
    design: String,
    cold: Duration,
    warm: Duration,
    pool_hits: u64,
    pool_imported: u64,
    clean_seed_hits: u64,
    agree: bool,
}

/// One burst of identical baseline jobs through a fresh single-worker
/// service (warm = default cache+batching, cold = neither).
fn burst(
    bundle: &genfv_designs::DesignBundle,
    repeats: usize,
    warm: bool,
) -> (Duration, Vec<Vec<String>>, genfv_service::ServiceStats) {
    let mut config = ServiceConfig::default()
        .with_workers(1)
        .with_queue_capacity(repeats.max(1))
        .with_mode(CorpusMode::Baseline);
    if !warm {
        config = config.with_cache_entries(0).with_batching(false);
    }
    let service = VerificationService::new(config);
    let t0 = Instant::now();
    let handles: Vec<_> = (0..repeats)
        .map(|_| {
            let request = JobRequest::new(DesignInput::Source {
                name: bundle.name.to_string(),
                rtl: bundle.rtl.to_string(),
                spec: bundle.spec.to_string(),
                targets: bundle.targets.clone(),
            })
            .with_mode(CorpusMode::Baseline);
            service.submit(request).expect("bench submit")
        })
        .collect();
    let verdicts: Vec<_> =
        handles.into_iter().map(|h| flow_verdicts(&h.wait().expect("bench job").flow)).collect();
    let elapsed = t0.elapsed();
    let stats = service.stats();
    service.shutdown();
    (elapsed, verdicts, stats)
}

fn run_service_cell(name: &str, repeats: usize, samples: usize) -> ServiceCell {
    let bundle = genfv_designs::by_name(name).expect("benchmark design exists");
    let mut cold_times = Vec::new();
    let mut warm_times = Vec::new();
    let mut agree = true;
    let mut pool_hits = 0;
    let mut pool_imported = 0;
    let mut clean_seed_hits = 0;
    for _ in 0..samples {
        let (t, cold_verdicts, _) = burst(&bundle, repeats, false);
        cold_times.push(t);
        let reference = cold_verdicts.first().cloned().unwrap_or_default();
        agree &= cold_verdicts.iter().all(|v| *v == reference);

        let (t, verdicts, stats) = burst(&bundle, repeats, true);
        warm_times.push(t);
        agree &= verdicts.iter().all(|v| *v == reference);
        pool_hits = stats.pool_hits;
        pool_imported = stats.pool_clauses_imported;
        clean_seed_hits = stats.clean_seed_hits;
    }
    ServiceCell {
        design: name.to_string(),
        cold: median(&mut cold_times),
        warm: median(&mut warm_times),
        pool_hits,
        pool_imported,
        clean_seed_hits,
        agree,
    }
}

fn geomean(speedups: &[f64]) -> f64 {
    (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len().max(1) as f64).exp()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let samples = args
        .iter()
        .position(|a| a == "--samples")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick { 2 } else { 5 })
        .max(1);
    let repeats = args
        .iter()
        .position(|a| a == "--repeats")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick { 3 } else { 6 })
        .max(2); // below 2 there is no repeat traffic to measure
    let only: Option<&String> =
        args.iter().position(|a| a == "--only").and_then(|p| args.get(p + 1));
    let keep = |name: &str| only.is_none_or(|o| o == name);

    let induction: Vec<InductionCell> = INDUCTION_DESIGNS
        .iter()
        .filter(|n| keep(n))
        .map(|n| run_induction_cell(n, samples))
        .collect();
    let service: Vec<ServiceCell> = SERVICE_DESIGNS
        .iter()
        .filter(|n| keep(n))
        .map(|n| run_service_cell(n, repeats, samples))
        .collect();

    println!("E13: cube-and-conquer + clause pool — cold vs pooled\n");
    let mut divergent = false;
    let mut total_pool_hits = 0u64;
    let mut json_rows = Vec::new();

    let mut table = Table::new([
        "design",
        "cold",
        "seed-only",
        "pooled",
        "speedup",
        "pool gain",
        "splits",
        "cubes",
        "imported",
        "hits",
        "verdicts",
    ]);
    let mut induction_speedups = Vec::new();
    for c in &induction {
        let speedup = c.cold.as_secs_f64() / c.pooled.as_secs_f64().max(1e-9);
        let pool_gain = c.seed_only.as_secs_f64() / c.pooled.as_secs_f64().max(1e-9);
        induction_speedups.push(speedup);
        divergent |= !c.agree;
        total_pool_hits += c.stats.pool_hits;
        table.row([
            c.design.clone(),
            ms(c.cold),
            ms(c.seed_only),
            ms(c.pooled),
            format!("{speedup:.2}x"),
            format!("{pool_gain:.2}x"),
            c.cold_stats.cube_splits.to_string(),
            c.cold_stats.cubes_raced.to_string(),
            c.stats.pool_clauses_imported.to_string(),
            c.stats.pool_hits.to_string(),
            if c.agree { "identical".to_string() } else { "DIVERGED".to_string() },
        ]);
        json_rows.push(format!(
            "    {{\"section\": \"induction\", \"design\": \"{}\", \"cold_ms\": {:.3}, \
             \"seed_only_ms\": {:.3}, \"pooled_ms\": {:.3}, \"speedup\": {speedup:.3}, \
             \"pool_gain\": {pool_gain:.3}, \"cube_splits\": {}, \"cubes_raced\": {}, \
             \"pool_imported\": {}, \"pool_hits\": {}, \"verdicts_identical\": {}}}",
            c.design,
            c.cold.as_secs_f64() * 1e3,
            c.seed_only.as_secs_f64() * 1e3,
            c.pooled.as_secs_f64() * 1e3,
            c.cold_stats.cube_splits,
            c.cold_stats.cubes_raced,
            c.stats.pool_clauses_imported,
            c.stats.pool_hits,
            c.agree,
        ));
    }
    println!("induction (unaided, max_k={DEEP_K}, cube_depth=2):");
    println!("{}", table.render());
    let induction_geomean = geomean(&induction_speedups);
    println!("induction geomean (cold/pooled): {induction_geomean:.2}x\n");

    let mut table = Table::new([
        "design",
        "cold",
        "warm",
        "speedup",
        "pool hits",
        "imported",
        "clean hits",
        "verdicts",
    ]);
    let mut service_speedups = Vec::new();
    for c in &service {
        let speedup = c.cold.as_secs_f64() / c.warm.as_secs_f64().max(1e-9);
        service_speedups.push(speedup);
        divergent |= !c.agree;
        total_pool_hits += c.pool_hits;
        table.row([
            c.design.clone(),
            ms(c.cold),
            ms(c.warm),
            format!("{speedup:.2}x"),
            c.pool_hits.to_string(),
            c.pool_imported.to_string(),
            c.clean_seed_hits.to_string(),
            if c.agree { "identical".to_string() } else { "DIVERGED".to_string() },
        ]);
        json_rows.push(format!(
            "    {{\"section\": \"service\", \"design\": \"{}\", \"cold_ms\": {:.3}, \
             \"warm_ms\": {:.3}, \"speedup\": {speedup:.3}, \"pool_hits\": {}, \
             \"pool_imported\": {}, \"clean_seed_hits\": {}, \"verdicts_identical\": {}}}",
            c.design,
            c.cold.as_secs_f64() * 1e3,
            c.warm.as_secs_f64() * 1e3,
            c.pool_hits,
            c.pool_imported,
            c.clean_seed_hits,
            c.agree,
        ));
    }
    println!("service (baseline repeat traffic, {repeats} jobs/burst):");
    println!("{}", table.render());
    let service_geomean = geomean(&service_speedups);
    println!("service geomean (cold/warm): {service_geomean:.2}x");

    let all: Vec<f64> = induction_speedups.iter().chain(&service_speedups).copied().collect();
    let overall = geomean(&all);
    println!(
        "overall: geomean {overall:.2}x over {} cells ({samples} samples/cell, \
         {total_pool_hits} pool hits)",
        all.len()
    );

    let json = format!(
        "{{\n  \"experiment\": \"e13_cube\",\n  \"samples\": {samples},\n  \
         \"repeats\": {repeats},\n  \"deep_k\": {DEEP_K},\n  \
         \"overall_speedup\": {overall:.3},\n  \
         \"induction_speedup\": {induction_geomean:.3},\n  \
         \"service_speedup\": {service_geomean:.3},\n  \
         \"pool_hits\": {total_pool_hits},\n  \"cells\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path = std::env::var("GENFV_BENCH_JSON").unwrap_or_else(|_| "BENCH_cube.json".to_string());
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {path}");

    if divergent {
        eprintln!("FAIL: pooled or cubed verdicts diverged from the cold reference");
        std::process::exit(1);
    }
    if total_pool_hits == 0 {
        eprintln!("FAIL: the run recorded no pool hits");
        std::process::exit(1);
    }
}
