//! **E5 — model-quality comparison** (paper Section V): "the quality of
//! generated assertions was much better in the case of LLMs from OpenAI
//! such as GPT-4-Turbo and GPT-4o compared to Llama or Gemini".
//!
//! Runs Flow 2 with each emulated profile over the lemma-hungry corpus,
//! across several seeds, and reports per-model aggregates: targets closed,
//! parse-level validity of emitted assertions, lemma acceptance rate, and
//! hallucination (disproven/phantom) rate.

use genfv_bench::experiment_config;
use genfv_core::{run_flow2, Table};
use genfv_genai::{ModelProfile, SyntheticLlm};

const SEEDS: [u64; 3] = [11, 22, 33];

fn main() {
    let corpus = genfv_designs::lemma_hungry_designs();
    let config = experiment_config();

    let mut table = Table::new([
        "model",
        "targets closed",
        "valid assertion rate",
        "lemma acceptance",
        "hallucination rate",
        "llm calls",
        "mean proof time",
    ]);

    println!(
        "E5: model comparison over {} designs × {} seeds (paper Section V)\n",
        corpus.len(),
        SEEDS.len()
    );

    let mut closed_by_model: Vec<(ModelProfile, usize, usize)> = Vec::new();
    for profile in ModelProfile::ALL {
        let mut targets_total = 0usize;
        let mut targets_closed = 0usize;
        let mut parsed = 0usize;
        let mut unparseable = 0usize;
        let mut accepted = 0usize;
        let mut hallucinated = 0usize; // phantom signals + false invariants
        let mut calls = 0usize;
        let mut proof_time = std::time::Duration::ZERO;
        let mut runs = 0u32;

        for bundle in &corpus {
            for seed in SEEDS {
                let mut llm = SyntheticLlm::new(profile, seed);
                let report = run_flow2(bundle.prepare().expect("prepare"), &mut llm, &config);
                targets_total += report.targets.len();
                targets_closed += report.targets.iter().filter(|t| t.outcome.is_proven()).count();
                parsed += report.metrics.candidates_parsed;
                unparseable += report.metrics.candidates_unparseable;
                accepted += report.metrics.lemmas_accepted;
                hallucinated += report.metrics.rejected_compile + report.metrics.rejected_false;
                calls += report.metrics.llm_calls;
                proof_time += report.metrics.proof_time;
                runs += 1;
            }
        }

        let emitted = parsed + unparseable;
        let valid_rate = if emitted > 0 { parsed as f64 / emitted as f64 } else { 1.0 };
        let accept_rate = if parsed > 0 { accepted as f64 / parsed as f64 } else { 0.0 };
        let halluc_rate = if emitted > 0 { hallucinated as f64 / emitted as f64 } else { 0.0 };
        closed_by_model.push((profile, targets_closed, targets_total));
        table.row([
            profile.name().to_string(),
            format!("{targets_closed}/{targets_total}"),
            format!("{:.0}%", valid_rate * 100.0),
            format!("{:.0}%", accept_rate * 100.0),
            format!("{:.0}%", halluc_rate * 100.0),
            calls.to_string(),
            format!("{:.1}ms", proof_time.as_secs_f64() * 1e3 / runs as f64),
        ]);
    }

    println!("{}", table.render());

    // Check the paper's qualitative ordering mechanically.
    let closed = |p: ModelProfile| {
        closed_by_model.iter().find(|(q, _, _)| *q == p).map(|(_, c, _)| *c).unwrap_or(0)
    };
    let gpt_best = closed(ModelProfile::GptFourTurbo).min(closed(ModelProfile::GptFourO));
    let weak_best = closed(ModelProfile::LlamaThree).max(closed(ModelProfile::GeminiPro));
    println!(
        "ordering check: min(GPT profiles) = {gpt_best} targets vs max(Llama/Gemini) = {weak_best} \
         — paper expects GPT ≥ weak: {}",
        if gpt_best >= weak_best { "HOLDS" } else { "VIOLATED" }
    );
}
