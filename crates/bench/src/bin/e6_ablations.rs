//! **E6 — ablations** on the flow's design choices:
//!
//! (a) Houdini joint filtering on/off — how many lemmas are lost when
//!     individually-non-inductive candidates cannot team up;
//! (b) CEX in the prompt (Flow 2) vs spec-only (Flow 1) — what the
//!     counterexample buys;
//! (c) hallucination-rate sweep — how much junk the validation layer
//!     absorbs before throughput degrades (soundness never does).

use genfv_bench::{experiment_config, total_rejected};
use genfv_core::{run_flow1, run_flow2, FlowConfig, Table};
use genfv_genai::{ModelProfile, SyntheticLlm};

fn main() {
    ablation_houdini();
    ablation_cex_in_prompt();
    ablation_hallucination_sweep();
}

fn ablation_houdini() {
    println!("E6a: Houdini joint induction on/off\n");
    let mut table = Table::new(["design", "houdini", "lemmas accepted", "targets closed"]);
    for bundle in genfv_designs::lemma_hungry_designs() {
        for use_houdini in [true, false] {
            let config = FlowConfig { use_houdini, ..experiment_config() };
            let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 6006);
            let report = run_flow2(bundle.prepare().expect("prepare"), &mut llm, &config);
            table.row([
                bundle.name.to_string(),
                if use_houdini { "on" } else { "off" }.to_string(),
                report.metrics.lemmas_accepted.to_string(),
                format!(
                    "{}/{}",
                    report.targets.iter().filter(|t| t.outcome.is_proven()).count(),
                    report.targets.len()
                ),
            ]);
        }
    }
    println!("{}", table.render());
}

fn ablation_cex_in_prompt() {
    println!("\nE6b: CEX-guided (Flow 2) vs spec-only (Flow 1) lemma generation\n");
    let mut table = Table::new(["design", "flow", "llm calls", "lemmas", "targets closed"]);
    for bundle in genfv_designs::lemma_hungry_designs() {
        let config = experiment_config();
        let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 7007);
        let f1 = run_flow1(bundle.prepare().expect("prepare"), &mut llm, &config);
        let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 7007);
        let f2 = run_flow2(bundle.prepare().expect("prepare"), &mut llm, &config);
        for (label, r) in [("flow1 (spec+RTL)", &f1), ("flow2 (RTL+CEX)", &f2)] {
            table.row([
                bundle.name.to_string(),
                label.to_string(),
                r.metrics.llm_calls.to_string(),
                r.metrics.lemmas_accepted.to_string(),
                format!(
                    "{}/{}",
                    r.targets.iter().filter(|t| t.outcome.is_proven()).count(),
                    r.targets.len()
                ),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Expected shape: both flows usually close the corpus, but Flow 2 needs the\n\
         LLM only on actual failures, while Flow 1 pays one prompt per design up front."
    );
}

fn ablation_hallucination_sweep() {
    println!("\nE6c: hallucination-rate sweep (gpt-4-turbo base profile)\n");
    let mut table = Table::new([
        "hallucination rate",
        "targets closed",
        "lemmas",
        "rejected candidates",
        "repair iterations",
    ]);
    let corpus = genfv_designs::lemma_hungry_designs();
    for rate in [0.0, 0.1, 0.25, 0.5, 0.75] {
        let mut closed = 0usize;
        let mut total = 0usize;
        let mut lemmas = 0usize;
        let mut rejected = 0usize;
        let mut iterations = 0usize;
        for bundle in &corpus {
            let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 8008)
                .with_error_rates(rate, rate / 4.0);
            let report =
                run_flow2(bundle.prepare().expect("prepare"), &mut llm, &experiment_config());
            total += report.targets.len();
            closed += report.targets.iter().filter(|t| t.outcome.is_proven()).count();
            lemmas += report.metrics.lemmas_accepted;
            rejected += total_rejected(&report) + report.metrics.candidates_unparseable;
            iterations += report.metrics.iterations;
        }
        table.row([
            format!("{:.0}%", rate * 100.0),
            format!("{closed}/{total}"),
            lemmas.to_string(),
            rejected.to_string(),
            iterations.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected shape: rising junk costs retries and rejections first and closures\n\
         last; no configuration can make a false lemma land (soundness is structural)."
    );
}
