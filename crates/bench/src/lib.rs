//! # genfv-bench — the experiment harness
//!
//! One binary per experiment from `DESIGN.md` §4 (run with
//! `cargo run --release -p genfv-bench --bin <name>`):
//!
//! | binary | experiment | paper artefact |
//! |---|---|---|
//! | `e1_paper_example` | E1 | Listings 1-3 + Fig. 3 |
//! | `e2_flow1_lemmas` | E2 | Fig. 1 flow |
//! | `e3_flow2_repair` | E3 | Fig. 2 flow |
//! | `e4_throughput_table` | E4 | Section V: "faster proof for complex properties" |
//! | `e5_model_comparison` | E5 | Section V: GPT-4-class > Llama/Gemini |
//! | `e6_ablations` | E6 | validation-layer ablations |
//! | `e7_k_sweep` | E7 | Section II-A: lemmas lower the induction depth |
//! | `e8_incremental_sessions` | E8 | incremental sessions vs rebuild-per-query |
//! | `e9_portfolio` | E9 | portfolio racing vs single-solver sessions |
//! | `e10_template_unroll` | E10 | template-stamped vs DAG-walk frame encoding |
//! | `e11_service` | E11 | warm session-cached vs cold verification service |
//! | `e12_opt` | E12 | prepare-time netlist optimization vs `OptLevel::None` |
//! | `e13_cube` | E13 | cube-and-conquer + clause pool on hard queries |
//! | `e14_obs` | E14 | observability overhead gate (Off vs Full tracing) |
//!
//! The `trace` binary is not an experiment: it runs one design/flow with
//! full tracing and writes a Perfetto-loadable `trace.json` plus a
//! human-readable span tree (see `scripts/trace.sh`).
//!
//! Criterion timing groups live in `benches/paper_benches.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use genfv_core::{FlowConfig, FlowReport, TargetOutcome};
use genfv_mc::CheckConfig;
use std::time::Duration;

/// The flow configuration shared by all experiments: small max-k so that
/// "needs lemmas" designs genuinely fail unaided, matching how a formal
/// engineer caps proof depth in practice.
pub fn experiment_config() -> FlowConfig {
    FlowConfig {
        check: CheckConfig { max_k: 3, ..Default::default() },
        max_iterations: 4,
        ..Default::default()
    }
}

/// Formats a [`TargetOutcome`] for table cells.
pub fn outcome_cell(outcome: &TargetOutcome) -> String {
    match outcome {
        TargetOutcome::Proven { k, lemmas_used } => {
            if *lemmas_used > 0 {
                format!("proven k={k} ({lemmas_used} lemmas)")
            } else {
                format!("proven k={k}")
            }
        }
        TargetOutcome::Falsified { at } => format!("BUG at cycle {at}"),
        TargetOutcome::StillUnproven { k, .. } => format!("step fails @k={k}"),
        TargetOutcome::Unknown { .. } => "unknown".to_string(),
    }
}

/// Formats a duration compactly for table cells.
pub fn ms(d: Duration) -> String {
    format!("{:.1}ms", d.as_secs_f64() * 1e3)
}

/// Sums rejected-candidate counts from a report.
pub fn total_rejected(report: &FlowReport) -> usize {
    report.metrics.rejected_compile
        + report.metrics.rejected_false
        + report.metrics.rejected_not_inductive
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_cells_render() {
        assert_eq!(
            outcome_cell(&TargetOutcome::Proven { k: 1, lemmas_used: 2 }),
            "proven k=1 (2 lemmas)"
        );
        assert_eq!(outcome_cell(&TargetOutcome::Proven { k: 3, lemmas_used: 0 }), "proven k=3");
        assert_eq!(outcome_cell(&TargetOutcome::Falsified { at: 4 }), "BUG at cycle 4");
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.0ms");
    }
}
