//! Criterion timing groups backing the experiment tables (one group per
//! table/figure; see `DESIGN.md` §4).
//!
//! The groups use the 16-bit counter variant and reduced sample counts so
//! a full `cargo bench` stays in the minutes range on a laptop while still
//! producing stable relative numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genfv_core::{run_baseline, run_flow1, run_flow2, FlowConfig};
use genfv_genai::{LanguageModel, ModelProfile, Prompt, SyntheticLlm};
use genfv_mc::{CheckConfig, KInduction, Property};

fn config() -> FlowConfig {
    FlowConfig {
        check: CheckConfig { max_k: 3, ..Default::default() },
        max_iterations: 4,
        ..Default::default()
    }
}

/// E1/E4 (figure-level): the paper example — plain induction failure vs
/// GenAI-augmented proof.
fn bench_paper_example(c: &mut Criterion) {
    let bundle = genfv_designs::by_name("sync_counters_16").expect("corpus");
    let mut group = c.benchmark_group("e1_paper_example");
    group.sample_size(10);
    group.bench_function("baseline_step_failure", |b| {
        b.iter(|| {
            let design = bundle.prepare().expect("prepare");
            run_baseline(&design, &config())
        })
    });
    group.bench_function("flow2_repair_to_proof", |b| {
        b.iter(|| {
            let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 42);
            run_flow2(bundle.prepare().expect("prepare"), &mut llm, &config())
        })
    });
    group.finish();
}

/// E2 (Fig. 1): Flow-1 lemma generation per design family.
fn bench_flow1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_flow1");
    group.sample_size(10);
    for name in ["sync_counters_16", "modn_counter", "parity_pipe"] {
        let bundle = genfv_designs::by_name(name).expect("corpus");
        group.bench_with_input(BenchmarkId::from_parameter(name), &bundle, |b, bundle| {
            b.iter(|| {
                let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 7);
                run_flow1(bundle.prepare().expect("prepare"), &mut llm, &config())
            })
        });
    }
    group.finish();
}

/// E3 (Fig. 2): Flow-2 repair loop per design family.
fn bench_flow2(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_flow2");
    group.sample_size(10);
    for name in ["sync_counters_16", "fifo_counters", "ecc_counter"] {
        let bundle = genfv_designs::by_name(name).expect("corpus");
        group.bench_with_input(BenchmarkId::from_parameter(name), &bundle, |b, bundle| {
            b.iter(|| {
                let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 7);
                run_flow2(bundle.prepare().expect("prepare"), &mut llm, &config())
            })
        });
    }
    group.finish();
}

/// E4 (Section V): proof effort with vs without the helper lemma on the
/// paper example (proof-only, lemma generation excluded).
fn bench_throughput(c: &mut Criterion) {
    let bundle = genfv_designs::by_name("sync_counters_16").expect("corpus");
    let mut group = c.benchmark_group("e4_throughput");
    group.sample_size(10);

    group.bench_function("plain_kinduction_to_k3", |b| {
        b.iter(|| {
            let design = bundle.prepare().expect("prepare");
            let target = &design.targets[0];
            let prover = KInduction::new(
                &design.ctx,
                &design.ts,
                CheckConfig { max_k: 3, ..Default::default() },
            );
            prover.prove(&Property::new(target.name.clone(), target.prop.ok), &[])
        })
    });
    group.bench_function("with_helper_lemma", |b| {
        b.iter(|| {
            let mut design = bundle.prepare().expect("prepare");
            let a = genfv_sva::parse_assertion("count1 == count2").expect("parse");
            let lemma = genfv_sva::PropertyCompiler::new(&mut design.ctx, &mut design.ts)
                .compile(&a)
                .expect("compile")
                .ok;
            let target = &design.targets[0];
            let prover = KInduction::new(
                &design.ctx,
                &design.ts,
                CheckConfig { max_k: 3, ..Default::default() },
            );
            prover.prove(&Property::new(target.name.clone(), target.prop.ok), &[lemma])
        })
    });
    group.finish();
}

/// E5 (Section V): end-to-end Flow-2 cost per model profile.
fn bench_models(c: &mut Criterion) {
    let bundle = genfv_designs::by_name("sync_counters_16").expect("corpus");
    let mut group = c.benchmark_group("e5_models");
    group.sample_size(10);
    for profile in ModelProfile::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(profile.name()),
            &profile,
            |b, &profile| {
                b.iter(|| {
                    let mut llm = SyntheticLlm::new(profile, 5);
                    run_flow2(bundle.prepare().expect("prepare"), &mut llm, &config())
                })
            },
        );
    }
    group.finish();
}

/// E7: k-sweep mechanics — induction depth as the cost driver.
fn bench_k_sweep(c: &mut Criterion) {
    let bundle = genfv_designs::by_name("twin_shift").expect("corpus");
    let mut group = c.benchmark_group("e7_k_sweep");
    group.sample_size(10);
    for max_k in [2usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(max_k), &max_k, |b, &max_k| {
            b.iter(|| {
                let design = bundle.prepare().expect("prepare");
                let target = &design.targets[0];
                let prover = KInduction::new(
                    &design.ctx,
                    &design.ts,
                    CheckConfig { max_k, ..Default::default() },
                );
                prover.prove(&Property::new(target.name.clone(), target.prop.ok), &[])
            })
        });
    }
    group.finish();
}

/// Raw prompt/completion cost (no proving) — isolates the synthetic LLM.
fn bench_llm_only(c: &mut Criterion) {
    let bundle = genfv_designs::by_name("hamming74").expect("corpus");
    let mut group = c.benchmark_group("llm_completion");
    group.sample_size(20);
    for profile in [ModelProfile::GptFourTurbo, ModelProfile::LlamaThree] {
        group.bench_with_input(
            BenchmarkId::from_parameter(profile.name()),
            &profile,
            |b, &profile| {
                let prompt = Prompt::flow1(bundle.spec, bundle.rtl, &[]);
                b.iter(|| {
                    let mut llm = SyntheticLlm::new(profile, 3);
                    llm.complete(&prompt)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_paper_example,
    bench_flow1,
    bench_flow2,
    bench_throughput,
    bench_models,
    bench_k_sweep,
    bench_llm_only
);
criterion_main!(benches);
