//! Incremental vs rebuild-per-iteration Houdini on the counters and ECC
//! designs, with a machine-readable summary in `BENCH_houdini.json`
//! (written to the bench's working directory, overridable through the
//! `GENFV_BENCH_JSON` environment variable).
//!
//! The "rebuild" contestant is the pre-incremental algorithm: a fresh
//! unroller (full re-bit-blast plus a brand-new solver) per strengthening
//! iteration and a standalone BMC run per candidate base case. The
//! "incremental" contestant is `genfv_core::houdini` — one session, one
//! bit-blast, selector-guarded hypotheses, batched obligations. Both see
//! identical candidate pools (the deterministic synthetic-LLM Flow-1
//! completion per design) and, by the corpus differential test, accept
//! identical subsets — so the timing difference is pure solver-reuse win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genfv_core::{houdini, Candidate, PreparedDesign, ValidateConfig};
use genfv_genai::{LanguageModel, ModelProfile, Prompt, SyntheticLlm};
use genfv_ir::ExprRef;
use genfv_mc::{bmc, BmcResult, Property, Unroller};
use genfv_sat::SolveResult;
use genfv_sva::{parse_assertions, PropertyCompiler};

/// Counters + ECC members of the corpus (the paper's evaluation families).
const DESIGNS: &[&str] =
    &["sync_counters_16", "modn_counter", "parity_pipe", "hamming74", "ecc_counter"];

fn corpus_candidates(bundle: &genfv_designs::DesignBundle) -> Vec<Candidate> {
    let targets: Vec<String> = bundle.targets.iter().map(|(_, sva)| sva.clone()).collect();
    let prompt = Prompt::flow1(bundle.spec, bundle.rtl, &targets);
    let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 42);
    let completion = llm.complete(&prompt);
    parse_assertions(&completion.text)
        .into_iter()
        .enumerate()
        .map(|(i, assertion)| {
            let name = assertion.name.clone().unwrap_or_else(|| format!("candidate_{i}"));
            let text = genfv_sva::render_prop_body(&assertion.body);
            Candidate { name, text, assertion }
        })
        .collect()
}

/// The pre-incremental Houdini loop (see the module docs).
fn rebuild_houdini(
    design: &PreparedDesign,
    candidates: &[Candidate],
    config: &ValidateConfig,
) -> Vec<usize> {
    if candidates.is_empty() {
        return Vec::new();
    }
    let mut ctx = design.ctx.clone();
    let mut ts = design.ts.clone();
    let mut exprs: Vec<Option<ExprRef>> = Vec::with_capacity(candidates.len());
    {
        let mut pc = PropertyCompiler::new(&mut ctx, &mut ts);
        for cand in candidates {
            exprs.push(pc.compile(&cand.assertion).ok().map(|c| c.ok));
        }
    }
    let mut alive: Vec<usize> = Vec::new();
    for (i, expr) in exprs.iter().enumerate() {
        let Some(e) = expr else { continue };
        let prop = Property::new(candidates[i].name.clone(), *e);
        match bmc(&ctx, &ts, &prop, &[], config.bmc_depth, &config.check) {
            BmcResult::Clean { .. } => alive.push(i),
            BmcResult::Falsified { .. } => {}
        }
    }
    loop {
        if alive.is_empty() {
            break;
        }
        let mut unroller = Unroller::new(&ctx, &ts, false);
        unroller.ensure_frame(1);
        let lits0: Vec<_> =
            alive.iter().map(|&i| unroller.lit_at(0, exprs[i].expect("alive"))).collect();
        let lits1: Vec<_> =
            alive.iter().map(|&i| unroller.lit_at(1, exprs[i].expect("alive"))).collect();
        let mut dropped_any = false;
        let mut still_alive = alive.clone();
        for pos in 0..alive.len() {
            if !still_alive.contains(&alive[pos]) {
                continue;
            }
            let mut assumptions = Vec::with_capacity(lits0.len() + 1);
            for (p, &l0) in lits0.iter().enumerate() {
                if still_alive.contains(&alive[p]) {
                    assumptions.push(l0);
                }
            }
            assumptions.push(!lits1[pos]);
            match unroller.blaster_mut().solve_with_assumptions(&assumptions) {
                SolveResult::Sat => {
                    let model_false: Vec<usize> = alive
                        .iter()
                        .enumerate()
                        .filter(|&(p, _)| {
                            still_alive.contains(&alive[p])
                                && unroller.blaster().solver().value(lits1[p]) == Some(false)
                        })
                        .map(|(_, &i)| i)
                        .collect();
                    still_alive.retain(|i| !model_false.contains(i));
                    dropped_any = true;
                }
                SolveResult::Unsat => {}
                SolveResult::Unknown => {
                    still_alive.retain(|&i| i != alive[pos]);
                    dropped_any = true;
                }
            }
        }
        alive = still_alive;
        if !dropped_any {
            break;
        }
    }
    alive
}

fn bench_houdini(c: &mut Criterion) {
    let config = ValidateConfig::default();
    let mut group = c.benchmark_group("houdini");
    group.sample_size(10);
    for name in DESIGNS {
        let bundle = genfv_designs::by_name(name).expect("corpus");
        let design = bundle.prepare().expect("prepare");
        let candidates = corpus_candidates(&bundle);
        group.bench_with_input(
            BenchmarkId::new("incremental", name),
            &(&design, &candidates),
            |b, (design, candidates)| b.iter(|| houdini(design, &[], candidates, &config)),
        );
        group.bench_with_input(
            BenchmarkId::new("rebuild", name),
            &(&design, &candidates),
            |b, (design, candidates)| b.iter(|| rebuild_houdini(design, candidates, &config)),
        );
    }
    group.finish();
}

fn export_json(c: &mut Criterion) {
    let path =
        std::env::var("GENFV_BENCH_JSON").unwrap_or_else(|_| "BENCH_houdini.json".to_string());
    c.export_json(&path);
}

criterion_group!(benches, bench_houdini, export_json);
criterion_main!(benches);
