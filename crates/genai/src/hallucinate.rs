//! Profile-driven output corruption.
//!
//! Real LLMs hallucinate: they reference signals that do not exist, get
//! constants subtly wrong, flip comparison directions, and sometimes emit
//! text that does not parse at all. The paper's Section V observes exactly
//! this quality gap between models and warns about "artificial
//! hallucinations that produce vulnerable results" (Section VI). This
//! module reproduces those failure modes *deterministically* so the
//! validation layer downstream has realistic junk to reject.

use rand::rngs::SmallRng;
use rand::Rng;

/// The kinds of corruption applied to candidate assertions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Corruption {
    /// Replace a signal name with a near-miss (`count2` → `count2_reg`).
    PhantomSignal,
    /// Perturb a numeric constant by one.
    OffByOne,
    /// Flip a comparison operator (`==` → `!=`, `<=` → `<`).
    FlippedOperator,
    /// Structural damage that breaks parsing.
    SyntaxError,
}

/// Applies `kind` to the assertion text. Returns the corrupted text (which
/// may equal the input when the pattern needed for that corruption does not
/// occur).
pub fn corrupt(text: &str, kind: Corruption, rng: &mut SmallRng) -> String {
    match kind {
        Corruption::PhantomSignal => {
            // Find the first identifier and mutate it.
            let mut out = String::new();
            let mut done = false;
            let mut chars = text.char_indices().peekable();
            while let Some((i, c)) = chars.next() {
                if !done && (c.is_ascii_alphabetic() || c == '_') {
                    // Collect the identifier.
                    let mut end = i + c.len_utf8();
                    while let Some(&(j, d)) = chars.peek() {
                        if d.is_ascii_alphanumeric() || d == '_' {
                            chars.next();
                            end = j + d.len_utf8();
                        } else {
                            break;
                        }
                    }
                    let ident = &text[i..end];
                    // Don't corrupt SVA keywords/functions.
                    if ident.starts_with('$') || ident == "property" || ident == "endproperty" {
                        out.push_str(ident);
                    } else {
                        let suffix = ["_reg", "_q", "_int", "_sig"][rng.gen_range(0..4usize)];
                        out.push_str(ident);
                        out.push_str(suffix);
                        done = true;
                    }
                } else {
                    out.push(c);
                }
            }
            out
        }
        Corruption::OffByOne => {
            // Find a decimal constant after 'd or a bare number and bump it.
            if let Some(pos) = text.find("'d") {
                let digits_start = pos + 2;
                let digits_end = text[digits_start..]
                    .find(|c: char| !c.is_ascii_digit())
                    .map(|o| digits_start + o)
                    .unwrap_or(text.len());
                if let Ok(v) = text[digits_start..digits_end].parse::<u64>() {
                    let bumped = if rng.gen_bool(0.5) { v + 1 } else { v.saturating_sub(1) };
                    return format!("{}{}{}", &text[..digits_start], bumped, &text[digits_end..]);
                }
            }
            text.to_string()
        }
        Corruption::FlippedOperator => {
            for (from, to) in [("==", "!="), ("<=", "<"), ("|->", "|=>")] {
                if text.contains(from) {
                    return text.replacen(from, to, 1);
                }
            }
            text.to_string()
        }
        Corruption::SyntaxError => {
            let damages: [fn(&str) -> String; 3] = [
                |t| t.replacen("==", "=== ===", 1),
                |t| format!("{t} )"),
                |t| t.replacen("(", "", 1),
            ];
            let f = damages[rng.gen_range(0..damages.len())];
            let out = f(text);
            if out == text {
                format!("{text} (")
            } else {
                out
            }
        }
    }
}

/// Picks a corruption kind given profile rates; `None` means the candidate
/// is passed through clean.
pub fn pick_corruption(
    rng: &mut SmallRng,
    hallucination_rate: f64,
    syntax_error_rate: f64,
) -> Option<Corruption> {
    let r: f64 = rng.gen();
    if r < syntax_error_rate {
        return Some(Corruption::SyntaxError);
    }
    if r < syntax_error_rate + hallucination_rate {
        let kinds = [Corruption::PhantomSignal, Corruption::OffByOne, Corruption::FlippedOperator];
        return Some(kinds[rng.gen_range(0..kinds.len())]);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn phantom_signal_changes_identifier() {
        let out = corrupt("count1 == count2", Corruption::PhantomSignal, &mut rng());
        assert_ne!(out, "count1 == count2");
        assert!(out.starts_with("count1_"), "{out}");
    }

    #[test]
    fn phantom_skips_dollar_functions() {
        let out = corrupt("$onehot(state)", Corruption::PhantomSignal, &mut rng());
        assert!(out.starts_with("$onehot"), "{out}");
        assert_ne!(out, "$onehot(state)", "the argument identifier mutates instead");
    }

    #[test]
    fn off_by_one_bumps_constant() {
        let out = corrupt("cnt <= 8'd9", Corruption::OffByOne, &mut rng());
        assert!(out == "cnt <= 8'd10" || out == "cnt <= 8'd8", "{out}");
    }

    #[test]
    fn flipped_operator() {
        assert_eq!(corrupt("a == b", Corruption::FlippedOperator, &mut rng()), "a != b");
        assert_eq!(corrupt("a <= b", Corruption::FlippedOperator, &mut rng()), "a < b");
    }

    #[test]
    fn syntax_error_breaks_parsing() {
        let out = corrupt("(a == b)", Corruption::SyntaxError, &mut rng());
        assert!(genfv_sva::parse_assertion(&out).is_err(), "should not parse: {out}");
    }

    #[test]
    fn rates_zero_means_clean() {
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(pick_corruption(&mut r, 0.0, 0.0), None);
        }
    }

    #[test]
    fn rates_one_means_always_corrupt() {
        let mut r = rng();
        for _ in 0..50 {
            assert!(pick_corruption(&mut r, 1.0, 0.0).is_some());
        }
    }
}
