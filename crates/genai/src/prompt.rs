//! Prompt templates for the two flows of the paper.
//!
//! A [`Prompt`] is real text: the specification, the RTL source, the target
//! property, and (for Flow 2) the rendered induction-step counterexample —
//! exactly the inputs the paper's Figs. 1 and 2 feed to the LLM. The
//! synthetic model backend re-parses this text ([`PromptSections::parse`]);
//! nothing is passed out of band, so the pipeline exercises the same
//! artefact boundary a production integration would.

use std::collections::BTreeMap;
use std::fmt;

/// Which of the paper's flows produced the prompt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowKind {
    /// Fig. 1: helper-assertion generation from specification + RTL.
    SpecAndRtl,
    /// Fig. 2: helper-assertion generation from RTL + induction-step CEX.
    InductionFailure,
}

/// A rendered prompt.
#[derive(Clone, Debug)]
pub struct Prompt {
    /// Flow that produced it.
    pub kind: FlowKind,
    /// System-role instructions.
    pub system: String,
    /// User-role payload (spec/RTL/CEX sections).
    pub user: String,
}

const SYSTEM_FLOW1: &str = "You are a hardware formal-verification assistant. Given a design \
specification and its RTL, produce SystemVerilog helper assertions (lemmas) that are likely \
to be invariants of the design and useful for k-induction proofs. Output each assertion as \
a `property ... endproperty` block.";

const SYSTEM_FLOW2: &str = "You are a hardware formal-verification assistant. A property \
failed its k-induction step; you are given the RTL and the counterexample waveform from \
the inductive step (which may start in an unreachable state). Produce helper assertions \
that rule out the spurious start state so the induction can close. Output each assertion \
as a `property ... endproperty` block.";

impl Prompt {
    /// Builds the Fig.-1 prompt: specification + RTL (+ the target
    /// properties the user ultimately wants to prove).
    pub fn flow1(spec: &str, rtl: &str, targets: &[String]) -> Self {
        let mut user = String::new();
        user.push_str("### Specification\n");
        user.push_str(spec.trim());
        user.push_str("\n\n### RTL\n```systemverilog\n");
        user.push_str(rtl.trim());
        user.push_str("\n```\n");
        if !targets.is_empty() {
            user.push_str("\n### Target properties\n");
            for t in targets {
                user.push_str("- `");
                user.push_str(t);
                user.push_str("`\n");
            }
        }
        user.push_str(
            "\n### Task\nGenerate helper assertions (invariants) of this design that would \
             speed up or enable the formal proof of the target properties.\n",
        );
        Prompt { kind: FlowKind::SpecAndRtl, system: SYSTEM_FLOW1.to_string(), user }
    }

    /// Builds the Fig.-2 prompt: RTL + failed property + CEX rendering.
    ///
    /// `final_values` are the signal values in the violating cycle (the
    /// machine-readable core of the waveform); `waveform` is the full ASCII
    /// art added for realism (and because actual LLMs read it).
    pub fn flow2(
        rtl: &str,
        property: &str,
        waveform: &str,
        final_values: &BTreeMap<String, String>,
    ) -> Self {
        let mut user = String::new();
        user.push_str("### RTL\n```systemverilog\n");
        user.push_str(rtl.trim());
        user.push_str("\n```\n\n### Failing property\n`");
        user.push_str(property);
        user.push_str("`\n\n### Induction step counterexample\n");
        user.push_str("The inductive step failed. Waveform:\n```\n");
        user.push_str(waveform.trim_end());
        user.push_str("\n```\n\nFinal (violating) cycle values:\n");
        for (name, value) in final_values {
            user.push_str("- ");
            user.push_str(name);
            user.push_str(" = ");
            user.push_str(value);
            user.push('\n');
        }
        user.push_str(
            "\n### Task\nThe start state of the induction window may be unreachable. Write \
             helper assertions that exclude it (they must be true invariants of the design) \
             so the next induction attempt succeeds.\n",
        );
        Prompt { kind: FlowKind::InductionFailure, system: SYSTEM_FLOW2.to_string(), user }
    }

    /// Crude token estimate (≈ 4 characters per token, the usual rule of
    /// thumb for English+code).
    pub fn token_estimate(&self) -> usize {
        (self.system.len() + self.user.len()).div_ceil(4)
    }
}

impl fmt::Display for Prompt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[system]\n{}\n\n[user]\n{}", self.system, self.user)
    }
}

/// The sections a model backend can recover from a prompt.
///
/// The synthetic LLM uses *only* this parsed view — it has no side channel
/// to the original design objects.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PromptSections {
    /// Specification prose (Flow 1).
    pub spec: Option<String>,
    /// RTL source from the fenced block.
    pub rtl: Option<String>,
    /// Target property strings.
    pub targets: Vec<String>,
    /// Failing property (Flow 2).
    pub failing_property: Option<String>,
    /// Final-cycle values `signal → verilog-literal` (Flow 2).
    pub final_values: BTreeMap<String, String>,
}

impl PromptSections {
    /// Parses the user payload of a prompt back into sections.
    pub fn parse(user: &str) -> Self {
        let mut out = PromptSections::default();
        let mut current: Option<&str> = None;
        let mut buf = String::new();
        let mut in_code = false;

        let flush = |section: Option<&str>, buf: &mut String, out: &mut PromptSections| {
            let text = buf.trim().to_string();
            if text.is_empty() {
                buf.clear();
                return;
            }
            match section {
                Some("Specification") => out.spec = Some(text),
                Some("RTL") => out.rtl = Some(strip_fence(&text)),
                Some("Failing property") => {
                    out.failing_property = Some(text.trim_matches('`').to_string())
                }
                Some("Target properties") => {
                    for line in text.lines() {
                        let line = line.trim().trim_start_matches('-').trim();
                        let line = line.trim_matches('`');
                        if !line.is_empty() {
                            out.targets.push(line.to_string());
                        }
                    }
                }
                Some("Induction step counterexample") => {
                    for line in text.lines() {
                        let line = line.trim();
                        if let Some(rest) = line.strip_prefix("- ") {
                            if let Some((name, value)) = rest.split_once(" = ") {
                                out.final_values
                                    .insert(name.trim().to_string(), value.trim().to_string());
                            }
                        }
                    }
                }
                _ => {}
            }
            buf.clear();
        };

        for line in user.lines() {
            if line.trim_start().starts_with("```") {
                in_code = !in_code;
                buf.push_str(line);
                buf.push('\n');
                continue;
            }
            if !in_code {
                if let Some(h) = line.strip_prefix("### ") {
                    flush(current, &mut buf, &mut out);
                    current = Some(match h.trim() {
                        "Specification" => "Specification",
                        "RTL" => "RTL",
                        "Target properties" => "Target properties",
                        "Failing property" => "Failing property",
                        "Induction step counterexample" => "Induction step counterexample",
                        _ => "other",
                    });
                    continue;
                }
            }
            buf.push_str(line);
            buf.push('\n');
        }
        flush(current, &mut buf, &mut out);
        out
    }
}

fn strip_fence(text: &str) -> String {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            continue;
        }
        out.push(line);
    }
    out.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow1_roundtrip() {
        let p = Prompt::flow1(
            "Two counters must stay in lockstep.",
            "module m (); endmodule",
            &["&count1 |-> &count2".to_string()],
        );
        assert_eq!(p.kind, FlowKind::SpecAndRtl);
        let s = PromptSections::parse(&p.user);
        assert_eq!(s.spec.as_deref(), Some("Two counters must stay in lockstep."));
        assert_eq!(s.rtl.as_deref(), Some("module m (); endmodule"));
        assert_eq!(s.targets, vec!["&count1 |-> &count2".to_string()]);
        assert!(p.token_estimate() > 50);
    }

    #[test]
    fn flow2_roundtrip() {
        let vals = BTreeMap::from([
            ("count1".to_string(), "8'hff".to_string()),
            ("count2".to_string(), "8'h7f".to_string()),
        ]);
        let p = Prompt::flow2("module m (); endmodule", "&count1 |-> &count2", "… wave …", &vals);
        assert_eq!(p.kind, FlowKind::InductionFailure);
        let s = PromptSections::parse(&p.user);
        assert_eq!(s.failing_property.as_deref(), Some("&count1 |-> &count2"));
        assert_eq!(s.final_values.get("count2").map(String::as_str), Some("8'h7f"));
        assert_eq!(s.rtl.as_deref(), Some("module m (); endmodule"));
    }

    #[test]
    fn rtl_with_hash_lines_survives_fencing() {
        // `##1` inside code must not be mistaken for a header.
        let rtl = "module m ();\n### not a header inside code? no — fenced\nendmodule";
        let p = Prompt::flow1("spec", rtl, &[]);
        let s = PromptSections::parse(&p.user);
        assert!(s.rtl.unwrap().contains("### not a header"));
    }

    #[test]
    fn display_includes_both_roles() {
        let p = Prompt::flow1("s", "r", &[]);
        let text = format!("{p}");
        assert!(text.contains("[system]"));
        assert!(text.contains("[user]"));
    }
}
