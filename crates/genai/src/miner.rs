//! Candidate-invariant mining: the analytical backend of the synthetic LLM.
//!
//! Given only the *prompt text* (RTL source, optional spec, optional
//! induction-step CEX values), the miner rebuilds the design, samples
//! reset-reachable behaviour with seeded random simulation, and proposes
//! invariant candidates from a library of pattern families — the same
//! families (register equality, offsets, range bounds, one-hot encodings,
//! parity relations) that published LLM-for-verification evaluations find
//! GPT-class models producing. Candidates falsified by the reachable
//! samples are dropped; candidates that *rule out* the CEX state are
//! boosted, mirroring how the paper's Fig.-2 flow uses the failure.

use crate::prompt::PromptSections;
use genfv_hdl::{elaborate, parse_source};
use genfv_ir::{evaluate, BitVecValue, Context, Env, ExprRef, Simulator, TransitionSystem};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Invariant pattern family.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Family {
    /// `a == b` between same-width registers.
    Equality,
    /// `a[i] == b[i]` single-bit relations (MSB).
    BitEquality,
    /// `(a - b) == c` constant offsets.
    Offset,
    /// `a <= c` range bounds (from RTL constants or observed maxima).
    Bound,
    /// `$onehot(s)` / `$onehot0(s)` encodings.
    OneHot,
    /// `^a == ^b` or `^a == const` parity relations.
    Parity,
    /// `s == const` frozen registers.
    Constant,
    /// `a == f(b)` functional relations between pipeline registers, mined
    /// from next-state structure (e.g. `code_q == encode(data_q)` in an
    /// ECC pipeline) — the hardest family, only strong models "know" it.
    Functional,
    /// `a |-> b` implications between 1-bit flag registers.
    Implication,
}

impl Family {
    /// All families, for profile coverage configuration.
    pub const ALL: [Family; 9] = [
        Family::Equality,
        Family::BitEquality,
        Family::Offset,
        Family::Bound,
        Family::OneHot,
        Family::Parity,
        Family::Constant,
        Family::Functional,
        Family::Implication,
    ];

    /// Short label used in generated property names.
    pub fn label(self) -> &'static str {
        match self {
            Family::Equality => "eq",
            Family::BitEquality => "biteq",
            Family::Offset => "offset",
            Family::Bound => "bound",
            Family::OneHot => "onehot",
            Family::Parity => "parity",
            Family::Constant => "const",
            Family::Functional => "func",
            Family::Implication => "impl",
        }
    }
}

/// A mined candidate invariant.
#[derive(Clone, Debug)]
pub struct CandidateInvariant {
    /// SVA boolean-layer text (parseable by `genfv-sva`).
    pub text: String,
    /// Pattern family.
    pub family: Family,
    /// Ranking score: higher = emitted earlier. CEX-excluding candidates
    /// get a large boost.
    pub score: f64,
    /// Whether the candidate evaluates to false on the CEX state (i.e. it
    /// would rule the spurious state out).
    pub excludes_cex: bool,
}

/// Mining configuration.
#[derive(Clone, Debug)]
pub struct MinerConfig {
    /// Independent random-simulation runs.
    pub sim_runs: usize,
    /// Steps per run.
    pub sim_steps: usize,
    /// RNG seed (determinism).
    pub seed: u64,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig { sim_runs: 6, sim_steps: 48, seed: 0xC0FFEE }
    }
}

/// Mining failure (unparseable RTL and similar).
#[derive(Clone, Debug)]
pub struct MineError {
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for MineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "miner error: {}", self.message)
    }
}

impl Error for MineError {}

/// Parses a Verilog-style literal (`8'hff`, `8'd200`, `4'b1010`, `42`).
pub fn parse_verilog_literal(s: &str) -> Option<BitVecValue> {
    let s = s.trim();
    if let Some((size, rest)) = s.split_once('\'') {
        let width: u32 = size.trim().parse().ok()?;
        let (base, digits) = rest.split_at(1);
        let raw = match base {
            "h" | "H" => BitVecValue::from_hex_str(digits)?,
            "b" | "B" => BitVecValue::from_binary_str(digits)?,
            "d" | "D" => BitVecValue::from_decimal_str(digits, width.max(1))?,
            _ => return None,
        };
        Some(if raw.width() == width {
            raw
        } else if raw.width() > width {
            raw.extract(width - 1, 0)
        } else {
            raw.zext(width)
        })
    } else {
        BitVecValue::from_decimal_str(s, 64)
    }
}

/// Mines candidate invariants from the parsed prompt sections.
///
/// # Errors
/// Returns [`MineError`] when the RTL section is missing or fails to parse
/// or elaborate — the situations in which a real LLM starts guessing; the
/// model layer turns this into low-quality output rather than an error.
pub fn mine(
    sections: &PromptSections,
    config: &MinerConfig,
) -> Result<Vec<CandidateInvariant>, MineError> {
    let rtl =
        sections.rtl.as_ref().ok_or_else(|| MineError { message: "no RTL in prompt".into() })?;
    let modules =
        parse_source(rtl).map_err(|e| MineError { message: format!("RTL parse: {e}") })?;
    if modules.is_empty() {
        return Err(MineError { message: "no module in RTL".into() });
    }
    let mut ctx = Context::new();
    let ts = elaborate(&mut ctx, &modules[0])
        .map_err(|e| MineError { message: format!("RTL elaborate: {e}") })?;

    let samples = simulate_samples(&ctx, &ts, config);
    let cex = cex_env(&ctx, &ts, &sections.final_values);

    let mut miner = Miner { ctx: &mut ctx, ts: &ts, samples, cex, out: Vec::new() };
    miner.mine_all(sections);
    let mut out = miner.out;

    // Deduplicate by text, keep the best score.
    out.sort_by(|a, b| a.text.cmp(&b.text));
    out.dedup_by(|a, b| {
        if a.text == b.text {
            b.score = b.score.max(a.score);
            true
        } else {
            false
        }
    });
    out.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
    Ok(out)
}

/// Reset-reachable state samples: one `Env` per observed cycle.
fn simulate_samples(ctx: &Context, ts: &TransitionSystem, config: &MinerConfig) -> Vec<Env> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut samples = Vec::new();
    for _ in 0..config.sim_runs {
        let mut sim = Simulator::new(ctx, ts);
        sim.reset();
        for _ in 0..config.sim_steps {
            // Random input stimulus; reset held low so we observe the
            // design's own dynamics (formal-style: reset only at time 0).
            for &input in ts.inputs() {
                let w = ctx.width_of(input);
                let name = ctx.symbol_name(input).unwrap_or("");
                let v = if matches!(name, "rst" | "reset" | "rst_i" | "arst") {
                    BitVecValue::zero(w)
                } else {
                    random_value(&mut rng, w)
                };
                sim.set(input, v);
            }
            samples.push(sim.env().clone());
            sim.step();
        }
        samples.push(sim.env().clone());
    }
    samples
}

fn random_value(rng: &mut SmallRng, width: u32) -> BitVecValue {
    let mut v = BitVecValue::zero(width);
    for i in 0..width {
        if rng.gen_bool(0.5) {
            v.set_bit(i, true);
        }
    }
    v
}

/// Builds the CEX environment from rendered final-cycle values.
fn cex_env(ctx: &Context, ts: &TransitionSystem, values: &BTreeMap<String, String>) -> Option<Env> {
    if values.is_empty() {
        return None;
    }
    let mut env = Env::new();
    for sym in ts.all_symbols() {
        let name = ctx.symbol_name(sym)?.to_string();
        let w = ctx.width_of(sym);
        let v = values
            .get(&name)
            .and_then(|s| parse_verilog_literal(s))
            .map(|v| fit_value(v, w))
            .unwrap_or_else(|| BitVecValue::zero(w));
        env.insert(sym, v);
    }
    Some(env)
}

fn fit_value(v: BitVecValue, width: u32) -> BitVecValue {
    if v.width() == width {
        v
    } else if v.width() > width {
        v.extract(width - 1, 0)
    } else {
        v.zext(width)
    }
}

struct Miner<'a> {
    ctx: &'a mut Context,
    ts: &'a TransitionSystem,
    samples: Vec<Env>,
    cex: Option<Env>,
    out: Vec<CandidateInvariant>,
}

impl Miner<'_> {
    /// Design state registers, excluding SVA monitor internals.
    fn state_symbols(&self) -> Vec<ExprRef> {
        self.ts
            .states()
            .iter()
            .map(|s| s.symbol)
            .filter(|&s| self.ctx.symbol_name(s).map(|n| !n.starts_with("__sva_")).unwrap_or(false))
            .collect()
    }

    fn holds_on_samples(&self, e: ExprRef) -> bool {
        self.samples.iter().all(|env| evaluate(self.ctx, env, e).to_bool())
    }

    fn excludes_cex(&self, e: ExprRef) -> bool {
        match &self.cex {
            Some(env) => !evaluate(self.ctx, env, e).to_bool(),
            None => false,
        }
    }

    fn push(&mut self, expr: ExprRef, text: String, family: Family, base_score: f64) {
        if !self.holds_on_samples(expr) {
            return; // Falsified on reachable behaviour: a real LLM's good
                    // candidates survive this; junk is added elsewhere.
        }
        let excludes_cex = self.excludes_cex(expr);
        let score = base_score + if excludes_cex { 3.0 } else { 0.0 };
        self.out.push(CandidateInvariant { text, family, score, excludes_cex });
    }

    /// Named combinational signals of interest (outputs/nets), excluding
    /// states (covered separately) and monitor internals.
    fn comb_signals(&self) -> Vec<(String, ExprRef)> {
        let state_set: std::collections::HashSet<ExprRef> =
            self.ts.states().iter().map(|s| s.symbol).collect();
        self.ts
            .signals()
            .iter()
            .filter(|(n, e)| {
                !n.starts_with("__sva_")
                    && !state_set.contains(e)
                    && self.ts.inputs().iter().all(|i| i != e)
            })
            .map(|(n, e)| (n.clone(), *e))
            .collect()
    }

    fn mine_all(&mut self, sections: &PromptSections) {
        let states = self.state_symbols();
        let spec_mentions_lockstep = sections
            .spec
            .as_deref()
            .map(|s| {
                let s = s.to_lowercase();
                s.contains("equal")
                    || s.contains("lockstep")
                    || s.contains("same")
                    || s.contains("synchron")
            })
            .unwrap_or(false);

        // --- functional pipeline relations --------------------------------
        // When register b simply latches an input x (next(b) = x) and
        // register a latches f(x), then `a == f(b)` is a one-step-delayed
        // definitional invariant: the classic ECC-pipeline lemma.
        for &a in &states {
            for &b in &states {
                if a == b {
                    continue;
                }
                let (fa, fb) = match (self.ts.find_state(a), self.ts.find_state(b)) {
                    (Some(sa), Some(sb)) => (sa.next, sb.next),
                    _ => continue,
                };
                // Peel the reset mux (`ite(rst, const, body)`) that
                // elaboration wraps around next-state functions.
                let fa = self.peel_reset_mux(fa);
                let fb = self.peel_reset_mux(fb);
                // b must latch a plain input symbol.
                let is_input_latch = self.ts.inputs().contains(&fb);
                if !is_input_latch {
                    continue;
                }
                let x = fb;
                if self.ctx.free_symbols(fa) != [x] {
                    continue;
                }
                if fa == x {
                    continue; // plain equality, covered elsewhere
                }
                let map = std::collections::HashMap::from([(x, b)]);
                let rel = self.ctx.substitute(fa, &map);
                let inv = self.ctx.eq(a, rel);
                let name_a = self.ctx.symbol_name(a).unwrap_or("?").to_string();
                let text = format!("{name_a} == {}", self.ctx.display(rel));
                self.push(inv, text, Family::Functional, 2.2);
            }
        }

        // --- state ↔ combinational-signal equalities ----------------------
        // A register tracking a derived output (`count == dec_out` in an
        // ECC-protected counter) is a classic redundancy invariant.
        for &s in &states {
            let w = self.ctx.width_of(s);
            let name_s = self.ctx.symbol_name(s).unwrap_or("?").to_string();
            for (sig_name, sig) in self.comb_signals() {
                if self.ctx.width_of(sig) != w || sig == s {
                    continue;
                }
                let inv = self.ctx.eq(s, sig);
                self.push(inv, format!("{sig_name} == {name_s}"), Family::Equality, 1.9);
            }
        }

        // --- 1-bit implications -------------------------------------------
        // `a |-> b` between flag registers that co-vary in simulation
        // (non-vacuous: the antecedent fires at least once).
        let bit_states: Vec<ExprRef> =
            states.iter().copied().filter(|&s| self.ctx.width_of(s) == 1).collect();
        for &a in &bit_states {
            for &b in &bit_states {
                if a == b {
                    continue;
                }
                let fires = self
                    .samples
                    .iter()
                    .any(|env| env.get(&a).map(BitVecValue::to_bool).unwrap_or(false));
                if !fires {
                    continue;
                }
                let name_a = self.ctx.symbol_name(a).unwrap_or("?").to_string();
                let name_b = self.ctx.symbol_name(b).unwrap_or("?").to_string();
                let inv = self.ctx.implies(a, b);
                self.push(inv, format!("{name_a} |-> {name_b}"), Family::Implication, 0.7);
            }
        }

        // --- pairwise relations ------------------------------------------
        for (i, &a) in states.iter().enumerate() {
            for &b in states.iter().skip(i + 1) {
                let (wa, wb) = (self.ctx.width_of(a), self.ctx.width_of(b));
                if wa != wb {
                    continue;
                }
                let name_a = self.ctx.symbol_name(a).unwrap_or("?").to_string();
                let name_b = self.ctx.symbol_name(b).unwrap_or("?").to_string();

                // Equality.
                let eq = self.ctx.eq(a, b);
                let score = if spec_mentions_lockstep { 2.5 } else { 2.0 };
                self.push(eq, format!("{name_a} == {name_b}"), Family::Equality, score);

                // Constant sum (credit conservation: `snd + rcv == N`).
                if let Some(total) = self.constant_sum(a, b) {
                    if !total.is_zero() {
                        let t = self.ctx.value(total.clone());
                        let sum = self.ctx.add(a, b);
                        let inv = self.ctx.eq(sum, t);
                        self.push(
                            inv,
                            format!("({name_a} + {name_b}) == {total}"),
                            Family::Offset,
                            1.8,
                        );
                    }
                }

                // Constant offset (skip zero offset — that is equality).
                if let Some(delta) = self.constant_offset(a, b) {
                    if !delta.is_zero() {
                        let d = self.ctx.value(delta.clone());
                        let diff = self.ctx.sub(a, b);
                        let inv = self.ctx.eq(diff, d);
                        self.push(
                            inv,
                            format!("({name_a} - {name_b}) == {delta}"),
                            Family::Offset,
                            1.8,
                        );
                    }
                }

                // Directional families: evaluate with both operand orders.
                for (x, y, name_x, name_y) in [(a, b, &name_a, &name_b), (b, a, &name_b, &name_a)] {
                    // Difference tracked by a third register (`count ==
                    // wptr - rptr` in FIFOs). Modular subtraction makes
                    // this exact even across pointer wrap.
                    for &c in &states {
                        if c == x || c == y || self.ctx.width_of(c) != wa {
                            continue;
                        }
                        let tracks = self.samples.iter().all(|env| {
                            match (env.get(&x), env.get(&y), env.get(&c)) {
                                (Some(vx), Some(vy), Some(vc)) => vx.sub(vy) == *vc,
                                _ => false,
                            }
                        });
                        if tracks {
                            let name_c = self.ctx.symbol_name(c).unwrap_or("?").to_string();
                            let diff = self.ctx.sub(x, y);
                            let inv = self.ctx.eq(diff, c);
                            self.push(
                                inv,
                                format!("({name_x} - {name_y}) == {name_c}"),
                                Family::Offset,
                                1.7,
                            );
                        }
                    }

                    // Transform library: classic hardware idioms relating
                    // two registers (Gray-code shadow, complement).
                    let transforms: Vec<(ExprRef, String)> = {
                        let shift1 = self.ctx.constant(1, wa);
                        let shifted = self.ctx.lshr(y, shift1);
                        let gray = self.ctx.xor(y, shifted);
                        let compl = self.ctx.not(y);
                        vec![
                            (gray, format!("({name_y} ^ ({name_y} >> 1))")),
                            (compl, format!("(~{name_y})")),
                        ]
                    };
                    for (rhs, rhs_text) in transforms {
                        let inv = self.ctx.eq(x, rhs);
                        self.push(inv, format!("{name_x} == {rhs_text}"), Family::Functional, 1.9);
                    }
                }

                // MSB equality (cheap bit relation; useful when full
                // equality fails under e.g. enables).
                if wa > 1 {
                    let ba = self.ctx.bit(a, wa - 1);
                    let bb = self.ctx.bit(b, wb - 1);
                    let inv = self.ctx.eq(ba, bb);
                    self.push(
                        inv,
                        format!("{name_a}[{}] == {name_b}[{}]", wa - 1, wb - 1),
                        Family::BitEquality,
                        1.0,
                    );
                }

                // Parity relation.
                let xa = self.ctx.red_xor(a);
                let xb = self.ctx.red_xor(b);
                let inv = self.ctx.eq(xa, xb);
                self.push(inv, format!("(^{name_a}) == (^{name_b})"), Family::Parity, 0.9);
            }
        }

        // --- per-register facts --------------------------------------------
        for &s in &states {
            let w = self.ctx.width_of(s);
            let name = self.ctx.symbol_name(s).unwrap_or("?").to_string();

            // Bounds from constants in the register's own next function
            // (wrap comparisons like `cnt == MAX` suggest `cnt <= MAX`).
            for c in self.comparison_constants(s) {
                if c.is_zero() {
                    continue;
                }
                let cv = self.ctx.value(c.clone());
                let inv = self.ctx.ule(s, cv);
                self.push(inv, format!("{name} <= {c}"), Family::Bound, 1.6);
            }

            // Observed-maximum bound (plausible but sometimes too tight —
            // the validation layer will reject overfitted ones; real LLMs
            // overfit the same way).
            if w > 1 && w <= 64 {
                let max_seen = self
                    .samples
                    .iter()
                    .filter_map(|env| env.get(&s).and_then(BitVecValue::to_u64))
                    .max()
                    .unwrap_or(0);
                if max_seen > 0 && max_seen < (1u64 << w.min(63)) - 1 {
                    let cv = self.ctx.constant(max_seen, w);
                    let c = BitVecValue::from_u64(max_seen, w);
                    let inv = self.ctx.ule(s, cv);
                    self.push(inv, format!("{name} <= {c}"), Family::Bound, 0.6);
                }
            }

            // One-hot encodings.
            if w >= 2 {
                let oh = self.ctx.onehot(s);
                self.push(oh, format!("$onehot({name})"), Family::OneHot, 1.4);
                let oh0 = self.ctx.onehot0(s);
                self.push(oh0, format!("$onehot0({name})"), Family::OneHot, 0.8);
            }

            // Never-zero registers (LFSRs, one-hot tokens).
            {
                let zero = self.ctx.constant(0, w);
                let inv = self.ctx.ne(s, zero);
                let z = BitVecValue::zero(w);
                self.push(inv, format!("{name} != {z}"), Family::Bound, 1.1);
            }

            // Frozen register.
            if let Some(v) = self.constant_value(s) {
                let cv = self.ctx.value(v.clone());
                let inv = self.ctx.eq(s, cv);
                self.push(inv, format!("{name} == {v}"), Family::Constant, 1.2);
            }

            // Parity constant.
            let xs = self.ctx.red_xor(s);
            let t = self.ctx.bool_const(true);
            let f = self.ctx.bool_const(false);
            let inv_even = self.ctx.eq(xs, f);
            self.push(inv_even, format!("(^{name}) == 1'b0"), Family::Parity, 0.5);
            let inv_odd = self.ctx.eq(xs, t);
            self.push(inv_odd, format!("(^{name}) == 1'b1"), Family::Parity, 0.5);
        }
    }

    /// Strips a top-level `ite(cond, constant, body)` — the shape
    /// elaboration produces for registers with a constant reset value —
    /// returning `body` (the normal-operation next function).
    fn peel_reset_mux(&self, e: ExprRef) -> ExprRef {
        use genfv_ir::Expr;
        match self.ctx.expr(e) {
            Expr::Ite { tru, fls, .. } if self.ctx.const_value(*tru).is_some() => *fls,
            _ => e,
        }
    }

    /// The constant `a + b` if stable across every sample.
    fn constant_sum(&self, a: ExprRef, b: ExprRef) -> Option<BitVecValue> {
        let mut total: Option<BitVecValue> = None;
        for env in &self.samples {
            let va = env.get(&a)?;
            let vb = env.get(&b)?;
            let s = va.add(vb);
            match &total {
                None => total = Some(s),
                Some(prev) if *prev == s => {}
                _ => return None,
            }
        }
        total
    }

    /// The constant `a - b` if stable across every sample.
    fn constant_offset(&self, a: ExprRef, b: ExprRef) -> Option<BitVecValue> {
        let mut delta: Option<BitVecValue> = None;
        for env in &self.samples {
            let va = env.get(&a)?;
            let vb = env.get(&b)?;
            let d = va.sub(vb);
            match &delta {
                None => delta = Some(d),
                Some(prev) if *prev == d => {}
                _ => return None,
            }
        }
        delta
    }

    /// The constant value of `s` if it never changes across samples.
    fn constant_value(&self, s: ExprRef) -> Option<BitVecValue> {
        let mut val: Option<BitVecValue> = None;
        for env in &self.samples {
            let v = env.get(&s)?;
            match &val {
                None => val = Some(v.clone()),
                Some(prev) if prev == v => {}
                _ => return None,
            }
        }
        val
    }

    /// Constants that the RTL compares against register `s` (in its own
    /// next-state function) — prime sources of range bounds.
    fn comparison_constants(&self, s: ExprRef) -> Vec<BitVecValue> {
        use genfv_ir::{BinaryOp, Expr};
        let state = self.ts.find_state(s);
        let Some(state) = state else { return Vec::new() };
        let mut out = Vec::new();
        let mut stack = vec![state.next];
        let mut seen = std::collections::HashSet::new();
        while let Some(e) = stack.pop() {
            if !seen.insert(e) {
                continue;
            }
            match self.ctx.expr(e) {
                Expr::Binary(op @ (BinaryOp::Eq | BinaryOp::Ult | BinaryOp::Ule), x, y) => {
                    let _ = op;
                    for (lhs, rhs) in [(x, y), (y, x)] {
                        if *lhs == s || involves(self.ctx, *lhs, s) {
                            if let Some(c) = self.ctx.const_value(*rhs) {
                                out.push(c.clone());
                            }
                        }
                    }
                    stack.push(*x);
                    stack.push(*y);
                }
                Expr::Binary(_, x, y) => {
                    stack.push(*x);
                    stack.push(*y);
                }
                Expr::Unary(_, x) | Expr::Extract { value: x, .. } => stack.push(*x),
                Expr::Ite { cond, tru, fls } => {
                    stack.push(*cond);
                    stack.push(*tru);
                    stack.push(*fls);
                }
                _ => {}
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

fn involves(ctx: &Context, e: ExprRef, sym: ExprRef) -> bool {
    ctx.free_symbols(e).contains(&sym)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::Prompt;

    const SYNC_COUNTERS: &str = r#"
module sync_counters (input clk, rst, output logic [7:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 8'b0;
      count2 <= 8'b0;
    end else begin
      count1++;
      count2++;
    end
  end
endmodule
"#;

    fn sections_for(rtl: &str, spec: &str) -> PromptSections {
        let p = Prompt::flow1(spec, rtl, &[]);
        PromptSections::parse(&p.user)
    }

    #[test]
    fn mines_paper_helper_on_sync_counters() {
        let sections = sections_for(SYNC_COUNTERS, "Two counters in lockstep.");
        let cands = mine(&sections, &MinerConfig::default()).unwrap();
        let eq = cands
            .iter()
            .find(|c| c.family == Family::Equality)
            .expect("equality candidate expected");
        assert_eq!(eq.text, "count1 == count2", "the paper's Listing-3 helper");
        // It must rank near the top even without a CEX.
        assert!(cands.iter().position(|c| c.text == eq.text).unwrap() < 4);
    }

    #[test]
    fn cex_boosts_excluding_candidates() {
        let p = Prompt::flow2(
            SYNC_COUNTERS,
            "&count1 |-> &count2",
            "(wave)",
            &BTreeMap::from([
                ("count1".to_string(), "8'hff".to_string()),
                ("count2".to_string(), "8'h7f".to_string()),
                ("rst".to_string(), "1'd0".to_string()),
            ]),
        );
        let sections = PromptSections::parse(&p.user);
        let cands = mine(&sections, &MinerConfig::default()).unwrap();
        let top = &cands[0];
        assert!(top.excludes_cex, "best candidate must rule out the CEX: {top:?}");
        assert_eq!(top.text, "count1 == count2");
    }

    #[test]
    fn offset_family_found() {
        let rtl = r#"
module offset_counters (input clk, rst, output logic [7:0] a, b);
  always_ff @(posedge clk) begin
    if (rst) begin a <= 8'd5; b <= 8'd0; end
    else begin a <= a + 8'd1; b <= b + 8'd1; end
  end
endmodule
"#;
        let sections = sections_for(rtl, "b trails a by five.");
        let cands = mine(&sections, &MinerConfig::default()).unwrap();
        let off = cands.iter().find(|c| c.family == Family::Offset).expect("offset candidate");
        assert!(off.text.contains("(a - b) == 8'd5"), "{}", off.text);
        // Plain equality must NOT appear (falsified by simulation).
        assert!(!cands.iter().any(|c| c.text == "a == b"));
    }

    #[test]
    fn bound_from_rtl_constant() {
        let rtl = r#"
module modn (input clk, rst, output logic [7:0] cnt);
  always_ff @(posedge clk) begin
    if (rst) cnt <= '0;
    else if (cnt == 8'd9) cnt <= '0;
    else cnt <= cnt + 8'd1;
  end
endmodule
"#;
        let sections = sections_for(rtl, "Counts modulo ten.");
        let cands = mine(&sections, &MinerConfig::default()).unwrap();
        assert!(
            cands.iter().any(|c| c.family == Family::Bound && c.text.contains("cnt <= 8'd9")),
            "expected wrap bound: {:?}",
            cands.iter().map(|c| &c.text).collect::<Vec<_>>()
        );
    }

    #[test]
    fn onehot_found_for_ring_counter() {
        let rtl = r#"
module ring (input clk, rst, output logic [3:0] r);
  always_ff @(posedge clk) begin
    if (rst) r <= 4'b0001;
    else r <= {r[2:0], r[3]};
  end
endmodule
"#;
        let sections = sections_for(rtl, "One-hot rotating token.");
        let cands = mine(&sections, &MinerConfig::default()).unwrap();
        assert!(cands.iter().any(|c| c.text == "$onehot(r)"), "{cands:?}");
    }

    #[test]
    fn functional_relation_mined_for_pipeline() {
        // data_q latches the input; par_q latches a function of the input:
        // the invariant `par_q == f(data_q)` must be mined.
        let rtl = r#"
module pipe (input clk, rst, input [3:0] d, output logic [3:0] data_q, output logic par_q);
  always_ff @(posedge clk) begin
    if (rst) begin data_q <= '0; par_q <= 1'b0; end
    else begin data_q <= d; par_q <= ^d; end
  end
endmodule
"#;
        let sections = sections_for(rtl, "parity pipeline");
        let cands = mine(&sections, &MinerConfig::default()).unwrap();
        let func = cands
            .iter()
            .find(|c| c.family == Family::Functional)
            .unwrap_or_else(|| panic!("functional candidate expected: {cands:?}"));
        assert!(func.text.contains("par_q =="), "{}", func.text);
        assert!(func.text.contains("data_q"), "{}", func.text);
        // The text must parse as a valid assertion.
        assert!(genfv_sva::parse_assertion(&func.text).is_ok(), "{}", func.text);
    }

    #[test]
    fn unparseable_rtl_is_an_error() {
        let s = PromptSections { rtl: Some("module broken ((".to_string()), ..Default::default() };
        assert!(mine(&s, &MinerConfig::default()).is_err());
    }

    #[test]
    fn literal_parser() {
        assert_eq!(parse_verilog_literal("8'hff").unwrap().to_u64(), Some(255));
        assert_eq!(parse_verilog_literal("8'd200").unwrap().to_u64(), Some(200));
        assert_eq!(parse_verilog_literal("4'b1010").unwrap().to_u64(), Some(10));
        assert_eq!(parse_verilog_literal("42").unwrap().to_u64(), Some(42));
        assert_eq!(parse_verilog_literal("12'hfff").unwrap().width(), 12);
        assert!(parse_verilog_literal("8'xzz").is_none());
    }

    #[test]
    fn determinism() {
        let sections = sections_for(SYNC_COUNTERS, "spec");
        let a = mine(&sections, &MinerConfig::default()).unwrap();
        let b = mine(&sections, &MinerConfig::default()).unwrap();
        let ta: Vec<&String> = a.iter().map(|c| &c.text).collect();
        let tb: Vec<&String> = b.iter().map(|c| &c.text).collect();
        assert_eq!(ta, tb);
    }
}
