//! # genfv-genai — synthetic generative-AI stack
//!
//! The paper sends (1) specification + RTL, or (2) RTL + induction-step
//! counterexample, to a hosted LLM and parses helper assertions out of the
//! reply. This crate reproduces that pipeline without a network:
//!
//! * [`Prompt`] renders the exact artefacts the paper's Figs. 1 and 2 send
//!   (spec, fenced RTL, failing property, CEX waveform + final values);
//! * [`LanguageModel`] is the provider interface (prompt in, text out);
//! * [`SyntheticLlm`] implements it deterministically: the prompt text is
//!   **re-parsed** ([`PromptSections`]), an invariant [`miner`] analyzes
//!   the recovered design (seeded random simulation + RTL structure +
//!   CEX-guided filtering), and a [`ModelProfile`] shapes the output —
//!   pattern-family coverage, ranking noise, hallucination and
//!   syntax-error injection ([`hallucinate`]), candidate budget,
//!   verbosity;
//! * completions are ordinary prose-with-code text; downstream flows
//!   extract assertions with `genfv_sva::parse_assertions`, exactly as
//!   they would from GPT-4 output.
//!
//! The four profiles (GPT-4-Turbo, GPT-4o, Llama-3, Gemini) are calibrated
//! so the paper's Section-V quality ordering is reproduced *end to end* —
//! including the overhead of rejecting junk — rather than asserted.
//! `DESIGN.md` documents why this substitution preserves the measurable
//! claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hallucinate;
pub mod miner;
pub mod model;
pub mod prompt;

pub use miner::{mine, CandidateInvariant, Family, MineError, MinerConfig};
pub use model::{Completion, LanguageModel, ModelProfile, SyntheticLlm};
pub use prompt::{FlowKind, Prompt, PromptSections};
