//! Language-model abstraction and the synthetic model implementations.
//!
//! [`LanguageModel`] is the only interface the verification flows see: a
//! prompt goes in, a text [`Completion`] comes out. [`SyntheticLlm`]
//! implements it offline: the prompt text is re-parsed, the invariant miner
//! proposes candidates, and a [`ModelProfile`] shapes what actually gets
//! emitted — coverage (which pattern families the "model" knows), ranking
//! noise, hallucination and syntax-error rates, candidate budget, and
//! verbosity. The four shipped profiles are calibrated so the quality
//! ordering reported in the paper's Section V (GPT-4-Turbo ≈ GPT-4o >
//! Llama ≈ Gemini) emerges from the same end-to-end pipeline a real
//! integration would run.

use crate::hallucinate::{corrupt, pick_corruption};
use crate::miner::{mine, CandidateInvariant, Family, MinerConfig};
use crate::prompt::{Prompt, PromptSections};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// A model completion.
#[derive(Clone, Debug)]
pub struct Completion {
    /// The raw text returned by the model.
    pub text: String,
    /// Prompt size in (estimated) tokens.
    pub prompt_tokens: usize,
    /// Completion size in (estimated) tokens.
    pub completion_tokens: usize,
    /// Simulated latency, derived from token counts and the profile's
    /// tokens-per-second figure (no real sleeping happens).
    pub latency: Duration,
}

/// Anything that can complete a prompt.
///
/// The flows in `genfv-core` are generic over this trait, so a network
/// client for a real provider could be dropped in without touching them.
pub trait LanguageModel {
    /// Stable model identifier (used in reports).
    fn name(&self) -> &str;

    /// Completes a prompt.
    fn complete(&mut self, prompt: &Prompt) -> Completion;
}

/// Emulated provider model profiles.
///
/// Parameters are calibrated to reproduce the *relative ordering* observed
/// in the paper's results (OpenAI models produced notably better helper
/// assertions than Llama or Gemini) — see `DESIGN.md` for the substitution
/// argument.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ModelProfile {
    /// Emulates GPT-4-Turbo: full pattern coverage, rare hallucinations.
    GptFourTurbo,
    /// Emulates GPT-4o: full coverage, slightly chattier, rare errors.
    GptFourO,
    /// Emulates a Llama-3-class open model: narrower pattern knowledge,
    /// frequent hallucinations and syntax slips.
    LlamaThree,
    /// Emulates a Gemini-class model: middling coverage and noise.
    GeminiPro,
}

impl ModelProfile {
    /// All profiles, in the order used by the comparison experiment (E5).
    pub const ALL: [ModelProfile; 4] = [
        ModelProfile::GptFourTurbo,
        ModelProfile::GptFourO,
        ModelProfile::LlamaThree,
        ModelProfile::GeminiPro,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelProfile::GptFourTurbo => "gpt-4-turbo",
            ModelProfile::GptFourO => "gpt-4o",
            ModelProfile::LlamaThree => "llama-3-70b",
            ModelProfile::GeminiPro => "gemini-pro",
        }
    }

    fn params(self) -> ProfileParams {
        match self {
            ModelProfile::GptFourTurbo => ProfileParams {
                families: &Family::ALL,
                hallucination_rate: 0.05,
                syntax_error_rate: 0.02,
                ranking_noise: 0.15,
                max_candidates: 8,
                tokens_per_second: 35.0,
                chatty: false,
            },
            ModelProfile::GptFourO => ProfileParams {
                families: &Family::ALL,
                hallucination_rate: 0.07,
                syntax_error_rate: 0.02,
                ranking_noise: 0.2,
                max_candidates: 8,
                tokens_per_second: 70.0,
                chatty: false,
            },
            ModelProfile::LlamaThree => ProfileParams {
                // Narrow pattern knowledge: misses offsets, one-hot,
                // parity, and the hard Functional (pipeline) family.
                families: &[Family::Equality, Family::Bound, Family::Constant],
                hallucination_rate: 0.28,
                syntax_error_rate: 0.12,
                ranking_noise: 0.9,
                max_candidates: 5,
                tokens_per_second: 45.0,
                chatty: true,
            },
            ModelProfile::GeminiPro => ProfileParams {
                families: &[Family::Equality, Family::Offset, Family::Bound],
                hallucination_rate: 0.22,
                syntax_error_rate: 0.08,
                ranking_noise: 0.7,
                max_candidates: 6,
                tokens_per_second: 55.0,
                chatty: true,
            },
        }
    }
}

struct ProfileParams {
    families: &'static [Family],
    hallucination_rate: f64,
    syntax_error_rate: f64,
    ranking_noise: f64,
    max_candidates: usize,
    tokens_per_second: f64,
    chatty: bool,
}

/// The deterministic offline LLM.
///
/// ```
/// use genfv_genai::{SyntheticLlm, ModelProfile, Prompt, LanguageModel};
///
/// let rtl = "module m (input clk, rst, output logic [3:0] a, b);\n\
///            always_ff @(posedge clk) begin\n\
///            if (rst) begin a <= '0; b <= '0; end\n\
///            else begin a <= a + 4'd1; b <= b + 4'd1; end end endmodule";
/// let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 42);
/// let completion = llm.complete(&Prompt::flow1("lockstep counters", rtl, &[]));
/// assert!(completion.text.contains("property"));
/// ```
#[derive(Debug)]
pub struct SyntheticLlm {
    profile: ModelProfile,
    rng: SmallRng,
    miner_config: MinerConfig,
    display_name: String,
    /// Ablation overrides (experiment E6): replace the profile's
    /// hallucination / syntax-error rates.
    rate_override: Option<(f64, f64)>,
}

impl SyntheticLlm {
    /// Creates a model with the given profile and seed.
    pub fn new(profile: ModelProfile, seed: u64) -> Self {
        SyntheticLlm {
            profile,
            rng: SmallRng::seed_from_u64(seed ^ 0x5EED_11AA),
            miner_config: MinerConfig { seed, ..Default::default() },
            display_name: profile.name().to_string(),
            rate_override: None,
        }
    }

    /// The profile backing this instance.
    pub fn profile(&self) -> ModelProfile {
        self.profile
    }

    /// Overrides the miner configuration (sampling effort).
    pub fn with_miner_config(mut self, config: MinerConfig) -> Self {
        self.miner_config = config;
        self
    }

    /// Overrides the hallucination and syntax-error rates (used by the
    /// E6 hallucination-sweep ablation); the display name records it.
    pub fn with_error_rates(mut self, hallucination: f64, syntax_error: f64) -> Self {
        self.rate_override = Some((hallucination, syntax_error));
        self.display_name =
            format!("{}+h{:.2}s{:.2}", self.profile.name(), hallucination, syntax_error);
        self
    }

    fn params(&self) -> ProfileParams {
        let mut p = self.profile.params();
        if let Some((h, s)) = self.rate_override {
            p.hallucination_rate = h;
            p.syntax_error_rate = s;
        }
        p
    }

    fn select_candidates(&mut self, mut cands: Vec<CandidateInvariant>) -> Vec<CandidateInvariant> {
        let params = self.params();
        // Coverage: drop families the model "does not know".
        cands.retain(|c| params.families.contains(&c.family));
        // Ranking noise.
        for c in &mut cands {
            c.score += self.rng.gen_range(-params.ranking_noise..=params.ranking_noise);
        }
        cands.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
        cands.truncate(params.max_candidates);
        cands
    }

    fn render_completion(&mut self, prompt: &Prompt, cands: &[CandidateInvariant]) -> String {
        let params = self.params();
        let mut text = String::new();
        if params.chatty {
            text.push_str(
                "Sure! I analyzed the RTL you provided. Here are some helper assertions that \
                 should assist the formal proof. Let me know if you need more!\n\n",
            );
        } else {
            text.push_str("Helper assertions derived from the design:\n\n");
        }
        if cands.is_empty() {
            text.push_str(
                "I could not identify reliable invariants for this design. Consider providing \
                 more context about the intended behaviour.\n",
            );
            return text;
        }
        for (i, c) in cands.iter().enumerate() {
            let mut body = c.text.clone();
            if let Some(kind) =
                pick_corruption(&mut self.rng, params.hallucination_rate, params.syntax_error_rate)
            {
                body = corrupt(&body, kind, &mut self.rng);
            }
            let reason = match prompt.kind {
                crate::prompt::FlowKind::SpecAndRtl => {
                    "// Invariant suggested by the specification and RTL structure."
                }
                crate::prompt::FlowKind::InductionFailure => {
                    "// Rules out the unreachable start state seen in the CEX."
                }
            };
            text.push_str(&format!(
                "{reason}\nproperty genai_{}_{};\n  {};\nendproperty\n\n",
                c.family.label(),
                i,
                body
            ));
            if params.chatty && i == 0 {
                text.push_str("This first one is the most important invariant I found.\n\n");
            }
        }
        text
    }
}

impl LanguageModel for SyntheticLlm {
    fn name(&self) -> &str {
        &self.display_name
    }

    fn complete(&mut self, prompt: &Prompt) -> Completion {
        let sections = PromptSections::parse(&prompt.user);
        let cands = match mine(&sections, &self.miner_config) {
            Ok(c) => self.select_candidates(c),
            Err(_) => Vec::new(), // mimic a model confronted with garbage
        };
        let text = self.render_completion(prompt, &cands);
        let prompt_tokens = prompt.token_estimate();
        let completion_tokens = text.len().div_ceil(4);
        let params = self.params();
        let latency = Duration::from_secs_f64(completion_tokens as f64 / params.tokens_per_second);
        Completion { text, prompt_tokens, completion_tokens, latency }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genfv_sva::parse_assertions;

    const SYNC: &str = r#"
module sync_counters (input clk, rst, output logic [7:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 8'b0;
      count2 <= 8'b0;
    end else begin
      count1++;
      count2++;
    end
  end
endmodule
"#;

    #[test]
    fn gpt_profile_emits_parseable_lockstep_helper() {
        let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 1);
        let completion = llm.complete(&Prompt::flow1("lockstep counters, always equal", SYNC, &[]));
        let assertions = parse_assertions(&completion.text);
        assert!(!assertions.is_empty());
        // The paper's helper must be among them for the strong profile.
        let texts: Vec<String> = assertions.iter().filter_map(|a| a.name.clone()).collect();
        assert!(texts.iter().any(|t| t.starts_with("genai_")), "{texts:?}");
        assert!(completion.completion_tokens > 10);
        assert!(completion.prompt_tokens > 50);
    }

    #[test]
    fn completion_is_deterministic_per_seed() {
        let p = Prompt::flow1("spec", SYNC, &[]);
        let a = SyntheticLlm::new(ModelProfile::LlamaThree, 9).complete(&p);
        let b = SyntheticLlm::new(ModelProfile::LlamaThree, 9).complete(&p);
        assert_eq!(a.text, b.text);
        let c = SyntheticLlm::new(ModelProfile::LlamaThree, 10).complete(&p);
        assert_ne!(a.text, c.text, "different seed, different sampling");
    }

    #[test]
    fn weak_profiles_emit_more_junk_on_average() {
        // Across several seeds, the Llama profile must produce strictly
        // more unparseable-or-phantom assertions than GPT-4-Turbo.
        let p = Prompt::flow1("two equal counters", SYNC, &[]);
        let count_valid = |profile: ModelProfile| -> usize {
            let mut valid = 0;
            for seed in 0..12u64 {
                let completion = SyntheticLlm::new(profile, seed).complete(&p);
                valid += parse_assertions(&completion.text).len();
            }
            valid
        };
        let gpt = count_valid(ModelProfile::GptFourTurbo);
        let llama = count_valid(ModelProfile::LlamaThree);
        assert!(gpt > llama, "gpt parseable assertions ({gpt}) must exceed llama ({llama})");
    }

    #[test]
    fn garbage_rtl_yields_apologetic_completion() {
        let mut llm = SyntheticLlm::new(ModelProfile::GptFourO, 3);
        let completion = llm.complete(&Prompt::flow1("spec", "not verilog at all (", &[]));
        assert!(completion.text.contains("could not identify"));
        assert!(parse_assertions(&completion.text).is_empty());
    }

    #[test]
    fn latency_scales_with_tokens() {
        let p = Prompt::flow1("spec", SYNC, &[]);
        let c = SyntheticLlm::new(ModelProfile::GptFourTurbo, 5).complete(&p);
        assert!(c.latency.as_secs_f64() > 0.0);
    }
}
