//! Differential suite: the prepare-time optimization pipeline must never
//! change what the flows conclude.
//!
//! Every design is prepared twice — at `OptLevel::None` (the system
//! exactly as elaborated) and at the default `OptLevel::Full` — and
//! driven through the same checks. The pipeline's passes split into two
//! soundness classes:
//!
//! * **semantics-preserving** (rewriting, rebalancing, sweep, COI under
//!   the full constraint/signal support closure): every reachable trace
//!   projects identically onto the surviving observables, so BMC
//!   verdicts, falsification cycles, and proof classes must be *equal*;
//! * **strengthening** (stuck-at register folding substitutes a proven
//!   invariant `x == c`): unreachable induction-step counterexamples can
//!   disappear, so an optimized proof may close at a *smaller* k — or
//!   close where the baseline stalled — but never the reverse, and
//!   never with a different counterexample cycle.
//!
//! `assert_no_regression` encodes exactly that order: optimized verdicts
//! must match the baseline or improve on it, and any real falsification
//! must land on the identical cycle.

use genfv_core::{
    run_baseline, run_flow1, run_flow2, FlowConfig, OptConfig, OptLevel, PreparedDesign,
    TargetOutcome,
};
use genfv_designs::DesignBundle;
use genfv_genai::{ModelProfile, SyntheticLlm};
use genfv_mc::{BmcResult, CheckConfig, ProofSession, ProveResult, UnrollMode};

fn baseline_prep(bundle: &DesignBundle) -> PreparedDesign {
    bundle.prepare_with(&OptConfig::default().with_level(OptLevel::None)).expect("baseline prepare")
}

fn optimized_prep(bundle: &DesignBundle) -> PreparedDesign {
    bundle.prepare().expect("optimized prepare")
}

fn cfg(mode: UnrollMode) -> CheckConfig {
    CheckConfig { max_k: 4, unroll_mode: mode, ..Default::default() }
}

/// Optimized-vs-baseline verdict discipline: equal, or improved in the
/// strengthening direction only.
fn assert_no_regression(base: &ProveResult, opt: &ProveResult, what: &str) {
    match (base, opt) {
        (ProveResult::Proven { k: kb, .. }, ProveResult::Proven { k: ko, .. }) => {
            assert!(ko <= kb, "optimization raised the proof depth on {what}: {kb} -> {ko}");
        }
        (
            ProveResult::Falsified { at: a, trace: ta, .. },
            ProveResult::Falsified { at: b, trace: tb, .. },
        ) => {
            assert_eq!(a, b, "violation cycle diverged on {what}");
            assert_eq!(ta.steps.len(), tb.steps.len(), "trace length diverged on {what}");
        }
        // Strengthening: a baseline stall may close under optimization.
        (ProveResult::StepFailure { .. }, ProveResult::Proven { .. })
        | (ProveResult::Unknown { .. }, ProveResult::Proven { .. })
        | (ProveResult::StepFailure { .. }, ProveResult::StepFailure { .. })
        | (ProveResult::Unknown { .. }, ProveResult::Unknown { .. }) => {}
        (b, o) => panic!("verdict diverged on {what}: baseline {b:?} vs optimized {o:?}"),
    }
}

fn full_corpus() -> Vec<DesignBundle> {
    genfv_designs::all_designs().into_iter().chain(genfv_designs::datapath_designs()).collect()
}

/// Induction proofs across the whole corpus (datapath included), in both
/// unroll modes: the optimized netlist must prove everything the
/// elaborated one proves, at no greater depth, with identical
/// counterexamples.
#[test]
fn optimized_proofs_never_regress_on_corpus() {
    for mode in [UnrollMode::Template, UnrollMode::DagWalk] {
        for bundle in full_corpus() {
            let base = baseline_prep(&bundle);
            let opt = optimized_prep(&bundle);
            let mut base_session = ProofSession::new(&base.ctx, &base.ts, cfg(mode));
            let mut opt_session = ProofSession::new(&opt.ctx, &opt.ts, cfg(mode));
            for (bt, ot) in base.targets.iter().zip(&opt.targets) {
                assert_eq!(bt.name, ot.name);
                let b = base_session.prove(&bt.prop);
                let o = opt_session.prove(&ot.prop);
                assert_no_regression(&b, &o, &format!("{}::{} ({mode:?})", bundle.name, bt.name));
            }
        }
    }
}

/// BMC is pure reachable-trace semantics — no strengthening is possible,
/// so clean depths and falsification cycles must be *equal*.
#[test]
fn optimized_bmc_is_identical_on_corpus() {
    for bundle in full_corpus() {
        let base = baseline_prep(&bundle);
        let opt = optimized_prep(&bundle);
        let mut base_session = ProofSession::new(&base.ctx, &base.ts, cfg(UnrollMode::Template));
        let mut opt_session = ProofSession::new(&opt.ctx, &opt.ts, cfg(UnrollMode::Template));
        for (bt, ot) in base.targets.iter().zip(&opt.targets) {
            let what = format!("{}::{}", bundle.name, bt.name);
            let b = base_session.bmc_check(&bt.prop, 8);
            let o = opt_session.bmc_check(&ot.prop, 8);
            match (&b, &o) {
                (BmcResult::Clean { depth: a, .. }, BmcResult::Clean { depth: c, .. }) => {
                    assert_eq!(a, c, "clean depth diverged on {what}");
                }
                (
                    BmcResult::Falsified { at: a, trace: ta, .. },
                    BmcResult::Falsified { at: c, trace: tc, .. },
                ) => {
                    assert_eq!(a, c, "violation cycle diverged on {what}");
                    assert_eq!(ta.steps.len(), tc.steps.len(), "trace length diverged on {what}");
                }
                (b, o) => panic!("BMC diverged on {what}: baseline {b:?} vs optimized {o:?}"),
            }
        }
    }
}

/// The observable a flow verdict rests on. Induction-step counterexample
/// values are solver-chosen and feed the repair prompt, so lemma texts
/// and proof depths may legitimately differ between the two netlists;
/// verdict classes — and the deterministic cycle of a real falsification
/// — may not, except in the strengthening direction.
fn outcome_ok(base: &TargetOutcome, opt: &TargetOutcome, what: &str) {
    match (base, opt) {
        (TargetOutcome::Proven { .. }, TargetOutcome::Proven { .. }) => {}
        (TargetOutcome::Falsified { at: a }, TargetOutcome::Falsified { at: b }) => {
            assert_eq!(a, b, "falsification cycle diverged on {what}");
        }
        (TargetOutcome::StillUnproven { .. }, TargetOutcome::Proven { .. })
        | (TargetOutcome::Unknown { .. }, TargetOutcome::Proven { .. })
        | (TargetOutcome::StillUnproven { .. }, TargetOutcome::StillUnproven { .. })
        | (TargetOutcome::Unknown { .. }, TargetOutcome::Unknown { .. }) => {}
        (b, o) => panic!("flow outcome diverged on {what}: baseline {b:?} vs optimized {o:?}"),
    }
}

/// Plain k-induction (`run_baseline`) end to end over the full corpus:
/// the flow-level report must show no regression.
#[test]
fn baseline_flow_verdicts_never_regress() {
    for bundle in full_corpus() {
        let flow_cfg = FlowConfig::default();
        let base = run_baseline(&baseline_prep(&bundle), &flow_cfg);
        let opt = run_baseline(&optimized_prep(&bundle), &flow_cfg);
        assert_eq!(base.targets.len(), opt.targets.len());
        assert!(opt.opt.rounds >= 1, "{}: optimized report carries opt stats", bundle.name);
        assert_eq!(base.opt.rounds, 0, "{}: baseline report shows no opt rounds", bundle.name);
        for (bt, ot) in base.targets.iter().zip(&opt.targets) {
            assert_eq!(bt.name, ot.name);
            outcome_ok(&bt.outcome, &ot.outcome, &format!("{}::{}", bundle.name, bt.name));
        }
    }
}

/// Flow 1 (spec-reading lemma generation) on the lemma-hungry designs:
/// same verdict classes with the same synthetic model.
#[test]
fn flow1_verdicts_never_regress() {
    for bundle in genfv_designs::lemma_hungry_designs() {
        let flow_cfg = FlowConfig::default();
        let base = run_flow1(
            baseline_prep(&bundle),
            &mut SyntheticLlm::new(ModelProfile::GptFourTurbo, 42),
            &flow_cfg,
        );
        let opt = run_flow1(
            optimized_prep(&bundle),
            &mut SyntheticLlm::new(ModelProfile::GptFourTurbo, 42),
            &flow_cfg,
        );
        assert_eq!(base.targets.len(), opt.targets.len());
        for (bt, ot) in base.targets.iter().zip(&opt.targets) {
            assert_eq!(bt.name, ot.name);
            outcome_ok(&bt.outcome, &ot.outcome, &format!("{}::{}", bundle.name, bt.name));
        }
    }
}

/// Flow 2 (CEX-driven repair) on the lemma-hungry designs, in both
/// unroll modes: the full gauntlet — validation, Houdini, repair loop —
/// over the optimized netlist must reach verdicts no worse than over the
/// elaborated one.
#[test]
fn flow2_verdicts_never_regress() {
    for mode in [UnrollMode::Template, UnrollMode::DagWalk] {
        for bundle in genfv_designs::lemma_hungry_designs() {
            let flow_cfg = FlowConfig::default().with_unroll_mode(mode);
            let base = run_flow2(
                baseline_prep(&bundle),
                &mut SyntheticLlm::new(ModelProfile::GptFourTurbo, 42),
                &flow_cfg,
            );
            let opt = run_flow2(
                optimized_prep(&bundle),
                &mut SyntheticLlm::new(ModelProfile::GptFourTurbo, 42),
                &flow_cfg,
            );
            assert_eq!(base.targets.len(), opt.targets.len());
            for (bt, ot) in base.targets.iter().zip(&opt.targets) {
                assert_eq!(bt.name, ot.name);
                outcome_ok(
                    &bt.outcome,
                    &ot.outcome,
                    &format!("{}::{} ({mode:?})", bundle.name, bt.name),
                );
            }
        }
    }
}

/// Warm-capital isolation: a seed built over the optimized netlist must
/// not be adoptable by a session over the unoptimized one prepared from
/// the very same sources (and vice versa) — the opt-level salt keeps the
/// fingerprints apart even when hash-consing happens to give both
/// layouts the same shape.
#[test]
fn opt_level_salts_isolate_session_seeds() {
    use genfv_mc::SessionSeed;
    for bundle in genfv_designs::datapath_designs() {
        let base = baseline_prep(&bundle);
        let opt = optimized_prep(&bundle);
        let base_seed = SessionSeed::for_design_salted(&base.ctx, &base.ts, base.opt.level.salt());
        let opt_seed = SessionSeed::for_design_salted(&opt.ctx, &opt.ts, opt.opt.level.salt());
        assert!(base_seed.matches(&base.ctx, &base.ts));
        assert!(opt_seed.matches(&opt.ctx, &opt.ts));
        assert!(!base_seed.matches(&opt.ctx, &opt.ts), "{}", bundle.name);
        assert!(!opt_seed.matches(&base.ctx, &base.ts), "{}", bundle.name);
    }
}
