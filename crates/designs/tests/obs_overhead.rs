//! Overhead guard: a disabled [`Obs`](genfv_obs::Obs) handle must be
//! free — no trace event is ever recorded, so no per-event allocation can
//! occur, and the whole corpus sweep stays within an easily-met
//! wall-clock envelope.
//!
//! This file deliberately holds **only** non-recording tests: the
//! zero-event assertion reads the process-global
//! [`events_recorded_total`] counter, and integration-test binaries are
//! separate processes, so nothing else can race it here. (The strict
//! Off-vs-Full ≤ 5% wall-clock gate lives in the `e14_obs` bench, where
//! warmup and repeated sampling make timing meaningful; a unit-test
//! environment is too noisy for a tight ratio.)

use genfv_core::{run_baseline, FlowConfig};
use genfv_mc::CheckConfig;
use genfv_obs::events_recorded_total;
use std::time::Instant;

#[test]
fn disabled_obs_corpus_sweep_records_zero_events() {
    let before = events_recorded_total();
    let start = Instant::now();
    let mut targets = 0;
    for bundle in genfv_designs::all_designs() {
        let design = bundle.prepare().expect("corpus designs prepare");
        // The default FlowConfig carries the disabled handle — exactly
        // what every pre-obs caller gets.
        let config = FlowConfig {
            check: CheckConfig { max_k: 4, ..Default::default() },
            ..Default::default()
        };
        let report = run_baseline(&design, &config);
        targets += report.targets.len();
        assert!(config.obs().report().is_none(), "disabled handle must have no report");
        assert_eq!(config.obs().now_us(), 0, "disabled clock reads zero");
    }
    assert!(targets > 0, "corpus sweep proved nothing");
    assert_eq!(
        events_recorded_total() - before,
        0,
        "disabled-obs corpus sweep recorded trace events"
    );
    // Generous smoke bound: the instrumented-but-off corpus sweep has to
    // stay in the same order of magnitude as the seed (which runs this
    // sweep in a few seconds even in debug CI). A hung or pathologically
    // slowed span path would blow far past this.
    let elapsed = start.elapsed();
    assert!(elapsed.as_secs() < 120, "off-mode corpus sweep took {elapsed:?}");
}
