//! Differential suite: template-stamped unrolling must be observationally
//! identical to the DAG-walk (reference) encoding across the corpus.
//!
//! [`UnrollMode::Template`] encodes the transition relation once and
//! instantiates frames by literal renaming (hash-consed, polarity-aware
//! clause blocks stamped through `Solver::load_template`);
//! [`UnrollMode::DagWalk`] is the original per-frame Tseitin walk, kept
//! precisely so this suite can pin the equivalence. SAT models are not
//! unique between different CNFs, so per-signal trace *values* may differ;
//! everything the flows branch on — verdict class, induction depth,
//! violation cycle, trace length — is asserted equal, plus the frame-0
//! values of reset-initialised state signals on BMC counterexamples
//! (those are pinned by the encoding, not chosen by the solver).

use genfv_core::{run_flow2, FlowConfig, TargetOutcome};
use genfv_genai::{ModelProfile, SyntheticLlm};
use genfv_mc::{BmcResult, CheckConfig, ProofSession, ProveResult, UnrollMode};

fn cfg(mode: UnrollMode) -> CheckConfig {
    CheckConfig { max_k: 4, unroll_mode: mode, ..Default::default() }
}

fn assert_prove_eq(tpl: &ProveResult, dag: &ProveResult, what: &str) {
    match (tpl, dag) {
        (ProveResult::Proven { k: a, .. }, ProveResult::Proven { k: b, .. }) => {
            assert_eq!(a, b, "proof depth diverged on {what}");
        }
        (
            ProveResult::Falsified { at: a, trace: ta, .. },
            ProveResult::Falsified { at: b, trace: tb, .. },
        ) => {
            assert_eq!(a, b, "violation cycle diverged on {what}");
            assert_eq!(ta.steps.len(), tb.steps.len(), "trace length diverged on {what}");
        }
        (
            ProveResult::StepFailure { k: a, trace: ta, .. },
            ProveResult::StepFailure { k: b, trace: tb, .. },
        ) => {
            assert_eq!(a, b, "step-failure depth diverged on {what}");
            assert_eq!(ta.steps.len(), tb.steps.len(), "step CEX length diverged on {what}");
        }
        (ProveResult::Unknown { reason: a, .. }, ProveResult::Unknown { reason: b, .. }) => {
            assert_eq!(a, b, "unknown reason diverged on {what}");
        }
        (a, b) => panic!("prove verdict diverged on {what}: template {a:?} vs dagwalk {b:?}"),
    }
}

/// Every target of every corpus design, proven through one session per
/// mode: verdict classes, depths, and counterexample cycles must match.
#[test]
fn template_prove_matches_dagwalk_on_corpus() {
    let mut targets_checked = 0;
    for bundle in genfv_designs::all_designs() {
        let design = bundle.prepare().expect("corpus designs prepare");
        let mut tpl_session = ProofSession::new(&design.ctx, &design.ts, cfg(UnrollMode::Template));
        let mut dag_session = ProofSession::new(&design.ctx, &design.ts, cfg(UnrollMode::DagWalk));
        for target in &design.targets {
            let t = tpl_session.prove(&target.prop);
            let d = dag_session.prove(&target.prop);
            assert_prove_eq(&t, &d, &format!("{}::{}", bundle.name, target.name));
            targets_checked += 1;
        }
        assert_eq!(
            tpl_session.stats().bitblasts,
            1,
            "{}: template mode keeps the one-blast discipline",
            bundle.name
        );
    }
    assert!(targets_checked >= 10, "the corpus should contribute real targets");
}

/// BMC over the same split, including frame-0 model agreement on SAT:
/// reset-initialised state signals are pinned by both encodings, so their
/// cycle-0 trace values must be byte-identical (and equal to the reset
/// value), whatever model the solver picked.
#[test]
fn template_bmc_matches_dagwalk_on_corpus() {
    for bundle in genfv_designs::all_designs() {
        let design = bundle.prepare().expect("corpus designs prepare");
        let mut tpl_session = ProofSession::new(&design.ctx, &design.ts, cfg(UnrollMode::Template));
        let mut dag_session = ProofSession::new(&design.ctx, &design.ts, cfg(UnrollMode::DagWalk));
        for target in &design.targets {
            let what = format!("{}::{}", bundle.name, target.name);
            let t = tpl_session.bmc_check(&target.prop, 8);
            let d = dag_session.bmc_check(&target.prop, 8);
            match (&t, &d) {
                (BmcResult::Clean { depth: a, .. }, BmcResult::Clean { depth: b, .. }) => {
                    assert_eq!(a, b, "clean depth diverged on {what}");
                }
                (
                    BmcResult::Falsified { at: a, trace: ta, .. },
                    BmcResult::Falsified { at: b, trace: tb, .. },
                ) => {
                    assert_eq!(a, b, "violation cycle diverged on {what}");
                    assert_eq!(ta.steps.len(), tb.steps.len(), "trace length diverged on {what}");
                    // Frame-0 model equality for pinned state signals.
                    for (name, expr) in design.ts.signals() {
                        let Some(state) = design.ts.find_state(*expr) else { continue };
                        let Some(init) = state.init else { continue };
                        let Some(reset) = design.ctx.const_value(init) else { continue };
                        let va = ta.steps[0].get(name);
                        let vb = tb.steps[0].get(name);
                        assert_eq!(va, vb, "frame-0 value of {name} diverged on {what}");
                        assert_eq!(
                            va,
                            Some(reset),
                            "frame-0 value of {name} must be the reset value on {what}"
                        );
                    }
                }
                (a, b) => {
                    panic!("BMC verdict diverged on {what}: template {a:?} vs dagwalk {b:?}")
                }
            }
        }
    }
}

/// Guarded hypotheses over selector literals: facts guarded at a frame,
/// queried under different windows, then retired — the activation
/// discipline must behave identically on stamped frames.
#[test]
fn selector_guarded_facts_match_across_modes() {
    for bundle in genfv_designs::all_designs() {
        let design = bundle.prepare().expect("corpus designs prepare");
        let Some(target) = design.targets.first() else { continue };
        let fact = target.prop.ok;
        let what = format!("{}::{}", bundle.name, target.name);

        let run = |mode: UnrollMode| -> Vec<bool> {
            let mut s = ProofSession::new(&design.ctx, &design.ts, cfg(mode));
            let sel = s.new_selector();
            s.guard_fact(sel, 2, fact);
            let l2 = s.literal(2, fact);
            let l3 = s.literal(3, fact);
            let mut verdicts = Vec::new();
            // Guarded fact active: ¬fact@2 must contradict the selector.
            verdicts.push(s.solve_under(false, 2, &[sel, !l2]).is_sat());
            // Without the selector the fact is free.
            verdicts.push(s.solve_under(false, 2, &[!l2]).is_sat());
            // A wider window with the fact assumed at 2, queried at 3.
            verdicts.push(s.solve_under(false, 3, &[sel, !l3]).is_sat());
            // Retired: the selector no longer forces anything.
            s.retire_selector(sel);
            verdicts.push(s.solve_under(false, 2, &[sel, !l2]).is_sat());
            verdicts
        };
        assert_eq!(
            run(UnrollMode::Template),
            run(UnrollMode::DagWalk),
            "selector discipline diverged on {what}"
        );
    }
}

/// The datapath (multiplier-identity) designs are the template's
/// showcase workload and live outside the flow corpus; pin their unaided
/// proofs across modes explicitly.
#[test]
fn datapath_designs_match_across_modes() {
    for bundle in genfv_designs::datapath_designs() {
        let design = bundle.prepare().expect("datapath designs prepare");
        let mut tpl_session = ProofSession::new(&design.ctx, &design.ts, cfg(UnrollMode::Template));
        let mut dag_session = ProofSession::new(&design.ctx, &design.ts, cfg(UnrollMode::DagWalk));
        for target in &design.targets {
            let t = tpl_session.prove(&target.prop);
            let d = dag_session.prove(&target.prop);
            assert_prove_eq(&t, &d, &format!("{}::{}", bundle.name, target.name));
            assert!(t.is_proven(), "{}::{} should prove unaided", bundle.name, target.name);
        }
    }
}

/// Simple-path constraints on stamped frames: completeness-critical
/// clauses built from state-slot literals must agree with the reference.
#[test]
fn simple_path_proofs_match_across_modes() {
    for bundle in genfv_designs::all_designs() {
        let design = bundle.prepare().expect("corpus designs prepare");
        let sp = |mode: UnrollMode| CheckConfig {
            max_k: 3,
            simple_path: true,
            unroll_mode: mode,
            ..Default::default()
        };
        let mut tpl_session = ProofSession::new(&design.ctx, &design.ts, sp(UnrollMode::Template));
        let mut dag_session = ProofSession::new(&design.ctx, &design.ts, sp(UnrollMode::DagWalk));
        for target in &design.targets {
            let t = tpl_session.prove(&target.prop);
            let d = dag_session.prove(&target.prop);
            assert_prove_eq(&t, &d, &format!("{}::{} (simple path)", bundle.name, target.name));
        }
    }
}

/// Lemmas installed mid-session (after frames already exist) must scope
/// identically: install the first target as a lemma once proven, then
/// re-check the remaining targets.
#[test]
fn lemma_installation_matches_across_modes() {
    for bundle in genfv_designs::all_designs() {
        let design = bundle.prepare().expect("corpus designs prepare");
        if design.targets.len() < 2 {
            continue;
        }
        let run = |mode: UnrollMode| -> Vec<String> {
            let mut s = ProofSession::new(&design.ctx, &design.ts, cfg(mode));
            let mut verdicts = Vec::new();
            let first = &design.targets[0];
            let r = s.prove(&first.prop);
            if r.is_proven() {
                s.add_lemma(first.prop.ok);
            }
            verdicts.push(format!("{}:{}", first.name, verdict_tag(&r)));
            for target in &design.targets[1..] {
                let r = s.prove(&target.prop);
                verdicts.push(format!("{}:{}", target.name, verdict_tag(&r)));
            }
            verdicts
        };
        assert_eq!(
            run(UnrollMode::Template),
            run(UnrollMode::DagWalk),
            "lemma-carrying session diverged on {}",
            bundle.name
        );
    }
}

fn verdict_tag(r: &ProveResult) -> String {
    match r {
        ProveResult::Proven { k, .. } => format!("proven@{k}"),
        ProveResult::Falsified { at, .. } => format!("falsified@{at}"),
        ProveResult::StepFailure { k, .. } => format!("step_failure@{k}"),
        ProveResult::Unknown { .. } => "unknown".to_string(),
    }
}

/// The observable a flow's *verdict* rests on. Induction-step
/// counterexample values are solver-chosen and feed the repair prompt, so
/// lemma texts and proof depths may legitimately differ between CNF
/// encodings; verdict classes — and the deterministic cycle of a real
/// falsification — may not.
fn outcome_class(outcome: &TargetOutcome) -> String {
    match outcome {
        TargetOutcome::Proven { .. } => "proven".to_string(),
        TargetOutcome::Falsified { at } => format!("falsified@{at}"),
        TargetOutcome::StillUnproven { .. } => "still_unproven".to_string(),
        TargetOutcome::Unknown { .. } => "unknown".to_string(),
    }
}

/// Flow 2 end to end (validation gauntlet, Houdini, target proofs,
/// CEX-driven repair) in both unroll modes: identical verdict classes and
/// identical falsification cycles for every target.
#[test]
fn flow2_verdicts_identical_across_unroll_modes() {
    for bundle in genfv_designs::lemma_hungry_designs() {
        let template = run_flow2(
            bundle.prepare().expect("corpus designs prepare"),
            &mut SyntheticLlm::new(ModelProfile::GptFourTurbo, 42),
            &FlowConfig::default().with_unroll_mode(UnrollMode::Template),
        );
        let dagwalk = run_flow2(
            bundle.prepare().expect("corpus designs prepare"),
            &mut SyntheticLlm::new(ModelProfile::GptFourTurbo, 42),
            &FlowConfig::default().with_unroll_mode(UnrollMode::DagWalk),
        );
        assert_eq!(template.targets.len(), dagwalk.targets.len());
        for (tt, td) in template.targets.iter().zip(&dagwalk.targets) {
            assert_eq!(tt.name, td.name);
            assert_eq!(
                outcome_class(&tt.outcome),
                outcome_class(&td.outcome),
                "flow outcome diverged on {}::{}",
                bundle.name,
                tt.name
            );
        }
    }
}
