//! Differential test: the incremental (single-session, selector-based)
//! Houdini must accept **exactly** the candidate subsets that the original
//! rebuild-per-iteration loop accepts, across the whole designs corpus.
//!
//! The reference implementation below is the pre-incremental algorithm
//! preserved verbatim in spirit: a fresh [`Unroller`] (full re-bit-blast,
//! brand-new solver) for every strengthening iteration, a separate `bmc`
//! run per candidate base case, lemmas asserted rather than activated, and
//! one solver query per alive candidate per sweep. Houdini's fixpoint (the
//! unique maximal mutually-inductive subset) is canonical, so any sound
//! implementation must land on the same set however it schedules queries —
//! this test pins the new engine to that semantics on realistic inputs:
//! the deterministic synthetic-LLM completions for each corpus design,
//! which mix good lemmas, hallucinated signals, false invariants, and
//! non-inductive truths.

use genfv_core::{houdini, Candidate, PreparedDesign, ValidateConfig};
use genfv_genai::{LanguageModel, ModelProfile, Prompt, SyntheticLlm};
use genfv_ir::ExprRef;
use genfv_mc::{bmc, BmcResult, Property, Unroller};
use genfv_sat::SolveResult;
use genfv_sva::{parse_assertions, PropertyCompiler};

/// The original rebuild-per-iteration Houdini, kept as the semantic
/// oracle. Returns accepted indices into `candidates`.
fn reference_houdini(
    design: &PreparedDesign,
    proven_lemmas: &[ExprRef],
    candidates: &[Candidate],
    config: &ValidateConfig,
) -> Vec<usize> {
    if candidates.is_empty() {
        return Vec::new();
    }

    // Compile all candidates on one clone (they may share monitor state).
    let mut ctx = design.ctx.clone();
    let mut ts = design.ts.clone();
    let mut exprs: Vec<Option<ExprRef>> = Vec::with_capacity(candidates.len());
    {
        let mut pc = PropertyCompiler::new(&mut ctx, &mut ts);
        for cand in candidates {
            exprs.push(pc.compile(&cand.assertion).ok().map(|c| c.ok));
        }
    }

    // Base case: a full BMC run per candidate.
    let mut alive: Vec<usize> = Vec::new();
    for (i, expr) in exprs.iter().enumerate() {
        let Some(e) = expr else { continue };
        let prop = Property::new(candidates[i].name.clone(), *e);
        match bmc(&ctx, &ts, &prop, proven_lemmas, config.bmc_depth, &config.check) {
            BmcResult::Clean { .. } => alive.push(i),
            BmcResult::Falsified { .. } => {}
        }
    }

    // Step fixpoint at k = 1 with a fresh unroller per iteration.
    loop {
        if alive.is_empty() {
            break;
        }
        let mut unroller = Unroller::new(&ctx, &ts, false);
        unroller.ensure_frame(1);
        for &l in proven_lemmas {
            let l0 = unroller.lit_at(0, l);
            unroller.blaster_mut().assert_lit(l0);
            let l1 = unroller.lit_at(1, l);
            unroller.blaster_mut().assert_lit(l1);
        }
        let lits0: Vec<_> = alive
            .iter()
            .map(|&i| unroller.lit_at(0, exprs[i].expect("alive implies compiled")))
            .collect();
        let lits1: Vec<_> = alive
            .iter()
            .map(|&i| unroller.lit_at(1, exprs[i].expect("alive implies compiled")))
            .collect();

        let mut dropped_any = false;
        let mut still_alive = alive.clone();
        for (pos, _) in alive.iter().enumerate() {
            if !still_alive.contains(&alive[pos]) {
                continue;
            }
            let mut assumptions = Vec::with_capacity(lits0.len() + 1);
            for (p, &l0) in lits0.iter().enumerate() {
                if still_alive.contains(&alive[p]) {
                    assumptions.push(l0);
                }
            }
            assumptions.push(!lits1[pos]);
            match unroller.blaster_mut().solve_with_assumptions(&assumptions) {
                SolveResult::Sat => {
                    let model_false: Vec<usize> = alive
                        .iter()
                        .enumerate()
                        .filter(|&(p, _)| {
                            still_alive.contains(&alive[p])
                                && unroller.blaster().solver().value(lits1[p]) == Some(false)
                        })
                        .map(|(_, &i)| i)
                        .collect();
                    still_alive.retain(|i| !model_false.contains(i));
                    dropped_any = true;
                }
                SolveResult::Unsat => {}
                SolveResult::Unknown => {
                    still_alive.retain(|&i| i != alive[pos]);
                    dropped_any = true;
                }
            }
        }
        alive = still_alive;
        if !dropped_any {
            break;
        }
    }
    alive
}

/// Candidate pool for a design: the deterministic Flow-1 completion of the
/// synthetic GPT-4-class model, exactly as the flows would parse it.
fn corpus_candidates(bundle: &genfv_designs::DesignBundle) -> Vec<Candidate> {
    let targets: Vec<String> = bundle.targets.iter().map(|(_, sva)| sva.clone()).collect();
    let prompt = Prompt::flow1(bundle.spec, bundle.rtl, &targets);
    let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 42);
    let completion = llm.complete(&prompt);
    parse_assertions(&completion.text)
        .into_iter()
        .enumerate()
        .map(|(i, assertion)| {
            let name = assertion.name.clone().unwrap_or_else(|| format!("candidate_{i}"));
            let text = genfv_sva::render_prop_body(&assertion.body);
            Candidate { name, text, assertion }
        })
        .collect()
}

#[test]
fn incremental_houdini_matches_rebuild_reference_on_corpus() {
    let config = ValidateConfig::default();
    let mut nonempty_pools = 0;
    let mut accepted_total = 0;
    for bundle in genfv_designs::all_designs() {
        let design = bundle.prepare().expect("corpus designs prepare");
        let candidates = corpus_candidates(&bundle);
        if !candidates.is_empty() {
            nonempty_pools += 1;
        }
        let incremental = houdini(&design, &[], &candidates, &config);
        let reference = reference_houdini(&design, &[], &candidates, &config);
        assert_eq!(
            incremental.accepted,
            reference,
            "accepted-lemma divergence on `{}` over {} candidates",
            bundle.name,
            candidates.len()
        );
        // `carried` reports the hypotheses in the final fixpoint's
        // assumption core: always a subset of the survivors.
        assert!(
            incremental.carried.iter().all(|i| incremental.accepted.contains(i)),
            "`{}`: carried {:?} not within accepted {:?}",
            bundle.name,
            incremental.carried,
            incremental.accepted
        );
        // Core's selectable rebuild engine must land on the same set as
        // this test's independent oracle.
        let rebuild_cfg = ValidateConfig {
            engine: genfv_mc::EngineMode::RebuildPerQuery,
            ..ValidateConfig::default()
        };
        let core_rebuild = houdini(&design, &[], &candidates, &rebuild_cfg);
        assert_eq!(
            core_rebuild.accepted, reference,
            "rebuild-mode divergence on `{}`",
            bundle.name
        );
        assert!(
            candidates.is_empty() || incremental.session.bitblasts == 1,
            "`{}`: incremental run must bit-blast once, saw {}",
            bundle.name,
            incremental.session.bitblasts
        );
        accepted_total += incremental.accepted.len();
    }
    assert!(nonempty_pools >= 5, "the corpus should exercise real candidate pools");
    assert!(accepted_total > 0, "at least some corpus lemmas must survive Houdini");
}
