//! Differential suite: the persistent clause pool must never change a
//! verdict.
//!
//! Pool imports are learnt clauses — implied by the formulas the exporter
//! was solving — replayed into later sessions either frame-relocated
//! (step direction, coordinates normalised against the template layout)
//! or tag-guarded verbatim (base direction, gated on an identical
//! problem-clause addition history). Both transports are sound exactly
//! when every replayed clause is implied by the *importer's* formula too,
//! so the observable contract is: a pooled run answers every query the
//! same as a pool-free run. SAT models are not unique — a warm solver may
//! find a different (equally valid) counterexample — so this suite pins
//! everything the flows branch on (verdict class, proof depth `k`,
//! violation cycle, trace length) and leaves per-signal values free,
//! mirroring `session_differential.rs`.
//!
//! Each design runs three ways per unroll mode: a cold pooled session
//! (exports glue into the shared seed), a warm pooled session over the
//! same seed (imports the relocated/tagged clauses — the interesting
//! run), and a pool-off control. All three must agree on every target.

use genfv_mc::{
    BmcResult, CheckConfig, PoolScope, ProofSession, ProveResult, SessionSeed, UnrollMode,
};

fn assert_prove_eq(warm: &ProveResult, control: &ProveResult, what: &str) {
    match (warm, control) {
        (ProveResult::Proven { k: a, .. }, ProveResult::Proven { k: b, .. }) => {
            assert_eq!(a, b, "proof depth diverged on {what}");
        }
        (
            ProveResult::Falsified { at: a, trace: ta, .. },
            ProveResult::Falsified { at: b, trace: tb, .. },
        ) => {
            assert_eq!(a, b, "violation cycle diverged on {what}");
            assert_eq!(ta.steps.len(), tb.steps.len(), "trace length diverged on {what}");
        }
        (
            ProveResult::StepFailure { k: a, trace: ta, .. },
            ProveResult::StepFailure { k: b, trace: tb, .. },
        ) => {
            assert_eq!(a, b, "step-failure depth diverged on {what}");
            assert_eq!(ta.steps.len(), tb.steps.len(), "step CEX length diverged on {what}");
        }
        (ProveResult::Unknown { reason: a, .. }, ProveResult::Unknown { reason: b, .. }) => {
            assert_eq!(a, b, "unknown reason diverged on {what}");
        }
        (a, b) => panic!("prove verdict diverged on {what}: pooled {a:?} vs pool-off {b:?}"),
    }
}

fn assert_bmc_eq(warm: &BmcResult, control: &BmcResult, what: &str) {
    match (warm, control) {
        (BmcResult::Clean { depth: a, .. }, BmcResult::Clean { depth: b, .. }) => {
            assert_eq!(a, b, "clean depth diverged on {what}");
        }
        (
            BmcResult::Falsified { at: a, trace: ta, .. },
            BmcResult::Falsified { at: b, trace: tb, .. },
        ) => {
            assert_eq!(a, b, "violation cycle diverged on {what}");
            assert_eq!(ta.steps.len(), tb.steps.len(), "trace length diverged on {what}");
        }
        (a, b) => panic!("BMC verdict diverged on {what}: pooled {a:?} vs pool-off {b:?}"),
    }
}

fn pooled_config(mode: UnrollMode) -> CheckConfig {
    CheckConfig { max_k: 4, unroll_mode: mode, ..Default::default() }
}

/// K-induction over the whole corpus, both unroll modes: cold pooled
/// export, warm pooled import, pool-off control — identical verdicts.
#[test]
fn pooled_prove_matches_pool_off_on_corpus() {
    for mode in [UnrollMode::Template, UnrollMode::DagWalk] {
        let mut imported_total = 0u64;
        for bundle in genfv_designs::all_designs() {
            let design = bundle.prepare().expect("corpus designs prepare");
            let seed = SessionSeed::for_design(&design.ctx, &design.ts);
            let base = pooled_config(mode);
            let pooled = CheckConfig { seed: Some(seed.clone()), ..base.clone() };
            let off = CheckConfig { clause_pool: PoolScope::Off, ..base };

            // Cold pooled run: populates the seed's pool.
            let mut cold = ProofSession::new(&design.ctx, &design.ts, pooled.clone());
            let cold_res: Vec<_> = design.targets.iter().map(|t| cold.prove(&t.prop)).collect();
            // Warm pooled run: same seed, imports the cold run's glue.
            let mut warm = ProofSession::new(&design.ctx, &design.ts, pooled);
            // Pool-off control.
            let mut ctrl = ProofSession::new(&design.ctx, &design.ts, off);
            for (target, cold_r) in design.targets.iter().zip(&cold_res) {
                let what = format!("{}::{} ({mode:?})", bundle.name, target.name);
                let warm_r = warm.prove(&target.prop);
                let ctrl_r = ctrl.prove(&target.prop);
                assert_prove_eq(cold_r, &ctrl_r, &what);
                assert_prove_eq(&warm_r, &ctrl_r, &what);
            }
            imported_total += warm.stats().pool_clauses_imported;
            assert_eq!(ctrl.stats().pool_clauses_imported, 0, "{}: control leaked", bundle.name);
            assert_eq!(ctrl.stats().pool_clauses_exported, 0, "{}: control leaked", bundle.name);
        }
        assert!(imported_total > 0, "{mode:?}: warm sessions must actually replay pooled glue");
    }
}

/// BMC over the same three-way split — the base-direction (tag-guarded
/// verbatim) transport, including the clean-depth skip replay of warm
/// sessions.
#[test]
fn pooled_bmc_matches_pool_off_on_corpus() {
    for mode in [UnrollMode::Template, UnrollMode::DagWalk] {
        for bundle in genfv_designs::all_designs() {
            let design = bundle.prepare().expect("corpus designs prepare");
            let seed = SessionSeed::for_design(&design.ctx, &design.ts);
            let base = pooled_config(mode);
            let pooled = CheckConfig { seed: Some(seed.clone()), ..base.clone() };
            let off = CheckConfig { clause_pool: PoolScope::Off, ..base };

            let mut cold = ProofSession::new(&design.ctx, &design.ts, pooled.clone());
            let cold_res: Vec<_> =
                design.targets.iter().map(|t| cold.bmc_check(&t.prop, 8)).collect();
            let mut warm = ProofSession::new(&design.ctx, &design.ts, pooled);
            let mut ctrl = ProofSession::new(&design.ctx, &design.ts, off);
            for (target, cold_r) in design.targets.iter().zip(&cold_res) {
                let what = format!("{}::{} ({mode:?})", bundle.name, target.name);
                let warm_r = warm.bmc_check(&target.prop, 8);
                let ctrl_r = ctrl.bmc_check(&target.prop, 8);
                assert_bmc_eq(cold_r, &ctrl_r, &what);
                assert_bmc_eq(&warm_r, &ctrl_r, &what);
            }
        }
    }
}

/// BaseOnly scope (what the LLM-driven flows run) leaves the step
/// direction untouched: step-failure traces of a warm BaseOnly session
/// are *bit-identical* to a cold run's, not just class-equal — the
/// property the service differential relies on for lemma reproducibility.
#[test]
fn base_only_scope_reproduces_step_models_exactly() {
    for bundle in genfv_designs::all_designs() {
        let design = bundle.prepare().expect("corpus designs prepare");
        let seed = SessionSeed::for_design(&design.ctx, &design.ts);
        let base = pooled_config(UnrollMode::Template);
        let scoped = CheckConfig {
            seed: Some(seed.clone()),
            clause_pool: PoolScope::BaseOnly,
            ..base.clone()
        };
        let cold_ctrl = CheckConfig { clause_pool: PoolScope::Off, ..base };

        // Populate the seed's pool (base-direction entries).
        let mut cold = ProofSession::new(&design.ctx, &design.ts, scoped.clone());
        for t in &design.targets {
            let _ = cold.prove(&t.prop);
        }
        let mut warm = ProofSession::new(&design.ctx, &design.ts, scoped);
        let mut ctrl = ProofSession::new(&design.ctx, &design.ts, cold_ctrl);
        for target in &design.targets {
            let warm_r = warm.prove(&target.prop);
            let ctrl_r = ctrl.prove(&target.prop);
            let what = format!("{}::{}", bundle.name, target.name);
            assert_prove_eq(&warm_r, &ctrl_r, &what);
            if let (
                ProveResult::StepFailure { trace: tw, .. },
                ProveResult::StepFailure { trace: tc, .. },
            ) = (&warm_r, &ctrl_r)
            {
                assert_eq!(
                    tw.steps, tc.steps,
                    "BaseOnly warm start changed a step model on {what}"
                );
            }
        }
    }
}
