//! Differential suite: [`ProofSession`] answers must be identical to
//! rebuild-per-query (fresh-engine) runs across the whole designs corpus.
//!
//! The session engine (`genfv_mc::ProofSession`, one persistent solver and
//! one bit-blast per design, assumption-scoped queries) and the reference
//! engine (`genfv_mc::rebuild`, fresh unrollers and solvers per check)
//! must agree on every observable: verdict class, induction depth `k`,
//! counterexample cycle, and trace length. SAT models are not unique, so
//! per-signal trace *values* may differ between engines; everything the
//! flows branch on is pinned here.
//!
//! The flow-level test at the bottom runs the complete Flow-2 repair loop
//! (validation gauntlet, sharded parallel validation, Houdini, target
//! proofs) in both engine modes and requires identical verdicts and
//! identical accepted-lemma sets — the acceptance criterion for the
//! incremental-session work.

use genfv_core::{
    run_flow1, run_flow2, validate_batch, Candidate, FlowConfig, TargetOutcome, ValidateConfig,
};
use genfv_genai::{LanguageModel, ModelProfile, Prompt, SyntheticLlm};
use genfv_mc::{
    bmc_rebuild, prove_all_rebuild, prove_rebuild, BmcResult, CheckConfig, EngineMode, KInduction,
    ProofSession, ProveResult,
};
use genfv_sva::parse_assertions;

fn assert_bmc_eq(session: &BmcResult, rebuild: &BmcResult, what: &str) {
    match (session, rebuild) {
        (BmcResult::Clean { depth: a, .. }, BmcResult::Clean { depth: b, .. }) => {
            assert_eq!(a, b, "clean depth diverged on {what}");
        }
        (
            BmcResult::Falsified { at: a, trace: ta, .. },
            BmcResult::Falsified { at: b, trace: tb, .. },
        ) => {
            assert_eq!(a, b, "violation cycle diverged on {what}");
            assert_eq!(ta.steps.len(), tb.steps.len(), "trace length diverged on {what}");
        }
        (a, b) => panic!("BMC verdict diverged on {what}: session {a:?} vs rebuild {b:?}"),
    }
}

fn assert_prove_eq(session: &ProveResult, rebuild: &ProveResult, what: &str) {
    match (session, rebuild) {
        (ProveResult::Proven { k: a, .. }, ProveResult::Proven { k: b, .. }) => {
            assert_eq!(a, b, "proof depth diverged on {what}");
        }
        (
            ProveResult::Falsified { at: a, trace: ta, .. },
            ProveResult::Falsified { at: b, trace: tb, .. },
        ) => {
            assert_eq!(a, b, "violation cycle diverged on {what}");
            assert_eq!(ta.steps.len(), tb.steps.len(), "trace length diverged on {what}");
        }
        (
            ProveResult::StepFailure { k: a, trace: ta, .. },
            ProveResult::StepFailure { k: b, trace: tb, .. },
        ) => {
            assert_eq!(a, b, "step-failure depth diverged on {what}");
            assert_eq!(ta.steps.len(), tb.steps.len(), "step CEX length diverged on {what}");
        }
        (ProveResult::Unknown { reason: a, .. }, ProveResult::Unknown { reason: b, .. }) => {
            assert_eq!(a, b, "unknown reason diverged on {what}");
        }
        (a, b) => panic!("prove verdict diverged on {what}: session {a:?} vs rebuild {b:?}"),
    }
}

/// Every target of every corpus design: one persistent session per design
/// (frames and learnt clauses shared across its targets) versus fresh
/// engines per target.
#[test]
fn session_prove_matches_rebuild_on_corpus() {
    let config = CheckConfig { max_k: 4, ..Default::default() };
    let mut targets_checked = 0;
    for bundle in genfv_designs::all_designs() {
        let design = bundle.prepare().expect("corpus designs prepare");
        let mut session = ProofSession::new(&design.ctx, &design.ts, config.clone());
        for target in &design.targets {
            let s = session.prove(&target.prop);
            let r = prove_rebuild(&design.ctx, &design.ts, &target.prop, &[], &config);
            assert_prove_eq(&s, &r, &format!("{}::{}", bundle.name, target.name));
            targets_checked += 1;
        }
        assert_eq!(session.stats().bitblasts, 1, "{}: one bit-blast per design", bundle.name);
    }
    assert!(targets_checked >= 10, "the corpus should contribute real targets");
}

/// BMC over the same persistent-vs-fresh split.
#[test]
fn session_bmc_matches_rebuild_on_corpus() {
    let config = CheckConfig::default();
    for bundle in genfv_designs::all_designs() {
        let design = bundle.prepare().expect("corpus designs prepare");
        let mut session = ProofSession::new(&design.ctx, &design.ts, config.clone());
        for target in &design.targets {
            let s = session.bmc_check(&target.prop, 8);
            let r = bmc_rebuild(&design.ctx, &design.ts, &target.prop, &[], 8, &config);
            assert_bmc_eq(&s, &r, &format!("{}::{}", bundle.name, target.name));
        }
    }
}

/// The chained assume-guarantee batch (`prove_all`) on one session versus
/// the rebuild batch: identical per-property verdicts, so the incremental
/// chaining installs exactly the lemmas the rebuild chaining assumes.
#[test]
fn prove_all_matches_rebuild_on_corpus() {
    let config = CheckConfig { max_k: 4, ..Default::default() };
    for bundle in genfv_designs::all_designs() {
        let design = bundle.prepare().expect("corpus designs prepare");
        let props: Vec<_> = design.targets.iter().map(|t| t.prop.clone()).collect();
        let prover = KInduction::new(&design.ctx, &design.ts, config.clone());
        let s = prover.prove_all(&props, &[]);
        let r = prove_all_rebuild(&design.ctx, &design.ts, &props, &[], &config);
        assert_eq!(s.len(), r.len());
        for ((sr, rr), target) in s.iter().zip(&r).zip(&design.targets) {
            assert_prove_eq(sr, rr, &format!("{}::{}", bundle.name, target.name));
        }
    }
}

fn assert_outcome_eq(a: &TargetOutcome, b: &TargetOutcome, what: &str) {
    match (a, b) {
        (
            TargetOutcome::Proven { k: ka, lemmas_used: la },
            TargetOutcome::Proven { k: kb, lemmas_used: lb },
        ) => {
            assert_eq!(ka, kb, "proof depth diverged on {what}");
            assert_eq!(la, lb, "lemma count diverged on {what}");
        }
        (TargetOutcome::Falsified { at: aa }, TargetOutcome::Falsified { at: ab }) => {
            assert_eq!(aa, ab, "violation cycle diverged on {what}");
        }
        (
            TargetOutcome::StillUnproven { k: ka, .. },
            TargetOutcome::StillUnproven { k: kb, .. },
        ) => {
            assert_eq!(ka, kb, "final step depth diverged on {what}");
        }
        (TargetOutcome::Unknown { reason: ra }, TargetOutcome::Unknown { reason: rb }) => {
            assert_eq!(ra, rb, "unknown reason diverged on {what}");
        }
        (a, b) => panic!("flow outcome diverged on {what}: incremental {a:?} vs rebuild {b:?}"),
    }
}

/// The deterministic Flow-1 candidate pool of a design (the prompt
/// depends only on spec + RTL + targets, so both engine modes see the
/// byte-identical completion).
fn corpus_candidates(bundle: &genfv_designs::DesignBundle) -> Vec<Candidate> {
    let targets: Vec<String> = bundle.targets.iter().map(|(_, sva)| sva.clone()).collect();
    let prompt = Prompt::flow1(bundle.spec, bundle.rtl, &targets);
    let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 42);
    let completion = llm.complete(&prompt);
    parse_assertions(&completion.text)
        .into_iter()
        .enumerate()
        .map(|(i, assertion)| {
            let name = assertion.name.clone().unwrap_or_else(|| format!("candidate_{i}"));
            let text = genfv_sva::render_prop_body(&assertion.body);
            Candidate { name, text, assertion }
        })
        .collect()
}

/// The whole validation gauntlet (sharded parallel validation + Houdini)
/// over identical candidate pools: per-candidate outcomes — including the
/// exact `k` of every `ProvenInductive` and the exact cycle of every
/// `FalseByBmc` — must be equal in both engine modes.
#[test]
fn validate_batch_outcomes_identical_across_engines() {
    let incremental_cfg = ValidateConfig::default();
    let rebuild_cfg =
        ValidateConfig { engine: EngineMode::RebuildPerQuery, ..ValidateConfig::default() };
    let mut candidates_checked = 0;
    for bundle in genfv_designs::all_designs() {
        let design = bundle.prepare().expect("corpus designs prepare");
        let candidates = corpus_candidates(&bundle);
        let (acc_i, out_i) = validate_batch(&design, &[], &candidates, &incremental_cfg, true);
        let (acc_r, out_r) = validate_batch(&design, &[], &candidates, &rebuild_cfg, true);
        assert_eq!(acc_i, acc_r, "accepted sets diverged on {}", bundle.name);
        assert_eq!(out_i, out_r, "validation outcomes diverged on {}", bundle.name);
        candidates_checked += candidates.len();
    }
    assert!(candidates_checked >= 20, "the corpus should contribute real candidate pools");
}

/// Flow 1 end to end: its prompt carries no counterexample, so the two
/// engine modes run on byte-identical completions and must agree on
/// everything — target verdicts (with depths and lemma counts) and the
/// accepted-lemma list itself.
#[test]
fn flow1_identical_across_engines() {
    for bundle in genfv_designs::lemma_hungry_designs() {
        let incremental = run_flow1(
            bundle.prepare().expect("corpus designs prepare"),
            &mut SyntheticLlm::new(ModelProfile::GptFourTurbo, 42),
            &FlowConfig::default(),
        );
        let rebuild = run_flow1(
            bundle.prepare().expect("corpus designs prepare"),
            &mut SyntheticLlm::new(ModelProfile::GptFourTurbo, 42),
            &FlowConfig::default().with_engine(EngineMode::RebuildPerQuery),
        );
        assert_eq!(incremental.targets.len(), rebuild.targets.len());
        for (ti, tr) in incremental.targets.iter().zip(&rebuild.targets) {
            assert_eq!(ti.name, tr.name);
            assert_outcome_eq(&ti.outcome, &tr.outcome, &format!("{}::{}", bundle.name, ti.name));
        }
        let lemmas_i: Vec<&str> = incremental.lemmas.iter().map(|l| l.text.as_str()).collect();
        let lemmas_r: Vec<&str> = rebuild.lemmas.iter().map(|l| l.text.as_str()).collect();
        assert_eq!(lemmas_i, lemmas_r, "accepted lemmas diverged on {}", bundle.name);
        assert!(
            incremental.metrics.solver.bitblasts > 0,
            "incremental mode must report session reuse on {}",
            bundle.name
        );
    }
}

/// The full Flow-2 repair loop in both engine modes. Flow 2's prompts
/// embed induction-step counterexamples, and SAT models are not unique —
/// the two engines legitimately show the LLM different (equally valid)
/// CEXs, so the *candidate pools* may differ. What is semantically
/// determined, and pinned here, is the verdict: which targets end up
/// proven / falsified / unproven, and the exact cycle of any real
/// counterexample.
#[test]
fn flow2_verdict_classes_identical_across_engines() {
    for bundle in genfv_designs::lemma_hungry_designs() {
        let incremental = run_flow2(
            bundle.prepare().expect("corpus designs prepare"),
            &mut SyntheticLlm::new(ModelProfile::GptFourTurbo, 42),
            &FlowConfig::default(),
        );
        let rebuild = run_flow2(
            bundle.prepare().expect("corpus designs prepare"),
            &mut SyntheticLlm::new(ModelProfile::GptFourTurbo, 42),
            &FlowConfig::default().with_engine(EngineMode::RebuildPerQuery),
        );
        assert_eq!(incremental.targets.len(), rebuild.targets.len());
        assert_eq!(
            incremental.all_proven(),
            rebuild.all_proven(),
            "overall verdict diverged on {}",
            bundle.name
        );
        for (ti, tr) in incremental.targets.iter().zip(&rebuild.targets) {
            assert_eq!(ti.name, tr.name);
            let same_class = matches!(
                (&ti.outcome, &tr.outcome),
                (TargetOutcome::Proven { .. }, TargetOutcome::Proven { .. })
                    | (TargetOutcome::Falsified { .. }, TargetOutcome::Falsified { .. })
                    | (TargetOutcome::StillUnproven { .. }, TargetOutcome::StillUnproven { .. })
                    | (TargetOutcome::Unknown { .. }, TargetOutcome::Unknown { .. })
            );
            assert!(
                same_class,
                "verdict class diverged on {}::{}: incremental {:?} vs rebuild {:?}",
                bundle.name, ti.name, ti.outcome, tr.outcome
            );
            if let (TargetOutcome::Falsified { at: ai }, TargetOutcome::Falsified { at: ar }) =
                (&ti.outcome, &tr.outcome)
            {
                assert_eq!(ai, ar, "violation cycle diverged on {}::{}", bundle.name, ti.name);
            }
        }
        assert_eq!(
            rebuild.metrics.solver.solver_calls, 0,
            "rebuild mode must not touch the session counters on {}",
            bundle.name
        );
    }
}
