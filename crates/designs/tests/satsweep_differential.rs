//! Differential suite for the SAT-sweeping optimization level: turning
//! the sweep on (`OptLevel::SatSweep`, which is `Full` plus
//! `SatSweepPass`) must never change what the flows conclude.
//!
//! Every design is prepared twice — at the default `OptLevel::Full` (the
//! PR 7 pipeline, sweep off) and at `OptLevel::SatSweep` (sweep on) —
//! and driven through the same checks. The sweep's two merge kinds sit
//! in different soundness classes:
//!
//! * **combinational merges** are conditional on the environment
//!   constraints and never rewrite constraint positions, so on every
//!   constraint-satisfying trace the merged netlist is bit-identical to
//!   the unswept one: BMC verdicts, clean depths, and falsification
//!   cycles must be *equal*;
//! * **register-correspondence merges** substitute one register for a
//!   proven-lockstep twin. Reachable traces project identically onto
//!   the surviving observables (BMC stays equal), but the induction
//!   hypothesis is strengthened — unreachable step counterexamples where
//!   the twins disagree disappear — so a proof may close at a *smaller*
//!   k, or close where the unswept pipeline stalled, never the reverse.
//!
//! `assert_no_regression` encodes exactly that order, mirroring
//! `opt_differential.rs` one level up the pipeline.

use genfv_core::{
    run_baseline, run_flow2, FlowConfig, OptConfig, OptLevel, PreparedDesign, TargetOutcome,
};
use genfv_designs::DesignBundle;
use genfv_genai::{ModelProfile, SyntheticLlm};
use genfv_mc::{BmcResult, CheckConfig, ProofSession, ProveResult, UnrollMode};

/// The sweep-off side: the default pipeline (`OptLevel::Full`).
fn full_prep(bundle: &DesignBundle) -> PreparedDesign {
    bundle.prepare().expect("full prepare")
}

/// The sweep-on side: `Full` plus `SatSweepPass`.
fn sweep_prep(bundle: &DesignBundle) -> PreparedDesign {
    bundle
        .prepare_with(&OptConfig::default().with_level(OptLevel::SatSweep))
        .expect("sweep prepare")
}

fn cfg(mode: UnrollMode) -> CheckConfig {
    CheckConfig { max_k: 4, unroll_mode: mode, ..Default::default() }
}

/// Sweep-on vs sweep-off verdict discipline: equal, or improved in the
/// strengthening direction only.
fn assert_no_regression(base: &ProveResult, swept: &ProveResult, what: &str) {
    match (base, swept) {
        (ProveResult::Proven { k: kb, .. }, ProveResult::Proven { k: ko, .. }) => {
            assert!(ko <= kb, "SAT-sweeping raised the proof depth on {what}: {kb} -> {ko}");
        }
        (
            ProveResult::Falsified { at: a, trace: ta, .. },
            ProveResult::Falsified { at: b, trace: tb, .. },
        ) => {
            assert_eq!(a, b, "violation cycle diverged on {what}");
            assert_eq!(ta.steps.len(), tb.steps.len(), "trace length diverged on {what}");
        }
        // Strengthening: a stall without the sweep may close with it.
        (ProveResult::StepFailure { .. }, ProveResult::Proven { .. })
        | (ProveResult::Unknown { .. }, ProveResult::Proven { .. })
        | (ProveResult::StepFailure { .. }, ProveResult::StepFailure { .. })
        | (ProveResult::Unknown { .. }, ProveResult::Unknown { .. }) => {}
        (b, o) => panic!("verdict diverged on {what}: sweep-off {b:?} vs sweep-on {o:?}"),
    }
}

fn full_corpus() -> Vec<DesignBundle> {
    genfv_designs::all_designs().into_iter().chain(genfv_designs::datapath_designs()).collect()
}

/// Induction proofs across the whole corpus (datapath included), in both
/// unroll modes: the swept netlist must prove everything the unswept one
/// proves, at no greater depth, with identical counterexamples.
#[test]
fn swept_proofs_never_regress_on_corpus() {
    for mode in [UnrollMode::Template, UnrollMode::DagWalk] {
        for bundle in full_corpus() {
            let base = full_prep(&bundle);
            let swept = sweep_prep(&bundle);
            let mut base_session = ProofSession::new(&base.ctx, &base.ts, cfg(mode));
            let mut swept_session = ProofSession::new(&swept.ctx, &swept.ts, cfg(mode));
            for (bt, st) in base.targets.iter().zip(&swept.targets) {
                assert_eq!(bt.name, st.name);
                let b = base_session.prove(&bt.prop);
                let o = swept_session.prove(&st.prop);
                assert_no_regression(&b, &o, &format!("{}::{} ({mode:?})", bundle.name, bt.name));
            }
        }
    }
}

/// BMC is pure reachable-trace semantics. Combinational merges hold on
/// every constraint-satisfying frame and register merges are trace
/// bijections, so no strengthening is possible: clean depths and
/// falsification cycles must be *equal*.
#[test]
fn swept_bmc_is_identical_on_corpus() {
    for bundle in full_corpus() {
        let base = full_prep(&bundle);
        let swept = sweep_prep(&bundle);
        let mut base_session = ProofSession::new(&base.ctx, &base.ts, cfg(UnrollMode::Template));
        let mut swept_session = ProofSession::new(&swept.ctx, &swept.ts, cfg(UnrollMode::Template));
        for (bt, st) in base.targets.iter().zip(&swept.targets) {
            let what = format!("{}::{}", bundle.name, bt.name);
            let b = base_session.bmc_check(&bt.prop, 8);
            let o = swept_session.bmc_check(&st.prop, 8);
            match (&b, &o) {
                (BmcResult::Clean { depth: a, .. }, BmcResult::Clean { depth: c, .. }) => {
                    assert_eq!(a, c, "clean depth diverged on {what}");
                }
                (
                    BmcResult::Falsified { at: a, trace: ta, .. },
                    BmcResult::Falsified { at: c, trace: tc, .. },
                ) => {
                    assert_eq!(a, c, "violation cycle diverged on {what}");
                    assert_eq!(ta.steps.len(), tc.steps.len(), "trace length diverged on {what}");
                }
                (b, o) => panic!("BMC diverged on {what}: sweep-off {b:?} vs sweep-on {o:?}"),
            }
        }
    }
}

/// The observable a flow verdict rests on: verdict classes and the
/// deterministic cycle of a real falsification may not change, except in
/// the strengthening direction.
fn outcome_ok(base: &TargetOutcome, swept: &TargetOutcome, what: &str) {
    match (base, swept) {
        (TargetOutcome::Proven { .. }, TargetOutcome::Proven { .. }) => {}
        (TargetOutcome::Falsified { at: a }, TargetOutcome::Falsified { at: b }) => {
            assert_eq!(a, b, "falsification cycle diverged on {what}");
        }
        (TargetOutcome::StillUnproven { .. }, TargetOutcome::Proven { .. })
        | (TargetOutcome::Unknown { .. }, TargetOutcome::Proven { .. })
        | (TargetOutcome::StillUnproven { .. }, TargetOutcome::StillUnproven { .. })
        | (TargetOutcome::Unknown { .. }, TargetOutcome::Unknown { .. }) => {}
        (b, o) => panic!("flow outcome diverged on {what}: sweep-off {b:?} vs sweep-on {o:?}"),
    }
}

/// Plain k-induction (`run_baseline`) end to end over the full corpus,
/// with the sweep's counters surfacing through the flow report.
#[test]
fn baseline_flow_verdicts_never_regress_with_sweep() {
    for bundle in full_corpus() {
        let flow_cfg = FlowConfig::default();
        let base = run_baseline(&full_prep(&bundle), &flow_cfg);
        let swept = run_baseline(&sweep_prep(&bundle), &flow_cfg);
        assert_eq!(base.targets.len(), swept.targets.len());
        assert!(swept.opt.rounds >= 1, "{}: swept report carries opt stats", bundle.name);
        // The sweep's counters ride the same OptStats plumbing: a refuted
        // or proved pair anywhere shows up in the report, and the sweep-off
        // report never carries sweep counters.
        assert_eq!(
            base.opt.pairs_proved + base.opt.pairs_refuted + base.opt.nodes_merged,
            0,
            "{}: sweep-off report must not carry sweep counters",
            bundle.name
        );
        for (bt, st) in base.targets.iter().zip(&swept.targets) {
            assert_eq!(bt.name, st.name);
            outcome_ok(&bt.outcome, &st.outcome, &format!("{}::{}", bundle.name, bt.name));
        }
    }
}

/// Flow 2 (CEX-driven repair) on the lemma-hungry designs, in both
/// unroll modes: the full gauntlet over the swept netlist must reach
/// verdicts no worse than over the unswept one.
#[test]
fn flow2_verdicts_never_regress_with_sweep() {
    for mode in [UnrollMode::Template, UnrollMode::DagWalk] {
        for bundle in genfv_designs::lemma_hungry_designs() {
            let flow_cfg = FlowConfig::default().with_unroll_mode(mode);
            let base = run_flow2(
                full_prep(&bundle),
                &mut SyntheticLlm::new(ModelProfile::GptFourTurbo, 42),
                &flow_cfg,
            );
            let swept = run_flow2(
                sweep_prep(&bundle),
                &mut SyntheticLlm::new(ModelProfile::GptFourTurbo, 42),
                &flow_cfg,
            );
            assert_eq!(base.targets.len(), swept.targets.len());
            for (bt, st) in base.targets.iter().zip(&swept.targets) {
                assert_eq!(bt.name, st.name);
                outcome_ok(
                    &bt.outcome,
                    &st.outcome,
                    &format!("{}::{} ({mode:?})", bundle.name, bt.name),
                );
            }
        }
    }
}

/// The acceptance payoff, pinned where the issue demands it: on the
/// datapath designs the sweep's register-correspondence stage merges the
/// shadow accumulator into the multiplier register (`nodes_merged > 0`,
/// one state gone) and the per-frame CNF shrinks beyond what the PR 7
/// pipeline achieves — all within the per-pair conflict budget.
#[test]
fn sweep_pays_off_on_datapath_designs() {
    use genfv_ir::Template;
    let clauses = |p: &PreparedDesign| {
        let roots: Vec<_> = p.targets.iter().map(|t| t.prop.ok).collect();
        Template::build_with(&p.ctx, &p.ts, &roots).num_clauses()
    };
    for bundle in genfv_designs::datapath_designs() {
        let base = full_prep(&bundle);
        let swept = sweep_prep(&bundle);
        let stats = &swept.opt_stats;
        assert!(stats.nodes_merged > 0, "{}: sweep must merge on the datapath", bundle.name);
        assert!(stats.pairs_proved > 0, "{}: merges come from proved pairs", bundle.name);
        assert!(
            swept.ts.states().len() < base.ts.states().len(),
            "{}: register correspondence collapses the shadow register",
            bundle.name
        );
        let (cf, cs) = (clauses(&base), clauses(&swept));
        assert!(
            cs < cf,
            "{}: per-frame CNF must shrink beyond the PR 7 pipeline ({cf} -> {cs})",
            bundle.name
        );
        // Budget discipline: every miter is capped, so total conflicts
        // are bounded by (queries x per-pair budget).
        let queries = stats.pairs_proved + stats.pairs_refuted;
        let budget = genfv_ir::SatSweepConfig::default().conflict_budget;
        assert!(
            stats.sweep_conflicts <= queries.max(1) * budget,
            "{}: sweep conflicts exceed the budget envelope",
            bundle.name
        );
    }
}

/// Warm-capital isolation: the service keys its seed cache on the
/// *salted* layout fingerprint, so capital built at `OptLevel::SatSweep`
/// must never be served to a `Full` session over the same sources — even
/// for designs the sweep leaves byte-identical, where only the salt
/// separates the keys. On the datapath designs the layouts themselves
/// diverge (a register is merged away), so there the unsalted
/// cross-`matches` must fail too.
#[test]
fn satsweep_salt_isolates_session_seeds() {
    use genfv_mc::SessionSeed;
    for bundle in full_corpus() {
        let base = full_prep(&bundle);
        let swept = sweep_prep(&bundle);
        let base_key = SessionSeed::fingerprint(&base.ctx, &base.ts) ^ base.opt.level.salt();
        let swept_key = SessionSeed::fingerprint(&swept.ctx, &swept.ts) ^ swept.opt.level.salt();
        assert_ne!(base_key, swept_key, "{}: cache keys must differ", bundle.name);
        let base_seed = SessionSeed::for_design_salted(&base.ctx, &base.ts, base.opt.level.salt());
        let swept_seed =
            SessionSeed::for_design_salted(&swept.ctx, &swept.ts, swept.opt.level.salt());
        assert!(base_seed.matches(&base.ctx, &base.ts));
        assert!(swept_seed.matches(&swept.ctx, &swept.ts));
    }
    for bundle in genfv_designs::datapath_designs() {
        let base = full_prep(&bundle);
        let swept = sweep_prep(&bundle);
        let base_seed = SessionSeed::for_design_salted(&base.ctx, &base.ts, base.opt.level.salt());
        let swept_seed =
            SessionSeed::for_design_salted(&swept.ctx, &swept.ts, swept.opt.level.salt());
        assert!(!base_seed.matches(&swept.ctx, &swept.ts), "{}", bundle.name);
        assert!(!swept_seed.matches(&base.ctx, &base.ts), "{}", bundle.name);
    }
}
