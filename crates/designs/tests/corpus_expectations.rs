//! Corpus self-tests: every shipped design must parse, elaborate,
//! simulate sanely, and behave under plain k-induction exactly as its
//! declared [`Expectation`] says. The lemma-hungry designs must then be
//! repairable by Flow 2 with the strongest model profile — this is the
//! repo's executable statement of the paper's Section-V claim.

use genfv_core::{run_baseline, run_flow2, FlowConfig, TargetOutcome};
use genfv_designs::{all_designs, by_name, lemma_hungry_designs, Expectation};
use genfv_genai::{ModelProfile, SyntheticLlm};
use genfv_mc::CheckConfig;

fn flow_config() -> FlowConfig {
    FlowConfig {
        check: CheckConfig { max_k: 3, ..Default::default() },
        max_iterations: 4,
        ..Default::default()
    }
}

#[test]
fn corpus_is_well_formed() {
    let corpus = all_designs();
    assert!(corpus.len() >= 12, "corpus size: {}", corpus.len());
    let mut names: Vec<&str> = corpus.iter().map(|d| d.name).collect();
    names.sort_unstable();
    let mut dedup = names.clone();
    dedup.dedup();
    assert_eq!(names, dedup, "names must be unique");
    for d in &corpus {
        assert!(!d.targets.is_empty(), "{}: no targets", d.name);
        assert!(!d.spec.is_empty(), "{}: no spec", d.name);
        let prepared = d.prepare().unwrap_or_else(|e| panic!("{}: {e}", d.name));
        assert!(!prepared.ts.states().is_empty(), "{}: no state registers", d.name);
    }
}

#[test]
fn lookup_by_name() {
    assert!(by_name("sync_counters").is_some());
    assert!(by_name("hamming74").is_some());
    assert!(by_name("mul_distrib").is_some(), "datapath designs resolve by name");
    assert!(by_name("nonexistent").is_none());
}

/// The datapath bundles live outside the flow corpus (see
/// `genfv_designs::datapath_designs`) but carry the same contract:
/// well-formed, and provable unaided exactly as declared.
#[test]
fn datapath_expectations_hold() {
    for d in genfv_designs::datapath_designs() {
        assert_eq!(d.expectation, Expectation::ProvesUnaided, "{}", d.name);
        let prepared = d.prepare().unwrap_or_else(|e| panic!("{}: {e}", d.name));
        let report = run_baseline(&prepared, &flow_config());
        assert!(
            report.all_proven(),
            "{} should prove unaided:\n{}",
            d.name,
            genfv_core::summarize_targets(&report)
        );
    }
}

#[test]
fn expectations_hold_under_plain_induction() {
    for d in all_designs() {
        let prepared = d.prepare().unwrap();
        let report = run_baseline(&prepared, &flow_config());
        match d.expectation {
            Expectation::ProvesUnaided => {
                assert!(
                    report.all_proven(),
                    "{} should prove unaided:\n{}",
                    d.name,
                    genfv_core::summarize_targets(&report)
                );
            }
            Expectation::NeedsLemmas => {
                assert!(
                    report
                        .targets
                        .iter()
                        .any(|t| matches!(t.outcome, TargetOutcome::StillUnproven { .. })),
                    "{} should have a step failure:\n{}",
                    d.name,
                    genfv_core::summarize_targets(&report)
                );
                // And no target may be actually false.
                assert!(
                    !report
                        .targets
                        .iter()
                        .any(|t| matches!(t.outcome, TargetOutcome::Falsified { .. })),
                    "{}: target falsified, expectation wrong",
                    d.name
                );
            }
            Expectation::HasRealBug => {
                assert!(
                    report
                        .targets
                        .iter()
                        .any(|t| matches!(t.outcome, TargetOutcome::Falsified { .. })),
                    "{} should be falsified:\n{}",
                    d.name,
                    genfv_core::summarize_targets(&report)
                );
            }
        }
    }
}

#[test]
fn flow2_with_strong_model_repairs_every_lemma_hungry_design() {
    for d in lemma_hungry_designs() {
        let prepared = d.prepare().unwrap();
        let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 0xFEED);
        let report = run_flow2(prepared, &mut llm, &flow_config());
        assert!(
            report.all_proven(),
            "{}: flow2 with gpt-4-turbo must close all targets\n{}\nevents:\n{}",
            d.name,
            genfv_core::summarize_targets(&report),
            genfv_core::render_events(&report)
        );
        assert!(report.metrics.lemmas_accepted >= 1, "{}: no lemmas used?", d.name);
    }
}
