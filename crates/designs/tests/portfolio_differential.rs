//! Differential suite: portfolio-backed [`ProofSession`]s must answer
//! exactly like single-solver sessions across the whole designs corpus.
//!
//! Every portfolio worker decides the *same formula* (a byte-identical
//! clone of the loaded clause database), so SAT/UNSAT answers are
//! interchangeable and every observable the flows branch on — verdict
//! class, induction depth `k`, counterexample cycle, trace length — must
//! be identical to the single-solver run. SAT models are not unique, so
//! per-signal trace *values* may legitimately differ; trace shape and the
//! violation cycle (checked against the single-solver oracle) pin CEX
//! validity the same way the engine differential suite does.
//!
//! The determinism tests pin the second half of the subsystem's contract:
//! with the deterministic ladder discipline and fixed seeds, whole runs —
//! winner statistics included — are bit-reproducible.

use genfv_mc::{BmcResult, CheckConfig, PortfolioConfig, ProofSession, ProveResult};

/// A portfolio aggressive enough to race real queries on corpus-sized
/// designs: tiny probe, small first epoch, three workers.
fn racy_portfolio() -> PortfolioConfig {
    PortfolioConfig {
        workers: 3,
        probe_conflicts: Some(16),
        epoch_start: 64,
        ..PortfolioConfig::default()
    }
}

fn portfolio_check_config() -> CheckConfig {
    CheckConfig { max_k: 4, portfolio: Some(racy_portfolio()), ..Default::default() }
}

fn assert_prove_eq(portfolio: &ProveResult, single: &ProveResult, what: &str) {
    match (portfolio, single) {
        (ProveResult::Proven { k: a, .. }, ProveResult::Proven { k: b, .. }) => {
            assert_eq!(a, b, "proof depth diverged on {what}");
        }
        (
            ProveResult::Falsified { at: a, trace: ta, .. },
            ProveResult::Falsified { at: b, trace: tb, .. },
        ) => {
            assert_eq!(a, b, "violation cycle diverged on {what}");
            assert_eq!(ta.steps.len(), tb.steps.len(), "trace length diverged on {what}");
            assert_eq!(ta.steps.len(), *a + 1, "CEX must span reset..violation on {what}");
            assert!(
                ta.steps.iter().all(|s| !s.values.is_empty()),
                "portfolio CEX must carry signal values on {what}"
            );
        }
        (
            ProveResult::StepFailure { k: a, trace: ta, .. },
            ProveResult::StepFailure { k: b, trace: tb, .. },
        ) => {
            assert_eq!(a, b, "step-failure depth diverged on {what}");
            assert_eq!(ta.steps.len(), tb.steps.len(), "step CEX length diverged on {what}");
        }
        (a, b) => panic!("verdict diverged on {what}: portfolio {a:?} vs single {b:?}"),
    }
}

/// Every target of every corpus design: one portfolio-backed session per
/// design versus one single-solver session per design.
#[test]
fn portfolio_prove_matches_single_solver_on_corpus() {
    let single_cfg = CheckConfig { max_k: 4, ..Default::default() };
    let mut targets_checked = 0;
    for bundle in genfv_designs::all_designs() {
        let design = bundle.prepare().expect("corpus designs prepare");
        let mut raced = ProofSession::new(&design.ctx, &design.ts, portfolio_check_config());
        let mut single = ProofSession::new(&design.ctx, &design.ts, single_cfg.clone());
        for target in &design.targets {
            let p = raced.prove(&target.prop);
            let s = single.prove(&target.prop);
            assert_prove_eq(&p, &s, &format!("{}::{}", bundle.name, target.name));
            targets_checked += 1;
        }
        assert_eq!(
            raced.stats().bitblasts,
            1,
            "{}: racing must never re-bit-blast (clause-clone reuse)",
            bundle.name
        );
    }
    assert!(targets_checked >= 10, "the corpus should contribute real targets");
}

/// BMC over the same split: identical clean depths and violation cycles.
#[test]
fn portfolio_bmc_matches_single_solver_on_corpus() {
    let single_cfg = CheckConfig::default();
    for bundle in genfv_designs::all_designs() {
        let design = bundle.prepare().expect("corpus designs prepare");
        let mut raced = ProofSession::new(
            &design.ctx,
            &design.ts,
            CheckConfig { portfolio: Some(racy_portfolio()), ..Default::default() },
        );
        let mut single = ProofSession::new(&design.ctx, &design.ts, single_cfg.clone());
        for target in &design.targets {
            let p = raced.bmc_check(&target.prop, 8);
            let s = single.bmc_check(&target.prop, 8);
            match (p, s) {
                (BmcResult::Clean { depth: a, .. }, BmcResult::Clean { depth: b, .. }) => {
                    assert_eq!(a, b, "clean depth diverged on {}::{}", bundle.name, target.name);
                }
                (
                    BmcResult::Falsified { at: a, trace: ta, .. },
                    BmcResult::Falsified { at: b, trace: tb, .. },
                ) => {
                    assert_eq!(a, b, "cycle diverged on {}::{}", bundle.name, target.name);
                    assert_eq!(ta.steps.len(), tb.steps.len());
                }
                (a, b) => {
                    panic!("BMC diverged on {}::{}: {a:?} vs {b:?}", bundle.name, target.name)
                }
            }
        }
    }
}

/// Fixed seeds must reproduce whole portfolio runs bit for bit — verdict,
/// reuse counters, race counters, per-query efforts. This is the
/// "determinism of reported stats" contract of the deterministic ladder:
/// winner selection is a pure function of the worker configurations, so
/// repeated runs cannot drift even though races span multiple solvers.
#[test]
fn portfolio_runs_are_deterministic_per_seed() {
    for bundle in [
        genfv_designs::by_name("fifo_counters").expect("exists"),
        genfv_designs::by_name("sync_counters_16").expect("exists"),
    ] {
        let design = bundle.prepare().expect("corpus designs prepare");
        let run = || {
            let mut session = ProofSession::new(&design.ctx, &design.ts, portfolio_check_config());
            let verdicts: Vec<String> = design
                .targets
                .iter()
                .map(|t| format!("{:?}", std::mem::discriminant(&session.prove(&t.prop))))
                .collect();
            let st = *session.stats();
            (
                verdicts,
                st.solver_calls,
                st.conflicts,
                st.decisions,
                st.propagations,
                st.portfolio_races,
                st.portfolio_glue_shared,
                st.last_query_conflicts,
            )
        };
        assert_eq!(run(), run(), "{}: fixed seeds must reproduce runs exactly", bundle.name);
    }
}

/// Changing the master seed may legitimately change race outcomes but
/// never verdicts: every worker decides the same formula.
#[test]
fn portfolio_seeds_change_stats_not_verdicts() {
    let bundle = genfv_designs::by_name("fifo_counters").expect("exists");
    let design = bundle.prepare().expect("corpus designs prepare");
    let run = |seed: u64| {
        let portfolio = PortfolioConfig { seed, ..racy_portfolio() };
        let mut session = ProofSession::new(
            &design.ctx,
            &design.ts,
            CheckConfig { max_k: 4, portfolio: Some(portfolio), ..Default::default() },
        );
        design
            .targets
            .iter()
            .map(|t| format!("{:?}", std::mem::discriminant(&session.prove(&t.prop))))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(7), run(99), "verdicts must be seed-independent");
}
