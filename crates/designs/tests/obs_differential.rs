//! Differential suite for `genfv-obs`: tracing must be reproducible and
//! must cost nothing when disabled.
//!
//! * **Determinism** — two identical runs under
//!   [`ObsConfig::Deterministic`] (logical clock) must produce
//!   byte-identical event streams: same span names, same nesting, same
//!   tick timestamps. Pinned in *both* unroll modes, since template
//!   stamping and the DAG walk take different extension paths and each
//!   must be individually reproducible.
//! * **Zero-cost when off** — a corpus sweep with the default disabled
//!   handle must not record a single trace event. The global
//!   [`events_recorded_total`] counter sits behind the one branch every
//!   span costs, so it staying flat proves the disabled path never
//!   reaches the recorder (and therefore never allocates a trace
//!   buffer). The strict wall-clock overhead gate lives in the
//!   `e14_obs` bench, where warmup and repetition make timing
//!   meaningful.

use genfv_core::{run_baseline, FlowConfig};
use genfv_mc::{CheckConfig, UnrollMode};
use genfv_obs::{Obs, ObsConfig, Phase, TraceEvent};

fn flow_config(mode: UnrollMode, obs: Obs) -> FlowConfig {
    FlowConfig {
        check: CheckConfig { max_k: 4, unroll_mode: mode, ..Default::default() },
        ..Default::default()
    }
    .with_obs(obs)
}

/// One deterministic-obs corpus sweep: returns every design's drained
/// event stream.
fn traced_sweep(mode: UnrollMode) -> Vec<(String, Vec<TraceEvent>)> {
    genfv_designs::all_designs()
        .iter()
        .map(|bundle| {
            let design = bundle.prepare().expect("corpus designs prepare");
            let obs = Obs::new(ObsConfig::Deterministic);
            let report = run_baseline(&design, &flow_config(mode, obs.clone()));
            assert!(!report.targets.is_empty());
            (design.name.clone(), obs.take_events())
        })
        .collect()
}

#[test]
fn deterministic_trace_shape_is_pinned_across_runs() {
    for mode in [UnrollMode::Template, UnrollMode::DagWalk] {
        let a = traced_sweep(mode);
        let b = traced_sweep(mode);
        assert_eq!(a.len(), b.len());
        for ((name_a, ev_a), (name_b, ev_b)) in a.iter().zip(&b) {
            assert_eq!(name_a, name_b);
            assert_eq!(
                ev_a, ev_b,
                "span tree diverged across identical runs on `{name_a}` ({mode:?})"
            );
        }
    }
}

#[test]
fn deterministic_trace_reaches_solve_depth_and_balances() {
    let design = genfv_designs::all_designs()
        .first()
        .expect("corpus is non-empty")
        .prepare()
        .expect("prepares");
    let obs = Obs::new(ObsConfig::Deterministic);
    run_baseline(&design, &flow_config(UnrollMode::Template, obs.clone()));
    let report = obs.report().expect("enabled handle yields a report");

    let json = report.chrome_json();
    let check = genfv_obs::validate_chrome_trace(&json).expect("valid Chrome trace JSON");
    assert!(check.balanced);
    assert!(
        check.depth_of_prefix("solve.").is_some(),
        "trace must reach individual solve calls: {json}"
    );
    assert!(check.depth_of_prefix("flow.baseline").is_some());

    // The logical clock makes the tree renderer stable too (counts, no
    // wall times) — spot-check the roots it reports.
    let tree = report.render_tree();
    assert!(tree.contains("flow.baseline"), "{tree}");
    assert!(tree.contains("solve.step"), "{tree}");
}

#[test]
fn off_and_deterministic_modes_agree_on_verdicts() {
    // Recording a trace must never change what the flow concludes.
    for bundle in genfv_designs::all_designs() {
        let design = bundle.prepare().expect("corpus designs prepare");
        let plain = run_baseline(&design, &flow_config(UnrollMode::Template, Obs::off()));
        let traced = run_baseline(
            &design,
            &flow_config(UnrollMode::Template, Obs::new(ObsConfig::Deterministic)),
        );
        assert_eq!(plain.targets.len(), traced.targets.len());
        for (p, t) in plain.targets.iter().zip(&traced.targets) {
            assert_eq!(
                std::mem::discriminant(&p.outcome),
                std::mem::discriminant(&t.outcome),
                "verdict class diverged under tracing on {}/{}",
                design.name,
                p.name
            );
        }
        assert_eq!(
            plain.metrics.solver.solver_calls, traced.metrics.solver.solver_calls,
            "solver call count diverged under tracing on {}",
            design.name
        );
    }
}

#[test]
fn deterministic_events_use_the_logical_clock() {
    let design = genfv_designs::all_designs()
        .first()
        .expect("corpus is non-empty")
        .prepare()
        .expect("prepares");
    let obs = Obs::new(ObsConfig::Deterministic);
    run_baseline(&design, &flow_config(UnrollMode::Template, obs.clone()));
    let events = obs.take_events();
    assert!(!events.is_empty());
    // Logical timestamps are tick-counter values — strictly increasing
    // (`now_us` probes also consume ticks, so they need not be
    // contiguous) and far below any wall-clock µs epoch reading.
    for pair in events.windows(2) {
        assert!(pair[0].ts < pair[1].ts, "tick clock not strictly increasing: {pair:?}");
    }
    let span = events.last().expect("non-empty").ts - events[0].ts;
    assert!(span < 1_000_000, "timestamps look like wall time, not ticks: span {span}");
    assert!(events.iter().any(|e| e.phase == Phase::Begin && e.name.starts_with("solve.")));
}
