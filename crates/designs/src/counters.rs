//! Counter designs (the first half of the paper's evaluation corpus).

use crate::{DesignBundle, Expectation};

/// The paper's Listing 1 verbatim (32-bit synchronized counters) with the
/// Listing-2 target property. The induction step fails without the
/// Listing-3 helper — the central example of the paper.
pub fn sync_counters() -> DesignBundle {
    DesignBundle {
        name: "sync_counters",
        rtl: r#"
module sync_counters (input clk, rst, output logic [31:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 32'b0;
      count2 <= 32'b0;
    end else begin
      count1++;
      count2++;
    end
  end
endmodule
"#,
        spec: "Two synchronized 32-bit counters. Both reset to zero and increment together \
               every cycle, so their values are always equal; in particular, whenever count1 \
               is all ones, count2 must be all ones as well.",
        targets: vec![("equal_count".to_string(), "&count1 |-> &count2".to_string())],
        expectation: Expectation::NeedsLemmas,
    }
}

/// A narrower (16-bit) variant used where SAT effort matters in sweeps.
pub fn sync_counters_16() -> DesignBundle {
    DesignBundle {
        name: "sync_counters_16",
        rtl: r#"
module sync_counters_16 (input clk, rst, output logic [15:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 16'b0;
      count2 <= 16'b0;
    end else begin
      count1++;
      count2++;
    end
  end
endmodule
"#,
        spec: "Two synchronized 16-bit counters incrementing in lockstep from a common reset.",
        targets: vec![("equal_count".to_string(), "&count1 |-> &count2".to_string())],
        expectation: Expectation::NeedsLemmas,
    }
}

/// Counters separated by a constant offset: the needed lemma is an offset
/// relation rather than plain equality.
pub fn offset_counters() -> DesignBundle {
    DesignBundle {
        name: "offset_counters",
        rtl: r#"
module offset_counters (input clk, rst, output logic [15:0] lead, trail);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      lead  <= 16'd5;
      trail <= 16'd0;
    end else begin
      lead  <= lead + 16'd1;
      trail <= trail + 16'd1;
    end
  end
endmodule
"#,
        spec: "Two counters where `lead` starts five ahead of `trail` and both increment \
               every cycle; the distance stays exactly five forever.",
        targets: vec![(
            // Not inductive alone (a state with lead = trail = 0xFFFE is
            // spuriously admissible); needs the offset lemma
            // `(lead - trail) == 5`.
            "never_both_full".to_string(),
            "&lead |-> !(&trail)".to_string(),
        )],
        expectation: Expectation::NeedsLemmas,
    }
}

/// Modulo-N counter: the target needs the range bound as a lemma.
pub fn modn_counter() -> DesignBundle {
    DesignBundle {
        name: "modn_counter",
        rtl: r#"
module modn_counter (input clk, rst, output logic [7:0] cnt);
  always_ff @(posedge clk) begin
    if (rst) cnt <= '0;
    else if (cnt == 8'd9) cnt <= '0;
    else cnt <= cnt + 8'd1;
  end
endmodule
"#,
        spec: "A decade counter: counts 0 through 9 and wraps back to 0. The value never \
               reaches 10 or beyond.",
        targets: vec![("never_fifteen".to_string(), "cnt != 8'd15".to_string())],
        expectation: Expectation::NeedsLemmas,
    }
}

/// Up/down counter with saturation; the bounds are individually inductive.
pub fn updown_counter() -> DesignBundle {
    DesignBundle {
        name: "updown_counter",
        rtl: r#"
module updown_counter (input clk, rst, input up, down, output logic [7:0] level);
  always_ff @(posedge clk) begin
    if (rst) level <= 8'd100;
    else if (up && !down && level != 8'd200) level <= level + 8'd1;
    else if (down && !up && level != 8'd0) level <= level - 8'd1;
  end
endmodule
"#,
        spec: "A level meter initialised to 100 that moves up or down by one inside the \
               saturation bounds 0 and 200; it can never exceed 200.",
        targets: vec![("bounded_above".to_string(), "level <= 8'd200".to_string())],
        expectation: Expectation::ProvesUnaided,
    }
}

/// Binary counter with a registered Gray-code shadow; the target property
/// (at most one Gray bit flips per cycle) proves at k=2 unaided, and at
/// k=1 with the functional lemma `gray == bin ^ (bin >> 1)`.
pub fn gray_counter() -> DesignBundle {
    DesignBundle {
        name: "gray_counter",
        rtl: r#"
module gray_counter (input clk, rst, output logic [7:0] bin, gray);
  always_ff @(posedge clk) begin
    if (rst) begin
      bin  <= '0;
      gray <= '0;
    end else begin
      bin  <= bin + 8'd1;
      gray <= (bin + 8'd1) ^ ((bin + 8'd1) >> 1);
    end
  end
endmodule
"#,
        spec: "A binary counter with a Gray-code shadow register: gray always equals \
               bin XOR (bin >> 1), so consecutive gray values differ in exactly one bit.",
        targets: vec![(
            // One Gray bit flips per cycle.
            "one_bit_per_step".to_string(),
            "$countones(gray ^ $past(gray)) <= 1 || $past(rst)".to_string(),
        )],
        // gray is a pure function of the previous bin, so consistency is
        // re-established after one transition: k=2 closes unaided, and the
        // functional lemma `gray == bin ^ (bin >> 1)` lowers it to k=1.
        expectation: Expectation::ProvesUnaided,
    }
}

/// A deliberately broken pair of counters (reachable divergence): flows
/// must report the bug, not loop on lemma generation.
pub fn desync_counters() -> DesignBundle {
    DesignBundle {
        name: "desync_counters",
        rtl: r#"
module desync_counters (input clk, rst, output logic [7:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 8'b0;
      count2 <= 8'b0;
    end else begin
      count1 <= count1 + 8'd1;
      count2 <= count2 + 8'd2;
    end
  end
endmodule
"#,
        spec: "Two counters that are supposed to stay equal (they do not: the second \
               increments by two — a seeded bug).",
        targets: vec![("lockstep".to_string(), "count1 == count2".to_string())],
        expectation: Expectation::HasRealBug,
    }
}
