//! # genfv-designs — the evaluation design corpus
//!
//! The paper evaluates its flows on "counters and ECC" designs. This crate
//! ships a corpus of nineteen RTL designs in the `genfv-hdl` subset, each
//! bundled with the natural-language specification the Flow-1 prompt needs
//! and the target properties the flows must prove:
//!
//! * **counters** — the paper's Listing-1 synchronized counters (32- and
//!   16-bit), constant-offset counters, a modulo-N counter, a saturating
//!   up/down counter, a Gray-code counter, and a deliberately broken pair;
//! * **shift registers** — a one-hot ring counter, an LFSR, twin shift
//!   registers;
//! * **ECC** — a parity-protected pipeline, a Hamming(7,4) corrector, and
//!   a Hamming(8,4) SEC-DED pipeline;
//! * **FIFO** — pointer/occupancy control logic;
//! * **control** — credit-based flow control, a registered divider with
//!   Euclidean-identity checks, a watchdog timer, and a token-passing
//!   arbiter.
//!
//! Each bundle declares an [`Expectation`] describing its role in the
//! experiments: proves unaided, needs LLM-generated lemmas, or contains a
//! real (seeded) bug.
//!
//! ```
//! let corpus = genfv_designs::all_designs();
//! assert!(corpus.iter().any(|d| d.name == "sync_counters"));
//! let d = genfv_designs::by_name("hamming74").unwrap();
//! assert!(d.rtl.contains("module hamming74"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod control;
pub mod counters;
pub mod datapath;
pub mod ecc;
pub mod fifo;
pub mod shift;

/// How a design is expected to behave under plain k-induction (small k,
/// no lemmas) — drives the experiment harness and the corpus self-tests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Expectation {
    /// Every target proves with plain k-induction at small k.
    ProvesUnaided,
    /// At least one target fails its induction step until helper lemmas
    /// are supplied (the paper's core scenario).
    NeedsLemmas,
    /// A target has a reachable counterexample (seeded bug).
    HasRealBug,
}

/// An RTL design plus its specification and verification targets.
#[derive(Clone, Debug)]
pub struct DesignBundle {
    /// Unique corpus name.
    pub name: &'static str,
    /// RTL source in the `genfv-hdl` subset.
    pub rtl: &'static str,
    /// Natural-language specification (Flow-1 prompt input).
    pub spec: &'static str,
    /// `(name, sva)` target properties.
    pub targets: Vec<(String, String)>,
    /// Expected behaviour under plain induction.
    pub expectation: Expectation,
}

impl DesignBundle {
    /// Prepares the design for the `genfv-core` flows.
    ///
    /// # Errors
    /// Propagates parse/elaborate/compile failures (none occur for the
    /// shipped corpus; the error path serves downstream users).
    pub fn prepare(&self) -> Result<genfv_core::PreparedDesign, genfv_core::Error> {
        genfv_core::PreparedDesign::new(self.name, self.rtl, self.spec, &self.targets)
    }

    /// Like [`DesignBundle::prepare`] but with an explicit optimization
    /// configuration — `OptLevel::None` is the differential baseline the
    /// opt suites compare against.
    ///
    /// # Errors
    /// Same as [`DesignBundle::prepare`].
    pub fn prepare_with(
        &self,
        opt: &genfv_core::OptConfig,
    ) -> Result<genfv_core::PreparedDesign, genfv_core::Error> {
        genfv_core::PreparedDesign::with_opt(self.name, self.rtl, self.spec, &self.targets, opt)
    }
}

/// The complete flow corpus, in a stable order.
///
/// The [`datapath_designs`] bundles are kept separate: their multiplier
/// cones make candidate-validation workloads (the corpus-wide Houdini
/// and session differential suites re-validate whole candidate pools per
/// design) an order of magnitude more expensive without adding flow
/// coverage — they exist to exercise *encoding*, and the encoding
/// suites pull them in explicitly.
pub fn all_designs() -> Vec<DesignBundle> {
    vec![
        counters::sync_counters(),
        counters::sync_counters_16(),
        counters::offset_counters(),
        counters::modn_counter(),
        counters::updown_counter(),
        counters::gray_counter(),
        counters::desync_counters(),
        shift::ring_counter(),
        shift::lfsr(),
        shift::twin_shift(),
        ecc::parity_pipe(),
        ecc::hamming74(),
        ecc::secded84(),
        ecc::ecc_counter(),
        fifo::fifo_counters(),
        control::credit_flow(),
        control::div_checker(),
        control::watchdog(),
        control::token_arbiter(),
    ]
}

/// Arithmetic datapath checkers (registered multiplier identities):
/// encoding-bound induction workloads for the template-unrolling bench
/// and differential suites.
pub fn datapath_designs() -> Vec<DesignBundle> {
    vec![datapath::mul_incr(), datapath::mul_distrib()]
}

/// Looks a design up by name (flow corpus plus datapath designs).
pub fn by_name(name: &str) -> Option<DesignBundle> {
    all_designs().into_iter().chain(datapath_designs()).find(|d| d.name == name)
}

/// The designs whose targets require helper lemmas (the paper's headline
/// scenario set).
pub fn lemma_hungry_designs() -> Vec<DesignBundle> {
    all_designs().into_iter().filter(|d| d.expectation == Expectation::NeedsLemmas).collect()
}
