//! Control-logic designs: credit-based flow control, a watchdog timer,
//! and a token-passing arbiter.

use crate::{DesignBundle, Expectation};

/// Credit-based flow control: credits move between the sender and the
/// receiver but their sum is conserved. The sender-side bound is not
/// inductive alone (an unreachable state with 200 sender credits keeps
/// circulating them); it needs the conservation lemma
/// `(snd + rcv) == TOTAL`.
pub fn credit_flow() -> DesignBundle {
    DesignBundle {
        name: "credit_flow",
        rtl: r#"
module credit_flow (input clk, rst, input take, give,
                    output logic [7:0] snd, rcv);
  logic do_take, do_give;
  assign do_take = take && snd != 8'd0;
  assign do_give = give && rcv != 8'd0;
  always_ff @(posedge clk) begin
    if (rst) begin
      snd <= 8'd8;
      rcv <= 8'd0;
    end else begin
      snd <= snd - (do_take ? 8'd1 : 8'd0) + (do_give ? 8'd1 : 8'd0);
      rcv <= rcv + (do_take ? 8'd1 : 8'd0) - (do_give ? 8'd1 : 8'd0);
    end
  end
endmodule
"#,
        spec: "Credit-based flow control with eight credits in flight: taking a credit \
               moves it from the sender pool to the receiver pool and giving one moves it \
               back, so the two pools always sum to exactly eight and neither can exceed \
               eight.",
        targets: vec![("sender_bounded".to_string(), "snd <= 8'd8".to_string())],
        expectation: Expectation::NeedsLemmas,
    }
}

/// Watchdog timer with saturation and a sticky alarm; the alarm-accuracy
/// property re-converges one cycle after any state, so k=2 closes it.
pub fn watchdog() -> DesignBundle {
    DesignBundle {
        name: "watchdog",
        rtl: r#"
module watchdog (input clk, rst, input kick, output logic [7:0] count, output logic alarm);
  always_ff @(posedge clk) begin
    if (rst) begin
      count <= '0;
      alarm <= 1'b0;
    end else if (kick) begin
      count <= '0;
    end else if (count != 8'd100) begin
      count <= count + 8'd1;
      alarm <= alarm || (count == 8'd99);
    end
  end
endmodule
"#,
        spec: "A watchdog that counts up to 100 unless kicked; the counter saturates at \
               100 and the sticky alarm latches when the timeout is reached. The counter \
               never exceeds 100.",
        targets: vec![("count_bounded".to_string(), "count <= 8'd100".to_string())],
        expectation: Expectation::ProvesUnaided,
    }
}

/// Registered divider checked against the Euclidean identity
/// `q*b + r == a` — exercises the restoring-division and multiplier
/// circuits of the bit-blaster inside an induction proof.
pub fn div_checker() -> DesignBundle {
    DesignBundle {
        name: "div_checker",
        rtl: r#"
module div_checker (input clk, rst, input [5:0] num, den,
                    output logic [5:0] q, r, num_q, den_q);
  always_ff @(posedge clk) begin
    if (rst) begin
      q <= '0;
      r <= '0;
      num_q <= '0;
      den_q <= '0;
    end else begin
      q <= num / den;
      r <= num % den;
      num_q <= num;
      den_q <= den;
    end
  end
endmodule
"#,
        spec: "A registered unsigned divider: every cycle it latches the quotient and \
               remainder of the incoming operands alongside the operands themselves. For \
               a non-zero divisor the Euclidean identity q*den + r == num holds, and the \
               remainder is smaller than the divisor.",
        targets: vec![
            (
                "euclidean_identity".to_string(),
                "den_q != 6'd0 |-> (q * den_q + r) == num_q".to_string(),
            ),
            ("remainder_bounded".to_string(), "den_q != 6'd0 |-> r < den_q".to_string()),
        ],
        expectation: Expectation::ProvesUnaided,
    }
}

/// Two-master token arbiter: grants are sliced off a one-bit token, so
/// mutual exclusion is combinationally guaranteed and proves at small k.
pub fn token_arbiter() -> DesignBundle {
    DesignBundle {
        name: "token_arbiter",
        rtl: r#"
module token_arbiter (input clk, rst, input req_a, req_b,
                      output logic gnt_a, gnt_b, output logic token);
  always_ff @(posedge clk) begin
    if (rst) begin
      token <= 1'b0;
      gnt_a <= 1'b0;
      gnt_b <= 1'b0;
    end else begin
      gnt_a <= req_a && !token;
      gnt_b <= req_b && token;
      token <= !token;
    end
  end
endmodule
"#,
        spec: "A two-master arbiter that alternates a token between masters every cycle; \
               a master is granted only while it owns the token, so the two grants are \
               never asserted together.",
        targets: vec![("mutual_exclusion".to_string(), "!(gnt_a && gnt_b)".to_string())],
        expectation: Expectation::ProvesUnaided,
    }
}
