//! Synchronous FIFO occupancy tracking.

use crate::{DesignBundle, Expectation};

/// FIFO control logic (pointers + occupancy counter, no data array): the
/// pointer-consistency property needs the three-register difference lemma
/// `(wptr - rptr) == count`.
pub fn fifo_counters() -> DesignBundle {
    DesignBundle {
        name: "fifo_counters",
        rtl: r#"
module fifo_counters (input clk, rst, input wr, rd,
                      output logic [7:0] wptr, rptr, count,
                      output logic full, empty);
  assign full = count == 8'd16;
  assign empty = count == 8'd0;
  logic do_wr, do_rd;
  assign do_wr = wr && !full;
  assign do_rd = rd && !empty;
  always_ff @(posedge clk) begin
    if (rst) begin
      wptr <= '0;
      rptr <= '0;
      count <= '0;
    end else begin
      wptr <= wptr + (do_wr ? 8'd1 : 8'd0);
      rptr <= rptr + (do_rd ? 8'd1 : 8'd0);
      count <= count + (do_wr ? 8'd1 : 8'd0) - (do_rd ? 8'd1 : 8'd0);
    end
  end
endmodule
"#,
        spec: "Control logic of a 16-deep synchronous FIFO: write/read pointers advance on \
               accepted operations and count tracks the occupancy, so the pointer \
               difference always equals count and the FIFO never overflows or underflows.",
        targets: vec![
            ("no_overflow".to_string(), "count <= 8'd16".to_string()),
            (
                "pointers_meet_only_when_empty".to_string(),
                // Needs the lemma (wptr - rptr) == count (and the bound).
                "wptr == rptr |-> count == 8'd0".to_string(),
            ),
        ],
        expectation: Expectation::NeedsLemmas,
    }
}
