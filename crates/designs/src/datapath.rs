//! Arithmetic datapath designs: registered multiplier identities.
//!
//! These bundles exercise the bit-blaster's heaviest circuits (the O(n²)
//! shift-and-add multiplier) inside induction proofs that close at k=1:
//! the solver work per query is moderate, so the *encoding* of the
//! transition relation is a first-order cost — exactly the workload the
//! template-stamped unroller (`UnrollMode::Template`) exists for, and the
//! backbone of the `e10_template_unroll` deep-unroll measurement.

use crate::{DesignBundle, Expectation};

/// Registered multiplier increment identity: every cycle it latches
/// `(a+1)*b` and `a*b + b`; the two registers are always equal (modulo
/// 2⁶). As elaborated the two sides lower through structurally different
/// circuits — hash-consing alone cannot unify them — so at
/// `OptLevel::None` the proof genuinely compares two multipliers. The
/// `genfv_ir::opt` factoring rewrite (`a*b + b → (a+1)*b`) collapses the
/// two next-state cones into one shared multiplier, which is exactly the
/// CNF reduction the `e12_opt` benchmark measures. The property is a pure
/// register comparison, so both registers stay in the cone of influence.
pub fn mul_incr() -> DesignBundle {
    DesignBundle {
        name: "mul_incr",
        rtl: r#"
module mul_incr (input clk, rst, input [5:0] a, b,
                 output logic [5:0] lhs, rhs);
  always_ff @(posedge clk) begin
    if (rst) begin
      lhs <= '0;
      rhs <= '0;
    end else begin
      lhs <= (a + 6'd1) * b;
      rhs <= a * b + b;
    end
  end
endmodule
"#,
        spec: "A registered checker for the multiplier increment identity: each cycle it \
               latches (a+1)*b and a*b + b. All arithmetic truncates to six bits, so the \
               identity holds modulo 64 and the two registers are always equal.",
        targets: vec![("incr_identity".to_string(), "lhs == rhs".to_string())],
        expectation: Expectation::ProvesUnaided,
    }
}

/// Registered multiplier distributivity checker: `a*(b+c)` latched next
/// to `a*b + a*c` (all truncating, so the identity holds modulo 2⁶).
pub fn mul_distrib() -> DesignBundle {
    DesignBundle {
        name: "mul_distrib",
        rtl: r#"
module mul_distrib (input clk, rst, input [5:0] a, b, c,
                    output logic [5:0] lhs, rhs);
  always_ff @(posedge clk) begin
    if (rst) begin
      lhs <= '0;
      rhs <= '0;
    end else begin
      lhs <= a * (b + c);
      rhs <= a * b + a * c;
    end
  end
endmodule
"#,
        spec: "A registered checker for multiplier distributivity over addition: each \
               cycle it latches a*(b+c) and a*b + a*c. All arithmetic truncates to six \
               bits, so the distributive identity holds modulo 64 and the two registers \
               are always equal.",
        targets: vec![("distributive".to_string(), "lhs == rhs".to_string())],
        expectation: Expectation::ProvesUnaided,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datapath_bundles_prepare() {
        for bundle in [mul_incr(), mul_distrib()] {
            let design = bundle.prepare().expect("datapath designs prepare");
            assert_eq!(design.ts.states().len(), 2, "{}: two product registers", bundle.name);
            assert!(!design.targets.is_empty());
        }
    }

    #[test]
    fn factoring_unifies_the_product_cones() {
        use genfv_core::{OptConfig, OptLevel};
        for bundle in [mul_incr(), mul_distrib()] {
            let base = bundle
                .prepare_with(&OptConfig::default().with_level(OptLevel::None))
                .expect("baseline prepare");
            let states = base.ts.states();
            assert_ne!(
                states[0].next, states[1].next,
                "{}: unoptimized sides stay structurally distinct",
                bundle.name
            );
            let opt = bundle.prepare().expect("optimized prepare");
            let states = opt.ts.states();
            assert_eq!(states.len(), 2, "{}: registers are never merged", bundle.name);
            assert_eq!(
                states[0].next, states[1].next,
                "{}: factoring hash-conses both sides into one multiplier",
                bundle.name
            );
        }
    }
}
