//! Error-correcting-code designs (the second half of the paper's
//! evaluation corpus: "The designs used were counters and ECC").
//!
//! The feed-forward pipelines (parity, Hamming(7,4), SEC-DED) regain
//! register consistency one cycle after any start state, so plain
//! induction closes them at k=2; their helper lemmas (functional pipeline
//! invariants like `code_q == enc(data_q)`) lower the proof to k=1 — the
//! paper's "faster proof for complex properties" effect. The
//! *recirculating* [`ecc_counter`], by contrast, keeps an inconsistent
//! state alive forever: its lockstep target fails the induction step at
//! every depth until the redundancy lemma is supplied, exactly like the
//! paper's synchronized counters. The functional-invariant pattern is the
//! one that separates strong from weak model profiles in experiment E5.

use crate::{DesignBundle, Expectation};

/// Parity-protected register stage with an error flag.
pub fn parity_pipe() -> DesignBundle {
    DesignBundle {
        name: "parity_pipe",
        rtl: r#"
module parity_pipe (input clk, rst, input [7:0] d, output logic [7:0] data_q,
                    output logic par_q, output logic err_flag);
  always_ff @(posedge clk) begin
    if (rst) begin
      data_q <= '0;
      par_q <= 1'b0;
      err_flag <= 1'b0;
    end else begin
      data_q <= d;
      par_q <= ^d;
      err_flag <= par_q ^ (^data_q);
    end
  end
endmodule
"#,
        spec: "A register stage protected by even parity: par_q always holds the parity of \
               data_q, so the checker flag err_flag never rises in fault-free operation.",
        targets: vec![("no_false_alarm".to_string(), "err_flag == 1'b0".to_string())],
        // The pipeline regains consistency one cycle after any start
        // state, so plain induction closes at k=2; the parity lemma
        // lowers it to k=1 (the paper's "faster proof" effect).
        expectation: Expectation::ProvesUnaided,
    }
}

/// Hamming(7,4) single-error-correcting pipeline: encode → register →
/// inject ≤1 bit error → register → decode. The headline ECC property:
/// the decoder always returns the original data.
pub fn hamming74() -> DesignBundle {
    DesignBundle {
        name: "hamming74",
        rtl: r#"
module hamming74 (input clk, rst, input [3:0] d, input [2:0] err_pos,
                  output logic [3:0] dec_out, output logic [3:0] data_qq);
  // Encoder (positions 1..7; p1,p2 at 1,2, d0 at 3, p3 at 4, d1..d3 at 5..7).
  logic p1, p2, p3;
  assign p1 = d[0] ^ d[1] ^ d[3];
  assign p2 = d[0] ^ d[2] ^ d[3];
  assign p3 = d[1] ^ d[2] ^ d[3];
  logic [6:0] enc;
  assign enc = {d[3], d[2], d[1], p3, d[0], p2, p1};

  // Channel: err_pos = 0 means no error, 1..7 flips that codeword bit.
  logic [6:0] flip;
  assign flip = (err_pos == 3'd0) ? 7'd0 : (7'd1 << (err_pos - 3'd1));

  // Two pipeline stages.
  logic [3:0] data_q;
  logic [6:0] code_q;
  logic [6:0] recv_q;
  always_ff @(posedge clk) begin
    if (rst) begin
      data_q <= '0;
      code_q <= '0;
      recv_q <= '0;
      data_qq <= '0;
    end else begin
      data_q <= d;
      code_q <= enc;
      recv_q <= code_q ^ flip;
      data_qq <= data_q;
    end
  end

  // Decoder: syndrome points at the flipped position.
  logic s1, s2, s3;
  assign s1 = recv_q[0] ^ recv_q[2] ^ recv_q[4] ^ recv_q[6];
  assign s2 = recv_q[1] ^ recv_q[2] ^ recv_q[5] ^ recv_q[6];
  assign s3 = recv_q[3] ^ recv_q[4] ^ recv_q[5] ^ recv_q[6];
  logic [2:0] syn;
  assign syn = {s3, s2, s1};
  logic [6:0] corr;
  assign corr = (syn == 3'd0) ? recv_q : (recv_q ^ (7'd1 << (syn - 3'd1)));
  assign dec_out = {corr[6], corr[5], corr[4], corr[2]};
endmodule
"#,
        spec: "A Hamming(7,4) single-error-correcting pipeline. Data is encoded, the \
               channel may flip at most one codeword bit per word (err_pos = 0 means no \
               error), and the decoder corrects using the syndrome. The decoded nibble \
               always equals the original data word travelling alongside in data_q/data_qq.",
        targets: vec![("corrects_single_error".to_string(), "dec_out == data_qq".to_string())],
        // Feed-forward pipeline: k=2 closes unaided; the functional lemma
        // `code_q == enc(data_q)` closes it at k=1.
        expectation: Expectation::ProvesUnaided,
    }
}

/// Hamming(8,4) SEC-DED pipeline: adds an overall parity bit; double
/// errors raise `uncorr` instead of silently mis-correcting.
pub fn secded84() -> DesignBundle {
    DesignBundle {
        name: "secded84",
        rtl: r#"
module secded84 (input clk, rst, input [3:0] d, input [3:0] e1, input [3:0] e2, input dbl,
                 output logic [3:0] dec_out, output logic [3:0] data_qq,
                 output logic uncorr, output logic dbl_q);
  // Hamming(7,4) encoder plus overall parity bit at position 8.
  logic p1, p2, p3;
  assign p1 = d[0] ^ d[1] ^ d[3];
  assign p2 = d[0] ^ d[2] ^ d[3];
  assign p3 = d[1] ^ d[2] ^ d[3];
  logic [6:0] enc7;
  assign enc7 = {d[3], d[2], d[1], p3, d[0], p2, p1};
  logic p0;
  assign p0 = ^enc7;
  logic [7:0] enc;
  assign enc = {p0, enc7};

  // Channel: e1 always available (0 = none, 1..8 = flip that bit); the
  // second flip e2 only applies when dbl is asserted. Values above 8 act
  // as no-error.
  logic [7:0] flip1, flip2;
  assign flip1 = (e1 == 4'd0) ? 8'd0 : (8'd1 << (e1 - 4'd1));
  assign flip2 = (dbl && e2 != 4'd0) ? (8'd1 << (e2 - 4'd1)) : 8'd0;

  logic [3:0] data_q;
  logic [7:0] code_q;
  logic [7:0] recv_q;
  always_ff @(posedge clk) begin
    if (rst) begin
      data_q <= '0;
      code_q <= '0;
      recv_q <= '0;
      data_qq <= '0;
      dbl_q <= 1'b0;
    end else begin
      data_q <= d;
      code_q <= enc;
      recv_q <= code_q ^ flip1 ^ flip2;
      data_qq <= data_q;
      dbl_q <= dbl;
    end
  end

  // Decoder with double-error detection.
  logic s1, s2, s3;
  assign s1 = recv_q[0] ^ recv_q[2] ^ recv_q[4] ^ recv_q[6];
  assign s2 = recv_q[1] ^ recv_q[2] ^ recv_q[5] ^ recv_q[6];
  assign s3 = recv_q[3] ^ recv_q[4] ^ recv_q[5] ^ recv_q[6];
  logic [2:0] syn;
  assign syn = {s3, s2, s1};
  logic pchk;
  assign pchk = ^recv_q;
  assign uncorr = (syn != 3'd0) && (pchk == 1'b0);
  logic [6:0] corr;
  assign corr = (syn == 3'd0) ? recv_q[6:0] : (recv_q[6:0] ^ (7'd1 << (syn - 3'd1)));
  assign dec_out = {corr[6], corr[5], corr[4], corr[2]};
endmodule
"#,
        spec: "A Hamming SEC-DED (8,4) pipeline: single errors are corrected, double \
               errors (second flip gated by dbl) raise the uncorrectable flag instead of \
               silently mis-correcting. dbl_q remembers whether a double injection was \
               attempted for the current word.",
        targets: vec![
            (
                "flag_implies_double".to_string(),
                // The uncorrectable flag only ever rises for words that had
                // the double-error injection enabled.
                "uncorr |-> dbl_q".to_string(),
            ),
            (
                "corrects_unless_flagged".to_string(),
                "!uncorr && !dbl_q |-> dec_out == data_qq".to_string(),
            ),
        ],
        // Feed-forward SEC-DED pipeline: k=2 unaided, k=1 with the
        // encoder lemma.
        expectation: Expectation::ProvesUnaided,
    }
}

/// ECC-protected counter with per-cycle scrubbing: the counter value lives
/// twice, as a plain register and as a Hamming(7,4) codeword that is
/// decoded, incremented, re-encoded, and hit by at most one new bit error
/// every cycle. Unlike the feed-forward pipelines, an inconsistent
/// (count, code_q) pair persists forever, so the lockstep target fails its
/// induction step at *every* depth until the redundancy lemma
/// `dec_out == count` is supplied — the ECC counterpart of the paper's
/// synchronized-counters example.
pub fn ecc_counter() -> DesignBundle {
    DesignBundle {
        name: "ecc_counter",
        rtl: r#"
module ecc_counter (input clk, rst, input [2:0] err_pos,
                    output logic [3:0] count, output logic [3:0] dec_out);
  logic [6:0] code_q;

  // Decoder-corrector for the stored codeword.
  logic s1, s2, s3;
  assign s1 = code_q[0] ^ code_q[2] ^ code_q[4] ^ code_q[6];
  assign s2 = code_q[1] ^ code_q[2] ^ code_q[5] ^ code_q[6];
  assign s3 = code_q[3] ^ code_q[4] ^ code_q[5] ^ code_q[6];
  logic [2:0] syn;
  assign syn = {s3, s2, s1};
  logic [6:0] corr;
  assign corr = (syn == 3'd0) ? code_q : (code_q ^ (7'd1 << (syn - 3'd1)));
  assign dec_out = {corr[6], corr[5], corr[4], corr[2]};

  // Re-encoder for the incremented value.
  logic [3:0] nxt;
  assign nxt = dec_out + 4'd1;
  logic q1, q2, q3;
  assign q1 = nxt[0] ^ nxt[1] ^ nxt[3];
  assign q2 = nxt[0] ^ nxt[2] ^ nxt[3];
  assign q3 = nxt[1] ^ nxt[2] ^ nxt[3];
  logic [6:0] enc_nxt;
  assign enc_nxt = {nxt[3], nxt[2], nxt[1], q3, nxt[0], q2, q1};

  // Channel: at most one new bit error per cycle.
  logic [6:0] flip;
  assign flip = (err_pos == 3'd0) ? 7'd0 : (7'd1 << (err_pos - 3'd1));

  always_ff @(posedge clk) begin
    if (rst) begin
      count <= '0;
      code_q <= '0;
    end else begin
      count <= count + 4'd1;
      code_q <= enc_nxt ^ flip;
    end
  end
endmodule
"#,
        spec: "A counter stored redundantly: once as a plain register and once as a \
               Hamming(7,4) codeword that is corrected, incremented, re-encoded and \
               possibly hit by one new bit error every cycle (scrubbing). The decoded \
               value always equals the plain counter, so when the plain counter is all \
               ones the decoded value is all ones too.",
        targets: vec![("lockstep_with_ecc".to_string(), "&count |-> &dec_out".to_string())],
        expectation: Expectation::NeedsLemmas,
    }
}
