//! Shift-register-family designs (ring counter, LFSR, shift pipeline).

use crate::{DesignBundle, Expectation};

/// One-hot ring counter: rotation preserves the token, so the one-hot
/// invariant is 1-inductive on its own.
pub fn ring_counter() -> DesignBundle {
    DesignBundle {
        name: "ring_counter",
        rtl: r#"
module ring_counter (input clk, rst, output logic [7:0] ring);
  always_ff @(posedge clk) begin
    if (rst) ring <= 8'b0000_0001;
    else ring <= {ring[6:0], ring[7]};
  end
endmodule
"#,
        spec: "An 8-stage one-hot ring counter (token rotator): exactly one bit is set at \
               any time, so at least one stage is always granted and no two stages are \
               granted together.",
        targets: vec![("one_token".to_string(), "$onehot(ring)".to_string())],
        expectation: Expectation::ProvesUnaided,
    }
}

/// Fibonacci LFSR: the nonzero invariant is required for the period
/// property and is inductive.
pub fn lfsr() -> DesignBundle {
    DesignBundle {
        name: "lfsr",
        rtl: r#"
module lfsr (input clk, rst, output logic [7:0] state);
  logic feedback;
  assign feedback = state[7] ^ state[5] ^ state[4] ^ state[3];
  always_ff @(posedge clk) begin
    if (rst) state <= 8'd1;
    else state <= {state[6:0], feedback};
  end
endmodule
"#,
        spec: "A maximal-length 8-bit Fibonacci LFSR seeded with 1. The all-zeros state is \
               not reachable: the register is always nonzero.",
        targets: vec![("nonzero".to_string(), "state != 8'd0".to_string())],
        expectation: Expectation::ProvesUnaided,
    }
}

/// Two shift registers fed by the same serial input; lockstep contents.
pub fn twin_shift() -> DesignBundle {
    DesignBundle {
        name: "twin_shift",
        rtl: r#"
module twin_shift (input clk, rst, input din, output logic [15:0] sr_a, sr_b);
  always_ff @(posedge clk) begin
    if (rst) begin
      sr_a <= '0;
      sr_b <= '0;
    end else begin
      sr_a <= {sr_a[14:0], din};
      sr_b <= {sr_b[14:0], din};
    end
  end
endmodule
"#,
        spec: "Two 16-bit shift registers sampling the same serial input; their contents \
               are always identical bit for bit.",
        targets: vec![(
            "msb_match".to_string(),
            // Not inductive alone: needs sr_a == sr_b.
            "sr_a[15] == sr_b[15]".to_string(),
        )],
        expectation: Expectation::NeedsLemmas,
    }
}
