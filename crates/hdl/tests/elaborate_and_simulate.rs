//! End-to-end frontend tests: parse RTL text, elaborate to a transition
//! system, and check behaviour with the genfv-ir simulator.

use genfv_hdl::{elaborate, elaborate_with, parse_source, ElaborateOptions};
use genfv_ir::{BitVecValue, Context, Simulator, TransitionSystem};

fn build(src: &str) -> (Context, TransitionSystem) {
    let module = parse_source(src).expect("parse").remove(0);
    let mut ctx = Context::new();
    let ts = elaborate(&mut ctx, &module).expect("elaborate");
    (ctx, ts)
}

#[test]
fn paper_sync_counters_elaborates_and_counts() {
    let src = r#"
module sync_counters (input clk, rst, output logic [31:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 32'b0;
      count2 <= 32'b0;
    end else begin
      count1++;
      count2++;
    end
  end
endmodule
"#;
    let (ctx, ts) = build(src);
    assert_eq!(ts.states().len(), 2);
    assert_eq!(ts.inputs().len(), 1, "rst is an input; clk is implicit");

    let c1 = ctx.find_symbol("count1").unwrap();
    let c2 = ctx.find_symbol("count2").unwrap();
    let rst = ctx.find_symbol("rst").unwrap();

    // Reset-derived init must be zero.
    let st = ts.find_state(c1).unwrap();
    assert!(ctx.const_value(st.init.unwrap()).unwrap().is_zero());

    let mut sim = Simulator::new(&ctx, &ts);
    sim.reset();
    sim.set(rst, BitVecValue::from_u64(0, 1));
    for step in 0..10u64 {
        assert_eq!(sim.get(c1).to_u64(), Some(step));
        assert_eq!(sim.get(c2).to_u64(), Some(step));
        sim.step();
    }
    // Asserting reset mid-run returns both to zero.
    sim.set(rst, BitVecValue::from_u64(1, 1));
    sim.step();
    assert_eq!(sim.get(c1).to_u64(), Some(0));
    assert_eq!(sim.get(c2).to_u64(), Some(0));
}

#[test]
fn modn_counter_with_params_wraps() {
    let src = r#"
module modn #(parameter N = 10) (input clk, rst, output logic [7:0] cnt);
  localparam MAX = N - 1;
  always_ff @(posedge clk) begin
    if (rst) cnt <= '0;
    else if (cnt == MAX) cnt <= '0;
    else cnt <= cnt + 8'd1;
  end
endmodule
"#;
    let (ctx, ts) = build(src);
    let cnt = ctx.find_symbol("cnt").unwrap();
    let rst = ctx.find_symbol("rst").unwrap();
    let mut sim = Simulator::new(&ctx, &ts);
    sim.reset();
    sim.set(rst, BitVecValue::from_u64(0, 1));
    for step in 0..25u64 {
        assert_eq!(sim.get(cnt).to_u64(), Some(step % 10), "step {step}");
        sim.step();
    }
}

#[test]
fn parameter_override() {
    let src = r#"
module modn #(parameter N = 10) (input clk, rst, output logic [7:0] cnt);
  always_ff @(posedge clk) begin
    if (rst) cnt <= '0;
    else if (cnt == N - 1) cnt <= '0;
    else cnt <= cnt + 8'd1;
  end
endmodule
"#;
    let module = parse_source(src).unwrap().remove(0);
    let mut ctx = Context::new();
    let opts = ElaborateOptions { params: vec![("N".to_string(), 4)], ..Default::default() };
    let ts = elaborate_with(&mut ctx, &module, &opts).unwrap();
    let cnt = ctx.find_symbol("cnt").unwrap();
    let rst = ctx.find_symbol("rst").unwrap();
    let mut sim = Simulator::new(&ctx, &ts);
    sim.reset();
    sim.set(rst, BitVecValue::from_u64(0, 1));
    for step in 0..12u64 {
        assert_eq!(sim.get(cnt).to_u64(), Some(step % 4));
        sim.step();
    }
}

#[test]
fn assign_and_always_comb() {
    let src = r#"
module comb_mix (input clk, rst, input [3:0] a, b, output logic [3:0] y, output logic [3:0] r);
  logic [3:0] m;
  assign y = a ^ b;
  always_comb begin
    if (a < b) m = b - a;
    else m = a - b;
  end
  always_ff @(posedge clk) begin
    if (rst) r <= '0;
    else r <= m;
  end
endmodule
"#;
    let (ctx, ts) = build(src);
    let a = ctx.find_symbol("a").unwrap();
    let b = ctx.find_symbol("b").unwrap();
    let rst = ctx.find_symbol("rst").unwrap();
    let r = ctx.find_symbol("r").unwrap();
    let y = ts.find_signal("y").unwrap();
    let m = ts.find_signal("m").unwrap();

    let mut sim = Simulator::new(&ctx, &ts);
    sim.reset();
    sim.set(rst, BitVecValue::from_u64(0, 1));
    sim.set(a, BitVecValue::from_u64(3, 4));
    sim.set(b, BitVecValue::from_u64(9, 4));
    assert_eq!(sim.peek(y).to_u64(), Some(3 ^ 9));
    assert_eq!(sim.peek(m).to_u64(), Some(6), "|a-b|");
    sim.step();
    assert_eq!(sim.get(r).to_u64(), Some(6), "registered difference");
}

#[test]
fn case_statement_fsm() {
    let src = r#"
module gray2 (input clk, rst, output logic [1:0] g);
  always_ff @(posedge clk) begin
    if (rst) g <= 2'b00;
    else case (g)
      2'b00: g <= 2'b01;
      2'b01: g <= 2'b11;
      2'b11: g <= 2'b10;
      default: g <= 2'b00;
    endcase
  end
endmodule
"#;
    let (ctx, ts) = build(src);
    let g = ctx.find_symbol("g").unwrap();
    let rst = ctx.find_symbol("rst").unwrap();
    let mut sim = Simulator::new(&ctx, &ts);
    sim.reset();
    sim.set(rst, BitVecValue::from_u64(0, 1));
    let expected = [0b00u64, 0b01, 0b11, 0b10, 0b00, 0b01];
    for &e in &expected {
        assert_eq!(sim.get(g).to_u64(), Some(e));
        sim.step();
    }
}

#[test]
fn xor_parity_with_reduction_and_concat() {
    let src = r#"
module parity (input clk, rst, input [7:0] d, output logic p, output logic [8:0] coded);
  assign p = ^d;
  assign coded = {d, ^d};
endmodule
"#;
    let (ctx, ts) = build(src);
    let d = ctx.find_symbol("d").unwrap();
    let p = ts.find_signal("p").unwrap();
    let coded = ts.find_signal("coded").unwrap();
    let mut sim = Simulator::new(&ctx, &ts);
    sim.set(d, BitVecValue::from_u64(0b1011_0001, 8));
    assert_eq!(sim.peek(p).to_u64(), Some(0), "even number of ones");
    // coded = {d, parity}: the data byte shifted left with parity appended.
    assert_eq!(sim.peek(coded).to_u64(), Some(0b1011_0001 << 1));
    sim.set(d, BitVecValue::from_u64(0b1011_0011, 8));
    assert_eq!(sim.peek(p).to_u64(), Some(1));
}

#[test]
fn shift_register_with_replication() {
    let src = r#"
module shifty (input clk, rst, input din, output logic [3:0] sr);
  always_ff @(posedge clk) begin
    if (rst) sr <= {4{1'b0}};
    else sr <= {sr[2:0], din};
  end
endmodule
"#;
    let (ctx, ts) = build(src);
    let sr = ctx.find_symbol("sr").unwrap();
    let din = ctx.find_symbol("din").unwrap();
    let rst = ctx.find_symbol("rst").unwrap();
    let mut sim = Simulator::new(&ctx, &ts);
    sim.reset();
    sim.set(rst, BitVecValue::from_u64(0, 1));
    for bit in [1u64, 1, 0, 1] {
        sim.set(din, BitVecValue::from_u64(bit, 1));
        sim.step();
    }
    assert_eq!(sim.get(sr).to_u64(), Some(0b1101));
}

#[test]
fn errors_reported() {
    // Undeclared net.
    let src = "module bad (input clk); always_ff @(posedge clk) x <= 1'b1; endmodule";
    let module = parse_source(src).unwrap().remove(0);
    let mut ctx = Context::new();
    let err = elaborate(&mut ctx, &module).unwrap_err();
    assert!(err.to_string().contains("no declaration"), "{err}");

    // Combinational cycle.
    let src = r#"
module cyc (input clk, output logic [3:0] a, b);
  assign a = b + 4'd1;
  assign b = a + 4'd1;
endmodule
"#;
    let module = parse_source(src).unwrap().remove(0);
    let mut ctx = Context::new();
    let err = elaborate(&mut ctx, &module).unwrap_err();
    assert!(err.to_string().contains("cycle"), "{err}");

    // Latch in always_comb.
    let src = r#"
module latchy (input clk, input s, output logic [3:0] q);
  always_comb begin
    if (s) q = 4'd1;
  end
endmodule
"#;
    let module = parse_source(src).unwrap().remove(0);
    let mut ctx = Context::new();
    let err = elaborate(&mut ctx, &module).unwrap_err();
    assert!(err.to_string().contains("unassigned") || err.to_string().contains("latch"), "{err}");

    // Multiply driven.
    let src = r#"
module dd (input clk, output logic [3:0] q);
  assign q = 4'd1;
  assign q = 4'd2;
endmodule
"#;
    let module = parse_source(src).unwrap().remove(0);
    let mut ctx = Context::new();
    let err = elaborate(&mut ctx, &module).unwrap_err();
    assert!(err.to_string().contains("multiply driven"), "{err}");
}

#[test]
fn non_constant_reset_leaves_init_free() {
    // Register reset to an input value: init cannot be a constant.
    let src = r#"
module loadreg (input clk, rst, input [3:0] seed, output logic [3:0] q);
  always_ff @(posedge clk) begin
    if (rst) q <= seed;
    else q <= q + 4'd1;
  end
endmodule
"#;
    let (ctx, ts) = build(src);
    let q = ctx.find_symbol("q").unwrap();
    assert!(ts.find_state(q).unwrap().init.is_none());
}

#[test]
fn sync_and_async_reset_equivalent_here() {
    let src_async = r#"
module a1 (input clk, rst, output logic [3:0] q);
  always @(posedge clk or posedge rst) begin
    if (rst) q <= '0; else q <= q + 4'd1;
  end
endmodule
"#;
    let src_sync = r#"
module a2 (input clk, rst, output logic [3:0] q);
  always_ff @(posedge clk) begin
    if (rst) q <= '0; else q <= q + 4'd1;
  end
endmodule
"#;
    for src in [src_async, src_sync] {
        let (ctx, ts) = build(src);
        let q = ctx.find_symbol("q").unwrap();
        let st = ts.find_state(q).unwrap();
        assert!(ctx.const_value(st.init.unwrap()).unwrap().is_zero());
    }
}
