//! Elaboration: lowering a parsed [`Module`] to a [`TransitionSystem`].
//!
//! The elaborator resolves parameters, infers widths with Verilog-style
//! context rules (operands extended to the widest, right-hand sides fitted
//! to assignment targets), symbolically executes procedural blocks, and
//! derives initial-state values by evaluating each register's next-state
//! function under an asserted reset.

use crate::ast::*;
use crate::lexer::Pos;
use genfv_ir::{BitVecValue, Context, ExprRef, TransitionSystem};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// Elaboration failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElabError {
    /// Position, when attributable.
    pub pos: Option<Pos>,
    /// Human-readable message.
    pub message: String,
}

impl ElabError {
    fn new(message: impl Into<String>) -> Self {
        ElabError { pos: None, message: message.into() }
    }

    fn at(pos: Pos, message: impl Into<String>) -> Self {
        ElabError { pos: Some(pos), message: message.into() }
    }
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "elaboration error at {p}: {}", self.message),
            None => write!(f, "elaboration error: {}", self.message),
        }
    }
}

impl Error for ElabError {}

/// Options controlling elaboration.
#[derive(Clone, Debug)]
pub struct ElaborateOptions {
    /// Name of the reset input. `None` auto-detects: the asynchronous-reset
    /// signal from a sensitivity list, or an input named `rst`/`reset`.
    pub reset: Option<String>,
    /// Derive register init values by evaluating the next-state function
    /// with the reset asserted (formal "reset applied at time 0"
    /// convention). Registers whose reset value is not constant stay
    /// uninitialised.
    pub apply_reset_init: bool,
    /// Parameter overrides applied over the module's declared defaults.
    pub params: Vec<(String, u64)>,
}

impl Default for ElaborateOptions {
    fn default() -> Self {
        ElaborateOptions { reset: None, apply_reset_init: true, params: Vec::new() }
    }
}

/// Elaborates `module` into a transition system over `ctx` with default
/// options.
///
/// # Errors
/// Returns [`ElabError`] for undeclared nets, width errors, non-constant
/// parameters/ranges, combinational cycles, incomplete `always_comb`
/// assignments, or unsupported constructs.
pub fn elaborate(ctx: &mut Context, module: &Module) -> Result<TransitionSystem, ElabError> {
    elaborate_with(ctx, module, &ElaborateOptions::default())
}

/// Elaborates with explicit [`ElaborateOptions`].
///
/// # Errors
/// See [`elaborate`].
pub fn elaborate_with(
    ctx: &mut Context,
    module: &Module,
    options: &ElaborateOptions,
) -> Result<TransitionSystem, ElabError> {
    Elaborator::new(ctx, module, options)?.run()
}

#[derive(Clone, Debug)]
enum NetDef {
    Input,
    Reg,
    /// Driven by `assign` with the given expression.
    Assign(Expr),
    /// Driven by the `always_comb` item at the given index.
    CombBlock(usize),
}

struct Elaborator<'a> {
    ctx: &'a mut Context,
    module: &'a Module,
    options: &'a ElaborateOptions,
    params: HashMap<String, BitVecValue>,
    widths: HashMap<String, u32>,
    defs: HashMap<String, NetDef>,
    resolved: HashMap<String, ExprRef>,
    resolving: HashSet<String>,
    clocks: HashSet<String>,
    reset: Option<String>,
}

impl<'a> Elaborator<'a> {
    fn new(
        ctx: &'a mut Context,
        module: &'a Module,
        options: &'a ElaborateOptions,
    ) -> Result<Self, ElabError> {
        Ok(Elaborator {
            ctx,
            module,
            options,
            params: HashMap::new(),
            widths: HashMap::new(),
            defs: HashMap::new(),
            resolved: HashMap::new(),
            resolving: HashSet::new(),
            clocks: HashSet::new(),
            reset: None,
        })
    }

    fn run(mut self) -> Result<TransitionSystem, ElabError> {
        self.eval_params()?;
        self.collect_clocks_and_reset();
        self.collect_decls()?;
        self.classify_defs()?;

        let mut ts = TransitionSystem::new(&self.module.name);

        // Inputs (clock ports are implicit and skipped).
        for port in &self.module.ports {
            if port.dir == PortDir::Input && !self.clocks.contains(&port.name) {
                let sym = self.resolve(&port.name)?;
                ts.add_input(sym);
                ts.add_signal(&port.name, sym);
            }
        }

        // Registers: next-state functions from clocked blocks.
        let regs = self.module.clocked_targets();
        let mut next_map: HashMap<String, ExprRef> = HashMap::new();
        let mut assigned_in: HashMap<String, usize> = HashMap::new();
        for (idx, item) in self.module.items.iter().enumerate() {
            if let Item::AlwaysFf { body, pos, .. } = item {
                // Every register starts at "hold current value".
                let mut envmap: HashMap<String, ExprRef> = HashMap::new();
                for r in &regs {
                    envmap.insert(r.clone(), self.resolve(r)?);
                }
                let touched = self.exec_clocked(body, &mut envmap, *pos)?;
                for t in touched {
                    if let Some(prev) = assigned_in.insert(t.clone(), idx) {
                        if prev != idx {
                            return Err(ElabError::at(
                                *pos,
                                format!("register `{t}` driven from multiple always blocks"),
                            ));
                        }
                    }
                    next_map.insert(t.clone(), envmap[&t]);
                }
            }
        }

        // Derive init from reset, if requested and detectable.
        let reset_sym = match &self.reset {
            Some(r) if self.options.apply_reset_init => {
                // The reset must be a non-clock input to be substitutable.
                self.resolved.get(r).copied()
            }
            _ => None,
        };

        for r in &regs {
            let sym = self.resolve(r)?;
            let next = next_map.get(r).copied().unwrap_or(sym);
            let init = match reset_sym {
                Some(rs) => {
                    let one = self.ctx.constant(1, 1);
                    let map = HashMap::from([(rs, one)]);
                    let candidate = self.ctx.substitute(next, &map);
                    self.ctx.const_value(candidate).map(|_| candidate)
                }
                None => None,
            };
            ts.add_state(sym, init, next);
            ts.add_signal(r, sym);
        }

        // Publish outputs and combinational nets as signals.
        for port in &self.module.ports {
            if port.dir == PortDir::Output && !regs.contains(&port.name) {
                let e = self.resolve(&port.name)?;
                ts.add_signal(&port.name, e);
            }
        }
        for item in &self.module.items {
            if let Item::Net { names, .. } = item {
                for n in names {
                    if !regs.contains(n) && self.defs.contains_key(n) {
                        if let Ok(e) = self.resolve(n) {
                            if ts.find_signal(n).is_none() {
                                ts.add_signal(n, e);
                            }
                        }
                    }
                }
            }
        }

        Ok(ts)
    }

    // --- setup -----------------------------------------------------------

    fn eval_params(&mut self) -> Result<(), ElabError> {
        let overrides: HashMap<&str, u64> =
            self.options.params.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let header = self.module.header_params.clone();
        for (name, value) in &header {
            let v = match overrides.get(name.as_str()) {
                Some(&o) => BitVecValue::from_u64(o, 32),
                None => self.const_eval(value, None)?,
            };
            self.params.insert(name.clone(), v);
        }
        let items = self.module.items.clone();
        for item in &items {
            if let Item::Param { name, value, pos } = item {
                let v = self.const_eval(value, None).map_err(|e| ElabError::at(*pos, e.message))?;
                self.params.insert(name.clone(), v);
            }
        }
        Ok(())
    }

    fn collect_clocks_and_reset(&mut self) {
        for item in &self.module.items {
            if let Item::AlwaysFf { clock, async_reset, .. } = item {
                self.clocks.insert(clock.clone());
                if self.reset.is_none() {
                    if let Some(r) = async_reset {
                        self.reset = Some(r.clone());
                    }
                }
            }
        }
        if let Some(r) = &self.options.reset {
            self.reset = Some(r.clone());
        }
        if self.reset.is_none() {
            // Heuristic: conventional reset port names.
            for port in &self.module.ports {
                if port.dir == PortDir::Input
                    && matches!(port.name.as_str(), "rst" | "reset" | "rst_i" | "arst")
                {
                    self.reset = Some(port.name.clone());
                    break;
                }
            }
        }
    }

    fn range_width(&mut self, range: &Option<RangeDecl>) -> Result<u32, ElabError> {
        match range {
            None => Ok(1),
            Some(r) => {
                let hi = self.const_eval_u64(&r.hi)?;
                let lo = self.const_eval_u64(&r.lo)?;
                if lo != 0 {
                    return Err(ElabError::new(format!(
                        "only [N:0] ranges are supported, got [{hi}:{lo}]"
                    )));
                }
                Ok(hi as u32 + 1)
            }
        }
    }

    fn collect_decls(&mut self) -> Result<(), ElabError> {
        let ports = self.module.ports.clone();
        for port in &ports {
            let w =
                self.range_width(&port.range).map_err(|e| ElabError::at(port.pos, e.message))?;
            self.widths.insert(port.name.clone(), w);
        }
        let items = self.module.items.clone();
        for item in &items {
            if let Item::Net { range, names, pos } = item {
                let w = self.range_width(range).map_err(|e| ElabError::at(*pos, e.message))?;
                for n in names {
                    if self.widths.contains_key(n) {
                        return Err(ElabError::at(*pos, format!("`{n}` declared twice")));
                    }
                    self.widths.insert(n.clone(), w);
                }
            }
        }
        Ok(())
    }

    fn classify_defs(&mut self) -> Result<(), ElabError> {
        for port in &self.module.ports {
            if port.dir == PortDir::Input && !self.clocks.contains(&port.name) {
                self.defs.insert(port.name.clone(), NetDef::Input);
            }
        }
        for r in self.module.clocked_targets() {
            if !self.widths.contains_key(&r) {
                return Err(ElabError::new(format!("register `{r}` has no declaration")));
            }
            self.defs.insert(r, NetDef::Reg);
        }
        for (idx, item) in self.module.items.iter().enumerate() {
            match item {
                Item::Assign { target, rhs, pos } => {
                    if self.defs.contains_key(target) {
                        return Err(ElabError::at(*pos, format!("`{target}` multiply driven")));
                    }
                    self.defs.insert(target.clone(), NetDef::Assign(rhs.clone()));
                }
                Item::AlwaysComb { body, pos } => {
                    let mut targets = Vec::new();
                    collect_blocking_targets(body, &mut targets);
                    targets.sort();
                    targets.dedup();
                    for t in targets {
                        if self.defs.contains_key(&t) {
                            return Err(ElabError::at(*pos, format!("`{t}` multiply driven")));
                        }
                        self.defs.insert(t, NetDef::CombBlock(idx));
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    // --- net resolution --------------------------------------------------

    fn width_of_net(&self, name: &str) -> Result<u32, ElabError> {
        self.widths
            .get(name)
            .copied()
            .ok_or_else(|| ElabError::new(format!("`{name}` is not declared")))
    }

    fn resolve(&mut self, name: &str) -> Result<ExprRef, ElabError> {
        if let Some(&e) = self.resolved.get(name) {
            return Ok(e);
        }
        if let Some(v) = self.params.get(name) {
            let e = self.ctx.value(v.clone());
            self.resolved.insert(name.to_string(), e);
            return Ok(e);
        }
        if self.resolving.contains(name) {
            return Err(ElabError::new(format!("combinational cycle through `{name}`")));
        }
        let def = self
            .defs
            .get(name)
            .cloned()
            .ok_or_else(|| ElabError::new(format!("`{name}` is never driven")))?;
        self.resolving.insert(name.to_string());
        let result = match def {
            NetDef::Input | NetDef::Reg => {
                let w = self.width_of_net(name)?;
                Ok(self.ctx.symbol(name, w))
            }
            NetDef::Assign(rhs) => {
                let w = self.width_of_net(name)?;
                let e = self.elab_expr(&rhs, Some(w))?;
                Ok(self.fit(e, w))
            }
            NetDef::CombBlock(idx) => {
                let item = self.module.items[idx].clone();
                let Item::AlwaysComb { body, pos } = item else { unreachable!() };
                let assignments = self.exec_comb(&body, pos)?;
                let mut own: Option<ExprRef> = None;
                for (t, e) in assignments {
                    let w = self.width_of_net(&t)?;
                    let fitted = self.fit(e, w);
                    if t == name {
                        own = Some(fitted);
                    }
                    self.resolved.entry(t).or_insert(fitted);
                }
                own.ok_or_else(|| {
                    ElabError::at(pos, format!("`{name}` may be unassigned in always_comb"))
                })
            }
        };
        self.resolving.remove(name);
        let e = result?;
        self.resolved.insert(name.to_string(), e);
        Ok(e)
    }

    // --- procedural execution ---------------------------------------------

    /// Executes a clocked body. `envmap` carries next-state expressions for
    /// every register (pre-seeded with "hold"); reads always see *current*
    /// state (non-blocking semantics). Returns the set of assigned registers.
    fn exec_clocked(
        &mut self,
        stmt: &Stmt,
        envmap: &mut HashMap<String, ExprRef>,
        pos: Pos,
    ) -> Result<Vec<String>, ElabError> {
        let mut touched = Vec::new();
        self.exec_clocked_inner(stmt, envmap, &mut touched, pos)?;
        touched.sort();
        touched.dedup();
        Ok(touched)
    }

    // `pos` threads the source position down for future diagnostics even
    // though only recursive calls consume it today.
    #[allow(clippy::only_used_in_recursion)]
    fn exec_clocked_inner(
        &mut self,
        stmt: &Stmt,
        envmap: &mut HashMap<String, ExprRef>,
        touched: &mut Vec<String>,
        pos: Pos,
    ) -> Result<(), ElabError> {
        match stmt {
            Stmt::Empty => {}
            Stmt::Block(ss) => {
                for s in ss {
                    self.exec_clocked_inner(s, envmap, touched, pos)?;
                }
            }
            Stmt::NonBlocking { target, rhs } | Stmt::Blocking { target, rhs } => {
                let w = self.width_of_net(&target.name)?;
                let e = self.elab_expr(rhs, Some(w)).map_err(|e| ElabError {
                    pos: e.pos.or(Some(target.pos)),
                    message: e.message,
                })?;
                let fitted = self.fit(e, w);
                envmap.insert(target.name.clone(), fitted);
                touched.push(target.name.clone());
            }
            Stmt::Incr(target) | Stmt::Decr(target) => {
                let w = self.width_of_net(&target.name)?;
                let cur = self.resolve(&target.name)?;
                let one = self.ctx.constant(1, w);
                let e = if matches!(stmt, Stmt::Incr(_)) {
                    self.ctx.add(cur, one)
                } else {
                    self.ctx.sub(cur, one)
                };
                envmap.insert(target.name.clone(), e);
                touched.push(target.name.clone());
            }
            Stmt::If { cond, then_branch, else_branch } => {
                let c = self.elab_bool(cond)?;
                let mut then_env = envmap.clone();
                self.exec_clocked_inner(then_branch, &mut then_env, touched, pos)?;
                let mut else_env = envmap.clone();
                if let Some(e) = else_branch {
                    self.exec_clocked_inner(e, &mut else_env, touched, pos)?;
                }
                for (k, v) in envmap.iter_mut() {
                    let t = then_env[k];
                    let f = else_env[k];
                    if t != f {
                        *v = self.ctx.ite(c, t, f);
                    } else {
                        *v = t;
                    }
                }
            }
            Stmt::Case { subject, arms, default } => {
                let subj = self.elab_expr(subject, None)?;
                let sw = self.ctx.width_of(subj);
                // Build from the default (or hold) upwards, last arm first.
                let mut result_env = match default {
                    Some(d) => {
                        let mut e = envmap.clone();
                        self.exec_clocked_inner(d, &mut e, touched, pos)?;
                        e
                    }
                    None => envmap.clone(),
                };
                for (labels, body) in arms.iter().rev() {
                    let mut arm_env = envmap.clone();
                    self.exec_clocked_inner(body, &mut arm_env, touched, pos)?;
                    let mut hit = self.ctx.bool_const(false);
                    for l in labels {
                        let lv = self.elab_expr(l, Some(sw))?;
                        let lv = self.fit(lv, sw);
                        let eq = self.ctx.eq(subj, lv);
                        hit = self.ctx.or(hit, eq);
                    }
                    for (k, v) in result_env.iter_mut() {
                        let a = arm_env[k];
                        if a != *v {
                            *v = self.ctx.ite(hit, a, *v);
                        }
                    }
                }
                *envmap = result_env;
            }
        }
        Ok(())
    }

    /// Executes an `always_comb` body with blocking semantics: reads see
    /// previous writes from the same block. Every target must be assigned
    /// on every path (no latches).
    fn exec_comb(&mut self, stmt: &Stmt, pos: Pos) -> Result<Vec<(String, ExprRef)>, ElabError> {
        let mut env: HashMap<String, Option<ExprRef>> = HashMap::new();
        let mut targets = Vec::new();
        collect_blocking_targets(stmt, &mut targets);
        targets.sort();
        targets.dedup();
        for t in &targets {
            env.insert(t.clone(), None);
        }
        self.exec_comb_inner(stmt, &mut env, pos)?;
        let mut out = Vec::new();
        for t in targets {
            match env.remove(&t).flatten() {
                Some(e) => out.push((t, e)),
                None => {
                    return Err(ElabError::at(
                        pos,
                        format!("`{t}` not assigned on all paths in always_comb (latch)"),
                    ))
                }
            }
        }
        Ok(out)
    }

    // Same as `exec_clocked_inner`: `pos` is diagnostic plumbing.
    #[allow(clippy::only_used_in_recursion)]
    fn exec_comb_inner(
        &mut self,
        stmt: &Stmt,
        env: &mut HashMap<String, Option<ExprRef>>,
        pos: Pos,
    ) -> Result<(), ElabError> {
        match stmt {
            Stmt::Empty => {}
            Stmt::Block(ss) => {
                for s in ss {
                    self.exec_comb_inner(s, env, pos)?;
                }
            }
            Stmt::Blocking { target, rhs } | Stmt::NonBlocking { target, rhs } => {
                let w = self.width_of_net(&target.name)?;
                // Blocking reads see the overlay: temporarily install
                // resolved values for already-assigned targets.
                let e = self.elab_expr_with_overlay(rhs, Some(w), env)?;
                let fitted = self.fit(e, w);
                env.insert(target.name.clone(), Some(fitted));
            }
            Stmt::If { cond, then_branch, else_branch } => {
                let c = self.elab_bool_with_overlay(cond, env)?;
                let mut then_env = env.clone();
                self.exec_comb_inner(then_branch, &mut then_env, pos)?;
                let mut else_env = env.clone();
                if let Some(e) = else_branch {
                    self.exec_comb_inner(e, &mut else_env, pos)?;
                }
                for (k, v) in env.iter_mut() {
                    *v = match (then_env[k], else_env[k]) {
                        (Some(t), Some(f)) => Some(if t == f { t } else { self.ctx.ite(c, t, f) }),
                        _ => None,
                    };
                }
            }
            Stmt::Case { subject, arms, default } => {
                let subj = self.elab_expr_with_overlay(subject, None, env)?;
                let sw = self.ctx.width_of(subj);
                let mut result_env = match default {
                    Some(d) => {
                        let mut e = env.clone();
                        self.exec_comb_inner(d, &mut e, pos)?;
                        e
                    }
                    None => env.clone(),
                };
                for (labels, body) in arms.iter().rev() {
                    let mut arm_env = env.clone();
                    self.exec_comb_inner(body, &mut arm_env, pos)?;
                    let mut hit = self.ctx.bool_const(false);
                    for l in labels {
                        let lv = self.elab_expr(l, Some(sw))?;
                        let lv = self.fit(lv, sw);
                        let eq = self.ctx.eq(subj, lv);
                        hit = self.ctx.or(hit, eq);
                    }
                    for (k, v) in result_env.iter_mut() {
                        *v = match (arm_env[k], *v) {
                            (Some(a), Some(d)) => {
                                Some(if a == d { a } else { self.ctx.ite(hit, a, d) })
                            }
                            _ => None,
                        };
                    }
                }
                *env = result_env;
            }
            Stmt::Incr(t) | Stmt::Decr(t) => {
                return Err(ElabError::at(
                    t.pos,
                    "increment/decrement not supported in always_comb".to_string(),
                ))
            }
        }
        Ok(())
    }

    fn elab_expr_with_overlay(
        &mut self,
        e: &Expr,
        expected: Option<u32>,
        overlay: &HashMap<String, Option<ExprRef>>,
    ) -> Result<ExprRef, ElabError> {
        // Install overlay bindings into `resolved`, elaborate, then restore.
        let mut saved: Vec<(String, Option<ExprRef>)> = Vec::new();
        for (name, val) in overlay {
            if let Some(v) = val {
                saved.push((name.clone(), self.resolved.insert(name.clone(), *v)));
            }
        }
        let result = self.elab_expr(e, expected);
        for (name, prev) in saved {
            match prev {
                Some(p) => {
                    self.resolved.insert(name, p);
                }
                None => {
                    self.resolved.remove(&name);
                }
            }
        }
        result
    }

    fn elab_bool_with_overlay(
        &mut self,
        e: &Expr,
        overlay: &HashMap<String, Option<ExprRef>>,
    ) -> Result<ExprRef, ElabError> {
        let x = self.elab_expr_with_overlay(e, None, overlay)?;
        Ok(self.to_bool(x))
    }

    // --- expressions -------------------------------------------------------

    fn fit(&mut self, e: ExprRef, width: u32) -> ExprRef {
        let w = self.ctx.width_of(e);
        if w == width {
            e
        } else if w > width {
            self.ctx.extract(e, width - 1, 0)
        } else {
            self.ctx.zext(e, width)
        }
    }

    // `to_bool` converts the expression, not `self` — the builder context
    // just has to be mutable to hash-cons the reduction node.
    #[allow(clippy::wrong_self_convention)]
    fn to_bool(&mut self, e: ExprRef) -> ExprRef {
        if self.ctx.width_of(e) == 1 {
            e
        } else {
            self.ctx.red_or(e)
        }
    }

    fn elab_bool(&mut self, e: &Expr) -> Result<ExprRef, ElabError> {
        let x = self.elab_expr(e, None)?;
        Ok(self.to_bool(x))
    }

    fn const_eval(&mut self, e: &Expr, expected: Option<u32>) -> Result<BitVecValue, ElabError> {
        let x = self.elab_expr(e, expected.or(Some(32)))?;
        self.ctx
            .const_value(x)
            .cloned()
            .ok_or_else(|| ElabError::new("expression must be constant here".to_string()))
    }

    fn const_eval_u64(&mut self, e: &Expr) -> Result<u64, ElabError> {
        self.const_eval(e, Some(32))?
            .to_u64()
            .ok_or_else(|| ElabError::new("constant too wide".to_string()))
    }

    /// Elaborates an expression; `expected` is a width hint used to size
    /// unsized literals and fill literals.
    fn elab_expr(&mut self, e: &Expr, expected: Option<u32>) -> Result<ExprRef, ElabError> {
        match e {
            Expr::Number { size, base, digits } => self.elab_number(*size, *base, digits, expected),
            Expr::Ident(name) => self.resolve(name),
            Expr::Unary(op, a) => {
                let x = match op {
                    UnaryAstOp::BitNot | UnaryAstOp::Neg => self.elab_expr(a, expected)?,
                    _ => self.elab_expr(a, None)?,
                };
                Ok(match op {
                    UnaryAstOp::BitNot => self.ctx.not(x),
                    UnaryAstOp::Neg => self.ctx.neg(x),
                    UnaryAstOp::LogNot => {
                        let b = self.to_bool(x);
                        self.ctx.not(b)
                    }
                    UnaryAstOp::RedAnd => self.ctx.red_and(x),
                    UnaryAstOp::RedOr => self.ctx.red_or(x),
                    UnaryAstOp::RedXor => self.ctx.red_xor(x),
                })
            }
            Expr::Binary(op, a, b) => self.elab_binary(*op, a, b, expected),
            Expr::Ternary(c, t, f) => {
                let cond = self.elab_bool(c)?;
                let (tt, ff) = self.elab_pair(t, f, expected)?;
                Ok(self.ctx.ite(cond, tt, ff))
            }
            Expr::Index(base, idx) => {
                let x = self.elab_expr(base, None)?;
                let i = self.const_eval_u64(idx)? as u32;
                let w = self.ctx.width_of(x);
                if i >= w {
                    return Err(ElabError::new(format!("bit index {i} out of range (width {w})")));
                }
                Ok(self.ctx.bit(x, i))
            }
            Expr::Range(base, hi, lo) => {
                let x = self.elab_expr(base, None)?;
                let h = self.const_eval_u64(hi)? as u32;
                let l = self.const_eval_u64(lo)? as u32;
                let w = self.ctx.width_of(x);
                if h < l || h >= w {
                    return Err(ElabError::new(format!(
                        "part select [{h}:{l}] out of range (width {w})"
                    )));
                }
                Ok(self.ctx.extract(x, h, l))
            }
            Expr::Concat(parts) => {
                let mut acc: Option<ExprRef> = None;
                for p in parts {
                    let x = self.elab_expr(p, None)?;
                    acc = Some(match acc {
                        None => x,
                        Some(a) => self.ctx.concat(a, x),
                    });
                }
                acc.ok_or_else(|| ElabError::new("empty concatenation".to_string()))
            }
            Expr::Repl(count, inner) => {
                let n = self.const_eval_u64(count)?;
                if n == 0 || n > 4096 {
                    return Err(ElabError::new(format!("bad replication count {n}")));
                }
                let x = self.elab_expr(inner, None)?;
                let mut acc = x;
                for _ in 1..n {
                    acc = self.ctx.concat(acc, x);
                }
                Ok(acc)
            }
            Expr::Call(name, args) => self.elab_call(name, args, expected),
        }
    }

    fn elab_number(
        &mut self,
        size: Option<u32>,
        base: char,
        digits: &str,
        expected: Option<u32>,
    ) -> Result<ExprRef, ElabError> {
        let value = match base {
            'f' => {
                let w = expected.ok_or_else(|| {
                    ElabError::new("fill literal '0/'1 needs a width from context".to_string())
                })?;
                return Ok(if digits == "1" {
                    let v = BitVecValue::ones(w);
                    self.ctx.value(v)
                } else {
                    self.ctx.constant(0, w)
                });
            }
            'i' | 'd' => {
                let w = size.or(expected).unwrap_or(32);
                BitVecValue::from_decimal_str(digits, w.max(1))
                    .ok_or_else(|| ElabError::new(format!("bad decimal literal `{digits}`")))?
            }
            'b' => {
                let raw = BitVecValue::from_binary_str(digits)
                    .ok_or_else(|| ElabError::new(format!("bad binary literal `{digits}`")))?;
                let w = size.or(expected).unwrap_or(raw.width());
                resize(raw, w)
            }
            'h' => {
                let raw = BitVecValue::from_hex_str(digits)
                    .ok_or_else(|| ElabError::new(format!("bad hex literal `{digits}`")))?;
                let w = size.or(expected).unwrap_or(raw.width());
                resize(raw, w)
            }
            'o' => {
                let mut acc = BitVecValue::zero(64.max(3 * digits.len() as u32));
                for c in digits.chars() {
                    let d = c
                        .to_digit(8)
                        .ok_or_else(|| ElabError::new(format!("bad octal digit `{c}`")))?;
                    let w = acc.width();
                    acc = acc.shl_const(3).or(&BitVecValue::from_u64(d as u64, w));
                }
                let w = size.or(expected).unwrap_or(3 * digits.len() as u32);
                resize(acc, w)
            }
            _ => return Err(ElabError::new(format!("unsupported base `{base}`"))),
        };
        Ok(self.ctx.value(value))
    }

    /// Elaborates two operands and unifies their widths (Verilog max-width
    /// rule, zero extension).
    fn elab_pair(
        &mut self,
        a: &Expr,
        b: &Expr,
        expected: Option<u32>,
    ) -> Result<(ExprRef, ExprRef), ElabError> {
        // Elaborate the non-literal side first so literals get a width hint.
        let (x, y) = if matches!(a, Expr::Number { .. }) && !matches!(b, Expr::Number { .. }) {
            let y = self.elab_expr(b, expected)?;
            let hint = Some(self.ctx.width_of(y)).or(expected);
            let x = self.elab_expr(a, hint)?;
            (x, y)
        } else {
            let x = self.elab_expr(a, expected)?;
            let hint = Some(self.ctx.width_of(x));
            let y = self.elab_expr(b, hint)?;
            (x, y)
        };
        let w = self.ctx.width_of(x).max(self.ctx.width_of(y));
        let x = if self.ctx.width_of(x) < w { self.ctx.zext(x, w) } else { x };
        let y = if self.ctx.width_of(y) < w { self.ctx.zext(y, w) } else { y };
        Ok((x, y))
    }

    fn elab_binary(
        &mut self,
        op: BinaryAstOp,
        a: &Expr,
        b: &Expr,
        expected: Option<u32>,
    ) -> Result<ExprRef, ElabError> {
        match op {
            BinaryAstOp::LogAnd | BinaryAstOp::LogOr => {
                let x = self.elab_bool(a)?;
                let y = self.elab_bool(b)?;
                Ok(match op {
                    BinaryAstOp::LogAnd => self.ctx.and(x, y),
                    _ => self.ctx.or(x, y),
                })
            }
            BinaryAstOp::Shl | BinaryAstOp::Shr => {
                let x = self.elab_expr(a, expected)?;
                let y = self.elab_expr(b, None)?;
                let w = self.ctx.width_of(x);
                let y = self.fit(y, w);
                Ok(match op {
                    BinaryAstOp::Shl => self.ctx.shl(x, y),
                    _ => self.ctx.lshr(x, y),
                })
            }
            BinaryAstOp::Eq
            | BinaryAstOp::Ne
            | BinaryAstOp::Lt
            | BinaryAstOp::Le
            | BinaryAstOp::Gt
            | BinaryAstOp::Ge => {
                let (x, y) = self.elab_pair(a, b, None)?;
                Ok(match op {
                    BinaryAstOp::Eq => self.ctx.eq(x, y),
                    BinaryAstOp::Ne => self.ctx.ne(x, y),
                    BinaryAstOp::Lt => self.ctx.ult(x, y),
                    BinaryAstOp::Le => self.ctx.ule(x, y),
                    BinaryAstOp::Gt => self.ctx.ugt(x, y),
                    _ => self.ctx.uge(x, y),
                })
            }
            _ => {
                let (x, y) = self.elab_pair(a, b, expected)?;
                Ok(match op {
                    BinaryAstOp::Add => self.ctx.add(x, y),
                    BinaryAstOp::Sub => self.ctx.sub(x, y),
                    BinaryAstOp::Mul => self.ctx.mul(x, y),
                    BinaryAstOp::Div => self.ctx.udiv(x, y),
                    BinaryAstOp::Mod => self.ctx.urem(x, y),
                    BinaryAstOp::BitAnd => self.ctx.and(x, y),
                    BinaryAstOp::BitOr => self.ctx.or(x, y),
                    BinaryAstOp::BitXor => self.ctx.xor(x, y),
                    _ => unreachable!("handled above"),
                })
            }
        }
    }

    fn elab_call(
        &mut self,
        name: &str,
        args: &[Expr],
        _expected: Option<u32>,
    ) -> Result<ExprRef, ElabError> {
        let one_arg = |s: &mut Self, args: &[Expr]| -> Result<ExprRef, ElabError> {
            if args.len() != 1 {
                return Err(ElabError::new(format!("{name} takes exactly one argument")));
            }
            s.elab_expr(&args[0], None)
        };
        match name {
            "$countones" => {
                let x = one_arg(self, args)?;
                Ok(self.ctx.count_ones(x, 32))
            }
            "$onehot" => {
                let x = one_arg(self, args)?;
                Ok(self.ctx.onehot(x))
            }
            "$onehot0" => {
                let x = one_arg(self, args)?;
                Ok(self.ctx.onehot0(x))
            }
            "$clog2" => {
                let v = self.const_eval_u64(&args[0])?;
                let bits = if v <= 1 { 0 } else { 64 - (v - 1).leading_zeros() };
                Ok(self.ctx.constant(bits as u64, 32))
            }
            "$unsigned" | "$signed" => one_arg(self, args),
            other => Err(ElabError::new(format!(
                "system function `{other}` is not supported in RTL (SVA-only functions \
                 like $past belong in assertions)"
            ))),
        }
    }
}

fn resize(v: BitVecValue, width: u32) -> BitVecValue {
    if v.width() == width {
        v
    } else if v.width() > width {
        v.extract(width - 1, 0)
    } else {
        v.zext(width)
    }
}

fn collect_blocking_targets(stmt: &Stmt, out: &mut Vec<String>) {
    match stmt {
        Stmt::Block(ss) => ss.iter().for_each(|s| collect_blocking_targets(s, out)),
        Stmt::If { then_branch, else_branch, .. } => {
            collect_blocking_targets(then_branch, out);
            if let Some(e) = else_branch {
                collect_blocking_targets(e, out);
            }
        }
        Stmt::Case { arms, default, .. } => {
            for (_, s) in arms {
                collect_blocking_targets(s, out);
            }
            if let Some(d) = default {
                collect_blocking_targets(d, out);
            }
        }
        Stmt::Blocking { target, .. } | Stmt::NonBlocking { target, .. } => {
            out.push(target.name.clone())
        }
        Stmt::Incr(t) | Stmt::Decr(t) => out.push(t.name.clone()),
        Stmt::Empty => {}
    }
}
