//! Tokeniser for the supported Verilog subset.

use std::error::Error;
use std::fmt;

/// A source position (1-based line and column), kept on every token for
/// error reporting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds of the Verilog subset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Identifier or keyword (keywords are classified by the parser).
    Ident(String),
    /// Number literal, possibly sized/based: `42`, `8'hFF`, `'0`.
    Number {
        /// Explicit size prefix (`8` in `8'hFF`) if present.
        size: Option<u32>,
        /// Base character: `b`, `h`, `d`, `o`, or `i` for plain integers,
        /// `f` for the fill literals `'0`/`'1`.
        base: char,
        /// Digit payload with underscores removed.
        digits: String,
    },
    /// Punctuation / operator token.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Number { digits, .. } => write!(f, "number `{digits}`"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// The token payload.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Lexing failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Position of the offending character.
    pub pos: Pos,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl Error for LexError {}

/// Multi-character operators, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "===", "!==", "<->", "|->", "|=>", "##", "++", "--", "&&", "||", "==", "!=",
    "<=", ">=", "<<", ">>", "+=", "-=", "**", "::", "(", ")", "[", "]", "{", "}", ";", ",", ":",
    "?", "@", "#", "=", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", ".", "$", "'",
];

/// Tokenises `src`.
///
/// # Errors
/// Returns [`LexError`] on unexpected characters or malformed literals.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    let advance = |i: &mut usize, line: &mut u32, col: &mut u32, chars: &[char]| {
        if chars[*i] == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
        *i += 1;
    };

    while i < chars.len() {
        let c = chars[i];
        let pos = Pos { line, col };
        // Whitespace.
        if c.is_whitespace() {
            advance(&mut i, &mut line, &mut col, &chars);
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < chars.len() {
            if chars[i + 1] == '/' {
                while i < chars.len() && chars[i] != '\n' {
                    advance(&mut i, &mut line, &mut col, &chars);
                }
                continue;
            }
            if chars[i + 1] == '*' {
                advance(&mut i, &mut line, &mut col, &chars);
                advance(&mut i, &mut line, &mut col, &chars);
                loop {
                    if i + 1 >= chars.len() {
                        return Err(LexError {
                            pos,
                            message: "unterminated block comment".to_string(),
                        });
                    }
                    if chars[i] == '*' && chars[i + 1] == '/' {
                        advance(&mut i, &mut line, &mut col, &chars);
                        advance(&mut i, &mut line, &mut col, &chars);
                        break;
                    }
                    advance(&mut i, &mut line, &mut col, &chars);
                }
                continue;
            }
        }
        // Identifiers / keywords / system identifiers ($past etc.).
        if c.is_ascii_alphabetic() || c == '_' || c == '$' {
            let start = i;
            advance(&mut i, &mut line, &mut col, &chars);
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                advance(&mut i, &mut line, &mut col, &chars);
            }
            let text: String = chars[start..i].iter().collect();
            if text == "$" {
                return Err(LexError { pos, message: "stray `$`".to_string() });
            }
            out.push(Token { tok: Tok::Ident(text), pos });
            continue;
        }
        // Numbers, including based literals and fill literals '0 / '1.
        if c.is_ascii_digit() || c == '\'' {
            let mut size: Option<u32> = None;
            if c.is_ascii_digit() {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    advance(&mut i, &mut line, &mut col, &chars);
                }
                let text: String = chars[start..i].iter().filter(|c| **c != '_').collect();
                if i < chars.len() && chars[i] == '\'' {
                    size = Some(text.parse().map_err(|_| LexError {
                        pos,
                        message: format!("bad size prefix `{text}`"),
                    })?);
                } else {
                    out.push(Token {
                        tok: Tok::Number { size: None, base: 'i', digits: text },
                        pos,
                    });
                    continue;
                }
            }
            // At a tick.
            debug_assert_eq!(chars[i], '\'');
            advance(&mut i, &mut line, &mut col, &chars); // consume '
            if i >= chars.len() {
                return Err(LexError { pos, message: "dangling `'`".to_string() });
            }
            let base_char = chars[i].to_ascii_lowercase();
            if size.is_none() && (base_char == '0' || base_char == '1') {
                // Fill literal '0 / '1.
                advance(&mut i, &mut line, &mut col, &chars);
                out.push(Token {
                    tok: Tok::Number { size: None, base: 'f', digits: base_char.to_string() },
                    pos,
                });
                continue;
            }
            if !matches!(base_char, 'b' | 'h' | 'd' | 'o') {
                return Err(LexError {
                    pos,
                    message: format!("unsupported number base `{base_char}`"),
                });
            }
            advance(&mut i, &mut line, &mut col, &chars); // consume base
            let dstart = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                advance(&mut i, &mut line, &mut col, &chars);
            }
            let digits: String = chars[dstart..i].iter().filter(|c| **c != '_').collect();
            if digits.is_empty() {
                return Err(LexError { pos, message: "number has no digits".to_string() });
            }
            out.push(Token { tok: Tok::Number { size, base: base_char, digits }, pos });
            continue;
        }
        // Operators / punctuation by maximal munch.
        let mut matched = false;
        for p in PUNCTS {
            let plen = p.chars().count();
            if i + plen <= chars.len() && chars[i..i + plen].iter().collect::<String>() == **p {
                for _ in 0..plen {
                    advance(&mut i, &mut line, &mut col, &chars);
                }
                out.push(Token { tok: Tok::Punct(p), pos });
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(LexError { pos, message: format!("unexpected character `{c}`") });
        }
    }
    out.push(Token { tok: Tok::Eof, pos: Pos { line, col } });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_and_keywords() {
        let toks = kinds("module foo_bar endmodule");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("module".into()),
                Tok::Ident("foo_bar".into()),
                Tok::Ident("endmodule".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 8'hFF 32'b0 4'd12 '0"),
            vec![
                Tok::Number { size: None, base: 'i', digits: "42".into() },
                Tok::Number { size: Some(8), base: 'h', digits: "FF".into() },
                Tok::Number { size: Some(32), base: 'b', digits: "0".into() },
                Tok::Number { size: Some(4), base: 'd', digits: "12".into() },
                Tok::Number { size: None, base: 'f', digits: "0".into() },
                Tok::Eof
            ]
        );
    }

    #[test]
    fn underscores_in_numbers() {
        assert_eq!(
            kinds("16'b1010_1010_0000_1111"),
            vec![
                Tok::Number { size: Some(16), base: 'b', digits: "1010101000001111".into() },
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_maximal_munch() {
        assert_eq!(
            kinds("<= < == = ++ + |-> |=>"),
            vec![
                Tok::Punct("<="),
                Tok::Punct("<"),
                Tok::Punct("=="),
                Tok::Punct("="),
                Tok::Punct("++"),
                Tok::Punct("+"),
                Tok::Punct("|->"),
                Tok::Punct("|=>"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = kinds("a // line comment\nb /* block\ncomment */ c");
        assert_eq!(
            toks,
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Ident("c".into()), Tok::Eof]
        );
    }

    #[test]
    fn system_functions() {
        assert_eq!(
            kinds("$past(x)"),
            vec![
                Tok::Ident("$past".into()),
                Tok::Punct("("),
                Tok::Ident("x".into()),
                Tok::Punct(")"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn errors() {
        assert!(lex("`bad").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("8'x0").is_err());
        assert!(lex("8'").is_err());
    }
}
