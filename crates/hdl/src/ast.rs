//! Abstract syntax tree for the Verilog subset.
//!
//! The expression AST is shared with the `genfv-sva` assertion language,
//! which layers temporal operators on top of it.

use crate::lexer::Pos;

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnaryAstOp {
    /// Bitwise complement `~`.
    BitNot,
    /// Logical negation `!` (operand coerced to 1 bit).
    LogNot,
    /// Arithmetic negation `-`.
    Neg,
    /// Reduction AND `&x`.
    RedAnd,
    /// Reduction OR `|x`.
    RedOr,
    /// Reduction XOR `^x`.
    RedXor,
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinaryAstOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (unsigned)
    Div,
    /// `%` (unsigned)
    Mod,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (operands coerced to 1 bit)
    LogAnd,
    /// `||` (operands coerced to 1 bit)
    LogOr,
}

/// Expression AST nodes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// Number literal as lexed; width resolution happens at elaboration.
    Number {
        /// Explicit size (`8` in `8'hFF`).
        size: Option<u32>,
        /// Base char: `b`/`h`/`d`/`o`, `i` for bare integers, `f` for `'0`/`'1`.
        base: char,
        /// Digits with underscores removed.
        digits: String,
    },
    /// Identifier reference.
    Ident(String),
    /// Unary application.
    Unary(UnaryAstOp, Box<Expr>),
    /// Binary application.
    Binary(BinaryAstOp, Box<Expr>, Box<Expr>),
    /// `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Bit select `x[i]` (constant index).
    Index(Box<Expr>, Box<Expr>),
    /// Part select `x[hi:lo]` (constant bounds).
    Range(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Concatenation `{a, b, c}` (first element highest).
    Concat(Vec<Expr>),
    /// Replication `{n{x}}` (constant count).
    Repl(Box<Expr>, Box<Expr>),
    /// System/function call such as `$countones(x)`; the HDL elaborator
    /// supports a fixed set, the SVA compiler adds temporal ones.
    Call(String, Vec<Expr>),
}

/// Assignment target (whole identifiers only in this subset).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LValue {
    /// Target net/register name.
    pub name: String,
    /// Source position.
    pub pos: Pos,
}

/// Procedural statements.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Stmt {
    /// `begin ... end`.
    Block(Vec<Stmt>),
    /// `if (cond) then [else els]`.
    If {
        /// Condition (coerced to 1 bit).
        cond: Expr,
        /// Then branch.
        then_branch: Box<Stmt>,
        /// Optional else branch.
        else_branch: Option<Box<Stmt>>,
    },
    /// `case (subject) v1, v2: stmt ... default: stmt endcase`.
    Case {
        /// Scrutinee.
        subject: Expr,
        /// Arms: labels and body.
        arms: Vec<(Vec<Expr>, Stmt)>,
        /// `default:` body.
        default: Option<Box<Stmt>>,
    },
    /// Non-blocking assignment `x <= e;`.
    NonBlocking {
        /// Target register.
        target: LValue,
        /// Right-hand side.
        rhs: Expr,
    },
    /// Blocking assignment `x = e;` (only in `always_comb`).
    Blocking {
        /// Target net.
        target: LValue,
        /// Right-hand side.
        rhs: Expr,
    },
    /// `x++;` — sugar for `x <= x + 1`.
    Incr(LValue),
    /// `x--;` — sugar for `x <= x - 1`.
    Decr(LValue),
    /// Empty statement `;`.
    Empty,
}

/// Port direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PortDir {
    /// `input`
    Input,
    /// `output`
    Output,
}

/// A `[hi:lo]` range with constant (parameter) expressions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RangeDecl {
    /// High (MSB) index.
    pub hi: Expr,
    /// Low (LSB) index.
    pub lo: Expr,
}

/// A module port.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Port {
    /// Direction.
    pub dir: PortDir,
    /// Port name.
    pub name: String,
    /// Optional vector range.
    pub range: Option<RangeDecl>,
    /// Source position.
    pub pos: Pos,
}

/// Module-level items.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Item {
    /// `logic [7:0] a, b;` / `wire ...` / `reg ...`.
    Net {
        /// Optional vector range.
        range: Option<RangeDecl>,
        /// Declared names.
        names: Vec<String>,
        /// Position.
        pos: Pos,
    },
    /// `parameter N = 8;` or `localparam ...`.
    Param {
        /// Parameter name.
        name: String,
        /// Value expression (constant).
        value: Expr,
        /// Position.
        pos: Pos,
    },
    /// `assign x = e;`.
    Assign {
        /// Target net.
        target: String,
        /// Driven expression.
        rhs: Expr,
        /// Position.
        pos: Pos,
    },
    /// Clocked process: `always_ff @(posedge clk [or posedge rst]) body`
    /// (plain `always` with the same sensitivity is accepted too).
    AlwaysFf {
        /// Clock signal name.
        clock: String,
        /// Asynchronous reset signal from the sensitivity list, if any.
        async_reset: Option<String>,
        /// Body statement.
        body: Stmt,
        /// Position.
        pos: Pos,
    },
    /// Combinational process `always_comb body` / `always @(*) body`.
    AlwaysComb {
        /// Body statement.
        body: Stmt,
        /// Position.
        pos: Pos,
    },
}

/// A parsed module.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Header parameters (`#(parameter W = 8)`).
    pub header_params: Vec<(String, Expr)>,
    /// Ports in declaration order.
    pub ports: Vec<Port>,
    /// Body items.
    pub items: Vec<Item>,
    /// Position of the `module` keyword.
    pub pos: Pos,
}

impl Module {
    /// Names of all registers assigned in clocked processes.
    pub fn clocked_targets(&self) -> Vec<String> {
        let mut out = Vec::new();
        for item in &self.items {
            if let Item::AlwaysFf { body, .. } = item {
                collect_targets(body, &mut out);
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

fn collect_targets(stmt: &Stmt, out: &mut Vec<String>) {
    match stmt {
        Stmt::Block(ss) => ss.iter().for_each(|s| collect_targets(s, out)),
        Stmt::If { then_branch, else_branch, .. } => {
            collect_targets(then_branch, out);
            if let Some(e) = else_branch {
                collect_targets(e, out);
            }
        }
        Stmt::Case { arms, default, .. } => {
            for (_, s) in arms {
                collect_targets(s, out);
            }
            if let Some(d) = default {
                collect_targets(d, out);
            }
        }
        Stmt::NonBlocking { target, .. }
        | Stmt::Blocking { target, .. }
        | Stmt::Incr(target)
        | Stmt::Decr(target) => out.push(target.name.clone()),
        Stmt::Empty => {}
    }
}
