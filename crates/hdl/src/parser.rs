//! Recursive-descent parser for the Verilog subset.
//!
//! The expression grammar (with standard Verilog precedence) is exposed via
//! [`Parser::parse_expr_only`] so the SVA frontend can reuse it for the
//! boolean layer of assertions.

use crate::ast::*;
use crate::lexer::{lex, LexError, Pos, Tok, Token};
use std::error::Error;
use std::fmt;

/// Parse failure with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Position of the offending token.
    pub pos: Pos,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { pos: e.pos, message: e.message }
    }
}

/// Parses a source file into its modules.
///
/// # Errors
/// Returns [`ParseError`] on any lexical or syntactic problem.
pub fn parse_source(src: &str) -> Result<Vec<Module>, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut modules = Vec::new();
    while !p.at_eof() {
        modules.push(p.parse_module()?);
    }
    Ok(modules)
}

/// Parses a standalone expression (used by tests and the SVA frontend).
///
/// # Errors
/// Returns [`ParseError`] if the input is not a single valid expression.
pub fn parse_expression(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.parse_expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Token-stream parser; create via [`Parser::from_source`].
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Builds a parser over `src`.
    ///
    /// # Errors
    /// Returns [`ParseError`] when lexing fails.
    pub fn from_source(src: &str) -> Result<Self, ParseError> {
        Ok(Parser { tokens: lex(src)?, pos: 0 })
    }

    /// Builds a parser over an existing token stream (the final token should
    /// be [`Tok::Eof`]; one is appended if missing). Used by the SVA
    /// frontend to parse the boolean layer out of a larger temporal
    /// expression.
    pub fn from_tokens(mut tokens: Vec<Token>) -> Self {
        if !matches!(tokens.last().map(|t| &t.tok), Some(Tok::Eof)) {
            let pos = tokens.last().map(|t| t.pos).unwrap_or(Pos { line: 1, col: 1 });
            tokens.push(Token { tok: Tok::Eof, pos });
        }
        Parser { tokens, pos: 0 }
    }

    /// Number of tokens consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Parses a full expression and requires end-of-input.
    ///
    /// # Errors
    /// Returns [`ParseError`] on malformed input or trailing tokens.
    pub fn parse_expr_only(mut self) -> Result<Expr, ParseError> {
        let e = self.parse_expr()?;
        self.expect_eof()?;
        Ok(e)
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek_pos(&self) -> Pos {
        self.tokens[self.pos].pos
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { pos: self.peek_pos(), message: message.into() })
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            self.error(format!("unexpected {} after expression", self.peek()))
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.error(format!("expected `{p}`, found {}", self.peek()))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.error(format!("expected keyword `{kw}`, found {}", self.peek()))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) if !is_keyword(&s) => {
                self.bump();
                Ok(s)
            }
            other => self.error(format!("expected identifier, found {other}")),
        }
    }

    // --- module structure -------------------------------------------------

    fn parse_module(&mut self) -> Result<Module, ParseError> {
        let pos = self.peek_pos();
        self.expect_kw("module")?;
        let name = self.expect_ident()?;
        let mut header_params = Vec::new();
        if self.eat_punct("#") {
            self.expect_punct("(")?;
            loop {
                self.eat_kw("parameter");
                let pname = self.expect_ident()?;
                self.expect_punct("=")?;
                let value = self.parse_expr()?;
                header_params.push((pname, value));
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        let mut ports = Vec::new();
        if self.eat_punct("(") && !self.eat_punct(")") {
            self.parse_port_list(&mut ports)?;
            self.expect_punct(")")?;
        }
        self.expect_punct(";")?;
        let mut items = Vec::new();
        while !self.eat_kw("endmodule") {
            if self.at_eof() {
                return self.error("unexpected end of input inside module");
            }
            items.push(self.parse_item()?);
        }
        Ok(Module { name, header_params, ports, items, pos })
    }

    fn parse_port_list(&mut self, ports: &mut Vec<Port>) -> Result<(), ParseError> {
        let mut dir = PortDir::Input;
        let mut range: Option<RangeDecl> = None;
        loop {
            let pos = self.peek_pos();
            if self.eat_kw("input") {
                dir = PortDir::Input;
                self.eat_net_kind();
                range = self.parse_opt_range()?;
            } else if self.eat_kw("output") {
                dir = PortDir::Output;
                self.eat_net_kind();
                range = self.parse_opt_range()?;
            }
            let name = self.expect_ident()?;
            ports.push(Port { dir, name, range: range.clone(), pos });
            if !self.eat_punct(",") {
                break;
            }
        }
        Ok(())
    }

    fn eat_net_kind(&mut self) -> bool {
        self.eat_kw("logic") || self.eat_kw("wire") || self.eat_kw("reg") || self.eat_kw("bit")
    }

    fn parse_opt_range(&mut self) -> Result<Option<RangeDecl>, ParseError> {
        if self.eat_punct("[") {
            let hi = self.parse_expr()?;
            self.expect_punct(":")?;
            let lo = self.parse_expr()?;
            self.expect_punct("]")?;
            Ok(Some(RangeDecl { hi, lo }))
        } else {
            Ok(None)
        }
    }

    fn parse_item(&mut self) -> Result<Item, ParseError> {
        let pos = self.peek_pos();
        if self.eat_kw("parameter") || self.eat_kw("localparam") {
            let name = self.expect_ident()?;
            self.expect_punct("=")?;
            let value = self.parse_expr()?;
            self.expect_punct(";")?;
            return Ok(Item::Param { name, value, pos });
        }
        if self.eat_net_kind() {
            let range = self.parse_opt_range()?;
            let mut names = vec![self.expect_ident()?];
            // `logic [7:0] x = expr;` initialiser is not supported — nets
            // are driven by assign/always in this subset.
            while self.eat_punct(",") {
                names.push(self.expect_ident()?);
            }
            self.expect_punct(";")?;
            return Ok(Item::Net { range, names, pos });
        }
        if self.eat_kw("assign") {
            let target = self.expect_ident()?;
            self.expect_punct("=")?;
            let rhs = self.parse_expr()?;
            self.expect_punct(";")?;
            return Ok(Item::Assign { target, rhs, pos });
        }
        if self.eat_kw("always_comb") {
            let body = self.parse_stmt()?;
            return Ok(Item::AlwaysComb { body, pos });
        }
        let is_ff = if self.eat_kw("always_ff") {
            true
        } else if self.eat_kw("always") {
            false
        } else {
            return self.error(format!("expected module item, found {}", self.peek()));
        };
        // `always @(*)` → combinational; otherwise clocked.
        self.expect_punct("@")?;
        self.expect_punct("(")?;
        if !is_ff && self.eat_punct("*") {
            self.expect_punct(")")?;
            let body = self.parse_stmt()?;
            return Ok(Item::AlwaysComb { body, pos });
        }
        self.expect_kw("posedge")?;
        let clock = self.expect_ident()?;
        let mut async_reset = None;
        if self.eat_kw("or") {
            self.expect_kw("posedge")?;
            async_reset = Some(self.expect_ident()?);
        }
        self.expect_punct(")")?;
        let body = self.parse_stmt()?;
        Ok(Item::AlwaysFf { clock, async_reset, body, pos })
    }

    // --- statements ---------------------------------------------------------

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw("begin") {
            let mut stmts = Vec::new();
            while !self.eat_kw("end") {
                if self.at_eof() {
                    return self.error("unexpected end of input inside begin/end");
                }
                stmts.push(self.parse_stmt()?);
            }
            return Ok(Stmt::Block(stmts));
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let then_branch = Box::new(self.parse_stmt()?);
            let else_branch =
                if self.eat_kw("else") { Some(Box::new(self.parse_stmt()?)) } else { None };
            return Ok(Stmt::If { cond, then_branch, else_branch });
        }
        if self.eat_kw("case") || self.eat_kw("unique") && self.eat_kw("case") {
            self.expect_punct("(")?;
            let subject = self.parse_expr()?;
            self.expect_punct(")")?;
            let mut arms = Vec::new();
            let mut default = None;
            while !self.eat_kw("endcase") {
                if self.at_eof() {
                    return self.error("unexpected end of input inside case");
                }
                if self.eat_kw("default") {
                    self.expect_punct(":")?;
                    default = Some(Box::new(self.parse_stmt()?));
                    continue;
                }
                let mut labels = vec![self.parse_expr()?];
                while self.eat_punct(",") {
                    labels.push(self.parse_expr()?);
                }
                self.expect_punct(":")?;
                let body = self.parse_stmt()?;
                arms.push((labels, body));
            }
            return Ok(Stmt::Case { subject, arms, default });
        }
        if self.eat_punct(";") {
            return Ok(Stmt::Empty);
        }
        // Assignment or increment/decrement.
        let pos = self.peek_pos();
        let name = self.expect_ident()?;
        let target = LValue { name, pos };
        if self.eat_punct("++") {
            self.expect_punct(";")?;
            return Ok(Stmt::Incr(target));
        }
        if self.eat_punct("--") {
            self.expect_punct(";")?;
            return Ok(Stmt::Decr(target));
        }
        if self.eat_punct("<=") {
            let rhs = self.parse_expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::NonBlocking { target, rhs });
        }
        if self.eat_punct("=") {
            let rhs = self.parse_expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Blocking { target, rhs });
        }
        if self.eat_punct("+=") {
            let rhs = self.parse_expr()?;
            self.expect_punct(";")?;
            let lhs = Expr::Ident(target.name.clone());
            return Ok(Stmt::NonBlocking {
                target,
                rhs: Expr::Binary(BinaryAstOp::Add, Box::new(lhs), Box::new(rhs)),
            });
        }
        self.error(format!("expected assignment operator, found {}", self.peek()))
    }

    // --- expressions ----------------------------------------------------------

    /// Parses a full (ternary-level) expression.
    ///
    /// # Errors
    /// Returns [`ParseError`] on malformed input.
    pub fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let cond = self.parse_binary(0)?;
        if self.eat_punct("?") {
            let t = self.parse_expr()?;
            self.expect_punct(":")?;
            let e = self.parse_expr()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(t), Box::new(e)))
        } else {
            Ok(cond)
        }
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::Punct("||") => (BinaryAstOp::LogOr, 1),
                Tok::Punct("&&") => (BinaryAstOp::LogAnd, 2),
                Tok::Punct("|") => (BinaryAstOp::BitOr, 3),
                Tok::Punct("^") => (BinaryAstOp::BitXor, 4),
                Tok::Punct("&") => (BinaryAstOp::BitAnd, 5),
                Tok::Punct("==") => (BinaryAstOp::Eq, 6),
                Tok::Punct("!=") => (BinaryAstOp::Ne, 6),
                Tok::Punct("<") => (BinaryAstOp::Lt, 7),
                Tok::Punct("<=") => (BinaryAstOp::Le, 7),
                Tok::Punct(">") => (BinaryAstOp::Gt, 7),
                Tok::Punct(">=") => (BinaryAstOp::Ge, 7),
                Tok::Punct("<<") => (BinaryAstOp::Shl, 8),
                Tok::Punct(">>") => (BinaryAstOp::Shr, 8),
                Tok::Punct("+") => (BinaryAstOp::Add, 9),
                Tok::Punct("-") => (BinaryAstOp::Sub, 9),
                Tok::Punct("*") => (BinaryAstOp::Mul, 10),
                Tok::Punct("/") => (BinaryAstOp::Div, 10),
                Tok::Punct("%") => (BinaryAstOp::Mod, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        let op = match self.peek() {
            Tok::Punct("~") => Some(UnaryAstOp::BitNot),
            Tok::Punct("!") => Some(UnaryAstOp::LogNot),
            Tok::Punct("-") => Some(UnaryAstOp::Neg),
            Tok::Punct("&") => Some(UnaryAstOp::RedAnd),
            Tok::Punct("|") => Some(UnaryAstOp::RedOr),
            Tok::Punct("^") => Some(UnaryAstOp::RedXor),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.parse_unary()?;
            return Ok(Expr::Unary(op, Box::new(operand)));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_primary()?;
        loop {
            if self.eat_punct("[") {
                let first = self.parse_expr()?;
                if self.eat_punct(":") {
                    let lo = self.parse_expr()?;
                    self.expect_punct("]")?;
                    e = Expr::Range(Box::new(e), Box::new(first), Box::new(lo));
                } else {
                    self.expect_punct("]")?;
                    e = Expr::Index(Box::new(e), Box::new(first));
                }
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Number { size, base, digits } => {
                self.bump();
                Ok(Expr::Number { size, base, digits })
            }
            Tok::Punct("(") => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Punct("{") => {
                self.bump();
                let first = self.parse_expr()?;
                // Replication {n{x}}?
                if self.eat_punct("{") {
                    let inner = self.parse_expr()?;
                    self.expect_punct("}")?;
                    self.expect_punct("}")?;
                    return Ok(Expr::Repl(Box::new(first), Box::new(inner)));
                }
                let mut parts = vec![first];
                while self.eat_punct(",") {
                    parts.push(self.parse_expr()?);
                }
                self.expect_punct("}")?;
                Ok(Expr::Concat(parts))
            }
            Tok::Ident(name) => {
                if is_keyword(&name) {
                    return self.error(format!("unexpected keyword `{name}` in expression"));
                }
                self.bump();
                // System calls take parenthesised args; plain identifiers
                // never do in this subset.
                if name.starts_with('$') {
                    self.expect_punct("(")?;
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        args.push(self.parse_expr()?);
                        while self.eat_punct(",") {
                            args.push(self.parse_expr()?);
                        }
                        self.expect_punct(")")?;
                    }
                    return Ok(Expr::Call(name, args));
                }
                Ok(Expr::Ident(name))
            }
            other => self.error(format!("expected expression, found {other}")),
        }
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "module"
            | "endmodule"
            | "input"
            | "output"
            | "logic"
            | "wire"
            | "reg"
            | "bit"
            | "parameter"
            | "localparam"
            | "assign"
            | "always"
            | "always_ff"
            | "always_comb"
            | "posedge"
            | "negedge"
            | "begin"
            | "end"
            | "if"
            | "else"
            | "case"
            | "endcase"
            | "default"
            | "or"
            | "property"
            | "endproperty"
            | "assert"
            | "assume"
            | "unique"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_listing_1() {
        // Listing 1 of the paper, modulo whitespace.
        let src = r#"
module sync_counters (input clk, rst, output logic [31:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 32'b0;
      count2 <= 32'b0;
    end else begin
      count1++;
      count2++;
    end
  end
endmodule
"#;
        let mods = parse_source(src).unwrap();
        assert_eq!(mods.len(), 1);
        let m = &mods[0];
        assert_eq!(m.name, "sync_counters");
        assert_eq!(m.ports.len(), 4);
        assert_eq!(m.ports[0].name, "clk");
        assert_eq!(m.ports[1].name, "rst");
        assert_eq!(m.ports[2].name, "count1");
        assert!(m.ports[2].range.is_some());
        assert_eq!(m.clocked_targets(), vec!["count1".to_string(), "count2".to_string()]);
        match &m.items[0] {
            Item::AlwaysFf { clock, async_reset, .. } => {
                assert_eq!(clock, "clk");
                assert_eq!(async_reset.as_deref(), Some("rst"));
            }
            other => panic!("expected always_ff, got {other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expression("a + b * c").unwrap();
        match e {
            Expr::Binary(BinaryAstOp::Add, _, rhs) => {
                assert!(matches!(*rhs, Expr::Binary(BinaryAstOp::Mul, _, _)));
            }
            other => panic!("bad tree: {other:?}"),
        }
        let e = parse_expression("a == b && c == d").unwrap();
        assert!(matches!(e, Expr::Binary(BinaryAstOp::LogAnd, _, _)));
    }

    #[test]
    fn unary_and_reduction() {
        let e = parse_expression("&count1").unwrap();
        assert!(matches!(e, Expr::Unary(UnaryAstOp::RedAnd, _)));
        let e = parse_expression("^(a & b)").unwrap();
        assert!(matches!(e, Expr::Unary(UnaryAstOp::RedXor, _)));
        let e = parse_expression("~a + -b").unwrap();
        assert!(matches!(e, Expr::Binary(BinaryAstOp::Add, _, _)));
    }

    #[test]
    fn selects_and_concat() {
        let e = parse_expression("x[3]").unwrap();
        assert!(matches!(e, Expr::Index(_, _)));
        let e = parse_expression("x[7:4]").unwrap();
        assert!(matches!(e, Expr::Range(_, _, _)));
        let e = parse_expression("{a, b, 2'b01}").unwrap();
        assert!(matches!(e, Expr::Concat(ref v) if v.len() == 3));
        let e = parse_expression("{4{x}}").unwrap();
        assert!(matches!(e, Expr::Repl(_, _)));
    }

    #[test]
    fn ternary() {
        let e = parse_expression("sel ? a : b").unwrap();
        assert!(matches!(e, Expr::Ternary(_, _, _)));
    }

    #[test]
    fn system_calls() {
        let e = parse_expression("$countones(x)").unwrap();
        assert!(matches!(e, Expr::Call(ref n, ref a) if n == "$countones" && a.len() == 1));
    }

    #[test]
    fn module_with_params_and_assign() {
        let src = r#"
module modn #(parameter N = 10) (input clk, rst, output logic [3:0] cnt);
  localparam MAX = N - 1;
  logic [3:0] next_cnt;
  assign next_cnt = (cnt == MAX) ? 4'd0 : cnt + 4'd1;
  always_ff @(posedge clk) begin
    if (rst) cnt <= '0;
    else cnt <= next_cnt;
  end
endmodule
"#;
        let mods = parse_source(src).unwrap();
        let m = &mods[0];
        assert_eq!(m.header_params.len(), 1);
        assert!(m.items.iter().any(|i| matches!(i, Item::Param { name, .. } if name == "MAX")));
        assert!(m
            .items
            .iter()
            .any(|i| matches!(i, Item::Assign { target, .. } if target == "next_cnt")));
    }

    #[test]
    fn case_statement() {
        let src = r#"
module fsm (input clk, input [1:0] sel, output logic [1:0] st);
  always_ff @(posedge clk) begin
    case (st)
      2'd0: st <= 2'd1;
      2'd1, 2'd2: st <= sel;
      default: st <= 2'd0;
    endcase
  end
endmodule
"#;
        let mods = parse_source(src).unwrap();
        match &mods[0].items[0] {
            Item::AlwaysFf { body, .. } => match body {
                Stmt::Block(ss) => match &ss[0] {
                    Stmt::Case { arms, default, .. } => {
                        assert_eq!(arms.len(), 2);
                        assert_eq!(arms[1].0.len(), 2);
                        assert!(default.is_some());
                    }
                    other => panic!("expected case, got {other:?}"),
                },
                Stmt::Case { .. } => {}
                other => panic!("expected block, got {other:?}"),
            },
            other => panic!("expected always_ff, got {other:?}"),
        }
    }

    #[test]
    fn always_comb_and_star() {
        let src = r#"
module comb (input [3:0] a, b, output logic [3:0] y, z);
  always_comb begin
    y = a & b;
  end
  always @(*) begin
    z = a | b;
  end
endmodule
"#;
        let mods = parse_source(src).unwrap();
        let combs = mods[0].items.iter().filter(|i| matches!(i, Item::AlwaysComb { .. })).count();
        assert_eq!(combs, 2);
    }

    #[test]
    fn errors_have_positions() {
        let err = parse_source("module m (input clk; endmodule").unwrap_err();
        assert!(err.pos.line >= 1);
        assert!(err.to_string().contains("parse error"));
        assert!(parse_expression("a +").is_err());
        assert!(parse_expression("(a").is_err());
        assert!(parse_expression("a b").is_err());
    }

    #[test]
    fn multiple_modules() {
        let src = "module a (); endmodule module b (); endmodule";
        let mods = parse_source(src).unwrap();
        assert_eq!(mods.len(), 2);
        assert_eq!(mods[1].name, "b");
    }
}
