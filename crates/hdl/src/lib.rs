//! # genfv-hdl — Verilog-subset RTL frontend
//!
//! Lexer, parser, and elaborator for the synthesizable Verilog/SystemVerilog
//! subset used by the `genfv` design corpus (clocked `always` blocks with
//! if/else/case, non-blocking assignments and `++`, `assign` nets,
//! `always_comb`, parameters, vectors, the usual expression operators).
//!
//! Elaboration produces a [`genfv_ir::TransitionSystem`]: registers become
//! state variables with next-state functions obtained by symbolic execution
//! of the procedural code, reset behaviour is converted into initial-state
//! values, and ports plus internal nets are published as named signals so
//! assertions and traces can refer to them.
//!
//! ```
//! use genfv_ir::Context;
//!
//! let src = r#"
//! module counter (input clk, rst, output logic [7:0] count);
//!   always_ff @(posedge clk) begin
//!     if (rst) count <= '0;
//!     else count <= count + 8'd1;
//!   end
//! endmodule
//! "#;
//! let module = genfv_hdl::parse_source(src)?.remove(0);
//! let mut ctx = Context::new();
//! let ts = genfv_hdl::elaborate(&mut ctx, &module)?;
//! assert_eq!(ts.states().len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod elaborate;
pub mod lexer;
pub mod parser;

pub use ast::{Expr, Module};
pub use elaborate::{elaborate, elaborate_with, ElabError, ElaborateOptions};
pub use lexer::{lex, LexError, Pos, Tok, Token};
pub use parser::{parse_expression, parse_source, ParseError, Parser};
