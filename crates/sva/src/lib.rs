//! # genfv-sva — SystemVerilog-assertion subset
//!
//! Parser and compiler for the assertion fragment the `genfv` flows emit
//! and consume:
//!
//! * boolean layer: the full `genfv-hdl` expression language plus the
//!   sampled-value functions `$past`, `$stable`, `$changed`, `$rose`,
//!   `$fell`, `$onehot`, `$onehot0`, `$countones`;
//! * temporal layer: bounded-delay sequences (`a ##1 b ##2 c`),
//!   overlapping/non-overlapping implication (`|->`, `|=>`), optional
//!   clocking events (accepted, ignored — the model is already clocked)
//!   and `disable iff`.
//!
//! Assertions compile to synchronous monitors over a
//! [`genfv_ir::TransitionSystem`]: a 1-bit "ok" expression plus
//! zero-initialised history registers, ready for BMC/k-induction.
//!
//! [`parse_assertions`] scans free-form text (e.g. an LLM completion) and
//! extracts every well-formed assertion, which is how the GenAI flows
//! validate model output before it gets anywhere near a proof.
//!
//! ```
//! use genfv_sva::parse_assertion;
//! // The paper's Listing 2:
//! let a = parse_assertion("property equal_count; &count1 |-> &count2; endproperty")?;
//! assert_eq!(a.name.as_deref(), Some("equal_count"));
//! # Ok::<(), genfv_hdl::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod parser;
pub mod render;

pub use ast::{Assertion, PropBody, SeqStep, Sequence};
pub use compile::{CompileError, CompiledProperty, PropertyCompiler};
pub use parser::{parse_assertion, parse_assertions};
pub use render::{render_assertion, render_expr, render_prop_body};
