//! Rendering assertions back to SVA text.
//!
//! The flows keep the *text* of every accepted lemma for reports and
//! re-validation; this module reconstructs canonical source from the AST
//! (fully parenthesised, so round-tripping through the parser is exact in
//! structure).

use crate::ast::{Assertion, PropBody, Sequence};
use genfv_hdl::ast::{BinaryAstOp, Expr, UnaryAstOp};
use std::fmt::Write as _;

/// Renders a boolean-layer expression.
pub fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Number { size, base, digits } => match (size, base) {
            (Some(s), b) => format!("{s}'{b}{digits}"),
            (None, 'i') => digits.clone(),
            (None, 'f') => format!("'{digits}"),
            (None, b) => format!("'{b}{digits}"),
        },
        Expr::Ident(n) => n.clone(),
        Expr::Unary(op, a) => {
            let sym = match op {
                UnaryAstOp::BitNot => "~",
                UnaryAstOp::LogNot => "!",
                UnaryAstOp::Neg => "-",
                UnaryAstOp::RedAnd => "&",
                UnaryAstOp::RedOr => "|",
                UnaryAstOp::RedXor => "^",
            };
            format!("{sym}({})", render_expr(a))
        }
        Expr::Binary(op, a, b) => {
            let sym = match op {
                BinaryAstOp::Add => "+",
                BinaryAstOp::Sub => "-",
                BinaryAstOp::Mul => "*",
                BinaryAstOp::Div => "/",
                BinaryAstOp::Mod => "%",
                BinaryAstOp::BitAnd => "&",
                BinaryAstOp::BitOr => "|",
                BinaryAstOp::BitXor => "^",
                BinaryAstOp::Shl => "<<",
                BinaryAstOp::Shr => ">>",
                BinaryAstOp::Lt => "<",
                BinaryAstOp::Le => "<=",
                BinaryAstOp::Gt => ">",
                BinaryAstOp::Ge => ">=",
                BinaryAstOp::Eq => "==",
                BinaryAstOp::Ne => "!=",
                BinaryAstOp::LogAnd => "&&",
                BinaryAstOp::LogOr => "||",
            };
            format!("({} {sym} {})", render_expr(a), render_expr(b))
        }
        Expr::Ternary(c, t, f) => {
            format!("({} ? {} : {})", render_expr(c), render_expr(t), render_expr(f))
        }
        Expr::Index(b, i) => format!("{}[{}]", render_expr(b), render_expr(i)),
        Expr::Range(b, hi, lo) => {
            format!("{}[{}:{}]", render_expr(b), render_expr(hi), render_expr(lo))
        }
        Expr::Concat(parts) => {
            let inner: Vec<String> = parts.iter().map(render_expr).collect();
            format!("{{{}}}", inner.join(", "))
        }
        Expr::Repl(n, x) => format!("{{{}{{{}}}}}", render_expr(n), render_expr(x)),
        Expr::Call(name, args) => {
            let inner: Vec<String> = args.iter().map(render_expr).collect();
            format!("{name}({})", inner.join(", "))
        }
    }
}

fn render_sequence(s: &Sequence) -> String {
    let mut out = String::new();
    for (i, step) in s.steps.iter().enumerate() {
        if i > 0 {
            let _ = write!(out, " ##{} ", step.delay);
        }
        out.push_str(&render_expr(&step.expr));
    }
    out
}

/// Renders just the property body (no `property`/`endproperty` wrapper).
pub fn render_prop_body(body: &PropBody) -> String {
    match body {
        PropBody::Expr(e) => render_expr(e),
        PropBody::Implication { antecedent, overlapping, consequent } => {
            format!(
                "{} {} {}",
                render_sequence(antecedent),
                if *overlapping { "|->" } else { "|=>" },
                render_sequence(consequent)
            )
        }
    }
}

/// Renders a complete assertion; named ones become `property ...;
/// endproperty` blocks, anonymous ones a bare body.
pub fn render_assertion(a: &Assertion) -> String {
    let mut body = String::new();
    if let Some(d) = &a.disable_iff {
        let _ = write!(body, "disable iff ({}) ", render_expr(d));
    }
    body.push_str(&render_prop_body(&a.body));
    match &a.name {
        Some(n) => format!("property {n};\n  {body};\nendproperty"),
        None => body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_assertion;

    fn roundtrip(src: &str) {
        let a1 = parse_assertion(src).unwrap();
        let text = render_assertion(&a1);
        let a2 = parse_assertion(&text)
            .unwrap_or_else(|e| panic!("rendered text must re-parse: `{text}`: {e}"));
        assert_eq!(a1.body, a2.body, "body mismatch for `{src}` → `{text}`");
        assert_eq!(a1.disable_iff, a2.disable_iff);
    }

    #[test]
    fn roundtrips() {
        roundtrip("count1 == count2");
        roundtrip("&count1 |-> &count2");
        roundtrip("a ##1 b ##2 c |=> d");
        roundtrip("property p; (a - b) == 8'd5; endproperty");
        roundtrip("$onehot(state)");
        roundtrip("$past(x, 2) == y");
        roundtrip("disable iff (rst) req |=> gnt");
        roundtrip("x[7:4] == {2'b01, y[1:0]}");
        roundtrip("{4{x}} == z");
        roundtrip("(a ? b : c) <= 4'hf");
        roundtrip("!(a && b) || (c ^ d) == '0");
    }

    #[test]
    fn anonymous_renders_bare() {
        let a = parse_assertion("a == b").unwrap();
        assert_eq!(render_assertion(&a), "(a == b)");
    }

    #[test]
    fn named_renders_block() {
        let a = parse_assertion("property p; a == b; endproperty").unwrap();
        let text = render_assertion(&a);
        assert!(text.starts_with("property p;"));
        assert!(text.ends_with("endproperty"));
    }
}
