//! Parser for the SVA subset.
//!
//! Accepted top-level forms (whitespace/comment tolerant):
//!
//! ```text
//! property equal_count;  &count1 |-> &count2; endproperty
//! assert property (@(posedge clk) disable iff (rst) a ##1 b |=> c);
//! count1 == count2
//! ```
//!
//! [`parse_assertions`] additionally scans free-form text (such as an LLM
//! completion) and extracts every well-formed assertion it can find, which
//! is how the GenAI flows consume model output.

use crate::ast::{Assertion, PropBody, SeqStep, Sequence};
use genfv_hdl::lexer::{lex, Tok, Token};
use genfv_hdl::parser::{ParseError, Parser as ExprParser};
use genfv_hdl::Pos;

/// Parses a single assertion from `src`.
///
/// # Errors
/// Returns [`ParseError`] when the text is not a valid assertion.
pub fn parse_assertion(src: &str) -> Result<Assertion, ParseError> {
    let tokens = lex(src)?;
    let mut p = SvaParser { tokens, pos: 0 };
    let a = p.parse_assertion()?;
    p.skip_trailing_semis();
    if !p.at_eof() {
        return Err(ParseError {
            pos: p.peek_pos(),
            message: format!("unexpected {} after assertion", p.peek_tok()),
        });
    }
    Ok(a)
}

/// Extracts every parsable assertion from free-form text.
///
/// The scanner looks for `property ... endproperty` blocks and
/// `assert property (...)` statements; each candidate region is parsed
/// independently so one malformed assertion does not poison the rest
/// (LLM output routinely interleaves prose with code).
pub fn parse_assertions(text: &str) -> Vec<Assertion> {
    let mut found = Vec::new();
    // `property ... endproperty` blocks.
    let mut rest = text;
    let mut offset = 0usize;
    while let Some(start) = rest.find("property") {
        // Skip matches that are part of `endproperty` or identifiers.
        let abs = offset + start;
        let is_word_start = abs == 0
            || !text.as_bytes()[abs - 1].is_ascii_alphanumeric()
                && text.as_bytes()[abs - 1] != b'_';
        let after = &rest[start..];
        if let Some(end) = after.find("endproperty") {
            if is_word_start && !after.starts_with("property;") {
                let block = &after[..end + "endproperty".len()];
                if let Ok(a) = parse_assertion(block) {
                    found.push(a);
                }
            }
            offset = abs + end + "endproperty".len();
            rest = &text[offset..];
        } else {
            break;
        }
    }
    // `assert property ( ... );` one-liners.
    let mut rest = text;
    let mut offset = 0usize;
    while let Some(start) = rest.find("assert property") {
        let abs = offset + start;
        let after = &text[abs..];
        // Find the balanced closing parenthesis.
        if let Some(open) = after.find('(') {
            let mut depth = 0usize;
            let mut close = None;
            for (i, c) in after[open..].char_indices() {
                match c {
                    '(' => depth += 1,
                    ')' => {
                        depth -= 1;
                        if depth == 0 {
                            close = Some(open + i);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if let Some(close) = close {
                let stmt = &after[..=close];
                if let Ok(a) = parse_assertion(stmt) {
                    found.push(a);
                }
                offset = abs + close + 1;
                rest = &text[offset..];
                continue;
            }
        }
        offset = abs + "assert property".len();
        rest = &text[offset..];
    }
    found
}

struct SvaParser {
    tokens: Vec<Token>,
    pos: usize,
}

impl SvaParser {
    fn peek_tok(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek_pos(&self) -> Pos {
        self.tokens[self.pos].pos
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek_tok(), Tok::Eof)
    }

    fn bump(&mut self) {
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek_tok(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek_tok(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(ParseError {
                pos: self.peek_pos(),
                message: format!("expected `{p}`, found {}", self.peek_tok()),
            })
        }
    }

    fn skip_trailing_semis(&mut self) {
        while self.eat_punct(";") {}
    }

    fn parse_assertion(&mut self) -> Result<Assertion, ParseError> {
        // `assert property ( <prop> ) ;`
        if self.eat_kw("assert") {
            if !self.eat_kw("property") {
                return Err(ParseError {
                    pos: self.peek_pos(),
                    message: "expected `property` after `assert`".to_string(),
                });
            }
            self.expect_punct("(")?;
            let a = self.parse_property_body(None)?;
            self.expect_punct(")")?;
            self.skip_trailing_semis();
            return Ok(a);
        }
        // `property name; <prop>; endproperty`
        if self.eat_kw("property") {
            let name = match self.peek_tok().clone() {
                Tok::Ident(s) => {
                    self.bump();
                    Some(s)
                }
                _ => None,
            };
            self.expect_punct(";")?;
            let a = self.parse_property_body(name)?;
            self.skip_trailing_semis();
            if !self.eat_kw("endproperty") {
                return Err(ParseError {
                    pos: self.peek_pos(),
                    message: "expected `endproperty`".to_string(),
                });
            }
            return Ok(a);
        }
        // Bare property body.
        self.parse_property_body(None)
    }

    fn parse_property_body(&mut self, name: Option<String>) -> Result<Assertion, ParseError> {
        // Optional clocking event: `@(posedge clk)` — accepted and ignored
        // (the transition system is already clocked).
        if self.eat_punct("@") {
            self.expect_punct("(")?;
            let mut depth = 1;
            while depth > 0 {
                if self.at_eof() {
                    return Err(ParseError {
                        pos: self.peek_pos(),
                        message: "unterminated clocking event".to_string(),
                    });
                }
                if self.eat_punct("(") {
                    depth += 1;
                } else if self.eat_punct(")") {
                    depth -= 1;
                } else {
                    self.bump();
                }
            }
        }
        // Optional `disable iff (expr)`.
        let mut disable_iff = None;
        if self.eat_kw("disable") {
            if !self.eat_kw("iff") {
                return Err(ParseError {
                    pos: self.peek_pos(),
                    message: "expected `iff` after `disable`".to_string(),
                });
            }
            self.expect_punct("(")?;
            let (expr, consumed) = self.parse_bool_expr()?;
            self.pos += consumed;
            self.expect_punct(")")?;
            disable_iff = Some(expr);
        }

        let antecedent = self.parse_sequence()?;
        let overlapping = if self.eat_punct("|->") {
            Some(true)
        } else if self.eat_punct("|=>") {
            Some(false)
        } else {
            None
        };
        let body = match overlapping {
            Some(overlapping) => {
                let consequent = self.parse_sequence()?;
                PropBody::Implication { antecedent, overlapping, consequent }
            }
            None => {
                if antecedent.steps.len() != 1 {
                    return Err(ParseError {
                        pos: self.peek_pos(),
                        message: "a sequence without implication must be a single boolean"
                            .to_string(),
                    });
                }
                PropBody::Expr(antecedent.steps.into_iter().next().expect("one step").expr)
            }
        };
        Ok(Assertion { name, disable_iff, body })
    }

    fn parse_sequence(&mut self) -> Result<Sequence, ParseError> {
        let mut steps = Vec::new();
        let (expr, consumed) = self.parse_bool_expr()?;
        self.pos += consumed;
        steps.push(SeqStep { delay: 0, expr });
        while self.eat_punct("##") {
            let delay = match self.peek_tok().clone() {
                Tok::Number { digits, base: 'i', .. } => {
                    self.bump();
                    digits.parse::<u32>().map_err(|_| ParseError {
                        pos: self.peek_pos(),
                        message: "bad delay".to_string(),
                    })?
                }
                other => {
                    return Err(ParseError {
                        pos: self.peek_pos(),
                        message: format!("expected delay count after `##`, found {other}"),
                    })
                }
            };
            if delay > 64 {
                return Err(ParseError {
                    pos: self.peek_pos(),
                    message: format!("delay ##{delay} exceeds the supported bound of 64"),
                });
            }
            let (expr, consumed) = self.parse_bool_expr()?;
            self.pos += consumed;
            steps.push(SeqStep { delay, expr });
        }
        Ok(Sequence { steps })
    }

    /// Parses a boolean-layer expression by handing the *remaining token
    /// stream* to the HDL expression parser, then figuring out how many
    /// tokens it consumed (the HDL parser stops before temporal operators,
    /// which it does not know).
    fn parse_bool_expr(&mut self) -> Result<(genfv_hdl::ast::Expr, usize), ParseError> {
        // Reconstruct source from remaining tokens is fragile; instead feed
        // the token slice to a fresh expression parser.
        let remaining: Vec<Token> = self.tokens[self.pos..].to_vec();
        let mut p = ExprParser::from_tokens(remaining);
        let e = p.parse_expr()?;
        Ok((e, p.position()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genfv_hdl::ast::{BinaryAstOp, Expr, UnaryAstOp};

    #[test]
    fn paper_listing_2_property() {
        let a =
            parse_assertion("property equal_count;\n  &count1 |-> &count2;\nendproperty").unwrap();
        assert_eq!(a.name.as_deref(), Some("equal_count"));
        match &a.body {
            PropBody::Implication { antecedent, overlapping, consequent } => {
                assert!(*overlapping);
                assert_eq!(antecedent.steps.len(), 1);
                assert!(matches!(antecedent.steps[0].expr, Expr::Unary(UnaryAstOp::RedAnd, _)));
                assert_eq!(consequent.steps.len(), 1);
            }
            other => panic!("expected implication, got {other:?}"),
        }
        assert_eq!(a.depth(), 0);
    }

    #[test]
    fn paper_listing_3_helper() {
        let a = parse_assertion("property helper;\n  count1 == count2;\nendproperty").unwrap();
        assert_eq!(a.name.as_deref(), Some("helper"));
        assert!(matches!(a.body, PropBody::Expr(Expr::Binary(BinaryAstOp::Eq, _, _))));
    }

    #[test]
    fn bare_expression() {
        let a = parse_assertion("count1 == count2").unwrap();
        assert!(a.name.is_none());
        assert!(matches!(a.body, PropBody::Expr(_)));
    }

    #[test]
    fn assert_property_with_clocking_and_disable() {
        let a =
            parse_assertion("assert property (@(posedge clk) disable iff (rst) req |=> grant);")
                .unwrap();
        assert!(a.disable_iff.is_some());
        match a.body {
            PropBody::Implication { overlapping, .. } => assert!(!overlapping),
            other => panic!("{other:?}"),
        }
        assert_eq!(a.depth(), 1);
    }

    #[test]
    fn delayed_sequences() {
        let a = parse_assertion("a ##1 b ##2 c |-> d ##1 e").unwrap();
        match &a.body {
            PropBody::Implication { antecedent, consequent, overlapping } => {
                assert!(*overlapping);
                assert_eq!(antecedent.span(), 3);
                assert_eq!(consequent.span(), 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(a.depth(), 4);
    }

    #[test]
    fn dollar_functions_in_bool_layer() {
        let a = parse_assertion("$stable(cfg) |-> $past(out) == out").unwrap();
        assert_eq!(a.depth(), 0, "temporal depth comes from ##, not $past");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_assertion("").is_err());
        assert!(parse_assertion("a |->").is_err());
        assert!(parse_assertion("a ## b").is_err());
        assert!(parse_assertion("a b c").is_err());
        assert!(parse_assertion("property p; a; ").is_err(), "missing endproperty");
        assert!(parse_assertion("a ##999 b").is_err(), "delay bound");
    }

    #[test]
    fn scan_llm_completion_text() {
        let completion = r#"
Here are some helper assertions for your design:

property lockstep;
  count1 == count2;
endproperty

This one ensures the MSBs agree:

assert property (count1[31] == count2[31]);

property broken_syntax;
  count1 === === count2;
endproperty

And some closing prose.
"#;
        let found = parse_assertions(completion);
        assert_eq!(found.len(), 2, "two valid, one malformed");
        assert_eq!(found[0].name.as_deref(), Some("lockstep"));
        assert!(found[1].name.is_none());
    }

    #[test]
    fn scan_handles_nested_parens() {
        let text = "assert property ((a & b) |-> (c | (d & e)));";
        let found = parse_assertions(text);
        assert_eq!(found.len(), 1);
    }
}
