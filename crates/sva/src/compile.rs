//! Compilation of assertions into synchronous monitor logic.
//!
//! A [`PropertyCompiler`] binds the boolean layer of an [`Assertion`]
//! against the named signals of a [`TransitionSystem`] and lowers the
//! temporal layer (bounded `##n` sequences, `|->`/`|=>`, `$past` and
//! friends, `disable iff`) into pure combinational logic plus auxiliary
//! history registers added to the system. The result is a single 1-bit
//! expression that is true in every cycle in which no property violation
//! *completes* — exactly the "bad state" formulation that BMC and
//! k-induction consume.
//!
//! History registers are initialised to zero, which matches SVA semantics:
//! `$past(e)` is 0 before time zero, and sequence matches cannot begin
//! before the first cycle.

use crate::ast::{Assertion, PropBody, Sequence};
use genfv_hdl::ast::{BinaryAstOp, Expr, UnaryAstOp};
use genfv_ir::{BitVecValue, Context, ExprRef, TransitionSystem};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Failure to bind or lower an assertion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// Human-readable message.
    pub message: String,
}

impl CompileError {
    fn new(message: impl Into<String>) -> Self {
        CompileError { message: message.into() }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "assertion compile error: {}", self.message)
    }
}

impl Error for CompileError {}

/// A lowered property.
#[derive(Clone, Debug)]
pub struct CompiledProperty {
    /// Property name (auto-generated when the source was anonymous).
    pub name: String,
    /// 1-bit expression: "no violation completes this cycle".
    pub ok: ExprRef,
    /// Monitor depth in cycles (0 for plain invariants).
    pub depth: u32,
}

/// Compiles assertions against one design, adding history registers to the
/// transition system as needed.
///
/// ```
/// use genfv_ir::{Context, TransitionSystem};
/// use genfv_sva::{parse_assertion, PropertyCompiler};
///
/// let mut ctx = Context::new();
/// let a = ctx.symbol("a", 1);
/// let mut ts = TransitionSystem::new("t");
/// ts.add_input(a);
/// ts.add_signal("a", a);
/// let assertion = parse_assertion("a == a")?;
/// let mut pc = PropertyCompiler::new(&mut ctx, &mut ts);
/// let prop = pc.compile(&assertion)?;
/// assert_eq!(prop.depth, 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct PropertyCompiler<'a> {
    ctx: &'a mut Context,
    ts: &'a mut TransitionSystem,
    past_cache: HashMap<(ExprRef, u32), ExprRef>,
    aux_counter: usize,
    anon_counter: usize,
}

impl<'a> PropertyCompiler<'a> {
    /// Creates a compiler for the given design.
    pub fn new(ctx: &'a mut Context, ts: &'a mut TransitionSystem) -> Self {
        // Continue aux numbering after any previously created monitors.
        let aux_counter = ctx.symbols().filter(|(n, _)| n.starts_with("__sva_p")).count();
        PropertyCompiler { ctx, ts, past_cache: HashMap::new(), aux_counter, anon_counter: 0 }
    }

    /// Compiles one assertion.
    ///
    /// # Errors
    /// Returns [`CompileError`] if the assertion references unknown signals,
    /// misuses widths, or uses unsupported constructs.
    pub fn compile(&mut self, assertion: &Assertion) -> Result<CompiledProperty, CompileError> {
        let name = match &assertion.name {
            Some(n) => n.clone(),
            None => {
                self.anon_counter += 1;
                format!("anon_prop_{}", self.anon_counter)
            }
        };
        let depth = assertion.depth();
        let ok = match &assertion.body {
            PropBody::Expr(e) => self.bind_bool(e)?,
            PropBody::Implication { antecedent, overlapping, consequent } => {
                let ant_span = antecedent.span();
                let extra = if *overlapping { 0 } else { 1 };
                let con_start = ant_span + extra;
                let total = con_start + consequent.span();

                let ant = self.shifted_conjunction(antecedent, 0, total)?;
                let con = self.shifted_conjunction(consequent, con_start, total)?;
                self.ctx.implies(ant, con)
            }
        };
        let ok = match &assertion.disable_iff {
            Some(cond) => {
                let d = self.bind_bool(cond)?;
                let mut disabled = self.ctx.bool_const(false);
                for k in 0..=depth {
                    let dk = self.past(d, k);
                    disabled = self.ctx.or(disabled, dk);
                }
                self.ctx.or(disabled, ok)
            }
            None => ok,
        };
        Ok(CompiledProperty { name, ok, depth })
    }

    /// Conjunction of a sequence's steps, each shifted so the property
    /// completes at offset `total`.
    fn shifted_conjunction(
        &mut self,
        seq: &Sequence,
        base: u32,
        total: u32,
    ) -> Result<ExprRef, CompileError> {
        let mut acc = self.ctx.bool_const(true);
        let mut offset = base;
        for (i, step) in seq.steps.iter().enumerate() {
            if i > 0 {
                offset += step.delay;
            }
            let b = self.bind_bool(&step.expr)?;
            let shifted = self.past(b, total - offset);
            acc = self.ctx.and(acc, shifted);
        }
        Ok(acc)
    }

    /// `$past(e, n)` as a chain of history registers (cached).
    fn past(&mut self, e: ExprRef, n: u32) -> ExprRef {
        if n == 0 {
            return e;
        }
        let prev = self.past(e, n - 1);
        if let Some(&r) = self.past_cache.get(&(prev, 1)) {
            return r;
        }
        let w = self.ctx.width_of(prev);
        self.aux_counter += 1;
        let name = format!("__sva_p{}", self.aux_counter);
        let reg = self.ctx.symbol(&name, w);
        let zero = self.ctx.constant(0, w);
        self.ts.add_state(reg, Some(zero), prev);
        self.past_cache.insert((prev, 1), reg);
        reg
    }

    // --- boolean-layer binding ---------------------------------------------

    fn resolve(&mut self, name: &str) -> Result<ExprRef, CompileError> {
        if let Some(e) = self.ts.find_signal(name) {
            return Ok(e);
        }
        if let Some(e) = self.ctx.find_symbol(name) {
            return Ok(e);
        }
        Err(CompileError::new(format!(
            "assertion references unknown signal `{name}` (design `{}`)",
            self.ts.name()
        )))
    }

    fn bind_bool(&mut self, e: &Expr) -> Result<ExprRef, CompileError> {
        let x = self.bind(e, None)?;
        Ok(self.to_bool(x))
    }

    // `to_bool` converts the expression, not `self` — the builder context
    // just has to be mutable to hash-cons the reduction node.
    #[allow(clippy::wrong_self_convention)]
    fn to_bool(&mut self, e: ExprRef) -> ExprRef {
        if self.ctx.width_of(e) == 1 {
            e
        } else {
            self.ctx.red_or(e)
        }
    }

    fn fit(&mut self, e: ExprRef, width: u32) -> ExprRef {
        let w = self.ctx.width_of(e);
        if w == width {
            e
        } else if w > width {
            self.ctx.extract(e, width - 1, 0)
        } else {
            self.ctx.zext(e, width)
        }
    }

    fn const_u64(&mut self, e: &Expr) -> Result<u64, CompileError> {
        let x = self.bind(e, Some(32))?;
        self.ctx
            .const_value(x)
            .and_then(|v| v.to_u64())
            .ok_or_else(|| CompileError::new("expected a constant here"))
    }

    fn bind_pair(
        &mut self,
        a: &Expr,
        b: &Expr,
        expected: Option<u32>,
    ) -> Result<(ExprRef, ExprRef), CompileError> {
        let (x, y) = if matches!(a, Expr::Number { .. }) && !matches!(b, Expr::Number { .. }) {
            let y = self.bind(b, expected)?;
            let hint = Some(self.ctx.width_of(y));
            let x = self.bind(a, hint)?;
            (x, y)
        } else {
            let x = self.bind(a, expected)?;
            let hint = Some(self.ctx.width_of(x));
            let y = self.bind(b, hint)?;
            (x, y)
        };
        let w = self.ctx.width_of(x).max(self.ctx.width_of(y));
        let x = if self.ctx.width_of(x) < w { self.ctx.zext(x, w) } else { x };
        let y = if self.ctx.width_of(y) < w { self.ctx.zext(y, w) } else { y };
        Ok((x, y))
    }

    fn bind(&mut self, e: &Expr, expected: Option<u32>) -> Result<ExprRef, CompileError> {
        match e {
            Expr::Number { size, base, digits } => self.bind_number(*size, *base, digits, expected),
            Expr::Ident(name) => self.resolve(name),
            Expr::Unary(op, a) => {
                let x = match op {
                    UnaryAstOp::BitNot | UnaryAstOp::Neg => self.bind(a, expected)?,
                    _ => self.bind(a, None)?,
                };
                Ok(match op {
                    UnaryAstOp::BitNot => self.ctx.not(x),
                    UnaryAstOp::Neg => self.ctx.neg(x),
                    UnaryAstOp::LogNot => {
                        let b = self.to_bool(x);
                        self.ctx.not(b)
                    }
                    UnaryAstOp::RedAnd => self.ctx.red_and(x),
                    UnaryAstOp::RedOr => self.ctx.red_or(x),
                    UnaryAstOp::RedXor => self.ctx.red_xor(x),
                })
            }
            Expr::Binary(op, a, b) => match op {
                BinaryAstOp::LogAnd | BinaryAstOp::LogOr => {
                    let x = self.bind_bool(a)?;
                    let y = self.bind_bool(b)?;
                    Ok(match op {
                        BinaryAstOp::LogAnd => self.ctx.and(x, y),
                        _ => self.ctx.or(x, y),
                    })
                }
                BinaryAstOp::Shl | BinaryAstOp::Shr => {
                    let x = self.bind(a, expected)?;
                    let y = self.bind(b, None)?;
                    let w = self.ctx.width_of(x);
                    let y = self.fit(y, w);
                    Ok(match op {
                        BinaryAstOp::Shl => self.ctx.shl(x, y),
                        _ => self.ctx.lshr(x, y),
                    })
                }
                BinaryAstOp::Eq
                | BinaryAstOp::Ne
                | BinaryAstOp::Lt
                | BinaryAstOp::Le
                | BinaryAstOp::Gt
                | BinaryAstOp::Ge => {
                    let (x, y) = self.bind_pair(a, b, None)?;
                    Ok(match op {
                        BinaryAstOp::Eq => self.ctx.eq(x, y),
                        BinaryAstOp::Ne => self.ctx.ne(x, y),
                        BinaryAstOp::Lt => self.ctx.ult(x, y),
                        BinaryAstOp::Le => self.ctx.ule(x, y),
                        BinaryAstOp::Gt => self.ctx.ugt(x, y),
                        _ => self.ctx.uge(x, y),
                    })
                }
                _ => {
                    let (x, y) = self.bind_pair(a, b, expected)?;
                    Ok(match op {
                        BinaryAstOp::Add => self.ctx.add(x, y),
                        BinaryAstOp::Sub => self.ctx.sub(x, y),
                        BinaryAstOp::Mul => self.ctx.mul(x, y),
                        BinaryAstOp::Div => self.ctx.udiv(x, y),
                        BinaryAstOp::Mod => self.ctx.urem(x, y),
                        BinaryAstOp::BitAnd => self.ctx.and(x, y),
                        BinaryAstOp::BitOr => self.ctx.or(x, y),
                        BinaryAstOp::BitXor => self.ctx.xor(x, y),
                        _ => unreachable!(),
                    })
                }
            },
            Expr::Ternary(c, t, f) => {
                let cond = self.bind_bool(c)?;
                let (tt, ff) = self.bind_pair(t, f, expected)?;
                Ok(self.ctx.ite(cond, tt, ff))
            }
            Expr::Index(base, idx) => {
                let x = self.bind(base, None)?;
                let i = self.const_u64(idx)? as u32;
                let w = self.ctx.width_of(x);
                if i >= w {
                    return Err(CompileError::new(format!(
                        "bit index {i} out of range (width {w})"
                    )));
                }
                Ok(self.ctx.bit(x, i))
            }
            Expr::Range(base, hi, lo) => {
                let x = self.bind(base, None)?;
                let h = self.const_u64(hi)? as u32;
                let l = self.const_u64(lo)? as u32;
                let w = self.ctx.width_of(x);
                if h < l || h >= w {
                    return Err(CompileError::new(format!(
                        "part select [{h}:{l}] out of range (width {w})"
                    )));
                }
                Ok(self.ctx.extract(x, h, l))
            }
            Expr::Concat(parts) => {
                let mut acc: Option<ExprRef> = None;
                for p in parts {
                    let x = self.bind(p, None)?;
                    acc = Some(match acc {
                        None => x,
                        Some(a) => self.ctx.concat(a, x),
                    });
                }
                acc.ok_or_else(|| CompileError::new("empty concatenation"))
            }
            Expr::Repl(count, inner) => {
                let n = self.const_u64(count)?;
                if n == 0 || n > 4096 {
                    return Err(CompileError::new(format!("bad replication count {n}")));
                }
                let x = self.bind(inner, None)?;
                let mut acc = x;
                for _ in 1..n {
                    acc = self.ctx.concat(acc, x);
                }
                Ok(acc)
            }
            Expr::Call(name, args) => self.bind_call(name, args),
        }
    }

    fn bind_number(
        &mut self,
        size: Option<u32>,
        base: char,
        digits: &str,
        expected: Option<u32>,
    ) -> Result<ExprRef, CompileError> {
        let bad = |d: &str| CompileError::new(format!("bad numeric literal `{d}`"));
        match base {
            'f' => {
                let w = expected
                    .ok_or_else(|| CompileError::new("fill literal needs width context"))?;
                Ok(if digits == "1" {
                    let v = BitVecValue::ones(w);
                    self.ctx.value(v)
                } else {
                    self.ctx.constant(0, w)
                })
            }
            'i' | 'd' => {
                let w = size.or(expected).unwrap_or(32).max(1);
                let v = BitVecValue::from_decimal_str(digits, w).ok_or_else(|| bad(digits))?;
                Ok(self.ctx.value(v))
            }
            'b' => {
                let raw = BitVecValue::from_binary_str(digits).ok_or_else(|| bad(digits))?;
                let w = size.or(expected).unwrap_or(raw.width());
                Ok(self.ctx.value(resize(raw, w)))
            }
            'h' => {
                let raw = BitVecValue::from_hex_str(digits).ok_or_else(|| bad(digits))?;
                let w = size.or(expected).unwrap_or(raw.width());
                Ok(self.ctx.value(resize(raw, w)))
            }
            other => Err(CompileError::new(format!("unsupported number base `{other}`"))),
        }
    }

    fn bind_call(&mut self, name: &str, args: &[Expr]) -> Result<ExprRef, CompileError> {
        let arity = |n: usize| -> Result<(), CompileError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(CompileError::new(format!("{name} expects {n} argument(s)")))
            }
        };
        match name {
            "$past" => {
                if args.is_empty() || args.len() > 2 {
                    return Err(CompileError::new("$past expects 1 or 2 arguments"));
                }
                let x = self.bind(&args[0], None)?;
                let n = if args.len() == 2 { self.const_u64(&args[1])? as u32 } else { 1 };
                if n == 0 || n > 64 {
                    return Err(CompileError::new(format!("$past depth {n} out of range")));
                }
                Ok(self.past(x, n))
            }
            "$stable" => {
                arity(1)?;
                let x = self.bind(&args[0], None)?;
                let p = self.past(x, 1);
                Ok(self.ctx.eq(x, p))
            }
            "$changed" => {
                arity(1)?;
                let x = self.bind(&args[0], None)?;
                let p = self.past(x, 1);
                Ok(self.ctx.ne(x, p))
            }
            "$rose" => {
                arity(1)?;
                let x = self.bind(&args[0], None)?;
                let b = if self.ctx.width_of(x) == 1 { x } else { self.ctx.bit(x, 0) };
                let p = self.past(b, 1);
                let np = self.ctx.not(p);
                Ok(self.ctx.and(b, np))
            }
            "$fell" => {
                arity(1)?;
                let x = self.bind(&args[0], None)?;
                let b = if self.ctx.width_of(x) == 1 { x } else { self.ctx.bit(x, 0) };
                let p = self.past(b, 1);
                let nb = self.ctx.not(b);
                Ok(self.ctx.and(nb, p))
            }
            "$countones" => {
                arity(1)?;
                let x = self.bind(&args[0], None)?;
                Ok(self.ctx.count_ones(x, 32))
            }
            "$onehot" => {
                arity(1)?;
                let x = self.bind(&args[0], None)?;
                Ok(self.ctx.onehot(x))
            }
            "$onehot0" => {
                arity(1)?;
                let x = self.bind(&args[0], None)?;
                Ok(self.ctx.onehot0(x))
            }
            other => Err(CompileError::new(format!(
                "system function `{other}` is not supported in assertions"
            ))),
        }
    }
}

fn resize(v: BitVecValue, width: u32) -> BitVecValue {
    if v.width() == width {
        v
    } else if v.width() > width {
        v.extract(width - 1, 0)
    } else {
        v.zext(width)
    }
}
