//! AST for the supported SVA subset.
//!
//! The boolean layer reuses [`genfv_hdl::ast::Expr`]; this module adds the
//! temporal structure: bounded-delay sequences, overlapping (`|->`) and
//! non-overlapping (`|=>`) implication, and `disable iff`.

use genfv_hdl::ast::Expr;

/// One step of a sequence: a boolean expression preceded by a `##n` delay
/// relative to the previous step (the first step has delay 0).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SeqStep {
    /// Cycles after the previous step (`##n`).
    pub delay: u32,
    /// The boolean expression that must hold.
    pub expr: Expr,
}

/// A bounded sequence: `e0 ##n1 e1 ##n2 e2 ...`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Sequence {
    /// The steps in order; `steps[0].delay` is always 0.
    pub steps: Vec<SeqStep>,
}

impl Sequence {
    /// Creates a single-step sequence.
    pub fn single(expr: Expr) -> Self {
        Sequence { steps: vec![SeqStep { delay: 0, expr }] }
    }

    /// Total span in cycles (sum of the delays).
    pub fn span(&self) -> u32 {
        self.steps.iter().map(|s| s.delay).sum()
    }
}

/// The property body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PropBody {
    /// A plain boolean invariant (may use `$past`/`$stable`/... inside).
    Expr(Expr),
    /// `ant |-> con` (overlapping) or `ant |=> con` (non-overlapping).
    Implication {
        /// Antecedent sequence.
        antecedent: Sequence,
        /// `true` for `|->` (consequent starts at the antecedent's last
        /// cycle), `false` for `|=>` (one cycle later).
        overlapping: bool,
        /// Consequent sequence.
        consequent: Sequence,
    },
}

/// A parsed assertion (one property).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Assertion {
    /// Property name, if the source used `property <name>; ...`.
    pub name: Option<String>,
    /// Optional `disable iff (expr)` condition.
    pub disable_iff: Option<Expr>,
    /// The temporal body.
    pub body: PropBody,
}

impl Assertion {
    /// Creates an unnamed invariant assertion from a boolean expression.
    pub fn invariant(expr: Expr) -> Self {
        Assertion { name: None, disable_iff: None, body: PropBody::Expr(expr) }
    }

    /// The monitor depth: how many cycles of history the property needs.
    pub fn depth(&self) -> u32 {
        match &self.body {
            PropBody::Expr(_) => 0,
            PropBody::Implication { antecedent, overlapping, consequent } => {
                let a = antecedent.span();
                let extra = if *overlapping { 0 } else { 1 };
                a + extra + consequent.span()
            }
        }
    }
}
