//! Monitor-semantics tests: compile assertions against elaborated RTL and
//! check the "ok" signal cycle by cycle with the simulator.

use genfv_hdl::{elaborate, parse_source};
use genfv_ir::{BitVecValue, Context, Simulator, TransitionSystem};
use genfv_sva::{parse_assertion, PropertyCompiler};

fn counter_design() -> (Context, TransitionSystem) {
    let src = r#"
module counter (input clk, rst, input en, output logic [7:0] count);
  always_ff @(posedge clk) begin
    if (rst) count <= '0;
    else if (en) count <= count + 8'd1;
  end
endmodule
"#;
    let module = parse_source(src).unwrap().remove(0);
    let mut ctx = Context::new();
    let ts = elaborate(&mut ctx, &module).unwrap();
    (ctx, ts)
}

#[test]
fn invariant_monitor_tracks_value() {
    let (mut ctx, mut ts) = counter_design();
    let assertion = parse_assertion("count <= 8'd200").unwrap();
    let prop = PropertyCompiler::new(&mut ctx, &mut ts).compile(&assertion).unwrap();
    assert_eq!(prop.depth, 0);

    let rst = ctx.find_symbol("rst").unwrap();
    let en = ctx.find_symbol("en").unwrap();
    let count = ctx.find_symbol("count").unwrap();
    let mut sim = Simulator::new(&ctx, &ts);
    sim.reset();
    sim.set(rst, BitVecValue::from_u64(0, 1));
    sim.set(en, BitVecValue::from_u64(1, 1));
    for _ in 0..100 {
        assert!(sim.peek(prop.ok).to_bool());
        sim.step();
    }
    // Drive the counter past 200 by direct injection.
    sim.set(count, BitVecValue::from_u64(201, 8));
    assert!(!sim.peek(prop.ok).to_bool(), "violated above 200");
}

#[test]
fn past_monitor_has_sva_time_zero_semantics() {
    let (mut ctx, mut ts) = counter_design();
    // After any cycle with en=0, the counter is stable.
    let assertion = parse_assertion("!$past(en) && !$past(rst) |-> $stable(count)").unwrap();
    let prop = PropertyCompiler::new(&mut ctx, &mut ts).compile(&assertion).unwrap();

    let rst = ctx.find_symbol("rst").unwrap();
    let en = ctx.find_symbol("en").unwrap();
    let mut sim = Simulator::new(&ctx, &ts);
    sim.reset();
    sim.set(rst, BitVecValue::from_u64(0, 1));

    // Cycle 0: $past defaults to 0 ⇒ antecedent ($past(en)=0) is true;
    // count is stable at 0, so ok.
    assert!(sim.peek(prop.ok).to_bool());
    // Run with en toggling; property must hold in every cycle.
    for i in 0..50u64 {
        sim.set(en, BitVecValue::from_bool(i % 3 == 0));
        sim.step();
        assert!(sim.peek(prop.ok).to_bool(), "cycle {i}");
    }
}

#[test]
fn nonoverlapping_implication_checks_next_cycle() {
    let (mut ctx, mut ts) = counter_design();
    // en and no rst now ⇒ count changes next cycle... except at wrap; use
    // a weaker but exact property: en & ~rst & count < 255 |=> count != 0
    // would still be wrong; use: en & !rst & (count == 3) |=> (count == 4).
    let assertion = parse_assertion("en && !rst && (count == 8'd3) |=> (count == 8'd4)").unwrap();
    let prop = PropertyCompiler::new(&mut ctx, &mut ts).compile(&assertion).unwrap();
    assert_eq!(prop.depth, 1);

    let rst = ctx.find_symbol("rst").unwrap();
    let en = ctx.find_symbol("en").unwrap();
    let mut sim = Simulator::new(&ctx, &ts);
    sim.reset();
    sim.set(rst, BitVecValue::from_u64(0, 1));
    sim.set(en, BitVecValue::from_u64(1, 1));
    for i in 0..20u64 {
        assert!(sim.peek(prop.ok).to_bool(), "cycle {i}");
        sim.step();
    }
}

#[test]
fn violated_implication_detected_at_completion() {
    let (mut ctx, mut ts) = counter_design();
    // Deliberately false: after count==3 with en, count==9 next cycle.
    let assertion = parse_assertion("en && !rst && (count == 8'd3) |=> (count == 8'd9)").unwrap();
    let prop = PropertyCompiler::new(&mut ctx, &mut ts).compile(&assertion).unwrap();

    let rst = ctx.find_symbol("rst").unwrap();
    let en = ctx.find_symbol("en").unwrap();
    let mut sim = Simulator::new(&ctx, &ts);
    sim.reset();
    sim.set(rst, BitVecValue::from_u64(0, 1));
    sim.set(en, BitVecValue::from_u64(1, 1));
    let mut violated_at = None;
    for i in 0..10u64 {
        if !sim.peek(prop.ok).to_bool() {
            violated_at = Some(i);
            break;
        }
        sim.step();
    }
    // count==3 in cycle 3, completion (violation) observed in cycle 4.
    assert_eq!(violated_at, Some(4));
}

#[test]
fn delayed_sequence_monitor() {
    let (mut ctx, mut ts) = counter_design();
    // count==2 ##1 count==3 |-> count==3  (trivially true at completion).
    let assertion =
        parse_assertion("(count == 8'd2) ##1 (count == 8'd3) |-> (count == 8'd3)").unwrap();
    let prop = PropertyCompiler::new(&mut ctx, &mut ts).compile(&assertion).unwrap();
    assert_eq!(prop.depth, 1);

    let rst = ctx.find_symbol("rst").unwrap();
    let en = ctx.find_symbol("en").unwrap();
    let mut sim = Simulator::new(&ctx, &ts);
    sim.reset();
    sim.set(rst, BitVecValue::from_u64(0, 1));
    sim.set(en, BitVecValue::from_u64(1, 1));
    for i in 0..30u64 {
        assert!(sim.peek(prop.ok).to_bool(), "cycle {i}");
        sim.step();
    }
}

#[test]
fn disable_iff_masks_violations() {
    let (mut ctx, mut ts) = counter_design();
    // False invariant, but disabled whenever rst is high.
    let assertion =
        parse_assertion("assert property (@(posedge clk) disable iff (rst) count != 8'd0);")
            .unwrap();
    let prop = PropertyCompiler::new(&mut ctx, &mut ts).compile(&assertion).unwrap();

    let rst = ctx.find_symbol("rst").unwrap();
    let mut sim = Simulator::new(&ctx, &ts);
    sim.reset();
    sim.set(rst, BitVecValue::from_u64(1, 1));
    // count==0 violates `count != 0`, but rst disables the property.
    assert!(sim.peek(prop.ok).to_bool());
    sim.set(rst, BitVecValue::from_u64(0, 1));
    assert!(!sim.peek(prop.ok).to_bool(), "enabled now, count still 0");
}

#[test]
fn unknown_signal_rejected() {
    let (mut ctx, mut ts) = counter_design();
    let assertion = parse_assertion("bogus == 8'd1").unwrap();
    let err = PropertyCompiler::new(&mut ctx, &mut ts).compile(&assertion).unwrap_err();
    assert!(err.to_string().contains("unknown signal"), "{err}");
}

#[test]
fn paper_properties_compile_against_sync_counters() {
    let src = r#"
module sync_counters (input clk, rst, output logic [31:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 32'b0;
      count2 <= 32'b0;
    end else begin
      count1++;
      count2++;
    end
  end
endmodule
"#;
    let module = parse_source(src).unwrap().remove(0);
    let mut ctx = Context::new();
    let mut ts = elaborate(&mut ctx, &module).unwrap();
    let equal_count =
        parse_assertion("property equal_count; &count1 |-> &count2; endproperty").unwrap();
    let helper = parse_assertion("property helper; count1 == count2; endproperty").unwrap();
    let mut pc = PropertyCompiler::new(&mut ctx, &mut ts);
    let p1 = pc.compile(&equal_count).unwrap();
    let p2 = pc.compile(&helper).unwrap();
    assert_eq!(p1.name, "equal_count");
    assert_eq!(p2.name, "helper");

    // Both hold along the reset-reachable trace.
    let rst = ctx.find_symbol("rst").unwrap();
    let mut sim = Simulator::new(&ctx, &ts);
    sim.reset();
    sim.set(rst, BitVecValue::from_u64(0, 1));
    for _ in 0..64 {
        assert!(sim.peek(p1.ok).to_bool());
        assert!(sim.peek(p2.ok).to_bool());
        sim.step();
    }
}

#[test]
fn monitors_do_not_collide_across_compilers() {
    let (mut ctx, mut ts) = counter_design();
    let a1 = parse_assertion("$past(count) <= count || count == 8'd0").unwrap();
    let p1 = PropertyCompiler::new(&mut ctx, &mut ts).compile(&a1).unwrap();
    // A second compiler on the same design must not clash with the first
    // compiler's history registers.
    let a2 = parse_assertion("$past(en) || !$past(en)").unwrap();
    let p2 = PropertyCompiler::new(&mut ctx, &mut ts).compile(&a2).unwrap();
    assert_ne!(p1.ok, p2.ok);
    let n_aux = ctx.symbols().filter(|(n, _)| n.starts_with("__sva_p")).count();
    assert!(n_aux >= 2, "expected at least two distinct history registers, got {n_aux}");
}
