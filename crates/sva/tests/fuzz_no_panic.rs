//! No-panic fuzzing of the text-facing surfaces. `parse_assertions`
//! consumes raw LLM completions — arbitrary bytes of prose, code, and
//! damage — so the entire path must be total: any input, no panics.

use genfv_sva::{parse_assertion, parse_assertions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parse_assertion_never_panics(input in ".{0,200}") {
        let _ = parse_assertion(&input);
    }

    #[test]
    fn parse_assertions_never_panics_on_prose(input in "[ -~\\n]{0,400}") {
        let _ = parse_assertions(&input);
    }

    #[test]
    fn parse_assertions_never_panics_with_keywords(
        pieces in proptest::collection::vec(
            prop_oneof![
                Just("property "),
                Just("endproperty"),
                Just("assert property ("),
                Just(")"),
                Just(";"),
                Just("|->"),
                Just("##1"),
                Just("count1"),
                Just("=="),
                Just("((("),
                Just("8'd42"),
                Just("$past("),
                Just("\n"),
            ],
            0..40,
        )
    ) {
        let text: String = pieces.concat();
        let _ = parse_assertions(&text);
    }

    #[test]
    fn hdl_lexer_never_panics(input in ".{0,200}") {
        let _ = genfv_hdl::lex(&input);
    }

    #[test]
    fn hdl_parser_never_panics(input in "[ -~\\n]{0,300}") {
        let _ = genfv_hdl::parse_source(&input);
        let _ = genfv_hdl::parse_expression(&input);
    }
}

#[test]
fn found_assertions_always_reparse() {
    // Anything the scanner extracts must itself round-trip: scan → render
    // → parse. Uses a grab bag of realistic completion fragments.
    let samples = [
        "property a; x == y; endproperty garbage property b; endproperty",
        "assert property (a |-> b); and then assert property ((c));",
        "prose ## property p; q ##1 r |=> s; endproperty more prose",
    ];
    for text in samples {
        for assertion in parse_assertions(text) {
            let rendered = genfv_sva::render_assertion(&assertion);
            let reparsed = parse_assertion(&rendered)
                .unwrap_or_else(|e| panic!("`{rendered}` must reparse: {e}"));
            assert_eq!(assertion.body, reparsed.body);
        }
    }
}
