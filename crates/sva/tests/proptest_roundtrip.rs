//! Property-based round-trip test: any assertion AST we can render must
//! re-parse to the identical AST. This pins the renderer and parser
//! against each other — the exact loop the flows rely on when they store
//! accepted lemmas as text and later re-compile them.

use genfv_hdl::ast::{BinaryAstOp, Expr, UnaryAstOp};
use genfv_sva::{parse_assertion, render_assertion, Assertion, PropBody, SeqStep, Sequence};
use proptest::prelude::*;

/// Stack-machine expression generator (same trick as the IR differential
/// test: avoids deeply recursive strategies).
#[derive(Clone, Debug)]
enum Op {
    Ident(u8),
    Num(u16),
    SizedNum(u8, u16),
    Not,
    LogNot,
    RedAnd,
    RedOr,
    RedXor,
    Bin(u8),
    Ternary,
    Index(u8),
    Past,
    Stable,
    CountOnes,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..5).prop_map(Op::Ident),
        any::<u16>().prop_map(Op::Num),
        ((1u8..32), any::<u16>()).prop_map(|(w, v)| Op::SizedNum(w, v)),
        Just(Op::Not),
        Just(Op::LogNot),
        Just(Op::RedAnd),
        Just(Op::RedOr),
        Just(Op::RedXor),
        (0u8..14).prop_map(Op::Bin),
        Just(Op::Ternary),
        (0u8..8).prop_map(Op::Index),
        Just(Op::Past),
        Just(Op::Stable),
        Just(Op::CountOnes),
    ]
}

fn build_expr(ops: &[Op]) -> Expr {
    let names = ["count1", "count2", "state", "req", "gnt"];
    let mut stack: Vec<Expr> = vec![Expr::Ident("count1".to_string())];
    for op in ops {
        match op {
            Op::Ident(i) => stack.push(Expr::Ident(names[*i as usize % names.len()].to_string())),
            Op::Num(v) => stack.push(Expr::Number { size: None, base: 'i', digits: v.to_string() }),
            Op::SizedNum(w, v) => {
                stack.push(Expr::Number { size: Some(*w as u32), base: 'd', digits: v.to_string() })
            }
            Op::Not => {
                let a = stack.pop().unwrap();
                stack.push(Expr::Unary(UnaryAstOp::BitNot, Box::new(a)));
            }
            Op::LogNot => {
                let a = stack.pop().unwrap();
                stack.push(Expr::Unary(UnaryAstOp::LogNot, Box::new(a)));
            }
            Op::RedAnd => {
                let a = stack.pop().unwrap();
                stack.push(Expr::Unary(UnaryAstOp::RedAnd, Box::new(a)));
            }
            Op::RedOr => {
                let a = stack.pop().unwrap();
                stack.push(Expr::Unary(UnaryAstOp::RedOr, Box::new(a)));
            }
            Op::RedXor => {
                let a = stack.pop().unwrap();
                stack.push(Expr::Unary(UnaryAstOp::RedXor, Box::new(a)));
            }
            Op::Bin(k) => {
                if stack.len() < 2 {
                    continue;
                }
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                let ops = [
                    BinaryAstOp::Add,
                    BinaryAstOp::Sub,
                    BinaryAstOp::Mul,
                    BinaryAstOp::BitAnd,
                    BinaryAstOp::BitOr,
                    BinaryAstOp::BitXor,
                    BinaryAstOp::Shl,
                    BinaryAstOp::Shr,
                    BinaryAstOp::Lt,
                    BinaryAstOp::Le,
                    BinaryAstOp::Eq,
                    BinaryAstOp::Ne,
                    BinaryAstOp::LogAnd,
                    BinaryAstOp::LogOr,
                ];
                let op = ops[*k as usize % ops.len()];
                stack.push(Expr::Binary(op, Box::new(a), Box::new(b)));
            }
            Op::Ternary => {
                if stack.len() < 3 {
                    continue;
                }
                let e = stack.pop().unwrap();
                let t = stack.pop().unwrap();
                let c = stack.pop().unwrap();
                stack.push(Expr::Ternary(Box::new(c), Box::new(t), Box::new(e)));
            }
            Op::Index(i) => {
                let a = stack.pop().unwrap();
                // Only index identifiers: indexing arbitrary expressions is
                // not valid Verilog and the renderer would parenthesise.
                if matches!(a, Expr::Ident(_)) {
                    stack.push(Expr::Index(
                        Box::new(a),
                        Box::new(Expr::Number { size: None, base: 'i', digits: i.to_string() }),
                    ));
                } else {
                    stack.push(a);
                }
            }
            Op::Past => {
                let a = stack.pop().unwrap();
                stack.push(Expr::Call("$past".to_string(), vec![a]));
            }
            Op::Stable => {
                let a = stack.pop().unwrap();
                stack.push(Expr::Call("$stable".to_string(), vec![a]));
            }
            Op::CountOnes => {
                let a = stack.pop().unwrap();
                stack.push(Expr::Call("$countones".to_string(), vec![a]));
            }
        }
    }
    stack.pop().unwrap()
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    proptest::collection::vec(arb_op(), 0..16).prop_map(|ops| build_expr(&ops))
}

fn arb_seq() -> impl Strategy<Value = Sequence> {
    (proptest::collection::vec(arb_op(), 0..10), proptest::collection::vec(0u32..4, 0..3)).prop_map(
        |(ops, delays)| {
            let mut steps = vec![SeqStep { delay: 0, expr: build_expr(&ops) }];
            for d in delays {
                steps.push(SeqStep { delay: d + 1, expr: Expr::Ident("req".to_string()) });
            }
            Sequence { steps }
        },
    )
}

fn arb_assertion() -> impl Strategy<Value = Assertion> {
    (
        proptest::option::of("[a-z][a-z0-9_]{0,10}"),
        proptest::option::of(arb_expr()),
        prop_oneof![
            arb_expr().prop_map(PropBody::Expr),
            (arb_seq(), any::<bool>(), arb_seq()).prop_map(|(a, o, c)| {
                PropBody::Implication { antecedent: a, overlapping: o, consequent: c }
            }),
        ],
    )
        .prop_map(|(name, disable_iff, body)| Assertion { name, disable_iff, body })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn render_parse_roundtrip(assertion in arb_assertion()) {
        let text = render_assertion(&assertion);
        let reparsed = parse_assertion(&text)
            .unwrap_or_else(|e| panic!("rendered assertion must parse: `{text}`: {e}"));
        prop_assert_eq!(&assertion.body, &reparsed.body, "body mismatch via `{}`", text);
        prop_assert_eq!(&assertion.disable_iff, &reparsed.disable_iff);
        // Names round-trip only for the block form.
        if assertion.name.is_some() {
            prop_assert_eq!(&assertion.name, &reparsed.name);
        }
    }
}
