//! Differential property test: the bit-blaster and the concrete evaluator
//! must implement identical semantics. Random expression DAGs are built over
//! a handful of symbols, random values are substituted, and the SAT-model
//! result is compared with the evaluator result.

use genfv_ir::{evaluate, BitBlaster, BitVecValue, Context, Env, ExprRef, LitEnv};
use proptest::prelude::*;

/// An expression-building instruction; interpreting a list of these over a
/// stack yields a random DAG (a stack machine avoids recursive strategies).
#[derive(Clone, Debug)]
enum Op {
    PushSym(u8),
    PushConst(u64),
    Not,
    Neg,
    RedAnd,
    RedOr,
    RedXor,
    And,
    Or,
    Xor,
    Add,
    Sub,
    Mul,
    Udiv,
    Urem,
    Eq,
    Ult,
    Ule,
    Slt,
    Shl,
    Lshr,
    Ite,
    ExtractHalf,
    ZextDouble,
    ConcatSelf,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4).prop_map(Op::PushSym),
        any::<u64>().prop_map(Op::PushConst),
        Just(Op::Not),
        Just(Op::Neg),
        Just(Op::RedAnd),
        Just(Op::RedOr),
        Just(Op::RedXor),
        Just(Op::And),
        Just(Op::Or),
        Just(Op::Xor),
        Just(Op::Add),
        Just(Op::Sub),
        Just(Op::Mul),
        Just(Op::Udiv),
        Just(Op::Urem),
        Just(Op::Eq),
        Just(Op::Ult),
        Just(Op::Ule),
        Just(Op::Slt),
        Just(Op::Shl),
        Just(Op::Lshr),
        Just(Op::Ite),
        Just(Op::ExtractHalf),
        Just(Op::ZextDouble),
        Just(Op::ConcatSelf),
    ]
}

/// Builds an expression from the op list; returns the final stack top.
fn build(ctx: &mut Context, width: u32, ops: &[Op], syms: &[ExprRef]) -> ExprRef {
    let mut stack: Vec<ExprRef> = vec![syms[0]];
    // Normalises an operand to `width` bits so binary ops stay legal.
    fn norm(ctx: &mut Context, e: ExprRef, width: u32) -> ExprRef {
        let w = ctx.width_of(e);
        if w == width {
            e
        } else if w > width {
            ctx.extract(e, width - 1, 0)
        } else {
            ctx.zext(e, width)
        }
    }
    for op in ops {
        match op {
            Op::PushSym(i) => stack.push(syms[*i as usize % syms.len()]),
            Op::PushConst(c) => {
                let e = ctx.constant(*c, width);
                stack.push(e);
            }
            Op::Not => {
                let a = stack.pop().unwrap();
                stack.push(ctx.not(a));
            }
            Op::Neg => {
                let a = stack.pop().unwrap();
                stack.push(ctx.neg(a));
            }
            Op::RedAnd => {
                let a = stack.pop().unwrap();
                stack.push(ctx.red_and(a));
            }
            Op::RedOr => {
                let a = stack.pop().unwrap();
                stack.push(ctx.red_or(a));
            }
            Op::RedXor => {
                let a = stack.pop().unwrap();
                stack.push(ctx.red_xor(a));
            }
            Op::And
            | Op::Or
            | Op::Xor
            | Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Udiv
            | Op::Urem
            | Op::Eq
            | Op::Ult
            | Op::Ule
            | Op::Slt
            | Op::Shl
            | Op::Lshr => {
                if stack.len() < 2 {
                    continue;
                }
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                let a = norm(ctx, a, width);
                let b = norm(ctx, b, width);
                let e = match op {
                    Op::And => ctx.and(a, b),
                    Op::Or => ctx.or(a, b),
                    Op::Xor => ctx.xor(a, b),
                    Op::Add => ctx.add(a, b),
                    Op::Sub => ctx.sub(a, b),
                    Op::Mul => ctx.mul(a, b),
                    Op::Udiv => ctx.udiv(a, b),
                    Op::Urem => ctx.urem(a, b),
                    Op::Eq => ctx.eq(a, b),
                    Op::Ult => ctx.ult(a, b),
                    Op::Ule => ctx.ule(a, b),
                    Op::Slt => ctx.slt(a, b),
                    Op::Shl => ctx.shl(a, b),
                    Op::Lshr => ctx.lshr(a, b),
                    _ => unreachable!(),
                };
                stack.push(e);
            }
            Op::Ite => {
                if stack.len() < 3 {
                    continue;
                }
                let e = stack.pop().unwrap();
                let t = stack.pop().unwrap();
                let c = stack.pop().unwrap();
                let c1 = {
                    let cw = ctx.width_of(c);
                    if cw == 1 {
                        c
                    } else {
                        ctx.red_or(c)
                    }
                };
                let t = norm(ctx, t, width);
                let e = norm(ctx, e, width);
                stack.push(ctx.ite(c1, t, e));
            }
            Op::ExtractHalf => {
                let a = stack.pop().unwrap();
                let w = ctx.width_of(a);
                if w >= 2 {
                    stack.push(ctx.extract(a, w / 2, 0));
                } else {
                    stack.push(a);
                }
            }
            Op::ZextDouble => {
                let a = stack.pop().unwrap();
                let w = ctx.width_of(a);
                if w <= 32 {
                    stack.push(ctx.zext(a, w * 2));
                } else {
                    stack.push(a);
                }
            }
            Op::ConcatSelf => {
                let a = stack.pop().unwrap();
                if ctx.width_of(a) <= 32 {
                    stack.push(ctx.concat(a, a));
                } else {
                    stack.push(a);
                }
            }
        }
    }
    stack.pop().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn bitblast_agrees_with_evaluator(
        width in 1u32..12,
        ops in proptest::collection::vec(arb_op(), 1..24),
        vals in proptest::collection::vec(any::<u64>(), 4),
    ) {
        let mut ctx = Context::new();
        let syms: Vec<ExprRef> =
            (0..4).map(|i| ctx.symbol(&format!("s{i}"), width)).collect();
        let e = build(&mut ctx, width, &ops, &syms);

        // Evaluator result.
        let mut env = Env::new();
        for (s, v) in syms.iter().zip(&vals) {
            env.insert(*s, BitVecValue::from_u64(*v, width));
        }
        let expected = evaluate(&ctx, &env, e);

        // Bit-blaster result under the same bindings.
        let mut bb = BitBlaster::new();
        let mut lenv = LitEnv::new();
        let lits = bb.blast(&ctx, &mut lenv, e);
        for (s, v) in syms.iter().zip(&vals) {
            let sl = bb.blast(&ctx, &mut lenv, *s);
            let val = BitVecValue::from_u64(*v, width);
            // Pin each symbol bit to the concrete value.
            for (i, &l) in sl.iter().enumerate() {
                let want = val.bit(i as u32);
                let fixed = if want { l } else { !l };
                bb.assert_lit(fixed);
            }
        }
        prop_assert!(bb.solver_mut().solve().is_sat());
        let got = bb.read_model_value(&lits);
        prop_assert_eq!(got, expected, "expr: {}", ctx.display(e));
    }

    #[test]
    fn blasted_formula_has_unique_output_per_input(
        width in 1u32..6,
        ops in proptest::collection::vec(arb_op(), 1..12),
        vals in proptest::collection::vec(any::<u64>(), 4),
    ) {
        // Functional consistency: with all inputs pinned, the output vector
        // is forced — asserting its negation must be UNSAT.
        let mut ctx = Context::new();
        let syms: Vec<ExprRef> =
            (0..4).map(|i| ctx.symbol(&format!("s{i}"), width)).collect();
        let e = build(&mut ctx, width, &ops, &syms);

        let mut env = Env::new();
        for (s, v) in syms.iter().zip(&vals) {
            env.insert(*s, BitVecValue::from_u64(*v, width));
        }
        let expected = evaluate(&ctx, &env, e);

        let mut bb = BitBlaster::new();
        let mut lenv = LitEnv::new();
        let lits = bb.blast(&ctx, &mut lenv, e);
        for (s, v) in syms.iter().zip(&vals) {
            let sl = bb.blast(&ctx, &mut lenv, *s);
            let val = BitVecValue::from_u64(*v, width);
            for (i, &l) in sl.iter().enumerate() {
                let fixed = if val.bit(i as u32) { l } else { !l };
                bb.assert_lit(fixed);
            }
        }
        // Assert output != expected: some bit differs.
        let diff: Vec<_> = lits
            .iter()
            .enumerate()
            .map(|(i, &l)| if expected.bit(i as u32) { !l } else { l })
            .collect();
        bb.solver_mut().add_clause(diff);
        prop_assert!(bb.solver_mut().solve().is_unsat());
    }
}

#[test]
fn regression_paper_counters_induction_shape() {
    // Word-level sanity for the paper's example: count1 == count2 is
    // inductive, while &count1 |-> &count2 alone is not. Checked here at
    // the raw SAT level (the mc crate packages this as k-induction).
    let mut ctx = Context::new();
    let c1 = ctx.symbol("count1", 8); // narrower than 32 for test speed
    let c2 = ctx.symbol("count2", 8);
    let one = ctx.constant(1, 8);
    let n1 = ctx.add(c1, one);
    let n2 = ctx.add(c2, one);

    // Property p(s) = &count1 -> &count2 ; helper h(s) = count1 == count2.
    let r1 = ctx.red_and(c1);
    let r2 = ctx.red_and(c2);
    let p = ctx.implies(r1, r2);
    let h = ctx.eq(c1, c2);

    // Inductive step for p alone: p(s) ∧ ¬p(next(s)) — satisfiable (fails).
    {
        let mut bb = BitBlaster::new();
        let mut env = LitEnv::new();
        let lp = bb.blast(&ctx, &mut env, p);
        bb.assert_lit(lp[0]);
        // next-state copies share the same env since next-exprs are over
        // current symbols: evaluate p over (n1, n2) by substitution.
        let rn1 = ctx.red_and(n1);
        let rn2 = ctx.red_and(n2);
        let pn = ctx.implies(rn1, rn2);
        let lpn = bb.blast(&ctx, &mut env, pn);
        bb.assert_lit(!lpn[0]);
        assert!(
            bb.solver_mut().solve().is_sat(),
            "induction step for the bare property must fail (paper Fig. 3)"
        );
    }

    // Inductive step for h: h(s) ∧ ¬h(next(s)) — UNSAT (h is inductive).
    {
        let mut bb = BitBlaster::new();
        let mut env = LitEnv::new();
        let lh = bb.blast(&ctx, &mut env, h);
        bb.assert_lit(lh[0]);
        let hn = ctx.eq(n1, n2);
        let lhn = bb.blast(&ctx, &mut env, hn);
        bb.assert_lit(!lhn[0]);
        assert!(bb.solver_mut().solve().is_unsat(), "helper must be inductive");
    }

    // h ∧ p(s) ∧ ¬p(next): UNSAT — helper rescues the property.
    {
        let mut bb = BitBlaster::new();
        let mut env = LitEnv::new();
        let lh = bb.blast(&ctx, &mut env, h);
        bb.assert_lit(lh[0]);
        let lp = bb.blast(&ctx, &mut env, p);
        bb.assert_lit(lp[0]);
        let rn1 = ctx.red_and(n1);
        let rn2 = ctx.red_and(n2);
        let pn = ctx.implies(rn1, rn2);
        let lpn = bb.blast(&ctx, &mut env, pn);
        bb.assert_lit(!lpn[0]);
        assert!(
            bb.solver_mut().solve().is_unsat(),
            "with the helper assumed, the induction step must pass"
        );
    }
}
