//! Differential property test: the bit-blaster and the concrete evaluator
//! must implement identical semantics. Random expression DAGs are built over
//! a handful of symbols, random values are substituted, and the SAT-model
//! result is compared with the evaluator result.

use genfv_ir::{evaluate, BitBlaster, BitVecValue, Context, Env, ExprRef, LitEnv};
use proptest::prelude::*;

mod common;
use common::{arb_op, build};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn bitblast_agrees_with_evaluator(
        width in 1u32..12,
        ops in proptest::collection::vec(arb_op(), 1..24),
        vals in proptest::collection::vec(any::<u64>(), 4),
    ) {
        let mut ctx = Context::new();
        let syms: Vec<ExprRef> =
            (0..4).map(|i| ctx.symbol(&format!("s{i}"), width)).collect();
        let e = build(&mut ctx, width, &ops, &syms);

        // Evaluator result.
        let mut env = Env::new();
        for (s, v) in syms.iter().zip(&vals) {
            env.insert(*s, BitVecValue::from_u64(*v, width));
        }
        let expected = evaluate(&ctx, &env, e);

        // Bit-blaster result under the same bindings.
        let mut bb = BitBlaster::new();
        let mut lenv = LitEnv::new();
        let lits = bb.blast(&ctx, &mut lenv, e);
        for (s, v) in syms.iter().zip(&vals) {
            let sl = bb.blast(&ctx, &mut lenv, *s);
            let val = BitVecValue::from_u64(*v, width);
            // Pin each symbol bit to the concrete value.
            for (i, &l) in sl.iter().enumerate() {
                let want = val.bit(i as u32);
                let fixed = if want { l } else { !l };
                bb.assert_lit(fixed);
            }
        }
        prop_assert!(bb.solver_mut().solve().is_sat());
        let got = bb.read_model_value(&lits);
        prop_assert_eq!(got, expected, "expr: {}", ctx.display(e));
    }

    #[test]
    fn blasted_formula_has_unique_output_per_input(
        width in 1u32..6,
        ops in proptest::collection::vec(arb_op(), 1..12),
        vals in proptest::collection::vec(any::<u64>(), 4),
    ) {
        // Functional consistency: with all inputs pinned, the output vector
        // is forced — asserting its negation must be UNSAT.
        let mut ctx = Context::new();
        let syms: Vec<ExprRef> =
            (0..4).map(|i| ctx.symbol(&format!("s{i}"), width)).collect();
        let e = build(&mut ctx, width, &ops, &syms);

        let mut env = Env::new();
        for (s, v) in syms.iter().zip(&vals) {
            env.insert(*s, BitVecValue::from_u64(*v, width));
        }
        let expected = evaluate(&ctx, &env, e);

        let mut bb = BitBlaster::new();
        let mut lenv = LitEnv::new();
        let lits = bb.blast(&ctx, &mut lenv, e);
        for (s, v) in syms.iter().zip(&vals) {
            let sl = bb.blast(&ctx, &mut lenv, *s);
            let val = BitVecValue::from_u64(*v, width);
            for (i, &l) in sl.iter().enumerate() {
                let fixed = if val.bit(i as u32) { l } else { !l };
                bb.assert_lit(fixed);
            }
        }
        // Assert output != expected: some bit differs.
        let diff: Vec<_> = lits
            .iter()
            .enumerate()
            .map(|(i, &l)| if expected.bit(i as u32) { !l } else { l })
            .collect();
        bb.solver_mut().add_clause(diff);
        prop_assert!(bb.solver_mut().solve().is_unsat());
    }
}

#[test]
fn regression_paper_counters_induction_shape() {
    // Word-level sanity for the paper's example: count1 == count2 is
    // inductive, while &count1 |-> &count2 alone is not. Checked here at
    // the raw SAT level (the mc crate packages this as k-induction).
    let mut ctx = Context::new();
    let c1 = ctx.symbol("count1", 8); // narrower than 32 for test speed
    let c2 = ctx.symbol("count2", 8);
    let one = ctx.constant(1, 8);
    let n1 = ctx.add(c1, one);
    let n2 = ctx.add(c2, one);

    // Property p(s) = &count1 -> &count2 ; helper h(s) = count1 == count2.
    let r1 = ctx.red_and(c1);
    let r2 = ctx.red_and(c2);
    let p = ctx.implies(r1, r2);
    let h = ctx.eq(c1, c2);

    // Inductive step for p alone: p(s) ∧ ¬p(next(s)) — satisfiable (fails).
    {
        let mut bb = BitBlaster::new();
        let mut env = LitEnv::new();
        let lp = bb.blast(&ctx, &mut env, p);
        bb.assert_lit(lp[0]);
        // next-state copies share the same env since next-exprs are over
        // current symbols: evaluate p over (n1, n2) by substitution.
        let rn1 = ctx.red_and(n1);
        let rn2 = ctx.red_and(n2);
        let pn = ctx.implies(rn1, rn2);
        let lpn = bb.blast(&ctx, &mut env, pn);
        bb.assert_lit(!lpn[0]);
        assert!(
            bb.solver_mut().solve().is_sat(),
            "induction step for the bare property must fail (paper Fig. 3)"
        );
    }

    // Inductive step for h: h(s) ∧ ¬h(next(s)) — UNSAT (h is inductive).
    {
        let mut bb = BitBlaster::new();
        let mut env = LitEnv::new();
        let lh = bb.blast(&ctx, &mut env, h);
        bb.assert_lit(lh[0]);
        let hn = ctx.eq(n1, n2);
        let lhn = bb.blast(&ctx, &mut env, hn);
        bb.assert_lit(!lhn[0]);
        assert!(bb.solver_mut().solve().is_unsat(), "helper must be inductive");
    }

    // h ∧ p(s) ∧ ¬p(next): UNSAT — helper rescues the property.
    {
        let mut bb = BitBlaster::new();
        let mut env = LitEnv::new();
        let lh = bb.blast(&ctx, &mut env, h);
        bb.assert_lit(lh[0]);
        let lp = bb.blast(&ctx, &mut env, p);
        bb.assert_lit(lp[0]);
        let rn1 = ctx.red_and(n1);
        let rn2 = ctx.red_and(n2);
        let pn = ctx.implies(rn1, rn2);
        let lpn = bb.blast(&ctx, &mut env, pn);
        bb.assert_lit(!lpn[0]);
        assert!(
            bb.solver_mut().solve().is_unsat(),
            "with the helper assumed, the induction step must pass"
        );
    }
}
