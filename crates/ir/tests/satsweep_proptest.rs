//! Differential property tests for `OptLevel::SatSweep`: on randomly
//! generated expression DAGs and transition systems, the pipeline with
//! `SatSweepPass` enabled must remain observationally identical to the
//! unoptimized structure — combinationally (the evaluator agrees on
//! every input assignment) and sequentially (a lockstep simulation from
//! reset agrees on every observable at every cycle, under random input
//! traces).
//!
//! This is the sweep's sharpest soundness check: the generated systems
//! carry *no* constraints, so every merge the sweep performs must be an
//! unconditional equivalence — any miter the bounded SAT calls got wrong
//! shows up as an evaluator mismatch on the very next random stimulus.
//! Hash-consing means structurally identical cones are already shared,
//! so the pairs the sweep sees here are exactly the adversarial ones:
//! signature-aliased lookalikes it must refute via CEX refinement.

use genfv_ir::{
    evaluate, optimize, BitVecValue, Context, Env, ExprRef, OptConfig, OptLevel, Simulator,
    TransitionSystem,
};
use proptest::prelude::*;

mod common;
use common::{arb_op, build};

/// Coerces `e` to exactly `width` bits (the generator's stack top can end
/// at any width after extracts/zexts/reductions).
fn norm(ctx: &mut Context, e: ExprRef, width: u32) -> ExprRef {
    let w = ctx.width_of(e);
    if w == width {
        e
    } else if w > width {
        ctx.extract(e, width - 1, 0)
    } else {
        ctx.zext(e, width)
    }
}

fn sweep_config() -> OptConfig {
    OptConfig::default().with_level(OptLevel::SatSweep)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Combinational preservation under sweeping: optimize a random DAG
    /// at `OptLevel::SatSweep` (published as a named signal so the
    /// pipeline must keep its cone) and check that the evaluator returns
    /// the same value on both sides for the same symbol assignment.
    #[test]
    fn swept_dag_evaluates_identically(
        width in 1u32..10,
        ops in proptest::collection::vec(arb_op(), 1..32),
        vals in proptest::collection::vec(any::<u64>(), 4),
    ) {
        let mut ctx = Context::new();
        let syms: Vec<ExprRef> =
            (0..4).map(|i| ctx.symbol(&format!("s{i}"), width)).collect();
        let e = build(&mut ctx, width, &ops, &syms);

        let mut ts = TransitionSystem::new("rand_comb");
        for &s in &syms {
            ts.add_input(s);
        }
        ts.add_signal("out", e);

        // Reference value before the pipeline touches anything.
        let mut env = Env::new();
        for (s, v) in syms.iter().zip(&vals) {
            env.insert(*s, BitVecValue::from_u64(*v, width));
        }
        let expected = evaluate(&ctx, &env, e);

        let mut roots = vec![e];
        optimize(&mut ctx, &mut ts, &mut roots, &sweep_config());

        // The sweep invalidated every pre-optimization ExprRef: re-key
        // the environment by symbol name. Symbols the optimizer removed
        // from the arena are exactly the ones the result cannot depend
        // on, so skipping them is sound.
        let out = ts.find_signal("out").expect("published signal survives");
        prop_assert_eq!(roots[0], out, "root and signal were rewritten in lockstep");
        let mut opt_env = Env::new();
        for (i, v) in vals.iter().enumerate() {
            if let Some(s) = ctx.find_symbol(&format!("s{i}")) {
                opt_env.insert(s, BitVecValue::from_u64(*v, width));
            }
        }
        let got = evaluate(&ctx, &opt_env, out);
        prop_assert_eq!(got, expected, "swept expr: {}", ctx.display(out));
    }

    /// Sequential preservation under sweeping: a random two-register
    /// transition system with a published observable, simulated in
    /// lockstep from reset over a random input trace. Register
    /// correspondence may legitimately merge the two registers when
    /// their inits coincide and their next functions prove equal under
    /// the substitution — precisely then the observable's trace is
    /// unchanged, which is what this pins.
    #[test]
    fn swept_ts_simulates_identically(
        width in 1u32..8,
        next_ops in proptest::collection::vec(
            proptest::collection::vec(arb_op(), 1..16), 2),
        obs_ops in proptest::collection::vec(arb_op(), 1..16),
        inits in proptest::collection::vec(any::<u64>(), 2),
        trace in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 2), 1..5),
    ) {
        let mut ctx = Context::new();
        let i0 = ctx.symbol("i0", width);
        let i1 = ctx.symbol("i1", width);
        let r0 = ctx.symbol("r0", width);
        let r1 = ctx.symbol("r1", width);
        let syms = [i0, i1, r0, r1];

        let mut nexts = Vec::new();
        for ops in &next_ops {
            let e = build(&mut ctx, width, ops, &syms);
            nexts.push(norm(&mut ctx, e, width));
        }
        let obs = build(&mut ctx, width, &obs_ops, &syms);
        let obs = norm(&mut ctx, obs, width);

        let mut ts = TransitionSystem::new("rand_seq");
        ts.add_input(i0);
        ts.add_input(i1);
        for (k, (&next, init)) in nexts.iter().zip(&inits).enumerate() {
            let init = ctx.constant(*init, width);
            ts.add_state(syms[2 + k], Some(init), next);
        }
        ts.add_signal("obs", obs);

        let ctx0 = ctx.clone();
        let ts0 = ts.clone();
        let mut roots = Vec::new();
        optimize(&mut ctx, &mut ts, &mut roots, &sweep_config());

        let obs1 = ts.find_signal("obs").expect("observable survives");
        let mut ref_sim = Simulator::new(&ctx0, &ts0);
        let mut opt_sim = Simulator::new(&ctx, &ts);
        ref_sim.reset();
        opt_sim.reset();
        for (cycle, step) in trace.iter().enumerate() {
            for (name, v) in ["i0", "i1"].iter().zip(step) {
                let val = BitVecValue::from_u64(*v, width);
                ref_sim.set(ctx0.find_symbol(name).unwrap(), val.clone());
                // Inputs the optimizer swept out of the arena cannot
                // influence any kept observable.
                if let Some(s) = ctx.find_symbol(name) {
                    opt_sim.set(s, val);
                }
            }
            prop_assert_eq!(
                ref_sim.peek(obs),
                opt_sim.peek(obs1),
                "observable diverged at cycle {}",
                cycle
            );
            ref_sim.step();
            opt_sim.step();
        }
        prop_assert_eq!(ref_sim.peek(obs), opt_sim.peek(obs1), "observable diverged after trace");
    }
}

/// A directed (non-random) instance where the sweep is guaranteed to
/// fire: two structurally different encodings of XOR, merged by the
/// sweep, still evaluate identically across all four input corners —
/// pinned here so the proptests above cannot silently degenerate into
/// never exercising a merge.
#[test]
fn merged_cone_stays_evaluator_equivalent() {
    let mut ctx = Context::new();
    let a = ctx.symbol("a", 1);
    let b = ctx.symbol("b", 1);
    let x1 = ctx.xor(a, b);
    let o = ctx.or(a, b);
    let n = ctx.and(a, b);
    let nn = ctx.not(n);
    let x2 = ctx.and(o, nn);

    let mut ts = TransitionSystem::new("xor_twins");
    ts.add_input(a);
    ts.add_input(b);
    ts.add_signal("x1", x1);
    ts.add_signal("x2", x2);

    let ctx0 = ctx.clone();
    let ts0 = ts.clone();
    let mut roots = Vec::new();
    let stats = optimize(&mut ctx, &mut ts, &mut roots, &sweep_config());
    assert!(stats.nodes_merged > 0, "the two XOR encodings must merge");

    let s1 = ts.find_signal("x1").unwrap();
    let s2 = ts.find_signal("x2").unwrap();
    assert_eq!(s1, s2, "merged signals collapse to one node");
    for (va, vb) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
        let mut env0 = Env::new();
        env0.insert(ctx0.find_symbol("a").unwrap(), BitVecValue::from_u64(va, 1));
        env0.insert(ctx0.find_symbol("b").unwrap(), BitVecValue::from_u64(vb, 1));
        let x1 = ts0.find_signal("x1").unwrap();
        let expected = evaluate(&ctx0, &env0, x1);
        let mut env = Env::new();
        env.insert(ctx.find_symbol("a").unwrap(), BitVecValue::from_u64(va, 1));
        env.insert(ctx.find_symbol("b").unwrap(), BitVecValue::from_u64(vb, 1));
        assert_eq!(evaluate(&ctx, &env, s1), expected, "a={va} b={vb}");
    }
}
