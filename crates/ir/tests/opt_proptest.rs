//! Differential property tests for the `genfv_ir::opt` pipeline: on
//! randomly generated expression DAGs and transition systems, the
//! optimized structure must be observationally identical to the original
//! — combinationally (the evaluator agrees on every input assignment)
//! and sequentially (a lockstep simulation from reset agrees on every
//! observable at every cycle, under random input traces).
//!
//! The sweep pass rebuilds the arena, so no `ExprRef` survives
//! optimization: everything is re-resolved by *name* (`find_symbol`,
//! `find_signal`) on the optimized side, which is exactly the discipline
//! downstream consumers follow.

use genfv_ir::{
    evaluate, optimize, BitVecValue, Context, Env, ExprRef, OptConfig, Simulator, TransitionSystem,
};
use proptest::prelude::*;

mod common;
use common::{arb_op, build, Op};

/// Coerces `e` to exactly `width` bits (the generator's stack top can end
/// at any width after extracts/zexts/reductions).
fn norm(ctx: &mut Context, e: ExprRef, width: u32) -> ExprRef {
    let w = ctx.width_of(e);
    if w == width {
        e
    } else if w > width {
        ctx.extract(e, width - 1, 0)
    } else {
        ctx.zext(e, width)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Combinational preservation: optimize a random DAG (published as a
    /// named signal so the pipeline must keep its cone) and check that
    /// the evaluator returns the same value on both sides for the same
    /// symbol assignment.
    #[test]
    fn optimized_dag_evaluates_identically(
        width in 1u32..10,
        ops in proptest::collection::vec(arb_op(), 1..32),
        vals in proptest::collection::vec(any::<u64>(), 4),
    ) {
        let mut ctx = Context::new();
        let syms: Vec<ExprRef> =
            (0..4).map(|i| ctx.symbol(&format!("s{i}"), width)).collect();
        let e = build(&mut ctx, width, &ops, &syms);

        let mut ts = TransitionSystem::new("rand_comb");
        for &s in &syms {
            ts.add_input(s);
        }
        ts.add_signal("out", e);

        // Reference value before the pipeline touches anything.
        let mut env = Env::new();
        for (s, v) in syms.iter().zip(&vals) {
            env.insert(*s, BitVecValue::from_u64(*v, width));
        }
        let expected = evaluate(&ctx, &env, e);

        let mut roots = vec![e];
        optimize(&mut ctx, &mut ts, &mut roots, &OptConfig::default());

        // The sweep invalidated every pre-optimization ExprRef: re-key
        // the environment by symbol name. Symbols the optimizer removed
        // from the arena are exactly the ones the result cannot depend
        // on, so skipping them is sound.
        let out = ts.find_signal("out").expect("published signal survives");
        prop_assert_eq!(roots[0], out, "root and signal were rewritten in lockstep");
        let mut opt_env = Env::new();
        for (i, v) in vals.iter().enumerate() {
            if let Some(s) = ctx.find_symbol(&format!("s{i}")) {
                opt_env.insert(s, BitVecValue::from_u64(*v, width));
            }
        }
        let got = evaluate(&ctx, &opt_env, out);
        prop_assert_eq!(got, expected, "optimized expr: {}", ctx.display(out));
    }

    /// Sequential preservation: a random two-register transition system
    /// with a published observable, simulated in lockstep from reset over
    /// a random input trace. The optimizer may fold registers away
    /// (stuck-at, COI) and rebuild the arena, but the observable's value
    /// trace must be identical cycle for cycle.
    #[test]
    fn optimized_ts_simulates_identically(
        width in 1u32..8,
        next_ops in proptest::collection::vec(
            proptest::collection::vec(arb_op(), 1..16), 2),
        obs_ops in proptest::collection::vec(arb_op(), 1..16),
        inits in proptest::collection::vec(any::<u64>(), 2),
        trace in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 2), 1..5),
    ) {
        let mut ctx = Context::new();
        let i0 = ctx.symbol("i0", width);
        let i1 = ctx.symbol("i1", width);
        let r0 = ctx.symbol("r0", width);
        let r1 = ctx.symbol("r1", width);
        let syms = [i0, i1, r0, r1];

        let mut nexts = Vec::new();
        for ops in &next_ops {
            let e = build(&mut ctx, width, ops, &syms);
            nexts.push(norm(&mut ctx, e, width));
        }
        let obs = build(&mut ctx, width, &obs_ops, &syms);
        let obs = norm(&mut ctx, obs, width);

        let mut ts = TransitionSystem::new("rand_seq");
        ts.add_input(i0);
        ts.add_input(i1);
        for (k, (&next, init)) in nexts.iter().zip(&inits).enumerate() {
            let init = ctx.constant(*init, width);
            ts.add_state(syms[2 + k], Some(init), next);
        }
        ts.add_signal("obs", obs);

        let ctx0 = ctx.clone();
        let ts0 = ts.clone();
        let mut roots = Vec::new();
        optimize(&mut ctx, &mut ts, &mut roots, &OptConfig::default());

        let obs1 = ts.find_signal("obs").expect("observable survives");
        let mut ref_sim = Simulator::new(&ctx0, &ts0);
        let mut opt_sim = Simulator::new(&ctx, &ts);
        ref_sim.reset();
        opt_sim.reset();
        for (cycle, step) in trace.iter().enumerate() {
            for (name, v) in ["i0", "i1"].iter().zip(step) {
                let val = BitVecValue::from_u64(*v, width);
                ref_sim.set(ctx0.find_symbol(name).unwrap(), val.clone());
                // Inputs the optimizer swept out of the arena cannot
                // influence any kept observable.
                if let Some(s) = ctx.find_symbol(name) {
                    opt_sim.set(s, val);
                }
            }
            prop_assert_eq!(
                ref_sim.peek(obs),
                opt_sim.peek(obs1),
                "observable diverged at cycle {}",
                cycle
            );
            ref_sim.step();
            opt_sim.step();
        }
        prop_assert_eq!(ref_sim.peek(obs), opt_sim.peek(obs1), "observable diverged after trace");
    }
}

/// The generator's stack machine is exercised by the proptests above;
/// this pin keeps the module's `Op` surface referenced even under
/// `--no-default-features` style filtering.
#[test]
fn generator_builds_a_dag() {
    let mut ctx = Context::new();
    let syms: Vec<ExprRef> = (0..4).map(|i| ctx.symbol(&format!("s{i}"), 8)).collect();
    let e = build(&mut ctx, 8, &[Op::PushSym(1), Op::Add, Op::Not], &syms);
    assert_eq!(ctx.width_of(e), 8);
}
