//! Differential property test: the hash-consing / Plaisted–Greenbaum
//! template blaster must agree with the naive per-frame blaster and the
//! concrete evaluator on random expression DAGs — including when the same
//! template is stamped twice into one solver (relocation) and when a cone
//! is encoded positive-phase-only (the constraint discipline).

use genfv_ir::{evaluate, BitBlaster, BitVecValue, Context, Env, ExprRef, LitEnv, Template};
use proptest::prelude::*;

mod common;
use common::{arb_op, build};

/// The assumption literals pinning a symbol's slot bits to a value.
fn pin(
    tpl: &Template,
    bb: &mut BitBlaster,
    ctx: &Context,
    env: &mut LitEnv,
    stamp: &genfv_ir::FrameStamp,
    pinned: (ExprRef, &BitVecValue),
) -> Vec<genfv_sat::Lit> {
    let (sym, val) = pinned;
    let lits = tpl.materialize(ctx, bb, env, stamp, sym);
    lits.iter().enumerate().map(|(i, &l)| if val.bit(i as u32) { l } else { !l }).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Template-stamped evaluation equals naive blasting equals the
    /// evaluator, in two independently stamped windows of one solver.
    #[test]
    fn template_blast_and_eval_agree(
        width in 1u32..10,
        ops in proptest::collection::vec(arb_op(), 1..20),
        vals in proptest::collection::vec(any::<u64>(), 4),
        vals2 in proptest::collection::vec(any::<u64>(), 4),
    ) {
        let mut ctx = Context::new();
        let syms: Vec<ExprRef> =
            (0..4).map(|i| ctx.symbol(&format!("s{i}"), width)).collect();
        let e = build(&mut ctx, width, &ops, &syms);

        let expect = |vals: &[u64]| {
            let mut env = Env::new();
            for (s, v) in syms.iter().zip(vals) {
                env.insert(*s, BitVecValue::from_u64(*v, width));
            }
            evaluate(&ctx, &env, e)
        };
        let expected1 = expect(&vals);
        let expected2 = expect(&vals2);

        // Naive blaster reference.
        let naive = {
            let mut bb = BitBlaster::new();
            let mut lenv = LitEnv::new();
            let lits = bb.blast(&ctx, &mut lenv, e);
            let mut assumptions = Vec::new();
            for (s, v) in syms.iter().zip(&vals) {
                let sl = bb.blast(&ctx, &mut lenv, *s);
                let val = BitVecValue::from_u64(*v, width);
                for (i, &l) in sl.iter().enumerate() {
                    assumptions.push(if val.bit(i as u32) { l } else { !l });
                }
            }
            prop_assert!(bb.solve_with_assumptions(&assumptions).is_sat());
            bb.read_model_value(&lits)
        };
        prop_assert_eq!(&naive, &expected1, "naive blaster vs evaluator: {}", ctx.display(e));

        // Template: one build, two stamps into the same solver, with
        // different symbol values per window — exercises relocation.
        let tpl = Template::for_exprs(&ctx, &[e]);
        let mut bb = BitBlaster::new();
        let f1 = tpl.stamp(bb.solver_mut(), None);
        let f2 = tpl.stamp(bb.solver_mut(), None);
        let mut env1 = LitEnv::new();
        let mut env2 = LitEnv::new();
        tpl.bind_frame(&f1, &mut env1);
        tpl.bind_frame(&f2, &mut env2);
        let l1 = tpl.materialize(&ctx, &mut bb, &mut env1, &f1, e);
        let l2 = tpl.materialize(&ctx, &mut bb, &mut env2, &f2, e);
        let mut assumptions = Vec::new();
        for (s, v) in syms.iter().zip(&vals) {
            let val = BitVecValue::from_u64(*v, width);
            assumptions.extend(pin(&tpl, &mut bb, &ctx, &mut env1, &f1, (*s, &val)));
        }
        for (s, v) in syms.iter().zip(&vals2) {
            let val = BitVecValue::from_u64(*v, width);
            assumptions.extend(pin(&tpl, &mut bb, &ctx, &mut env2, &f2, (*s, &val)));
        }
        prop_assert!(bb.solve_with_assumptions(&assumptions).is_sat());
        let got1 = bb.read_model_value(&l1);
        let got2 = bb.read_model_value(&l2);
        prop_assert_eq!(&got1, &expected1, "template window 1: {}", ctx.display(e));
        prop_assert_eq!(&got2, &expected2, "template window 2: {}", ctx.display(e));
        prop_assert_eq!(&got1, &naive, "template vs naive blaster: {}", ctx.display(e));
    }

    /// With every input pinned, the stamped output is *forced*: asserting
    /// its negation must be UNSAT (full functional consistency of the
    /// bipolar template encoding, not just model agreement).
    #[test]
    fn template_output_is_functionally_forced(
        width in 1u32..6,
        ops in proptest::collection::vec(arb_op(), 1..12),
        vals in proptest::collection::vec(any::<u64>(), 4),
    ) {
        let mut ctx = Context::new();
        let syms: Vec<ExprRef> =
            (0..4).map(|i| ctx.symbol(&format!("s{i}"), width)).collect();
        let e = build(&mut ctx, width, &ops, &syms);

        let mut env = Env::new();
        for (s, v) in syms.iter().zip(&vals) {
            env.insert(*s, BitVecValue::from_u64(*v, width));
        }
        let expected = evaluate(&ctx, &env, e);

        let tpl = Template::for_exprs(&ctx, &[e]);
        let mut bb = BitBlaster::new();
        let f = tpl.stamp(bb.solver_mut(), None);
        let mut lenv = LitEnv::new();
        tpl.bind_frame(&f, &mut lenv);
        let lits = tpl.materialize(&ctx, &mut bb, &mut lenv, &f, e);
        for (s, v) in syms.iter().zip(&vals) {
            let sl = tpl.materialize(&ctx, &mut bb, &mut lenv, &f, *s);
            let val = BitVecValue::from_u64(*v, width);
            for (i, &l) in sl.iter().enumerate() {
                bb.assert_lit(if val.bit(i as u32) { l } else { !l });
            }
        }
        // Assert output != expected: some bit differs.
        let diff: Vec<_> = lits
            .iter()
            .enumerate()
            .map(|(i, &l)| if expected.bit(i as u32) { !l } else { l })
            .collect();
        bb.solver_mut().add_clause(diff);
        prop_assert!(bb.solver_mut().solve().is_unsat());
    }

    /// Positive-phase (Plaisted–Greenbaum) constraint cones: activating
    /// the constraint literal is satisfiable exactly when the constraint
    /// can evaluate true — and pinning the inputs makes it SAT/UNSAT
    /// exactly as the evaluator says.
    #[test]
    fn pg_constraint_cones_are_sound(
        width in 1u32..8,
        ops in proptest::collection::vec(arb_op(), 1..16),
        vals in proptest::collection::vec(any::<u64>(), 4),
    ) {
        let mut ctx = Context::new();
        let syms: Vec<ExprRef> =
            (0..4).map(|i| ctx.symbol(&format!("s{i}"), width)).collect();
        let e = build(&mut ctx, width, &ops, &syms);
        // A 1-bit condition over the DAG.
        let cond = if ctx.width_of(e) == 1 { e } else { ctx.red_or(e) };

        let mut env = Env::new();
        for (s, v) in syms.iter().zip(&vals) {
            env.insert(*s, BitVecValue::from_u64(*v, width));
        }
        let holds = evaluate(&ctx, &env, cond).to_bool();

        // Encode `cond` as a transition-system constraint: its cone is
        // positive-phase-only unless shared with a bipolar root.
        let mut ts = genfv_ir::TransitionSystem::new("pg");
        ts.add_constraint(cond);
        let tpl = Template::build(&ctx, &ts);
        let mut bb = BitBlaster::new();
        let t = bb.true_lit();
        let f = tpl.stamp(bb.solver_mut(), None);
        let cl = tpl.constraint_lit(&f, 0, t);
        let mut lenv = LitEnv::new();
        tpl.bind_frame(&f, &mut lenv);
        let mut assumptions = vec![cl];
        for (s, v) in syms.iter().zip(&vals) {
            let val = BitVecValue::from_u64(*v, width);
            assumptions.extend(pin(&tpl, &mut bb, &ctx, &mut lenv, &f, (*s, &val)));
        }
        let res = bb.solve_with_assumptions(&assumptions);
        prop_assert_eq!(
            res.is_sat(),
            holds,
            "PG constraint activation must mirror evaluation: {}",
            ctx.display(cond)
        );
    }
}
