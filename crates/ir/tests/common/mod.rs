//! Shared random-expression-DAG generator for the differential property
//! suites (`bitblast_vs_eval`, `template_vs_blast`): a stack machine over
//! a handful of symbols avoids recursive strategies while covering every
//! word-level operator.

use genfv_ir::{Context, ExprRef};
use proptest::prelude::*;

/// An expression-building instruction; interpreting a list of these over a
/// stack yields a random DAG (a stack machine avoids recursive strategies).
#[derive(Clone, Debug)]
pub enum Op {
    PushSym(u8),
    PushConst(u64),
    Not,
    Neg,
    RedAnd,
    RedOr,
    RedXor,
    And,
    Or,
    Xor,
    Add,
    Sub,
    Mul,
    Udiv,
    Urem,
    Eq,
    Ult,
    Ule,
    Slt,
    Shl,
    Lshr,
    Ite,
    ExtractHalf,
    ZextDouble,
    ConcatSelf,
}

pub fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4).prop_map(Op::PushSym),
        any::<u64>().prop_map(Op::PushConst),
        Just(Op::Not),
        Just(Op::Neg),
        Just(Op::RedAnd),
        Just(Op::RedOr),
        Just(Op::RedXor),
        Just(Op::And),
        Just(Op::Or),
        Just(Op::Xor),
        Just(Op::Add),
        Just(Op::Sub),
        Just(Op::Mul),
        Just(Op::Udiv),
        Just(Op::Urem),
        Just(Op::Eq),
        Just(Op::Ult),
        Just(Op::Ule),
        Just(Op::Slt),
        Just(Op::Shl),
        Just(Op::Lshr),
        Just(Op::Ite),
        Just(Op::ExtractHalf),
        Just(Op::ZextDouble),
        Just(Op::ConcatSelf),
    ]
}

/// Builds an expression from the op list; returns the final stack top.
pub fn build(ctx: &mut Context, width: u32, ops: &[Op], syms: &[ExprRef]) -> ExprRef {
    let mut stack: Vec<ExprRef> = vec![syms[0]];
    // Normalises an operand to `width` bits so binary ops stay legal.
    fn norm(ctx: &mut Context, e: ExprRef, width: u32) -> ExprRef {
        let w = ctx.width_of(e);
        if w == width {
            e
        } else if w > width {
            ctx.extract(e, width - 1, 0)
        } else {
            ctx.zext(e, width)
        }
    }
    for op in ops {
        match op {
            Op::PushSym(i) => stack.push(syms[*i as usize % syms.len()]),
            Op::PushConst(c) => {
                let e = ctx.constant(*c, width);
                stack.push(e);
            }
            Op::Not => {
                let a = stack.pop().unwrap();
                stack.push(ctx.not(a));
            }
            Op::Neg => {
                let a = stack.pop().unwrap();
                stack.push(ctx.neg(a));
            }
            Op::RedAnd => {
                let a = stack.pop().unwrap();
                stack.push(ctx.red_and(a));
            }
            Op::RedOr => {
                let a = stack.pop().unwrap();
                stack.push(ctx.red_or(a));
            }
            Op::RedXor => {
                let a = stack.pop().unwrap();
                stack.push(ctx.red_xor(a));
            }
            Op::And
            | Op::Or
            | Op::Xor
            | Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Udiv
            | Op::Urem
            | Op::Eq
            | Op::Ult
            | Op::Ule
            | Op::Slt
            | Op::Shl
            | Op::Lshr => {
                if stack.len() < 2 {
                    continue;
                }
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                let a = norm(ctx, a, width);
                let b = norm(ctx, b, width);
                let e = match op {
                    Op::And => ctx.and(a, b),
                    Op::Or => ctx.or(a, b),
                    Op::Xor => ctx.xor(a, b),
                    Op::Add => ctx.add(a, b),
                    Op::Sub => ctx.sub(a, b),
                    Op::Mul => ctx.mul(a, b),
                    Op::Udiv => ctx.udiv(a, b),
                    Op::Urem => ctx.urem(a, b),
                    Op::Eq => ctx.eq(a, b),
                    Op::Ult => ctx.ult(a, b),
                    Op::Ule => ctx.ule(a, b),
                    Op::Slt => ctx.slt(a, b),
                    Op::Shl => ctx.shl(a, b),
                    Op::Lshr => ctx.lshr(a, b),
                    _ => unreachable!(),
                };
                stack.push(e);
            }
            Op::Ite => {
                if stack.len() < 3 {
                    continue;
                }
                let e = stack.pop().unwrap();
                let t = stack.pop().unwrap();
                let c = stack.pop().unwrap();
                let c1 = {
                    let cw = ctx.width_of(c);
                    if cw == 1 {
                        c
                    } else {
                        ctx.red_or(c)
                    }
                };
                let t = norm(ctx, t, width);
                let e = norm(ctx, e, width);
                stack.push(ctx.ite(c1, t, e));
            }
            Op::ExtractHalf => {
                let a = stack.pop().unwrap();
                let w = ctx.width_of(a);
                if w >= 2 {
                    stack.push(ctx.extract(a, w / 2, 0));
                } else {
                    stack.push(a);
                }
            }
            Op::ZextDouble => {
                let a = stack.pop().unwrap();
                let w = ctx.width_of(a);
                if w <= 32 {
                    stack.push(ctx.zext(a, w * 2));
                } else {
                    stack.push(a);
                }
            }
            Op::ConcatSelf => {
                let a = stack.pop().unwrap();
                if ctx.width_of(a) <= 32 {
                    stack.push(ctx.concat(a, a));
                } else {
                    stack.push(a);
                }
            }
        }
    }
    stack.pop().unwrap()
}
