//! Concrete evaluation of expressions and cycle-accurate simulation of
//! transition systems.
//!
//! The evaluator is the executable semantics of the IR; the property-based
//! tests in `tests/bitblast_vs_eval.rs` check the SAT bit-blaster against it
//! bit for bit, which is the central correctness argument for the stack.

use crate::expr::{BinaryOp, Context, Expr, ExprRef, UnaryOp};
use crate::ts::TransitionSystem;
use crate::value::BitVecValue;
use std::collections::HashMap;

/// An assignment of values to symbols.
pub type Env = HashMap<ExprRef, BitVecValue>;

/// Evaluates `e` under `env` (which must bind every symbol reachable from
/// `e`).
///
/// # Panics
/// Panics if a reachable symbol is unbound.
pub fn evaluate(ctx: &Context, env: &Env, e: ExprRef) -> BitVecValue {
    let mut memo: HashMap<ExprRef, BitVecValue> = HashMap::new();
    eval_memo(ctx, env, e, &mut memo)
}

/// Evaluates many expressions under one shared memo — a single arena walk
/// instead of one per root. The SAT-sweep signature engine uses this to
/// value every candidate node of a stimulus vector at once.
///
/// # Panics
/// Panics if a reachable symbol is unbound.
pub fn evaluate_all(ctx: &Context, env: &Env, es: &[ExprRef]) -> Vec<BitVecValue> {
    let mut memo: HashMap<ExprRef, BitVecValue> = HashMap::new();
    es.iter().map(|&e| eval_memo(ctx, env, e, &mut memo)).collect()
}

/// The splitmix64 step: a tiny, high-quality, dependency-free PRNG. The
/// simulator's stimulus helpers derive every random bit from it so stimulus
/// is a pure function of the caller's seed.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A width-correct random value drawn from a splitmix64 stream.
fn random_value(state: &mut u64, width: u32) -> BitVecValue {
    let bits: Vec<bool> = (0..width).map(|i| (splitmix64(state) >> (i % 64)) & 1 == 1).collect();
    BitVecValue::from_bits_lsb_first(&bits)
}

fn eval_memo(
    ctx: &Context,
    env: &Env,
    e: ExprRef,
    memo: &mut HashMap<ExprRef, BitVecValue>,
) -> BitVecValue {
    if let Some(v) = memo.get(&e) {
        return v.clone();
    }
    let result = match ctx.expr(e) {
        Expr::Const(v) => v.clone(),
        Expr::Symbol { name, .. } => env
            .get(&e)
            .unwrap_or_else(|| panic!("unbound symbol `{name}` during evaluation"))
            .clone(),
        Expr::Unary(op, a) => {
            let va = eval_memo(ctx, env, *a, memo);
            match op {
                UnaryOp::Not => va.not(),
                UnaryOp::Neg => va.negate(),
                UnaryOp::RedAnd => BitVecValue::from_bool(va.red_and()),
                UnaryOp::RedOr => BitVecValue::from_bool(va.red_or()),
                UnaryOp::RedXor => BitVecValue::from_bool(va.red_xor()),
            }
        }
        Expr::Binary(op, a, b) => {
            let va = eval_memo(ctx, env, *a, memo);
            let vb = eval_memo(ctx, env, *b, memo);
            match op {
                BinaryOp::And => va.and(&vb),
                BinaryOp::Or => va.or(&vb),
                BinaryOp::Xor => va.xor(&vb),
                BinaryOp::Add => va.add(&vb),
                BinaryOp::Sub => va.sub(&vb),
                BinaryOp::Mul => va.mul(&vb),
                BinaryOp::Udiv => va.udiv(&vb),
                BinaryOp::Urem => va.urem(&vb),
                BinaryOp::Eq => BitVecValue::from_bool(va == vb),
                BinaryOp::Ult => BitVecValue::from_bool(va.ult(&vb)),
                BinaryOp::Ule => BitVecValue::from_bool(va.ule(&vb)),
                BinaryOp::Slt => BitVecValue::from_bool(va.slt(&vb)),
                BinaryOp::Concat => va.concat(&vb),
                BinaryOp::Shl => va.shl(&vb),
                BinaryOp::Lshr => va.lshr(&vb),
            }
        }
        Expr::Ite { cond, tru, fls } => {
            let c = eval_memo(ctx, env, *cond, memo);
            if c.to_bool() {
                eval_memo(ctx, env, *tru, memo)
            } else {
                eval_memo(ctx, env, *fls, memo)
            }
        }
        Expr::Extract { value, hi, lo } => {
            let v = eval_memo(ctx, env, *value, memo);
            v.extract(*hi, *lo)
        }
    };
    memo.insert(e, result.clone());
    result
}

/// Cycle-accurate simulator for a [`TransitionSystem`].
///
/// ```
/// use genfv_ir::{Context, TransitionSystem, Simulator, BitVecValue};
/// let mut ctx = Context::new();
/// let c = ctx.symbol("count", 8);
/// let one = ctx.constant(1, 8);
/// let zero = ctx.constant(0, 8);
/// let next = ctx.add(c, one);
/// let mut ts = TransitionSystem::new("counter");
/// ts.add_state(c, Some(zero), next);
/// let mut sim = Simulator::new(&ctx, &ts);
/// sim.reset();
/// sim.step();
/// sim.step();
/// assert_eq!(sim.get(c).to_u64(), Some(2));
/// ```
#[derive(Debug)]
pub struct Simulator<'a> {
    ctx: &'a Context,
    ts: &'a TransitionSystem,
    env: Env,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with all states/inputs zero-initialised (call
    /// [`Simulator::reset`] to apply declared init expressions).
    pub fn new(ctx: &'a Context, ts: &'a TransitionSystem) -> Self {
        let mut env = Env::new();
        for sym in ts.all_symbols() {
            env.insert(sym, BitVecValue::zero(ctx.width_of(sym)));
        }
        Simulator { ctx, ts, env }
    }

    /// Applies every state's declared init expression; states without one
    /// keep their current (explicitly set or zero) value.
    pub fn reset(&mut self) {
        // Init expressions may reference inputs/other symbols; evaluate in
        // the pre-reset environment.
        let snapshot = self.env.clone();
        for s in self.ts.states() {
            if let Some(init) = s.init {
                let v = evaluate(self.ctx, &snapshot, init);
                self.env.insert(s.symbol, v);
            }
        }
    }

    /// Sets an input or state symbol to a concrete value.
    ///
    /// # Panics
    /// Panics if the width does not match the symbol.
    pub fn set(&mut self, symbol: ExprRef, value: BitVecValue) {
        assert_eq!(
            self.ctx.width_of(symbol),
            value.width(),
            "width mismatch setting {:?}",
            self.ctx.symbol_name(symbol)
        );
        self.env.insert(symbol, value);
    }

    /// Reads the current value of a symbol.
    pub fn get(&self, symbol: ExprRef) -> &BitVecValue {
        &self.env[&symbol]
    }

    /// Evaluates an arbitrary expression in the current cycle.
    pub fn peek(&self, e: ExprRef) -> BitVecValue {
        evaluate(self.ctx, &self.env, e)
    }

    /// Checks whether all environment constraints hold in the current cycle.
    pub fn constraints_hold(&self) -> bool {
        self.ts.constraints().iter().all(|&c| self.peek(c).to_bool())
    }

    /// Advances one clock cycle: every state takes its next-state value,
    /// simultaneously.
    pub fn step(&mut self) {
        let mut next_vals: Vec<(ExprRef, BitVecValue)> = Vec::with_capacity(self.ts.states().len());
        for s in self.ts.states() {
            next_vals.push((s.symbol, evaluate(self.ctx, &self.env, s.next)));
        }
        for (sym, v) in next_vals {
            self.env.insert(sym, v);
        }
    }

    /// The complete current environment (symbol → value).
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// Assigns every declared input a deterministic pseudo-random value
    /// derived from `seed` (splitmix64 over the declaration order). Two
    /// simulators over the same system and seed see identical stimulus, so
    /// callers — the SAT-sweep signature engine, differential tests —
    /// never hand-roll input vectors.
    pub fn randomize_inputs(&mut self, seed: u64) {
        let mut state = seed ^ 0xa076_1d64_78bd_642f;
        let syms: Vec<ExprRef> = self.ts.inputs().to_vec();
        for sym in syms {
            let v = random_value(&mut state, self.ctx.width_of(sym));
            self.env.insert(sym, v);
        }
    }

    /// Assigns every state register a deterministic pseudo-random value
    /// derived from `seed` — an *arbitrary* current frame in the
    /// induction-hypothesis sense, not a reachable one. The SAT-sweep
    /// signature engine uses this so candidate classes reflect
    /// combinational equivalence rather than reachability accidents.
    pub fn randomize_states(&mut self, seed: u64) {
        let mut state = seed ^ 0xe703_7ed1_a0b4_28db;
        let syms: Vec<ExprRef> = self.ts.states().iter().map(|s| s.symbol).collect();
        for sym in syms {
            let v = random_value(&mut state, self.ctx.width_of(sym));
            self.env.insert(sym, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_arith() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        let b = ctx.symbol("b", 8);
        let e = {
            let s = ctx.add(a, b);
            let two = ctx.constant(2, 8);
            ctx.mul(s, two)
        };
        let mut env = Env::new();
        env.insert(a, BitVecValue::from_u64(3, 8));
        env.insert(b, BitVecValue::from_u64(4, 8));
        assert_eq!(evaluate(&ctx, &env, e).to_u64(), Some(14));
    }

    #[test]
    #[should_panic(expected = "unbound symbol")]
    fn unbound_symbol_panics() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        let env = Env::new();
        let _ = evaluate(&ctx, &env, a);
    }

    #[test]
    fn two_counters_stay_in_lockstep() {
        // The paper's Listing 1, as hand-built IR.
        let mut ctx = Context::new();
        let c1 = ctx.symbol("count1", 32);
        let c2 = ctx.symbol("count2", 32);
        let one = ctx.constant(1, 32);
        let zero = ctx.constant(0, 32);
        let n1 = ctx.add(c1, one);
        let n2 = ctx.add(c2, one);
        let mut ts = TransitionSystem::new("sync_counters");
        ts.add_state(c1, Some(zero), n1);
        ts.add_state(c2, Some(zero), n2);
        let eq = ctx.eq(c1, c2);

        let mut sim = Simulator::new(&ctx, &ts);
        sim.reset();
        for _ in 0..100 {
            assert!(sim.peek(eq).to_bool());
            sim.step();
        }
    }

    #[test]
    fn step_is_simultaneous() {
        // swap registers: a <= b; b <= a. Sequential evaluation would
        // collapse both to the same value.
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 4);
        let b = ctx.symbol("b", 4);
        let mut ts = TransitionSystem::new("swap");
        ts.add_state(a, None, b);
        ts.add_state(b, None, a);
        let mut sim = Simulator::new(&ctx, &ts);
        sim.set(a, BitVecValue::from_u64(1, 4));
        sim.set(b, BitVecValue::from_u64(2, 4));
        sim.step();
        assert_eq!(sim.get(a).to_u64(), Some(2));
        assert_eq!(sim.get(b).to_u64(), Some(1));
    }

    #[test]
    fn constraints_checked() {
        let mut ctx = Context::new();
        let x = ctx.symbol("x", 4);
        let five = ctx.constant(5, 4);
        let c = ctx.ult(x, five);
        let mut ts = TransitionSystem::new("constrained");
        let zero = ctx.constant(0, 4);
        let one = ctx.constant(1, 4);
        let next = ctx.add(x, one);
        ts.add_state(x, Some(zero), next);
        ts.add_constraint(c);
        let mut sim = Simulator::new(&ctx, &ts);
        sim.reset();
        assert!(sim.constraints_hold());
        for _ in 0..5 {
            sim.step();
        }
        assert!(!sim.constraints_hold(), "x reached 5");
    }

    #[test]
    fn randomized_stimulus_is_deterministic_and_width_correct() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 3);
        let b = ctx.symbol("b", 64);
        let r = ctx.symbol("r", 17);
        let mut ts = TransitionSystem::new("t");
        ts.add_input(a);
        ts.add_input(b);
        ts.add_state(r, None, r);
        let mut s1 = Simulator::new(&ctx, &ts);
        let mut s2 = Simulator::new(&ctx, &ts);
        s1.randomize_inputs(7);
        s1.randomize_states(9);
        s2.randomize_inputs(7);
        s2.randomize_states(9);
        for sym in [a, b, r] {
            assert_eq!(s1.get(sym), s2.get(sym), "same seed, same stimulus");
            assert_eq!(s1.get(sym).width(), ctx.width_of(sym));
        }
        s2.randomize_inputs(8);
        assert!(
            s1.get(a) != s2.get(a) || s1.get(b) != s2.get(b),
            "different seeds should move at least one input"
        );
        assert_eq!(s1.get(r), s2.get(r), "randomize_inputs leaves states alone");
    }

    #[test]
    fn evaluate_all_matches_evaluate() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        let b = ctx.symbol("b", 8);
        let sum = ctx.add(a, b);
        let prod = ctx.mul(sum, a);
        let mut env = Env::new();
        env.insert(a, BitVecValue::from_u64(3, 8));
        env.insert(b, BitVecValue::from_u64(4, 8));
        let all = evaluate_all(&ctx, &env, &[sum, prod, a]);
        assert_eq!(all[0], evaluate(&ctx, &env, sum));
        assert_eq!(all[1], evaluate(&ctx, &env, prod));
        assert_eq!(all[2], evaluate(&ctx, &env, a));
    }

    #[test]
    fn reset_applies_inits_only() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 4);
        let b = ctx.symbol("b", 4);
        let mut ts = TransitionSystem::new("t");
        let seven = ctx.constant(7, 4);
        ts.add_state(a, Some(seven), a);
        ts.add_state(b, None, b);
        let mut sim = Simulator::new(&ctx, &ts);
        sim.set(b, BitVecValue::from_u64(3, 4));
        sim.reset();
        assert_eq!(sim.get(a).to_u64(), Some(7));
        assert_eq!(sim.get(b).to_u64(), Some(3), "uninitialised state untouched");
    }
}
