//! Gate-level encoding abstraction and generic word-level lowering.
//!
//! Two CNF producers share the word-level lowering algorithms (ripple
//! adders, comparators, barrel shifters, restoring dividers, …):
//!
//! * the **per-frame bit-blaster** ([`crate::BitBlaster`]), which emits
//!   Tseitin gates directly into a live solver through
//!   [`genfv_sat::CnfBuilder`]; and
//! * the **template blaster** ([`crate::template`]), which encodes the
//!   transition relation *once* into a relocatable clause block with
//!   hash-consing and polarity-aware (Plaisted–Greenbaum) emission.
//!
//! Both implement [`GateEncoder`]; [`lower_expr`] contains the single copy
//! of the word→gate translation, so the two encoders cannot drift
//! semantically (the `bitblast_vs_eval` and template differential property
//! suites pin this executable claim).

use crate::expr::{BinaryOp, Context, Expr, ExprRef, UnaryOp};
use crate::value::BitVecValue;

/// Produces literal-like values for boolean gates.
///
/// `L` is the encoder's literal representation: [`genfv_sat::Lit`] for the
/// direct blaster, a template-local literal-or-constant for the template
/// blaster. Implementations must honour boolean semantics; they are free
/// to fold constants, hash-cons, or restrict clause polarity as long as
/// the returned value is (equi-satisfiably) the gate's function.
pub trait GateEncoder {
    /// The encoder's literal type.
    type L: Copy + PartialEq + std::fmt::Debug;

    /// The literal of a boolean constant.
    fn constant(&mut self, v: bool) -> Self::L;

    /// Negation (always free for CNF literals).
    fn negate(&mut self, l: Self::L) -> Self::L;

    /// A literal equivalent to `a ∧ b`.
    fn and(&mut self, a: Self::L, b: Self::L) -> Self::L;

    /// A literal equivalent to `a ⊕ b`.
    fn xor(&mut self, a: Self::L, b: Self::L) -> Self::L;

    /// A literal equivalent to `if c then t else e`.
    fn ite(&mut self, c: Self::L, t: Self::L, e: Self::L) -> Self::L;

    /// A literal equivalent to `a ∨ b` (De Morgan over [`GateEncoder::and`]).
    fn or(&mut self, a: Self::L, b: Self::L) -> Self::L {
        let na = self.negate(a);
        let nb = self.negate(b);
        let g = self.and(na, nb);
        self.negate(g)
    }

    /// A literal equivalent to `a == b` (XNOR).
    fn iff(&mut self, a: Self::L, b: Self::L) -> Self::L {
        let x = self.xor(a, b);
        self.negate(x)
    }
}

/// Per-instance lowering environment: the memo table plus the policy for
/// symbols (fresh literals per frame, template slots, …).
pub trait LowerEnv<E: GateEncoder> {
    /// A cached lowering of `e`, if one exists. Takes the encoder so
    /// template-backed environments can materialise cache hits on demand.
    fn lookup(&mut self, enc: &mut E, e: ExprRef) -> Option<Vec<E::L>>;

    /// Records the lowering of `e` (called exactly once per node).
    fn record(&mut self, e: ExprRef, lits: &[E::L]);

    /// The literals of an unbound symbol of the given width.
    fn symbol(&mut self, enc: &mut E, e: ExprRef, width: u32) -> Vec<E::L>;
}

/// Lowers `e` to one literal per bit (LSB first) under `env`'s bindings.
///
/// This is the shared word→gate translation; see the module docs.
pub fn lower_expr<E: GateEncoder, V: LowerEnv<E>>(
    ctx: &Context,
    enc: &mut E,
    env: &mut V,
    e: ExprRef,
) -> Vec<E::L> {
    if let Some(lits) = env.lookup(enc, e) {
        return lits;
    }
    let lits: Vec<E::L> = match ctx.expr(e) {
        Expr::Const(v) => const_lits(enc, v),
        Expr::Symbol { width, .. } => env.symbol(enc, e, *width),
        Expr::Unary(op, a) => {
            let la = lower_expr(ctx, enc, env, *a);
            match op {
                UnaryOp::Not => la.iter().map(|&l| enc.negate(l)).collect(),
                UnaryOp::Neg => {
                    let inverted: Vec<E::L> = la.iter().map(|&l| enc.negate(l)).collect();
                    let one = const_lits(enc, &BitVecValue::from_u64(1, la.len() as u32));
                    ripple_add(enc, &inverted, &one).0
                }
                UnaryOp::RedAnd => {
                    let mut acc = enc.constant(true);
                    for &l in &la {
                        acc = enc.and(acc, l);
                    }
                    vec![acc]
                }
                UnaryOp::RedOr => {
                    let mut acc = enc.constant(false);
                    for &l in &la {
                        acc = enc.or(acc, l);
                    }
                    vec![acc]
                }
                UnaryOp::RedXor => {
                    let mut acc = enc.constant(false);
                    for &l in &la {
                        acc = enc.xor(acc, l);
                    }
                    vec![acc]
                }
            }
        }
        Expr::Binary(op, a, b) => {
            let la = lower_expr(ctx, enc, env, *a);
            let lb = lower_expr(ctx, enc, env, *b);
            match op {
                BinaryOp::And => zip_gate(enc, &la, &lb, |e, x, y| e.and(x, y)),
                BinaryOp::Or => zip_gate(enc, &la, &lb, |e, x, y| e.or(x, y)),
                BinaryOp::Xor => zip_gate(enc, &la, &lb, |e, x, y| e.xor(x, y)),
                BinaryOp::Add => ripple_add(enc, &la, &lb).0,
                BinaryOp::Sub => {
                    let nb: Vec<E::L> = lb.iter().map(|&l| enc.negate(l)).collect();
                    let tl = enc.constant(true);
                    ripple_add_carry(enc, &la, &nb, tl).0
                }
                BinaryOp::Mul => shift_add_mul(enc, &la, &lb),
                BinaryOp::Udiv => divider(enc, &la, &lb).0,
                BinaryOp::Urem => divider(enc, &la, &lb).1,
                BinaryOp::Eq => vec![equal_lit(enc, &la, &lb)],
                BinaryOp::Ult => vec![ult_lit(enc, &la, &lb)],
                BinaryOp::Ule => {
                    let gt = ult_lit(enc, &lb, &la);
                    vec![enc.negate(gt)]
                }
                BinaryOp::Slt => {
                    // Flip sign bits, then unsigned compare.
                    let mut fa = la.clone();
                    let mut fb = lb.clone();
                    let last = fa.len() - 1;
                    fa[last] = enc.negate(fa[last]);
                    fb[last] = enc.negate(fb[last]);
                    vec![ult_lit(enc, &fa, &fb)]
                }
                BinaryOp::Concat => {
                    // a is high, b is low; LSB-first means b then a.
                    let mut out = lb.clone();
                    out.extend_from_slice(&la);
                    out
                }
                BinaryOp::Shl => barrel_shift(enc, &la, &lb, ShiftDir::Left),
                BinaryOp::Lshr => barrel_shift(enc, &la, &lb, ShiftDir::Right),
            }
        }
        Expr::Ite { cond, tru, fls } => {
            let lc = lower_expr(ctx, enc, env, *cond)[0];
            let lt = lower_expr(ctx, enc, env, *tru);
            let le = lower_expr(ctx, enc, env, *fls);
            lt.iter().zip(&le).map(|(&t, &f)| enc.ite(lc, t, f)).collect()
        }
        Expr::Extract { value, hi, lo } => {
            let lv = lower_expr(ctx, enc, env, *value);
            lv[*lo as usize..=*hi as usize].to_vec()
        }
    };
    debug_assert_eq!(lits.len() as u32, ctx.width_of(e), "lowered width mismatch");
    env.record(e, &lits);
    lits
}

/// The literal vector of a constant, LSB first.
pub(crate) fn const_lits<E: GateEncoder>(enc: &mut E, v: &BitVecValue) -> Vec<E::L> {
    (0..v.width()).map(|i| enc.constant(v.bit(i))).collect()
}

fn zip_gate<E: GateEncoder>(
    enc: &mut E,
    a: &[E::L],
    b: &[E::L],
    mut gate: impl FnMut(&mut E, E::L, E::L) -> E::L,
) -> Vec<E::L> {
    a.iter().zip(b).map(|(&x, &y)| gate(enc, x, y)).collect()
}

/// Ripple-carry addition; returns `(sum, carry_out)`.
fn ripple_add<E: GateEncoder>(enc: &mut E, a: &[E::L], b: &[E::L]) -> (Vec<E::L>, E::L) {
    let cin = enc.constant(false);
    ripple_add_carry(enc, a, b, cin)
}

fn ripple_add_carry<E: GateEncoder>(
    enc: &mut E,
    a: &[E::L],
    b: &[E::L],
    mut carry: E::L,
) -> (Vec<E::L>, E::L) {
    let mut sum = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let xy = enc.xor(x, y);
        let s = enc.xor(xy, carry);
        // carry' = (x & y) | (carry & (x ^ y))
        let and1 = enc.and(x, y);
        let and2 = enc.and(carry, xy);
        carry = enc.or(and1, and2);
        sum.push(s);
    }
    (sum, carry)
}

/// O(n²) shift-and-add multiplier (truncating).
fn shift_add_mul<E: GateEncoder>(enc: &mut E, a: &[E::L], b: &[E::L]) -> Vec<E::L> {
    let w = a.len();
    let fl = enc.constant(false);
    let mut acc: Vec<E::L> = vec![fl; w];
    for i in 0..w {
        // partial = (a << i) masked by b[i]
        let mut partial: Vec<E::L> = Vec::with_capacity(w);
        for j in 0..w {
            if j < i {
                partial.push(enc.constant(false));
            } else {
                let p = enc.and(a[j - i], b[i]);
                partial.push(p);
            }
        }
        acc = ripple_add(enc, &acc, &partial).0;
    }
    acc
}

/// Restoring-division circuit; returns `(quotient, remainder)` with the
/// SMT-LIB division-by-zero convention (q = all-ones, r = a).
fn divider<E: GateEncoder>(enc: &mut E, a: &[E::L], d: &[E::L]) -> (Vec<E::L>, Vec<E::L>) {
    let w = a.len();
    let fl = enc.constant(false);
    let mut r: Vec<E::L> = vec![fl; w];
    let mut q: Vec<E::L> = vec![fl; w];
    for i in (0..w).rev() {
        // r' = (r << 1) | a[i]
        let mut shifted = Vec::with_capacity(w);
        shifted.push(a[i]);
        shifted.extend_from_slice(&r[..w - 1]);
        // ge = shifted >= d
        let lt = ult_lit(enc, &shifted, d);
        let ge = enc.negate(lt);
        // diff = shifted - d
        let nd: Vec<E::L> = d.iter().map(|&l| enc.negate(l)).collect();
        let tl = enc.constant(true);
        let (diff, _) = ripple_add_carry(enc, &shifted, &nd, tl);
        r = shifted.iter().zip(&diff).map(|(&keep, &sub)| enc.ite(ge, sub, keep)).collect();
        q[i] = ge;
    }
    // Division by zero: quotient all-ones, remainder = dividend.
    let mut d_nonzero = enc.constant(false);
    for &l in d {
        d_nonzero = enc.or(d_nonzero, l);
    }
    let d_zero = enc.negate(d_nonzero);
    let tl = enc.constant(true);
    let q = q.iter().map(|&l| enc.ite(d_zero, tl, l)).collect();
    let r = r.iter().zip(a).map(|(&l, &ai)| enc.ite(d_zero, ai, l)).collect();
    (q, r)
}

fn equal_lit<E: GateEncoder>(enc: &mut E, a: &[E::L], b: &[E::L]) -> E::L {
    let mut acc = enc.constant(true);
    for (&x, &y) in a.iter().zip(b) {
        let eq = enc.iff(x, y);
        acc = enc.and(acc, eq);
    }
    acc
}

/// a < b (unsigned): the borrow out of a - b.
fn ult_lit<E: GateEncoder>(enc: &mut E, a: &[E::L], b: &[E::L]) -> E::L {
    let nb: Vec<E::L> = b.iter().map(|&l| enc.negate(l)).collect();
    let tl = enc.constant(true);
    let (_, carry) = ripple_add_carry(enc, a, &nb, tl);
    // carry==1 ⇔ a >= b, so a < b ⇔ !carry.
    enc.negate(carry)
}

fn barrel_shift<E: GateEncoder>(
    enc: &mut E,
    a: &[E::L],
    amount: &[E::L],
    dir: ShiftDir,
) -> Vec<E::L> {
    let w = a.len();
    let mut current = a.to_vec();
    let mut overflow = enc.constant(false);
    for (s, &bit) in amount.iter().enumerate() {
        let shift = 1usize.checked_shl(s as u32);
        match shift {
            Some(sh) if sh < w => {
                let shifted: Vec<E::L> = (0..w)
                    .map(|i| match dir {
                        ShiftDir::Left => {
                            if i >= sh {
                                current[i - sh]
                            } else {
                                enc.constant(false)
                            }
                        }
                        ShiftDir::Right => {
                            if i + sh < w {
                                current[i + sh]
                            } else {
                                enc.constant(false)
                            }
                        }
                    })
                    .collect();
                current = current
                    .iter()
                    .zip(&shifted)
                    .map(|(&keep, &shf)| enc.ite(bit, shf, keep))
                    .collect();
            }
            _ => {
                // This amount bit alone shifts everything out.
                overflow = enc.or(overflow, bit);
            }
        }
    }
    let zero = enc.constant(false);
    current.iter().map(|&l| enc.ite(overflow, zero, l)).collect()
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ShiftDir {
    Left,
    Right,
}
