//! Word-level transition systems.
//!
//! A [`TransitionSystem`] is the elaborated form of an RTL design: a set of
//! input symbols, state registers with initial-value and next-state
//! functions, environment constraints, and named observable signals. The
//! model checker in `genfv-mc` operates directly on this representation.
//!
//! Lookups by name ([`find_signal`](TransitionSystem::find_signal)) and by
//! symbol ([`find_state`](TransitionSystem::find_state)) are backed by index
//! maps, so they stay O(1) on the prepare, trace-reconstruction, and
//! optimization-pass paths that call them per node rather than per design.

use crate::expr::{Context, ExprRef};
use std::collections::HashMap;

/// A state register.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct State {
    /// The symbol representing the register's current value.
    pub symbol: ExprRef,
    /// Initial-value expression; `None` leaves the power-up value free
    /// (an arbitrary state, as in induction proofs).
    pub init: Option<ExprRef>,
    /// Next-state function, evaluated over current-cycle symbols.
    pub next: ExprRef,
}

/// A named transition system (one elaborated RTL module).
///
/// ```
/// use genfv_ir::{Context, TransitionSystem};
/// let mut ctx = Context::new();
/// let c = ctx.symbol("count", 8);
/// let one = ctx.constant(1, 8);
/// let next = ctx.add(c, one);
/// let zero = ctx.constant(0, 8);
/// let mut ts = TransitionSystem::new("counter");
/// ts.add_state(c, Some(zero), next);
/// assert_eq!(ts.states().len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TransitionSystem {
    name: String,
    inputs: Vec<ExprRef>,
    states: Vec<State>,
    constraints: Vec<ExprRef>,
    signals: Vec<(String, ExprRef)>,
    /// State symbol → index into `states`.
    state_index: HashMap<ExprRef, usize>,
    /// Signal name → index of its *first* declaration in `signals`
    /// (preserves the historical first-match semantics of `find_signal`
    /// even if a name is published twice).
    signal_index: HashMap<String, usize>,
}

impl TransitionSystem {
    /// Creates an empty system with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TransitionSystem { name: name.into(), ..Default::default() }
    }

    /// The system (module) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers `symbol` as a free input.
    pub fn add_input(&mut self, symbol: ExprRef) {
        debug_assert!(!self.inputs.contains(&symbol), "duplicate input");
        self.inputs.push(symbol);
    }

    /// Registers a state with optional init and a next-state function.
    pub fn add_state(&mut self, symbol: ExprRef, init: Option<ExprRef>, next: ExprRef) {
        debug_assert!(!self.state_index.contains_key(&symbol), "duplicate state register");
        self.state_index.insert(symbol, self.states.len());
        self.states.push(State { symbol, init, next });
    }

    /// Adds an environment constraint (assumed true in every cycle).
    pub fn add_constraint(&mut self, cond: ExprRef) {
        self.constraints.push(cond);
    }

    /// Publishes a named observable signal (port or internal net).
    pub fn add_signal(&mut self, name: impl Into<String>, expr: ExprRef) {
        let name = name.into();
        self.signal_index.entry(name.clone()).or_insert(self.signals.len());
        self.signals.push((name, expr));
    }

    /// The free inputs.
    pub fn inputs(&self) -> &[ExprRef] {
        &self.inputs
    }

    /// The state registers.
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// The environment constraints.
    pub fn constraints(&self) -> &[ExprRef] {
        &self.constraints
    }

    /// The named observable signals, in declaration order.
    pub fn signals(&self) -> &[(String, ExprRef)] {
        &self.signals
    }

    /// Looks up a named signal. O(1).
    pub fn find_signal(&self, name: &str) -> Option<ExprRef> {
        self.signal_index.get(name).map(|&i| self.signals[i].1)
    }

    /// Looks up the state record for a symbol. O(1).
    pub fn find_state(&self, symbol: ExprRef) -> Option<&State> {
        self.state_index.get(&symbol).map(|&i| &self.states[i])
    }

    /// Replaces the init expression of an existing state.
    ///
    /// # Panics
    /// Panics if `symbol` is not a registered state.
    pub fn set_state_init(&mut self, symbol: ExprRef, init: Option<ExprRef>) {
        let i = *self.state_index.get(&symbol).expect("set_state_init: unknown state");
        self.states[i].init = init;
    }

    /// Applies `f` to every non-symbol expression position: state inits and
    /// next functions, constraints, and signal expressions. State symbols
    /// and inputs are left untouched (they are identities, not functions of
    /// anything), so the index maps stay valid. This is the mutation hook
    /// used by the optimization passes in [`crate::opt`].
    pub fn map_exprs(&mut self, mut f: impl FnMut(ExprRef) -> ExprRef) {
        for s in &mut self.states {
            s.init = s.init.map(&mut f);
            s.next = f(s.next);
        }
        for c in &mut self.constraints {
            *c = f(*c);
        }
        for (_, e) in &mut self.signals {
            *e = f(*e);
        }
    }

    /// Drops every state whose symbol fails `keep`, returning how many were
    /// removed. Expressions referencing a dropped symbol are the caller's
    /// responsibility (substitute first, as the sweep pass does).
    pub fn retain_states(&mut self, keep: impl Fn(ExprRef) -> bool) -> usize {
        let before = self.states.len();
        self.states.retain(|s| keep(s.symbol));
        self.state_index = self.states.iter().enumerate().map(|(i, s)| (s.symbol, i)).collect();
        before - self.states.len()
    }

    /// All symbols of the system (inputs then states), e.g. for binding.
    pub fn all_symbols(&self) -> impl Iterator<Item = ExprRef> + '_ {
        self.inputs.iter().copied().chain(self.states.iter().map(|s| s.symbol))
    }

    /// Human-readable description used in prompts and docs.
    pub fn describe(&self, ctx: &Context) -> String {
        let mut out = format!("module {}\n", self.name);
        for &i in &self.inputs {
            out.push_str(&format!(
                "  input  [{}:0] {}\n",
                ctx.width_of(i).saturating_sub(1),
                ctx.symbol_name(i).unwrap_or("?")
            ));
        }
        for s in &self.states {
            let name = ctx.symbol_name(s.symbol).unwrap_or("?");
            let w = ctx.width_of(s.symbol);
            let init = match s.init {
                Some(e) => ctx.display(e),
                None => "X".to_string(),
            };
            out.push_str(&format!(
                "  state  [{}:0] {name} init={init} next={}\n",
                w.saturating_sub(1),
                ctx.display(s.next)
            ));
        }
        for c in &self.constraints {
            out.push_str(&format!("  constraint {}\n", ctx.display(*c)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Context;

    fn counter_ts(ctx: &mut Context) -> TransitionSystem {
        let c = ctx.symbol("count", 8);
        let one = ctx.constant(1, 8);
        let zero = ctx.constant(0, 8);
        let next = ctx.add(c, one);
        let mut ts = TransitionSystem::new("counter");
        ts.add_state(c, Some(zero), next);
        ts.add_signal("count", c);
        ts
    }

    #[test]
    fn build_and_query() {
        let mut ctx = Context::new();
        let ts = counter_ts(&mut ctx);
        assert_eq!(ts.name(), "counter");
        assert_eq!(ts.states().len(), 1);
        assert!(ts.find_signal("count").is_some());
        assert!(ts.find_signal("nope").is_none());
        let sym = ts.states()[0].symbol;
        assert!(ts.find_state(sym).is_some());
    }

    #[test]
    fn set_state_init_overrides() {
        let mut ctx = Context::new();
        let mut ts = counter_ts(&mut ctx);
        let sym = ts.states()[0].symbol;
        ts.set_state_init(sym, None);
        assert_eq!(ts.states()[0].init, None);
    }

    #[test]
    fn duplicate_signal_name_keeps_first_match() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 4);
        let b = ctx.symbol("b", 4);
        let mut ts = TransitionSystem::new("dup");
        ts.add_signal("s", a);
        ts.add_signal("s", b);
        assert_eq!(ts.find_signal("s"), Some(a), "first declaration wins");
    }

    #[test]
    fn map_exprs_rewrites_all_positions() {
        let mut ctx = Context::new();
        let mut ts = counter_ts(&mut ctx);
        let t = ctx.bool_const(true);
        ts.add_constraint(t);
        let seven = ctx.constant(7, 8);
        ts.map_exprs(|_| seven);
        assert_eq!(ts.states()[0].init, Some(seven));
        assert_eq!(ts.states()[0].next, seven);
        assert_eq!(ts.constraints(), &[seven]);
        assert_eq!(ts.find_signal("count"), Some(seven));
        // The state symbol itself is never rewritten.
        assert!(ts.find_state(ts.states()[0].symbol).is_some());
    }

    #[test]
    fn retain_states_updates_index() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 4);
        let b = ctx.symbol("b", 4);
        let mut ts = TransitionSystem::new("two");
        ts.add_state(a, None, a);
        ts.add_state(b, None, b);
        assert_eq!(ts.retain_states(|s| s != a), 1);
        assert_eq!(ts.states().len(), 1);
        assert!(ts.find_state(a).is_none());
        assert!(ts.find_state(b).is_some());
        assert_eq!(ts.states()[ts.states().len() - 1].symbol, b);
    }

    #[test]
    fn describe_mentions_parts() {
        let mut ctx = Context::new();
        let mut ts = counter_ts(&mut ctx);
        let en = ctx.symbol("en", 1);
        ts.add_input(en);
        let d = ts.describe(&ctx);
        assert!(d.contains("module counter"));
        assert!(d.contains("state  [7:0] count"));
        assert!(d.contains("input  [0:0] en"));
    }

    #[test]
    fn all_symbols_order() {
        let mut ctx = Context::new();
        let mut ts = counter_ts(&mut ctx);
        let en = ctx.symbol("en", 1);
        ts.add_input(en);
        let syms: Vec<_> = ts.all_symbols().collect();
        assert_eq!(syms.len(), 2);
        assert_eq!(syms[0], en, "inputs come first");
    }
}
