//! Hash-consed word-level expression DAG.
//!
//! All expressions live inside a [`Context`] arena and are referenced by
//! lightweight [`ExprRef`] handles. Construction performs structural hashing
//! (identical sub-terms share one node) and constant folding, so the DAG
//! stays compact across the unrollings performed by the model checker.

use crate::value::BitVecValue;
use std::collections::HashMap;
use std::fmt;

/// Handle to an expression stored in a [`Context`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprRef(u32);

impl ExprRef {
    /// The dense index of this node inside its context.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The reference with dense index `i` — the inverse of
    /// [`ExprRef::index`]. Only meaningful against a context with more
    /// than `i` nodes (e.g. when enumerating `0..ctx.num_nodes()`).
    #[inline]
    pub fn from_index(i: usize) -> ExprRef {
        ExprRef(i as u32)
    }
}

impl fmt::Debug for ExprRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Unary word-level operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnaryOp {
    /// Bitwise complement.
    Not,
    /// Two's-complement negation.
    Neg,
    /// AND-reduction to 1 bit (Verilog `&x`).
    RedAnd,
    /// OR-reduction to 1 bit (Verilog `|x`).
    RedOr,
    /// XOR-reduction to 1 bit (Verilog `^x`).
    RedXor,
}

/// Binary word-level operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinaryOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Modular addition.
    Add,
    /// Modular subtraction.
    Sub,
    /// Truncating multiplication.
    Mul,
    /// Unsigned division (`x / 0` = all-ones, SMT-LIB convention).
    Udiv,
    /// Unsigned remainder (`x % 0 = x`).
    Urem,
    /// Equality (1-bit result).
    Eq,
    /// Unsigned less-than (1-bit result).
    Ult,
    /// Unsigned less-or-equal (1-bit result).
    Ule,
    /// Signed less-than (1-bit result).
    Slt,
    /// Concatenation; the left operand supplies the high bits.
    Concat,
    /// Logical shift left by the right operand.
    Shl,
    /// Logical shift right by the right operand.
    Lshr,
}

/// An expression node.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// A constant bitvector.
    Const(BitVecValue),
    /// A free variable (design input, state register, or oracle).
    Symbol {
        /// Unique name within the context.
        name: String,
        /// Width in bits.
        width: u32,
    },
    /// Application of a [`UnaryOp`].
    Unary(UnaryOp, ExprRef),
    /// Application of a [`BinaryOp`].
    Binary(BinaryOp, ExprRef, ExprRef),
    /// If-then-else multiplexer; `cond` must be 1 bit wide.
    Ite {
        /// 1-bit selector.
        cond: ExprRef,
        /// Value when `cond` is 1.
        tru: ExprRef,
        /// Value when `cond` is 0.
        fls: ExprRef,
    },
    /// Bit slice `value[hi:lo]`, inclusive.
    Extract {
        /// Sliced operand.
        value: ExprRef,
        /// High bit index.
        hi: u32,
        /// Low bit index.
        lo: u32,
    },
}

/// Arena and structural-hashing table for expressions.
///
/// ```
/// use genfv_ir::{Context, BitVecValue};
/// let mut ctx = Context::new();
/// let a = ctx.symbol("a", 8);
/// let b = ctx.symbol("b", 8);
/// let sum = ctx.add(a, b);
/// let sum2 = ctx.add(a, b);
/// assert_eq!(sum, sum2); // hash-consed
/// assert_eq!(ctx.width_of(sum), 8);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Context {
    nodes: Vec<Expr>,
    widths: Vec<u32>,
    interned: HashMap<Expr, ExprRef>,
    symbols: HashMap<String, ExprRef>,
}

impl Context {
    /// Creates an empty context.
    pub fn new() -> Self {
        Context::default()
    }

    /// Number of distinct nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node behind a handle.
    #[inline]
    pub fn expr(&self, e: ExprRef) -> &Expr {
        &self.nodes[e.index()]
    }

    /// Bit width of an expression.
    #[inline]
    pub fn width_of(&self, e: ExprRef) -> u32 {
        self.widths[e.index()]
    }

    /// Looks up a symbol by name.
    pub fn find_symbol(&self, name: &str) -> Option<ExprRef> {
        self.symbols.get(name).copied()
    }

    /// Iterates over all `(name, handle)` symbol pairs, in creation order of
    /// node allocation.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, ExprRef)> {
        let mut v: Vec<(&str, ExprRef)> =
            self.symbols.iter().map(|(n, &e)| (n.as_str(), e)).collect();
        v.sort_by_key(|&(_, e)| e);
        v.into_iter()
    }

    fn intern(&mut self, node: Expr, width: u32) -> ExprRef {
        if let Some(&e) = self.interned.get(&node) {
            return e;
        }
        let e = ExprRef(self.nodes.len() as u32);
        self.interned.insert(node.clone(), e);
        self.nodes.push(node);
        self.widths.push(width);
        e
    }

    // --- leaves -----------------------------------------------------------

    /// Interns a constant.
    pub fn value(&mut self, v: BitVecValue) -> ExprRef {
        let w = v.width();
        self.intern(Expr::Const(v), w)
    }

    /// Interns a constant from a `u64`.
    pub fn constant(&mut self, value: u64, width: u32) -> ExprRef {
        self.value(BitVecValue::from_u64(value, width))
    }

    /// The 1-bit constant for `b`.
    pub fn bool_const(&mut self, b: bool) -> ExprRef {
        self.constant(b as u64, 1)
    }

    /// Creates (or retrieves) the symbol `name` of the given width.
    ///
    /// # Panics
    /// Panics if `name` already exists with a different width.
    pub fn symbol(&mut self, name: &str, width: u32) -> ExprRef {
        if let Some(&e) = self.symbols.get(name) {
            assert_eq!(self.width_of(e), width, "symbol `{name}` redeclared with different width");
            return e;
        }
        let e = self.intern(Expr::Symbol { name: name.to_string(), width }, width);
        self.symbols.insert(name.to_string(), e);
        e
    }

    /// The name of a symbol node, if `e` is one.
    pub fn symbol_name(&self, e: ExprRef) -> Option<&str> {
        match self.expr(e) {
            Expr::Symbol { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Constant value of `e`, if it is a constant node.
    pub fn const_value(&self, e: ExprRef) -> Option<&BitVecValue> {
        match self.expr(e) {
            Expr::Const(v) => Some(v),
            _ => None,
        }
    }

    // --- unary -------------------------------------------------------------

    fn unary(&mut self, op: UnaryOp, a: ExprRef) -> ExprRef {
        // Constant folding.
        if let Expr::Const(v) = self.expr(a) {
            let folded = match op {
                UnaryOp::Not => v.not(),
                UnaryOp::Neg => v.negate(),
                UnaryOp::RedAnd => BitVecValue::from_bool(v.red_and()),
                UnaryOp::RedOr => BitVecValue::from_bool(v.red_or()),
                UnaryOp::RedXor => BitVecValue::from_bool(v.red_xor()),
            };
            return self.value(folded);
        }
        // ¬¬x = x.
        if op == UnaryOp::Not {
            if let Expr::Unary(UnaryOp::Not, inner) = self.expr(a) {
                return *inner;
            }
        }
        let w = match op {
            UnaryOp::Not | UnaryOp::Neg => self.width_of(a),
            UnaryOp::RedAnd | UnaryOp::RedOr | UnaryOp::RedXor => 1,
        };
        self.intern(Expr::Unary(op, a), w)
    }

    /// Bitwise complement.
    pub fn not(&mut self, a: ExprRef) -> ExprRef {
        self.unary(UnaryOp::Not, a)
    }

    /// Two's-complement negation.
    pub fn neg(&mut self, a: ExprRef) -> ExprRef {
        self.unary(UnaryOp::Neg, a)
    }

    /// AND-reduction (`&x`).
    pub fn red_and(&mut self, a: ExprRef) -> ExprRef {
        self.unary(UnaryOp::RedAnd, a)
    }

    /// OR-reduction (`|x`).
    pub fn red_or(&mut self, a: ExprRef) -> ExprRef {
        self.unary(UnaryOp::RedOr, a)
    }

    /// XOR-reduction (`^x`).
    pub fn red_xor(&mut self, a: ExprRef) -> ExprRef {
        self.unary(UnaryOp::RedXor, a)
    }

    // --- binary ------------------------------------------------------------

    fn expect_same_width(&self, op: BinaryOp, a: ExprRef, b: ExprRef) {
        assert_eq!(
            self.width_of(a),
            self.width_of(b),
            "width mismatch in {op:?}: {} vs {}",
            self.width_of(a),
            self.width_of(b)
        );
    }

    fn binary(&mut self, op: BinaryOp, a: ExprRef, b: ExprRef) -> ExprRef {
        match op {
            BinaryOp::Concat => {}
            _ => self.expect_same_width(op, a, b),
        }
        // Constant folding.
        if let (Expr::Const(va), Expr::Const(vb)) = (self.expr(a), self.expr(b)) {
            let folded = match op {
                BinaryOp::And => va.and(vb),
                BinaryOp::Or => va.or(vb),
                BinaryOp::Xor => va.xor(vb),
                BinaryOp::Add => va.add(vb),
                BinaryOp::Sub => va.sub(vb),
                BinaryOp::Mul => va.mul(vb),
                BinaryOp::Udiv => va.udiv(vb),
                BinaryOp::Urem => va.urem(vb),
                BinaryOp::Eq => BitVecValue::from_bool(va == vb),
                BinaryOp::Ult => BitVecValue::from_bool(va.ult(vb)),
                BinaryOp::Ule => BitVecValue::from_bool(va.ule(vb)),
                BinaryOp::Slt => BitVecValue::from_bool(va.slt(vb)),
                BinaryOp::Concat => va.concat(vb),
                BinaryOp::Shl => va.shl(vb),
                BinaryOp::Lshr => va.lshr(vb),
            };
            return self.value(folded);
        }
        // Cheap identities.
        match op {
            BinaryOp::And | BinaryOp::Or if a == b => return a,
            BinaryOp::Xor | BinaryOp::Sub if a == b => {
                let w = self.width_of(a);
                return self.constant(0, w);
            }
            BinaryOp::Eq if a == b => return self.bool_const(true),
            BinaryOp::Ult if a == b => return self.bool_const(false),
            BinaryOp::Ule if a == b => return self.bool_const(true),
            _ => {}
        }
        // One-constant identities and annihilators. The both-constant case
        // folded above, so at most one side classifies here. Each operand is
        // summarized as (is_zero, is_ones, is_one); `is_one` uses `to_u64`
        // and is conservatively false for constants wider than 64 bits.
        let classify = |v: &BitVecValue| (v.is_zero(), v.is_ones(), v.to_u64() == Some(1));
        let ka = self.const_value(a).map(classify);
        let kb = self.const_value(b).map(classify);
        let w = self.width_of(a);
        match op {
            BinaryOp::And => {
                if matches!(ka, Some((true, ..))) {
                    return a; // 0 & x = 0
                }
                if matches!(kb, Some((true, ..))) {
                    return b;
                }
                if matches!(ka, Some((_, true, _))) {
                    return b; // ones & x = x
                }
                if matches!(kb, Some((_, true, _))) {
                    return a;
                }
            }
            BinaryOp::Or => {
                if matches!(ka, Some((true, ..))) {
                    return b; // 0 | x = x
                }
                if matches!(kb, Some((true, ..))) {
                    return a;
                }
                if matches!(ka, Some((_, true, _))) {
                    return a; // ones | x = ones
                }
                if matches!(kb, Some((_, true, _))) {
                    return b;
                }
            }
            BinaryOp::Xor => {
                if matches!(ka, Some((true, ..))) {
                    return b; // 0 ^ x = x
                }
                if matches!(kb, Some((true, ..))) {
                    return a;
                }
                if matches!(ka, Some((_, true, _))) {
                    return self.not(b); // ones ^ x = ~x
                }
                if matches!(kb, Some((_, true, _))) {
                    return self.not(a);
                }
            }
            BinaryOp::Add => {
                if matches!(ka, Some((true, ..))) {
                    return b; // 0 + x = x
                }
                if matches!(kb, Some((true, ..))) {
                    return a;
                }
            }
            BinaryOp::Sub => {
                if matches!(kb, Some((true, ..))) {
                    return a; // x - 0 = x
                }
            }
            BinaryOp::Mul => {
                if matches!(ka, Some((true, ..))) {
                    return a; // 0 * x = 0
                }
                if matches!(kb, Some((true, ..))) {
                    return b;
                }
                if matches!(ka, Some((.., true))) {
                    return b; // 1 * x = x
                }
                if matches!(kb, Some((.., true))) {
                    return a;
                }
            }
            BinaryOp::Udiv => {
                if matches!(kb, Some((.., true))) {
                    return a; // x / 1 = x
                }
            }
            BinaryOp::Urem => {
                if matches!(kb, Some((.., true))) {
                    return self.constant(0, w); // x % 1 = 0
                }
            }
            BinaryOp::Shl | BinaryOp::Lshr => {
                if matches!(kb, Some((true, ..))) {
                    return a; // x shifted by 0 = x
                }
                if matches!(ka, Some((true, ..))) {
                    return a; // 0 shifted = 0
                }
            }
            BinaryOp::Eq if w == 1 => {
                if matches!(ka, Some((_, true, _))) {
                    return b; // (x == 1'b1) = x
                }
                if matches!(kb, Some((_, true, _))) {
                    return a;
                }
                if matches!(ka, Some((true, ..))) {
                    return self.not(b); // (x == 1'b0) = ~x
                }
                if matches!(kb, Some((true, ..))) {
                    return self.not(a);
                }
            }
            BinaryOp::Ult => {
                if matches!(kb, Some((true, ..))) {
                    return self.bool_const(false); // x < 0 is never true
                }
            }
            BinaryOp::Ule => {
                if matches!(ka, Some((true, ..))) {
                    return self.bool_const(true); // 0 <= x always
                }
                if matches!(kb, Some((_, true, _))) {
                    return self.bool_const(true); // x <= ones always
                }
            }
            _ => {}
        }
        // Canonical operand order for commutative ops improves sharing.
        let (a, b) = match op {
            BinaryOp::And
            | BinaryOp::Or
            | BinaryOp::Xor
            | BinaryOp::Add
            | BinaryOp::Mul
            | BinaryOp::Eq
                if b < a =>
            {
                (b, a)
            }
            _ => (a, b),
        };
        let w = match op {
            BinaryOp::Eq | BinaryOp::Ult | BinaryOp::Ule | BinaryOp::Slt => 1,
            BinaryOp::Concat => self.width_of(a) + self.width_of(b),
            _ => self.width_of(a),
        };
        self.intern(Expr::Binary(op, a, b), w)
    }

    /// Bitwise AND. # Panics Panics on width mismatch.
    pub fn and(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinaryOp::And, a, b)
    }

    /// Bitwise OR. # Panics Panics on width mismatch.
    pub fn or(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinaryOp::Or, a, b)
    }

    /// Bitwise XOR. # Panics Panics on width mismatch.
    pub fn xor(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinaryOp::Xor, a, b)
    }

    /// Modular addition. # Panics Panics on width mismatch.
    pub fn add(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinaryOp::Add, a, b)
    }

    /// Modular subtraction. # Panics Panics on width mismatch.
    pub fn sub(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinaryOp::Sub, a, b)
    }

    /// Truncating multiplication. # Panics Panics on width mismatch.
    pub fn mul(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinaryOp::Mul, a, b)
    }

    /// Unsigned division (SMT-LIB zero convention). # Panics Panics on
    /// width mismatch.
    pub fn udiv(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinaryOp::Udiv, a, b)
    }

    /// Unsigned remainder (SMT-LIB zero convention). # Panics Panics on
    /// width mismatch.
    pub fn urem(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinaryOp::Urem, a, b)
    }

    /// Equality (1-bit result). # Panics Panics on width mismatch.
    pub fn eq(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinaryOp::Eq, a, b)
    }

    /// Inequality (1-bit result). # Panics Panics on width mismatch.
    pub fn ne(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        let eq = self.eq(a, b);
        self.not(eq)
    }

    /// Unsigned `<`. # Panics Panics on width mismatch.
    pub fn ult(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinaryOp::Ult, a, b)
    }

    /// Unsigned `<=`. # Panics Panics on width mismatch.
    pub fn ule(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinaryOp::Ule, a, b)
    }

    /// Unsigned `>`. # Panics Panics on width mismatch.
    pub fn ugt(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinaryOp::Ult, b, a)
    }

    /// Unsigned `>=`. # Panics Panics on width mismatch.
    pub fn uge(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinaryOp::Ule, b, a)
    }

    /// Signed `<`. # Panics Panics on width mismatch.
    pub fn slt(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinaryOp::Slt, a, b)
    }

    /// Concatenation `{a, b}` (`a` high).
    pub fn concat(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinaryOp::Concat, a, b)
    }

    /// Logical shift left. # Panics Panics on width mismatch.
    pub fn shl(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinaryOp::Shl, a, b)
    }

    /// Logical shift right. # Panics Panics on width mismatch.
    pub fn lshr(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinaryOp::Lshr, a, b)
    }

    /// If-then-else.
    ///
    /// # Panics
    /// Panics if `cond` is not 1 bit wide or the branches differ in width.
    pub fn ite(&mut self, cond: ExprRef, tru: ExprRef, fls: ExprRef) -> ExprRef {
        assert_eq!(self.width_of(cond), 1, "ite condition must be 1 bit");
        assert_eq!(self.width_of(tru), self.width_of(fls), "ite branch width mismatch");
        if let Expr::Const(c) = self.expr(cond) {
            return if c.to_bool() { tru } else { fls };
        }
        if tru == fls {
            return tru;
        }
        let w = self.width_of(tru);
        self.intern(Expr::Ite { cond, tru, fls }, w)
    }

    /// Bit slice `value[hi:lo]`.
    ///
    /// # Panics
    /// Panics if `hi < lo` or `hi >= width(value)`.
    pub fn extract(&mut self, value: ExprRef, hi: u32, lo: u32) -> ExprRef {
        let w = self.width_of(value);
        assert!(hi >= lo && hi < w, "bad extract [{hi}:{lo}] on width {w}");
        if lo == 0 && hi == w - 1 {
            return value;
        }
        if let Expr::Const(v) = self.expr(value) {
            let folded = v.extract(hi, lo);
            return self.value(folded);
        }
        self.intern(Expr::Extract { value, hi, lo }, hi - lo + 1)
    }

    /// Single bit `value[i]` as a 1-bit expression.
    pub fn bit(&mut self, value: ExprRef, i: u32) -> ExprRef {
        self.extract(value, i, i)
    }

    // --- derived helpers ----------------------------------------------------

    /// Boolean implication `a → b` over 1-bit operands.
    pub fn implies(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        let na = self.not(a);
        self.or(na, b)
    }

    /// Boolean equivalence over 1-bit operands.
    pub fn iff(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.eq(a, b)
    }

    /// Zero-extension to `width`.
    ///
    /// # Panics
    /// Panics if `width` is smaller than the operand width.
    pub fn zext(&mut self, a: ExprRef, width: u32) -> ExprRef {
        let w = self.width_of(a);
        assert!(width >= w, "zext target narrower than operand");
        if width == w {
            return a;
        }
        let zeros = self.constant(0, width - w);
        self.concat(zeros, a)
    }

    /// Sign-extension to `width`.
    ///
    /// # Panics
    /// Panics if `width` is smaller than the operand width.
    pub fn sext(&mut self, a: ExprRef, width: u32) -> ExprRef {
        let w = self.width_of(a);
        assert!(width >= w, "sext target narrower than operand");
        if width == w {
            return a;
        }
        let sign = self.bit(a, w - 1);
        let ones = self.constant(u64::MAX, (width - w).min(64));
        let ones = if width - w > 64 {
            let v = BitVecValue::ones(width - w);
            self.value(v)
        } else {
            ones
        };
        let zeros = self.constant(0, width - w);
        let ext = self.ite(sign, ones, zeros);
        self.concat(ext, a)
    }

    /// Conjunction of a list of 1-bit expressions (true when empty).
    pub fn and_many(&mut self, xs: &[ExprRef]) -> ExprRef {
        let mut acc = self.bool_const(true);
        for &x in xs {
            acc = self.and(acc, x);
        }
        acc
    }

    /// Disjunction of a list of 1-bit expressions (false when empty).
    pub fn or_many(&mut self, xs: &[ExprRef]) -> ExprRef {
        let mut acc = self.bool_const(false);
        for &x in xs {
            acc = self.or(acc, x);
        }
        acc
    }

    /// Population count as a `result_width`-bit vector.
    pub fn count_ones(&mut self, a: ExprRef, result_width: u32) -> ExprRef {
        let w = self.width_of(a);
        let mut acc = self.constant(0, result_width);
        for i in 0..w {
            let b = self.bit(a, i);
            let ext = self.zext(b, result_width);
            acc = self.add(acc, ext);
        }
        acc
    }

    /// 1-bit "exactly one bit set" predicate (`$onehot`).
    pub fn onehot(&mut self, a: ExprRef) -> ExprRef {
        let w = self.width_of(a);
        let cw = 32.min(w + 1).max(2);
        let count = self.count_ones(a, cw);
        let one = self.constant(1, cw);
        self.eq(count, one)
    }

    /// 1-bit "at most one bit set" predicate (`$onehot0`).
    pub fn onehot0(&mut self, a: ExprRef) -> ExprRef {
        let w = self.width_of(a);
        let cw = 32.min(w + 1).max(2);
        let count = self.count_ones(a, cw);
        let one = self.constant(1, cw);
        self.ule(count, one)
    }

    /// Rebuilds `e` with every occurrence of a key in `map` replaced by its
    /// value (applied to arbitrary sub-expressions, typically symbols).
    /// Replacement values must match the width of what they replace.
    pub fn substitute(&mut self, e: ExprRef, map: &HashMap<ExprRef, ExprRef>) -> ExprRef {
        let mut memo: HashMap<ExprRef, ExprRef> = HashMap::new();
        self.substitute_memo(e, map, &mut memo)
    }

    fn substitute_memo(
        &mut self,
        e: ExprRef,
        map: &HashMap<ExprRef, ExprRef>,
        memo: &mut HashMap<ExprRef, ExprRef>,
    ) -> ExprRef {
        if let Some(&r) = map.get(&e) {
            debug_assert_eq!(self.width_of(r), self.width_of(e), "substitution width mismatch");
            return r;
        }
        if let Some(&r) = memo.get(&e) {
            return r;
        }
        let result = match self.expr(e).clone() {
            Expr::Const(_) | Expr::Symbol { .. } => e,
            Expr::Unary(op, a) => {
                let na = self.substitute_memo(a, map, memo);
                if na == a {
                    e
                } else {
                    self.unary(op, na)
                }
            }
            Expr::Binary(op, a, b) => {
                let na = self.substitute_memo(a, map, memo);
                let nb = self.substitute_memo(b, map, memo);
                if na == a && nb == b {
                    e
                } else {
                    self.binary(op, na, nb)
                }
            }
            Expr::Ite { cond, tru, fls } => {
                let nc = self.substitute_memo(cond, map, memo);
                let nt = self.substitute_memo(tru, map, memo);
                let nf = self.substitute_memo(fls, map, memo);
                if nc == cond && nt == tru && nf == fls {
                    e
                } else {
                    self.ite(nc, nt, nf)
                }
            }
            Expr::Extract { value, hi, lo } => {
                let nv = self.substitute_memo(value, map, memo);
                if nv == value {
                    e
                } else {
                    self.extract(nv, hi, lo)
                }
            }
        };
        memo.insert(e, result);
        result
    }

    /// Collects the symbols reachable from `e`, in deterministic order.
    pub fn free_symbols(&self, e: ExprRef) -> Vec<ExprRef> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let mut stack = vec![e];
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            match self.expr(x) {
                Expr::Const(_) => {}
                Expr::Symbol { .. } => out.push(x),
                Expr::Unary(_, a) => stack.push(*a),
                Expr::Binary(_, a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                Expr::Ite { cond, tru, fls } => {
                    stack.push(*cond);
                    stack.push(*tru);
                    stack.push(*fls);
                }
                Expr::Extract { value, .. } => stack.push(*value),
            }
        }
        out.sort();
        out
    }

    /// Renders an expression as Verilog-flavoured text (used in prompts,
    /// traces, and debugging).
    pub fn display(&self, e: ExprRef) -> String {
        match self.expr(e) {
            Expr::Const(v) => format!("{v}"),
            Expr::Symbol { name, .. } => name.clone(),
            Expr::Unary(op, a) => {
                let sa = self.display(*a);
                match op {
                    UnaryOp::Not => format!("~({sa})"),
                    UnaryOp::Neg => format!("-({sa})"),
                    UnaryOp::RedAnd => format!("&({sa})"),
                    UnaryOp::RedOr => format!("|({sa})"),
                    UnaryOp::RedXor => format!("^({sa})"),
                }
            }
            Expr::Binary(op, a, b) => {
                let sa = self.display(*a);
                let sb = self.display(*b);
                let sym = match op {
                    BinaryOp::And => "&",
                    BinaryOp::Or => "|",
                    BinaryOp::Xor => "^",
                    BinaryOp::Add => "+",
                    BinaryOp::Sub => "-",
                    BinaryOp::Mul => "*",
                    BinaryOp::Udiv => "/",
                    BinaryOp::Urem => "%",
                    BinaryOp::Eq => "==",
                    BinaryOp::Ult => "<",
                    BinaryOp::Ule => "<=",
                    BinaryOp::Slt => "<s",
                    BinaryOp::Concat => return format!("{{{sa}, {sb}}}"),
                    BinaryOp::Shl => "<<",
                    BinaryOp::Lshr => ">>",
                };
                format!("({sa} {sym} {sb})")
            }
            Expr::Ite { cond, tru, fls } => {
                format!(
                    "({} ? {} : {})",
                    self.display(*cond),
                    self.display(*tru),
                    self.display(*fls)
                )
            }
            Expr::Extract { value, hi, lo } => {
                if hi == lo {
                    format!("{}[{hi}]", self.display(*value))
                } else {
                    format!("{}[{hi}:{lo}]", self.display(*value))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_shares_nodes() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 4);
        let b = ctx.symbol("b", 4);
        let e1 = ctx.add(a, b);
        let e2 = ctx.add(a, b);
        let e3 = ctx.add(b, a); // commutative canonicalisation
        assert_eq!(e1, e2);
        assert_eq!(e1, e3);
    }

    #[test]
    fn constant_folding() {
        let mut ctx = Context::new();
        let a = ctx.constant(3, 8);
        let b = ctx.constant(4, 8);
        let s = ctx.add(a, b);
        assert_eq!(ctx.const_value(s).unwrap().to_u64(), Some(7));
        let n = ctx.not(a);
        assert_eq!(ctx.const_value(n).unwrap().to_u64(), Some(0xFC));
    }

    #[test]
    fn widths() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        let b = ctx.symbol("b", 8);
        assert_eq!(ctx.width_of(ctx.find_symbol("a").unwrap()), 8);
        let e = ctx.eq(a, b);
        assert_eq!(ctx.width_of(e), 1);
        let c = ctx.concat(a, b);
        assert_eq!(ctx.width_of(c), 16);
        let x = ctx.extract(a, 3, 1);
        assert_eq!(ctx.width_of(x), 3);
        let r = ctx.red_xor(a);
        assert_eq!(ctx.width_of(r), 1);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        let b = ctx.symbol("b", 4);
        let _ = ctx.add(a, b);
    }

    #[test]
    #[should_panic(expected = "redeclared")]
    fn symbol_redeclaration_panics() {
        let mut ctx = Context::new();
        ctx.symbol("a", 8);
        ctx.symbol("a", 4);
    }

    #[test]
    fn identities() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        assert_eq!(ctx.and(a, a), a);
        let x = ctx.xor(a, a);
        assert!(ctx.const_value(x).unwrap().is_zero());
        let e = ctx.eq(a, a);
        assert_eq!(ctx.const_value(e).unwrap().to_u64(), Some(1));
        let nn = {
            let n = ctx.not(a);
            ctx.not(n)
        };
        assert_eq!(nn, a);
    }

    #[test]
    fn commutative_canonicalisation_all_ops() {
        // Regression: hash-consing must treat swapped operands of every
        // commutative operator as the same node, including when one side is
        // itself a compound expression.
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        let b = ctx.symbol("b", 8);
        let c = ctx.symbol("c", 8);
        let ab = ctx.add(a, b);
        for (fwd, rev) in [
            (ctx.and(ab, c), ctx.and(c, ab)),
            (ctx.or(ab, c), ctx.or(c, ab)),
            (ctx.xor(ab, c), ctx.xor(c, ab)),
            (ctx.add(ab, c), ctx.add(c, ab)),
            (ctx.mul(ab, c), ctx.mul(c, ab)),
            (ctx.eq(ab, c), ctx.eq(c, ab)),
        ] {
            assert_eq!(fwd, rev, "swapped operands must share one node");
        }
        let before = ctx.num_nodes();
        let _ = ctx.mul(c, ab);
        assert_eq!(ctx.num_nodes(), before, "no new node for a swapped re-intern");
    }

    #[test]
    fn identity_and_annihilator_folds() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        let zero = ctx.constant(0, 8);
        let one = ctx.constant(1, 8);
        let ones = ctx.constant(0xFF, 8);
        assert_eq!(ctx.and(a, zero), zero);
        assert_eq!(ctx.and(ones, a), a);
        assert_eq!(ctx.or(a, zero), a);
        assert_eq!(ctx.or(a, ones), ones);
        assert_eq!(ctx.xor(zero, a), a);
        let na = ctx.not(a);
        assert_eq!(ctx.xor(a, ones), na);
        assert_eq!(ctx.add(a, zero), a);
        assert_eq!(ctx.sub(a, zero), a);
        assert_eq!(ctx.mul(a, zero), zero);
        assert_eq!(ctx.mul(one, a), a);
        assert_eq!(ctx.udiv(a, one), a);
        assert_eq!(ctx.urem(a, one), zero);
        assert_eq!(ctx.shl(a, zero), a);
        assert_eq!(ctx.lshr(zero, a), zero);
        let f = ctx.ult(a, zero);
        assert_eq!(ctx.const_value(f).unwrap().to_u64(), Some(0));
        let t = ctx.ule(zero, a);
        assert_eq!(ctx.const_value(t).unwrap().to_u64(), Some(1));
    }

    #[test]
    fn boolean_eq_folds() {
        let mut ctx = Context::new();
        let p = ctx.symbol("p", 1);
        let t = ctx.bool_const(true);
        let f = ctx.bool_const(false);
        assert_eq!(ctx.eq(p, t), p);
        let np = ctx.not(p);
        assert_eq!(ctx.eq(f, p), np);
        // Wider equality against zero stays symbolic.
        let a = ctx.symbol("a", 8);
        let z8 = ctx.constant(0, 8);
        let e = ctx.eq(a, z8);
        assert!(ctx.const_value(e).is_none());
        assert!(matches!(ctx.expr(e), Expr::Binary(BinaryOp::Eq, ..)));
    }

    #[test]
    fn ite_simplification() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        let b = ctx.symbol("b", 8);
        let t = ctx.bool_const(true);
        assert_eq!(ctx.ite(t, a, b), a);
        let c = ctx.symbol("c", 1);
        assert_eq!(ctx.ite(c, a, a), a);
    }

    #[test]
    fn extension_helpers() {
        let mut ctx = Context::new();
        let a = ctx.constant(0b1010, 4);
        let z = ctx.zext(a, 8);
        assert_eq!(ctx.const_value(z).unwrap().to_u64(), Some(0b1010));
        let s = ctx.sext(a, 8);
        assert_eq!(ctx.const_value(s).unwrap().to_u64(), Some(0b1111_1010));
    }

    #[test]
    fn display_renders_verilog_flavour() {
        let mut ctx = Context::new();
        let a = ctx.symbol("count1", 4);
        let b = ctx.symbol("count2", 4);
        let e = ctx.eq(a, b);
        assert_eq!(ctx.display(e), "(count1 == count2)");
        let r = ctx.red_and(a);
        assert_eq!(ctx.display(r), "&(count1)");
        let bit = ctx.bit(a, 3);
        assert_eq!(ctx.display(bit), "count1[3]");
    }

    #[test]
    fn onehot_constant_eval() {
        let mut ctx = Context::new();
        let v1 = ctx.constant(0b0100, 4);
        let v2 = ctx.constant(0b0110, 4);
        let v0 = ctx.constant(0, 4);
        let o1 = ctx.onehot(v1);
        let o2 = ctx.onehot(v2);
        let o0 = ctx.onehot0(v0);
        assert!(ctx.const_value(o1).unwrap().to_bool());
        assert!(!ctx.const_value(o2).unwrap().to_bool());
        assert!(ctx.const_value(o0).unwrap().to_bool());
    }

    #[test]
    fn substitute_replaces_symbols() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        let b = ctx.symbol("b", 8);
        let e = ctx.add(a, b);
        let c5 = ctx.constant(5, 8);
        let map = HashMap::from([(a, c5)]);
        let e2 = ctx.substitute(e, &map);
        // b + 5 — still symbolic.
        assert_ne!(e2, e);
        let c3 = ctx.constant(3, 8);
        let map2 = HashMap::from([(b, c3)]);
        let e3 = ctx.substitute(e2, &map2);
        assert_eq!(ctx.const_value(e3).unwrap().to_u64(), Some(8));
    }

    #[test]
    fn substitute_identity_is_shared() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        let one = ctx.constant(1, 8);
        let e = ctx.add(a, one);
        let empty = HashMap::new();
        assert_eq!(ctx.substitute(e, &empty), e);
    }

    #[test]
    fn free_symbols_found() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        let b = ctx.symbol("b", 8);
        let _c = ctx.symbol("c", 8);
        let e = {
            let s = ctx.add(a, b);
            ctx.eq(s, a)
        };
        let syms = ctx.free_symbols(e);
        assert_eq!(syms, vec![a, b]);
    }

    #[test]
    fn symbols_iteration_ordered() {
        let mut ctx = Context::new();
        ctx.symbol("z", 1);
        ctx.symbol("a", 2);
        let names: Vec<&str> = ctx.symbols().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["z", "a"], "creation order preserved");
    }
}
