//! # genfv-ir — word-level IR, transition systems, and bit-blasting
//!
//! This crate is the semantic core of the `genfv` stack:
//!
//! * [`BitVecValue`] — arbitrary-width bitvector values with Verilog /
//!   SMT-LIB semantics (two's complement, truncating ops, logical shifts);
//! * [`Context`] / [`ExprRef`] — a hash-consed word-level expression DAG
//!   with constant folding;
//! * [`TransitionSystem`] — elaborated RTL: inputs, state registers with
//!   init/next functions, constraints, named signals;
//! * [`Simulator`] / [`evaluate`] — the executable semantics;
//! * [`BitBlaster`] / [`LitEnv`] — lowering to CNF over the `genfv-sat`
//!   solver, one literal per bit, with per-frame instantiation for
//!   unrolling.
//!
//! The differential property test `tests/bitblast_vs_eval.rs` asserts that
//! the bit-blaster and the simulator implement the *same* semantics on
//! randomly generated expressions, which is the linchpin correctness
//! argument for every proof produced upstream.
//!
//! ```
//! use genfv_ir::{Context, BitBlaster, LitEnv, BitVecValue};
//!
//! let mut ctx = Context::new();
//! let a = ctx.symbol("a", 8);
//! let b = ctx.symbol("b", 8);
//! let sum = ctx.add(a, b);
//! let lit42 = ctx.constant(42, 8);
//! let is42 = ctx.eq(sum, lit42);
//!
//! let mut bb = BitBlaster::new();
//! let mut env = LitEnv::new();
//! let l = bb.blast(&ctx, &mut env, is42);
//! bb.assert_lit(l[0]);
//! assert!(bb.solver_mut().solve().is_sat());
//! let got_a = bb.read_model_value(env.lookup(a).unwrap());
//! let got_b = bb.read_model_value(env.lookup(b).unwrap());
//! assert_eq!(got_a.add(&got_b).to_u64(), Some(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitblast;
pub mod encode;
pub mod eval;
pub mod expr;
pub mod opt;
pub mod satsweep;
pub mod template;
pub mod ts;
pub mod value;

pub use bitblast::{BitBlaster, LitEnv};
pub use encode::GateEncoder;
pub use eval::{evaluate, evaluate_all, Env, Simulator};
pub use expr::{BinaryOp, Context, Expr, ExprRef, UnaryOp};
pub use opt::{
    optimize, optimize_with, OptConfig, OptLevel, OptPass, OptStats, PassCount, PassManager,
};
pub use satsweep::{SatSweepConfig, SatSweepPass, SatSweepStats};
pub use template::{FrameStamp, TRef, Template, TemplateStats};
pub use ts::{State, TransitionSystem};
pub use value::BitVecValue;
