//! SAT-sweeping: simulation-guided equivalence merging (fraiging).
//!
//! The classic synthesis technique for collapsing cones that are
//! *structurally* different but *functionally* equivalent — redundancy
//! that local rewriting cannot see because no finite pattern set matches
//! "these two DAGs compute the same function". The pass runs in three
//! stages:
//!
//! 1. **Signatures.** The [`Simulator`](crate::eval::Simulator) is driven
//!    with deterministically seeded random input *and* state vectors
//!    ([`Simulator::randomize_inputs`](crate::eval::Simulator::randomize_inputs)
//!    / `randomize_states`), each vector retried until the environment
//!    constraints hold (infeasible stimulus must not split classes that
//!    are equivalent on every *legal* input). Every combinational node
//!    reachable from a non-constraint position is valued on every vector;
//!    nodes whose signatures agree — or agree bitwise-complemented — land
//!    in one candidate equivalence class.
//! 2. **Bounded SAT miters.** For each candidate pair `(rep, m)` a miter
//!    over the shared cone is blasted into one long-lived sweep
//!    [`Solver`](genfv_sat::Solver) (through the same
//!    [`BitBlaster`]/Tseitin machinery the engines use), activated with a
//!    fresh selector from [`ActivationGroup`] and queried under a
//!    per-pair conflict budget, so a pair that blows up costs a bounded
//!    amount of work and is simply skipped
//!    ([`SolveResult::Unknown`](genfv_sat::SolveResult)). The
//!    environment constraints are asserted permanently in the sweep
//!    solver, so equivalence is only required on constraint-satisfying
//!    assignments.
//! 3. **CEX refinement / merging.** A SAT answer yields a model that is a
//!    *new* simulation vector: it is fed back into the signature matrix
//!    (splitting, at minimum, the refuted pair) and remembered across
//!    rounds, so near-miss pairs are separated by simulation instead of
//!    repeated SAT calls. An UNSAT answer proves the pair equivalent and
//!    `m` is rewritten to `rep` (wrapped in a NOT for complemented
//!    equivalence — free in CNF, where negation is literal polarity);
//!    the downstream arena sweep reclaims the dead cone.
//!
//! A final **register-correspondence** stage lifts the same idea to the
//! sequential level (van Eijk-style, restricted to singleton induction):
//! two registers with structurally equal initial values whose next-state
//! functions coincide *under the hypothesis that the registers are equal*
//! (checked structurally after substitution, else by a budgeted miter)
//! are merged into one. This is what collapses the paper's Listing-1
//! shape — two counters stepping in lockstep — down to a single register,
//! after which `eq(c, c)` folds to constant true and the induction step
//! is structural.
//!
//! ## Soundness
//!
//! *Combinational merges* are per-frame semantic equivalences on every
//! assignment satisfying the constraints; since every engine in the stack
//! asserts the constraints at every frame, verdicts and counterexample
//! waveforms are unchanged. Because the proofs are *conditional on the
//! constraints*, merges are *never applied inside the constraint
//! expressions themselves* — rewriting a constraint with a fact derived
//! from that constraint would be self-justifying (e.g. under `a < 10` the
//! node `a < 10` is "equivalent" to `true`, but folding it away would
//! erase the constraint). Constraint positions keep their original
//! expressions; only lost sharing is at stake.
//!
//! *Register merges* preserve the constrained trace set exactly: equal
//! inits give `r₀ = s₀`, and the step proof gives `rₖ = sₖ → rₖ₊₁ =
//! sₖ₊₁` on constraint-satisfying frames, so every constrained trace of
//! the original system has `r = s` everywhere and maps 1:1 onto a trace
//! of the merged system (BMC verdicts and counterexample cycles are
//! bit-identical). Unreachable-state explorations (induction steps) gain
//! the hypothesis `r = s`, which — like stuck-at folding — can only
//! *strengthen* induction: the merged netlist may close a proof the
//! original stalled on, never the reverse.
//!
//! Representatives are always the minimum-index class member (or a
//! constant), and the expression arena is append-only, so a
//! representative's cone can never contain the node it replaces — merge
//! chains strictly decrease arena indices and rewriting terminates.

use crate::bitblast::{BitBlaster, LitEnv};
use crate::eval::{evaluate, evaluate_all, splitmix64, Env, Simulator};
use crate::expr::{Context, Expr, ExprRef, UnaryOp};
use crate::opt::{mk_binary, mk_unary, OptPass, OptStats};
use crate::ts::TransitionSystem;
use crate::value::BitVecValue;
use genfv_obs::{Counter, Obs};
use genfv_sat::{ActivationGroup, SolveResult};
use std::collections::{HashMap, HashSet};

/// Tuning knobs for [`SatSweepPass`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SatSweepConfig {
    /// Random stimulus vectors per signature round (before CEX
    /// refinement adds more).
    pub vectors: usize,
    /// Seed for the deterministic stimulus stream.
    pub seed: u64,
    /// Upper bound on SAT equivalence queries per pass invocation.
    pub max_pairs: usize,
    /// Conflict budget per equivalence query; exhausted queries return
    /// `Unknown` and the pair is skipped, keeping sweeping bounded.
    pub conflict_budget: u64,
    /// Whether to run the sequential register-correspondence stage.
    pub merge_registers: bool,
}

impl Default for SatSweepConfig {
    fn default() -> Self {
        SatSweepConfig {
            vectors: 24,
            seed: 0x5eed_5a77_57ee_9000,
            max_pairs: 256,
            conflict_budget: 2_000,
            merge_registers: true,
        }
    }
}

/// What one [`SatSweepPass`] did, accumulated across fixpoint rounds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SatSweepStats {
    /// Candidate pairs proved equivalent (UNSAT miters plus structural
    /// register correspondences).
    pub pairs_proved: u64,
    /// Candidate pairs refuted by a SAT miter (each one contributes a
    /// refinement vector).
    pub pairs_refuted: u64,
    /// Nodes rewritten to a class representative (including merged
    /// registers).
    pub nodes_merged: u64,
    /// Solver conflicts spent across all sweep queries.
    pub sweep_conflicts: u64,
}

/// The outcome of one bounded miter query.
enum PairOutcome {
    Proved,
    Refuted(Env),
    Unknown,
}

/// One candidate miter: does `a` equal `b` (or `¬b` when `negated`)?
#[derive(Clone, Copy)]
struct Miter {
    a: ExprRef,
    b: ExprRef,
    negated: bool,
}

/// One long-lived sweep solver: constraints asserted once, each miter
/// guarded by a retirable activation selector.
struct SweepSolver {
    bb: BitBlaster,
    lenv: LitEnv,
    group: ActivationGroup,
}

impl SweepSolver {
    fn new(ctx: &Context, ts: &TransitionSystem) -> Self {
        let mut bb = BitBlaster::new();
        let mut lenv = LitEnv::new();
        for &c in ts.constraints() {
            let lits = bb.blast(ctx, &mut lenv, c);
            bb.assert_lit(lits[0]);
        }
        SweepSolver { bb, lenv, group: ActivationGroup::new() }
    }

    /// Queries the miter under the asserted constraints, spending at
    /// most `budget` conflicts. A `Refuted` outcome carries the full
    /// model as a simulation environment (symbols the solver never saw
    /// default to zero — they cannot influence either cone or the
    /// constraints).
    fn prove_pair(
        &mut self,
        ctx: &Context,
        ts: &TransitionSystem,
        miter: Miter,
        budget: u64,
        conflicts: &mut u64,
    ) -> PairOutcome {
        let al = self.bb.blast(ctx, &mut self.lenv, miter.a);
        let bl = self.bb.blast(ctx, &mut self.lenv, miter.b);
        debug_assert_eq!(al.len(), bl.len(), "miter width mismatch");
        let mut diff = self.bb.false_lit();
        for (&x, &y) in al.iter().zip(&bl) {
            let y = if miter.negated { !y } else { y };
            let bit = self.bb.builder_mut().xor(x, y);
            diff = self.bb.builder_mut().or(diff, bit);
        }
        let sel = self.group.fresh(self.bb.solver_mut());
        self.group.imply(self.bb.solver_mut(), sel, diff);
        self.bb.solver_mut().set_conflict_budget(budget);
        let res = self.bb.solve_with_assumptions(&[sel]);
        *conflicts += self.bb.solver().stats().last_conflicts;
        let out = match res {
            SolveResult::Unsat => PairOutcome::Proved,
            SolveResult::Sat => {
                let mut env = Env::new();
                for sym in ts.all_symbols() {
                    let v = match self.lenv.lookup(sym) {
                        Some(lits) => self.bb.read_model_value(lits),
                        None => BitVecValue::zero(ctx.width_of(sym)),
                    };
                    env.insert(sym, v);
                }
                PairOutcome::Refuted(env)
            }
            SolveResult::Unknown => PairOutcome::Unknown,
        };
        self.group.retire(self.bb.solver_mut(), sel);
        out
    }
}

/// Simulation-guided SAT equivalence merging (see module docs). Not to be
/// confused with the arena-compaction `sweep` pass, which only collects
/// garbage — this pass *creates* the garbage for it to collect.
pub struct SatSweepPass {
    config: SatSweepConfig,
    stats: SatSweepStats,
    obs: Obs,
    /// CEX stimulus learned from refuted miters, keyed by symbol *name*
    /// so the vectors survive the arena rebuilds between fixpoint rounds.
    learned: Vec<HashMap<String, BitVecValue>>,
}

/// Cap on remembered CEX vectors (oldest dropped first).
const MAX_LEARNED: usize = 64;

impl SatSweepPass {
    /// A pass with default tuning.
    pub fn new() -> Self {
        Self::with_config(SatSweepConfig::default())
    }

    /// A pass with explicit tuning.
    pub fn with_config(config: SatSweepConfig) -> Self {
        SatSweepPass {
            config,
            stats: SatSweepStats::default(),
            obs: Obs::off(),
            learned: Vec::new(),
        }
    }

    /// Cumulative counters across every invocation of this pass value.
    pub fn stats(&self) -> &SatSweepStats {
        &self.stats
    }

    // --- stage 1: signatures -------------------------------------------------

    /// Collects every non-symbol node reachable from a *non-constraint*
    /// position, in ascending arena order (children before parents).
    fn candidates(ctx: &Context, ts: &TransitionSystem, roots: &[ExprRef]) -> Vec<ExprRef> {
        let mut tops: Vec<ExprRef> = Vec::new();
        for s in ts.states() {
            if let Some(init) = s.init {
                tops.push(init);
            }
            tops.push(s.next);
        }
        tops.extend(ts.signals().iter().map(|(_, e)| *e));
        tops.extend_from_slice(roots);
        let mut seen: HashSet<ExprRef> = HashSet::new();
        let mut stack = tops;
        let mut out: Vec<ExprRef> = Vec::new();
        while let Some(e) = stack.pop() {
            if !seen.insert(e) {
                continue;
            }
            match *ctx.expr(e) {
                Expr::Symbol { .. } => continue,
                Expr::Const(_) => {}
                Expr::Unary(_, a) => stack.push(a),
                Expr::Binary(_, a, b) => stack.extend([a, b]),
                Expr::Ite { cond, tru, fls } => stack.extend([cond, tru, fls]),
                Expr::Extract { value, .. } => stack.push(value),
            }
            out.push(e);
        }
        out.sort_unstable();
        out
    }

    /// Deterministic constraint-satisfying stimulus: fresh random vectors
    /// plus the replayable CEX vectors learned in earlier rounds.
    fn stimulus(&self, ctx: &Context, ts: &TransitionSystem) -> Vec<Env> {
        let mut envs: Vec<Env> = Vec::new();
        let mut stream = self.config.seed;
        for _ in 0..self.config.vectors {
            for _attempt in 0..8 {
                let mut sim = Simulator::new(ctx, ts);
                sim.randomize_inputs(splitmix64(&mut stream));
                sim.randomize_states(splitmix64(&mut stream));
                if sim.constraints_hold() {
                    envs.push(sim.env().clone());
                    break;
                }
            }
        }
        for cex in &self.learned {
            let mut env = Env::new();
            for sym in ts.all_symbols() {
                let w = ctx.width_of(sym);
                let v = ctx
                    .symbol_name(sym)
                    .and_then(|n| cex.get(n))
                    .filter(|v| v.width() == w)
                    .cloned()
                    .unwrap_or_else(|| BitVecValue::zero(w));
                env.insert(sym, v);
            }
            if ts.constraints().iter().all(|&c| evaluate(ctx, &env, c).to_bool()) {
                envs.push(env);
            }
        }
        envs
    }

    /// Remembers a CEX model for later rounds (name-keyed: `ExprRef`s do
    /// not survive the arena-compaction sweep).
    fn remember(&mut self, ctx: &Context, env: &Env) {
        let named: HashMap<String, BitVecValue> = env
            .iter()
            .filter_map(|(&sym, v)| ctx.symbol_name(sym).map(|n| (n.to_string(), v.clone())))
            .collect();
        if self.learned.len() >= MAX_LEARNED {
            self.learned.remove(0);
        }
        self.learned.push(named);
    }

    /// Partitions candidates into classes of equal-or-complement
    /// signatures. Each entry is `(node, phase)` where `phase` is true if
    /// the node's signature is the bitwise complement of the class key's.
    fn classes(candidates: &[ExprRef], matrix: &[Vec<BitVecValue>]) -> Vec<Vec<(ExprRef, bool)>> {
        let mut by_sig: HashMap<Vec<BitVecValue>, usize> = HashMap::new();
        let mut classes: Vec<Vec<(ExprRef, bool)>> = Vec::new();
        for (i, &e) in candidates.iter().enumerate() {
            let sig = matrix[i].clone();
            if let Some(&c) = by_sig.get(&sig) {
                classes[c].push((e, false));
                continue;
            }
            let comp: Vec<BitVecValue> = sig.iter().map(|v| v.not()).collect();
            if let Some(&c) = by_sig.get(&comp) {
                classes[c].push((e, true));
                continue;
            }
            by_sig.insert(sig, classes.len());
            classes.push(vec![(e, false)]);
        }
        classes
    }

    // --- stage 2+3: miters, refinement, merging ------------------------------

    /// The combinational sweep: signatures → budgeted miters → CEX
    /// refinement → merge map, applied everywhere except constraint
    /// positions. Returns the number of nodes rewritten.
    fn sweep_combinational(
        &mut self,
        ctx: &mut Context,
        ts: &mut TransitionSystem,
        roots: &mut [ExprRef],
        queries: &mut usize,
    ) -> u64 {
        let candidates = Self::candidates(ctx, ts, roots);
        if candidates.len() < 2 {
            return 0;
        }
        let stimulus = self.stimulus(ctx, ts);
        if stimulus.is_empty() {
            return 0;
        }
        let mut matrix: Vec<Vec<BitVecValue>> = vec![Vec::new(); candidates.len()];
        for env in &stimulus {
            for (i, v) in evaluate_all(ctx, env, &candidates).into_iter().enumerate() {
                matrix[i].push(v);
            }
        }
        let mut solver = SweepSolver::new(ctx, ts);
        let mut merge: HashMap<ExprRef, (ExprRef, bool)> = HashMap::new();
        let mut unknown: HashSet<(ExprRef, ExprRef)> = HashSet::new();
        'refine: loop {
            let classes = Self::classes(&candidates, &matrix);
            for class in classes {
                let mut members: Vec<(ExprRef, bool)> = class;
                members.retain(|(e, _)| !merge.contains_key(e));
                if members.len() < 2 {
                    continue;
                }
                // Prefer a constant representative; otherwise the
                // minimum-index member (first — candidates are sorted, so
                // class members arrive in ascending arena order).
                let rep_at =
                    members.iter().position(|&(e, _)| ctx.const_value(e).is_some()).unwrap_or(0);
                let (rep, rep_phase) = members[rep_at];
                for &(m, phase) in members.iter().filter(|&&(m, _)| m != rep) {
                    if ctx.const_value(m).is_some() {
                        continue; // two constants: distinct by definition
                    }
                    let negated = phase != rep_phase;
                    // A member that already *is* the representative's
                    // structural complement would merge to itself (the
                    // NOT wrapper re-interns to the same node): skip it
                    // rather than spend a query on an identity rewrite.
                    let trivial = negated
                        && (matches!(*ctx.expr(m), Expr::Unary(UnaryOp::Not, x) if x == rep)
                            || matches!(*ctx.expr(rep), Expr::Unary(UnaryOp::Not, x) if x == m));
                    if trivial || unknown.contains(&(rep, m)) {
                        continue;
                    }
                    if *queries >= self.config.max_pairs {
                        break 'refine;
                    }
                    *queries += 1;
                    match solver.prove_pair(
                        ctx,
                        ts,
                        Miter { a: rep, b: m, negated },
                        self.config.conflict_budget,
                        &mut self.stats.sweep_conflicts,
                    ) {
                        PairOutcome::Proved => {
                            self.stats.pairs_proved += 1;
                            merge.insert(m, (rep, negated));
                        }
                        PairOutcome::Refuted(env) => {
                            self.stats.pairs_refuted += 1;
                            for (i, v) in
                                evaluate_all(ctx, &env, &candidates).into_iter().enumerate()
                            {
                                matrix[i].push(v);
                            }
                            self.remember(ctx, &env);
                            continue 'refine;
                        }
                        PairOutcome::Unknown => {
                            unknown.insert((rep, m));
                        }
                    }
                }
            }
            break;
        }
        self.apply_merges(ctx, ts, roots, &merge)
    }

    /// Rewrites every non-constraint position through the merge map.
    fn apply_merges(
        &mut self,
        ctx: &mut Context,
        ts: &mut TransitionSystem,
        roots: &mut [ExprRef],
        merge: &HashMap<ExprRef, (ExprRef, bool)>,
    ) -> u64 {
        if merge.is_empty() {
            return 0;
        }
        let keep: HashSet<ExprRef> = ts.constraints().iter().copied().collect();
        let mut memo: HashMap<ExprRef, ExprRef> = HashMap::new();
        let mut fired = 0u64;
        ts.map_exprs(|e| {
            if keep.contains(&e) {
                e
            } else {
                rewrite_merged(ctx, e, merge, &mut memo, &mut fired)
            }
        });
        for r in roots.iter_mut() {
            *r = rewrite_merged(ctx, *r, merge, &mut memo, &mut fired);
        }
        self.stats.nodes_merged += fired;
        fired
    }

    // --- stage 4: register correspondence ------------------------------------

    /// From-reset sequential signatures for every register: a few short
    /// constraint-aware random runs, concatenated. Registers whose traces
    /// differ can never be correspondence-merged and are filtered before
    /// any solver work.
    fn sequential_traces(
        &self,
        ctx: &Context,
        ts: &TransitionSystem,
    ) -> HashMap<ExprRef, Vec<BitVecValue>> {
        let mut traces: HashMap<ExprRef, Vec<BitVecValue>> = HashMap::new();
        let mut stream = self.config.seed ^ 0xc2b2_ae3d_27d4_eb4f;
        for _run in 0..3 {
            let mut sim = Simulator::new(ctx, ts);
            sim.reset();
            for _cycle in 0..8 {
                for _attempt in 0..8 {
                    sim.randomize_inputs(splitmix64(&mut stream));
                    if sim.constraints_hold() {
                        break;
                    }
                }
                for s in ts.states() {
                    traces.entry(s.symbol).or_default().push(sim.get(s.symbol).clone());
                }
                sim.step();
            }
        }
        traces
    }

    /// Merges register pairs with structurally equal inits whose next
    /// functions coincide under the hypothesis that the registers are
    /// equal — structurally after substitution when possible, else by a
    /// budgeted miter. Returns the number of registers merged.
    fn merge_registers(
        &mut self,
        ctx: &mut Context,
        ts: &mut TransitionSystem,
        roots: &mut [ExprRef],
        queries: &mut usize,
    ) -> u64 {
        if ts.states().len() < 2 {
            return 0;
        }
        let traces = self.sequential_traces(ctx, ts);
        let mut merged = 0u64;
        'restart: loop {
            let states = ts.states().to_vec();
            for i in 0..states.len() {
                for j in (i + 1)..states.len() {
                    let (r, s) = (&states[i], &states[j]);
                    if ctx.width_of(r.symbol) != ctx.width_of(s.symbol) {
                        continue;
                    }
                    let (Some(ri), Some(si)) = (r.init, s.init) else { continue };
                    if ri != si || traces.get(&r.symbol) != traces.get(&s.symbol) {
                        continue;
                    }
                    let sub = HashMap::from([(s.symbol, r.symbol)]);
                    let nr = ctx.substitute(r.next, &sub);
                    let ns = ctx.substitute(s.next, &sub);
                    let proved = if nr == ns {
                        true
                    } else if *queries < self.config.max_pairs {
                        *queries += 1;
                        let mut solver = SweepSolver::new(ctx, ts);
                        matches!(
                            solver.prove_pair(
                                ctx,
                                ts,
                                Miter { a: nr, b: ns, negated: false },
                                self.config.conflict_budget,
                                &mut self.stats.sweep_conflicts,
                            ),
                            PairOutcome::Proved
                        )
                    } else {
                        false
                    };
                    if !proved {
                        if nr != ns {
                            self.stats.pairs_refuted += 1;
                        }
                        continue;
                    }
                    self.stats.pairs_proved += 1;
                    self.stats.nodes_merged += 1;
                    ts.map_exprs(|e| ctx.substitute(e, &sub));
                    for root in roots.iter_mut() {
                        *root = ctx.substitute(*root, &sub);
                    }
                    let gone = s.symbol;
                    ts.retain_states(|sym| sym != gone);
                    merged += 1;
                    continue 'restart;
                }
            }
            break;
        }
        merged
    }
}

impl Default for SatSweepPass {
    fn default() -> Self {
        Self::new()
    }
}

/// Memoized top-down/bottom-up rewrite through `merge`: merged nodes jump
/// to their (recursively resolved) representative, everything else is
/// rebuilt over rewritten children. `fired` counts distinct merged nodes
/// actually hit.
fn rewrite_merged(
    ctx: &mut Context,
    e: ExprRef,
    merge: &HashMap<ExprRef, (ExprRef, bool)>,
    memo: &mut HashMap<ExprRef, ExprRef>,
    fired: &mut u64,
) -> ExprRef {
    if let Some(&r) = memo.get(&e) {
        return r;
    }
    let out = if let Some(&(rep, negated)) = merge.get(&e) {
        *fired += 1;
        let r = rewrite_merged(ctx, rep, merge, memo, fired);
        if negated {
            ctx.not(r)
        } else {
            r
        }
    } else {
        match ctx.expr(e).clone() {
            Expr::Const(_) | Expr::Symbol { .. } => e,
            Expr::Unary(op, a) => {
                let na = rewrite_merged(ctx, a, merge, memo, fired);
                mk_unary(ctx, op, na)
            }
            Expr::Binary(op, a, b) => {
                let na = rewrite_merged(ctx, a, merge, memo, fired);
                let nb = rewrite_merged(ctx, b, merge, memo, fired);
                mk_binary(ctx, op, na, nb)
            }
            Expr::Ite { cond, tru, fls } => {
                let nc = rewrite_merged(ctx, cond, merge, memo, fired);
                let nt = rewrite_merged(ctx, tru, merge, memo, fired);
                let nf = rewrite_merged(ctx, fls, merge, memo, fired);
                ctx.ite(nc, nt, nf)
            }
            Expr::Extract { value, hi, lo } => {
                let nv = rewrite_merged(ctx, value, merge, memo, fired);
                ctx.extract(nv, hi, lo)
            }
        }
    };
    memo.insert(e, out);
    out
}

impl OptPass for SatSweepPass {
    fn name(&self) -> &'static str {
        "satsweep"
    }

    fn run(&mut self, ctx: &mut Context, ts: &mut TransitionSystem, roots: &mut [ExprRef]) -> u64 {
        let mut queries = 0usize;
        let mut fired = self.sweep_combinational(ctx, ts, roots, &mut queries);
        if self.config.merge_registers {
            fired += self.merge_registers(ctx, ts, roots, &mut queries);
        }
        self.obs.add(Counter::SweepPairs, queries as u64);
        self.obs.add(Counter::SweepMerges, fired);
        fired
    }

    fn attach_obs(&mut self, obs: &Obs) {
        self.obs = obs.clone();
    }

    fn fold_stats(&self, stats: &mut OptStats) {
        stats.pairs_proved += self.stats.pairs_proved;
        stats.pairs_refuted += self.stats.pairs_refuted;
        stats.nodes_merged += self.stats.nodes_merged;
        stats.sweep_conflicts += self.stats.sweep_conflicts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;

    fn sweep(
        ctx: &mut Context,
        ts: &mut TransitionSystem,
        roots: &mut Vec<ExprRef>,
        config: SatSweepConfig,
    ) -> SatSweepStats {
        let mut pass = SatSweepPass::with_config(config);
        pass.run(ctx, ts, roots.as_mut_slice());
        *pass.stats()
    }

    #[test]
    fn merges_structurally_different_equivalent_cones() {
        // xor(a,b) vs (a|b) & !(a&b): same function, no shared structure.
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 1);
        let b = ctx.symbol("b", 1);
        let x1 = ctx.xor(a, b);
        let o = ctx.or(a, b);
        let an = ctx.and(a, b);
        let nan = ctx.not(an);
        let x2 = ctx.and(o, nan);
        assert_ne!(x1, x2, "hash-consing must not already unify the cones");
        let mut ts = TransitionSystem::new("t");
        ts.add_input(a);
        ts.add_input(b);
        ts.add_signal("x1", x1);
        ts.add_signal("x2", x2);
        let mut roots = vec![];
        let stats = sweep(&mut ctx, &mut ts, &mut roots, SatSweepConfig::default());
        assert!(stats.pairs_proved >= 1, "equivalence must be proved: {stats:?}");
        assert!(stats.nodes_merged >= 1);
        let (s1, s2) = (ts.signals()[0].1, ts.signals()[1].1);
        assert_eq!(s1, s2, "both signals rewritten to one representative");
    }

    #[test]
    fn merges_complemented_equivalence_with_not_wrapper() {
        // !(a&b) vs (!a | !b): complements of the same AND cone are merged
        // up to a NOT wrapper (De Morgan, invisible to local rewriting).
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 1);
        let b = ctx.symbol("b", 1);
        let an = ctx.and(a, b);
        let na = ctx.not(a);
        let nb = ctx.not(b);
        let dm = ctx.or(na, nb);
        let mut ts = TransitionSystem::new("t");
        ts.add_input(a);
        ts.add_input(b);
        ts.add_signal("and", an);
        ts.add_signal("de_morgan", dm);
        let mut roots = vec![];
        let stats = sweep(&mut ctx, &mut ts, &mut roots, SatSweepConfig::default());
        assert!(stats.pairs_proved >= 1, "{stats:?}");
        let (s1, s2) = (ts.signals()[0].1, ts.signals()[1].1);
        // de_morgan must now be exactly not(and).
        assert_eq!(s2, ctx.not(s1), "complement merge wraps the representative in a NOT");
        // Semantics preserved on all four input combinations.
        for va in 0..2u64 {
            for vb in 0..2u64 {
                let mut env = Env::new();
                env.insert(a, BitVecValue::from_u64(va, 1));
                env.insert(b, BitVecValue::from_u64(vb, 1));
                assert_eq!(
                    evaluate(&ctx, &env, s2).to_bool(),
                    !(va == 1 && vb == 1),
                    "a={va} b={vb}"
                );
            }
        }
    }

    #[test]
    fn constraint_conditioned_merge_leaves_constraints_untouched() {
        // Under the constraint a < 8 (top bit clear), bit 3 of `a` is
        // constant false — but the constraint expression itself must keep
        // its original cone, or the merge would justify itself.
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 4);
        let eight = ctx.constant(8, 4);
        let lt = ctx.ult(a, eight);
        let top_bit = ctx.extract(a, 3, 3);
        let fals = ctx.constant(0, 1);
        let mut ts = TransitionSystem::new("t");
        ts.add_input(a);
        ts.add_constraint(lt);
        ts.add_signal("top", top_bit);
        ts.add_signal("zero", fals);
        let mut roots = vec![];
        let stats = sweep(&mut ctx, &mut ts, &mut roots, SatSweepConfig::default());
        assert!(stats.pairs_proved >= 1, "top bit provably 0 under a<8: {stats:?}");
        assert_eq!(ts.signals()[0].1, fals, "signal cone merged to the constant");
        assert_eq!(ts.constraints(), &[lt], "constraint expression unchanged");
        // Without the constraint the same pair must be refuted, not proved.
        let mut ctx2 = Context::new();
        let a2 = ctx2.symbol("a", 4);
        let top2 = ctx2.extract(a2, 3, 3);
        let fals2 = ctx2.constant(0, 1);
        let mut ts2 = TransitionSystem::new("t2");
        ts2.add_input(a2);
        ts2.add_signal("top", top2);
        ts2.add_signal("zero", fals2);
        let mut roots2 = vec![];
        let stats2 = sweep(&mut ctx2, &mut ts2, &mut roots2, SatSweepConfig::default());
        assert_eq!(stats2.nodes_merged, 0, "unconstrained top bit is not constant: {stats2:?}");
        assert_eq!(ts2.signals()[0].1, top2);
    }

    #[test]
    fn conflict_budget_skips_hard_pairs_without_merging() {
        // A multiplier distributivity miter is far too hard for a
        // one-conflict budget: the pass must give up on the pair (Unknown),
        // not merge it and not hang.
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 4);
        let b = ctx.symbol("b", 4);
        let c = ctx.symbol("c", 4);
        let sum = ctx.add(b, c);
        let lhs = ctx.mul(a, sum);
        let ab = ctx.mul(a, b);
        let ac = ctx.mul(a, c);
        let rhs = ctx.add(ab, ac);
        assert_ne!(lhs, rhs, "distributed forms must be structurally distinct");
        let mut ts = TransitionSystem::new("t");
        ts.add_input(a);
        ts.add_input(b);
        ts.add_input(c);
        ts.add_signal("lhs", lhs);
        ts.add_signal("rhs", rhs);
        let mut roots = vec![];
        let config = SatSweepConfig { conflict_budget: 1, ..SatSweepConfig::default() };
        let stats = sweep(&mut ctx, &mut ts, &mut roots, config);
        assert_eq!(stats.nodes_merged, 0, "{stats:?}");
        assert_ne!(ts.signals()[0].1, ts.signals()[1].1, "hard pair left unmerged");
        // A generous budget proves the same pair.
        let mut roots = vec![];
        let stats = sweep(&mut ctx, &mut ts, &mut roots, SatSweepConfig::default());
        assert!(stats.pairs_proved >= 1, "{stats:?}");
        assert_eq!(ts.signals()[0].1, ts.signals()[1].1, "merged once the budget allows it");
    }

    #[test]
    fn register_correspondence_merges_lockstep_counters() {
        // The paper's Listing 1: two counters with equal inits stepping in
        // lockstep collapse to one register and the equality property
        // folds to constant true.
        let mut ctx = Context::new();
        let c1 = ctx.symbol("count1", 32);
        let c2 = ctx.symbol("count2", 32);
        let one = ctx.constant(1, 32);
        let zero = ctx.constant(0, 32);
        let n1 = ctx.add(c1, one);
        let n2 = ctx.add(c2, one);
        let mut ts = TransitionSystem::new("sync_counters");
        ts.add_state(c1, Some(zero), n1);
        ts.add_state(c2, Some(zero), n2);
        let prop = ctx.eq(c1, c2);
        let mut roots = vec![prop];
        let stats = sweep(&mut ctx, &mut ts, &mut roots, SatSweepConfig::default());
        assert!(stats.nodes_merged >= 1, "{stats:?}");
        assert_eq!(ts.states().len(), 1, "registers merged");
        assert_eq!(ctx.const_value(roots[0]).map(|v| v.to_bool()), Some(true));
    }

    #[test]
    fn register_correspondence_respects_differing_inits() {
        let mut ctx = Context::new();
        let c1 = ctx.symbol("c1", 8);
        let c2 = ctx.symbol("c2", 8);
        let one = ctx.constant(1, 8);
        let zero = ctx.constant(0, 8);
        let n1 = ctx.add(c1, one);
        let n2 = ctx.add(c2, one);
        let mut ts = TransitionSystem::new("t");
        ts.add_state(c1, Some(zero), n1);
        ts.add_state(c2, Some(one), n2);
        let prop = ctx.eq(c1, c2);
        let mut roots = vec![prop];
        sweep(&mut ctx, &mut ts, &mut roots, SatSweepConfig::default());
        assert_eq!(ts.states().len(), 2, "offset counters must not merge");
    }

    #[test]
    fn cex_refinement_learns_vectors() {
        // ult and ule agree on most random vectors of a narrow width but
        // differ exactly on a == b: the sweep must discover the refuting
        // model via SAT and not merge.
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 6);
        let b = ctx.symbol("b", 6);
        let lt = ctx.ult(a, b);
        let le = ctx.ule(a, b);
        let mut ts = TransitionSystem::new("t");
        ts.add_input(a);
        ts.add_input(b);
        ts.add_signal("lt", lt);
        ts.add_signal("le", le);
        let mut roots = vec![];
        let mut pass = SatSweepPass::new();
        pass.run(&mut ctx, &mut ts, roots.as_mut_slice());
        assert_ne!(ts.signals()[0].1, ts.signals()[1].1, "lt and le must stay distinct");
        // Whether SAT was needed depends on whether random stimulus hit
        // a == b; when it was, the CEX must have been remembered.
        if pass.stats().pairs_refuted > 0 {
            assert!(!pass.learned.is_empty(), "refuted pairs feed the learned-vector pool");
        }
    }
}
